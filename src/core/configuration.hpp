// The paper's 9 redundancy configurations (section 3): three internal node
// schemes (no RAID, RAID 5, RAID 6) crossed with erasure codes of fault
// tolerance 1, 2 or 3 across nodes.
#pragma once

#include <string>
#include <vector>

namespace nsrel::core {

enum class InternalScheme : unsigned char { kNone, kRaid5, kRaid6 };

struct Configuration {
  InternalScheme internal = InternalScheme::kNone;
  int node_fault_tolerance = 1;  ///< erasure code strength across nodes

  friend bool operator==(const Configuration&, const Configuration&) = default;
};

/// Number of drive failures the internal scheme tolerates (0, 1, 2).
[[nodiscard]] int internal_fault_tolerance(InternalScheme scheme);

/// "No Internal RAID" / "Internal RAID 5" / "Internal RAID 6".
[[nodiscard]] std::string scheme_name(InternalScheme scheme);

/// Paper-style label, e.g. "FT2, Internal RAID 5".
[[nodiscard]] std::string name(const Configuration& configuration);

/// The 9 baseline configurations of Figure 13, ordered FT-major.
[[nodiscard]] std::vector<Configuration> all_configurations();

/// The three configurations section 6 carries into the sensitivity
/// analyses: FT2 no-internal-RAID, FT2 internal RAID 5, FT3
/// no-internal-RAID.
[[nodiscard]] std::vector<Configuration> sensitivity_configurations();

}  // namespace nsrel::core
