#include "core/scrubbing.hpp"

#include "rebuild/drive_model.hpp"
#include "util/assert.hpp"

namespace nsrel::core {

ScrubbingModel::ScrubbingModel(const ScrubbingParams& params)
    : params_(params) {
  NSREL_EXPECTS(params_.period.value() > 0.0);
  NSREL_EXPECTS(params_.reference_latency.value() > 0.0);
  NSREL_EXPECTS(params_.command.value() > 0.0);
}

double ScrubbingModel::latent_rate(double datasheet_her_per_byte) const {
  NSREL_EXPECTS(datasheet_her_per_byte >= 0.0);
  // HER = rho * T0 / 2  =>  rho = 2 * HER / T0.
  return 2.0 * datasheet_her_per_byte / params_.reference_latency.value();
}

ScrubbingEffect ScrubbingModel::effect(const core::SystemConfig& system) const {
  system.validate();
  ScrubbingEffect result;
  const double rho = latent_rate(system.drive.her_per_byte);
  result.effective_her_per_byte = rho * params_.period.value() / 2.0;

  // One full-drive read per period at the scrub command size.
  const rebuild::DriveModel drive(system.drive);
  const Seconds pass_time = transfer_time(
      system.drive.capacity, drive.effective_rate(params_.command));
  result.scrub_bandwidth_fraction =
      to_hours(pass_time).value() / params_.period.value();
  result.rebuild_bandwidth_fraction =
      system.rebuild_bandwidth_fraction - result.scrub_bandwidth_fraction;
  NSREL_ENSURES(result.rebuild_bandwidth_fraction > 0.0);
  return result;
}

core::SystemConfig ScrubbingModel::apply(
    const core::SystemConfig& system) const {
  const ScrubbingEffect e = effect(system);
  core::SystemConfig scrubbed = system;
  scrubbed.drive.her_per_byte = e.effective_her_per_byte;
  scrubbed.rebuild_bandwidth_fraction = e.rebuild_bandwidth_fraction;
  return scrubbed;
}

}  // namespace nsrel::core
