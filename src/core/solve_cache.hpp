// Memoization of Markov-chain MTTDL solves across Analyzer instances.
//
// Many grid cells share the same underlying model: a swept parameter that
// only touches normalization (or a different front-end re-evaluating the
// same configuration) produces bit-identical NoInternalRaidParams /
// InternalRaidParams, so re-running the LU/elimination solve is pure
// waste. The cache is keyed by the *exact bytes* of those parameter
// structs (plus the solution method), so a hit is guaranteed to return
// the same doubles a fresh solve would — caching never changes results,
// only skips work.
//
// Thread-safe: the evaluation engine shares one cache across all worker
// threads. Two threads racing on the same key may both solve and store;
// both compute identical values, so the race is benign (the hit/miss
// counters reflect the actual schedule and are only deterministic for
// single-threaded runs).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <type_traits>
#include <unordered_map>

#include "util/error.hpp"
#include "util/sync.hpp"

namespace nsrel::core {

class SolveCache {
 public:
  /// Per-instance hit/miss totals. This is a façade over atomic counters
  /// owned by the cache itself: exact for *this* cache even when many
  /// threads share it. The process-wide obs metrics registry additionally
  /// aggregates `solve_cache.hits` / `solve_cache.misses` /
  /// `solve_cache.inserts` across every cache instance when enabled.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    [[nodiscard]] std::uint64_t lookups() const { return hits + misses; }
  };

  SolveCache() = default;
  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  /// Returns the cached outcome for `key` (counting a hit), or nullopt
  /// (counting a miss). Failed solves are cached like successful ones:
  /// a hit replays the original typed error bit-identically instead of
  /// re-running a solve that is known to fail.
  [[nodiscard]] std::optional<Expected<double>> lookup(const std::string& key);

  /// Stores a solve outcome (value or typed error) under `key`.
  /// Idempotent for identical outcomes; a second store of the same key
  /// keeps the first entry.
  void store(const std::string& key, Expected<double> outcome);

  [[nodiscard]] Stats stats() const;

  /// Number of distinct keys stored.
  [[nodiscard]] std::size_t size() const;

 private:
  mutable util::Mutex mutex_;
  std::unordered_map<std::string, Expected<double>> values_
      NSREL_GUARDED_BY(mutex_);
  // Relaxed probes (see tools/lint/atomics.tsv): bumped outside the map
  // mutex so the counters never extend the critical section.
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

/// Appends the raw bytes of a trivially-copyable value to a cache key.
/// Exact-byte keys make cache hits bitwise-faithful: two models collide
/// only when every parameter is identical, in which case their solves
/// are identical too.
template <typename T>
void append_key_bytes(std::string& key, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const char* bytes = reinterpret_cast<const char*>(&value);
  key.append(bytes, sizeof(T));
}

}  // namespace nsrel::core
