#include "core/configuration.hpp"

#include <string>
#include <vector>

#include "util/assert.hpp"

namespace nsrel::core {

int internal_fault_tolerance(InternalScheme scheme) {
  switch (scheme) {
    case InternalScheme::kNone:
      return 0;
    case InternalScheme::kRaid5:
      return 1;
    case InternalScheme::kRaid6:
      return 2;
  }
  NSREL_ASSERT(false);
}

std::string scheme_name(InternalScheme scheme) {
  switch (scheme) {
    case InternalScheme::kNone:
      return "No Internal RAID";
    case InternalScheme::kRaid5:
      return "Internal RAID 5";
    case InternalScheme::kRaid6:
      return "Internal RAID 6";
  }
  NSREL_ASSERT(false);
}

std::string name(const Configuration& configuration) {
  return "FT" + std::to_string(configuration.node_fault_tolerance) + ", " +
         scheme_name(configuration.internal);
}

std::vector<Configuration> all_configurations() {
  std::vector<Configuration> result;
  for (int ft = 1; ft <= 3; ++ft) {
    for (const InternalScheme scheme :
         {InternalScheme::kNone, InternalScheme::kRaid5,
          InternalScheme::kRaid6}) {
      result.push_back(Configuration{scheme, ft});
    }
  }
  return result;
}

std::vector<Configuration> sensitivity_configurations() {
  return {Configuration{InternalScheme::kNone, 2},
          Configuration{InternalScheme::kRaid5, 2},
          Configuration{InternalScheme::kNone, 3}};
}

}  // namespace nsrel::core
