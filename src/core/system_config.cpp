#include "core/system_config.hpp"

#include <cmath>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace nsrel::core {

void SystemConfig::validate() const {
  NSREL_EXPECTS(node_set_size >= 2);
  NSREL_EXPECTS(redundancy_set_size >= 2);
  NSREL_EXPECTS(redundancy_set_size <= node_set_size);
  NSREL_EXPECTS(drives_per_node >= 1);
  NSREL_EXPECTS(node_mttf.value() > 0.0);
  NSREL_EXPECTS(drive.mttf.value() > 0.0);
  NSREL_EXPECTS(drive.capacity.value() > 0.0);
  NSREL_EXPECTS(drive.max_iops > 0.0);
  NSREL_EXPECTS(drive.sustained_rate.value() > 0.0);
  NSREL_EXPECTS(drive.her_per_byte >= 0.0);
  NSREL_EXPECTS(link.raw_speed.value() > 0.0);
  NSREL_EXPECTS(link.efficiency > 0.0 && link.efficiency <= 1.0);
  NSREL_EXPECTS(rebuild_command.value() > 0.0);
  NSREL_EXPECTS(restripe_command.value() > 0.0);
  NSREL_EXPECTS(capacity_utilization > 0.0 && capacity_utilization <= 1.0);
  NSREL_EXPECTS(rebuild_bandwidth_fraction > 0.0 &&
                rebuild_bandwidth_fraction <= 1.0);
}

bool set_parameter(SystemConfig& config, const std::string& name,
                   double value) {
  if (name == "n") {
    config.node_set_size = static_cast<int>(value);
  } else if (name == "r") {
    config.redundancy_set_size = static_cast<int>(value);
  } else if (name == "d") {
    config.drives_per_node = static_cast<int>(value);
  } else if (name == "node-mttf") {
    config.node_mttf = Hours(value);
  } else if (name == "drive-mttf") {
    config.drive.mttf = Hours(value);
  } else if (name == "capacity-gb") {
    config.drive.capacity = gigabytes(value);
  } else if (name == "her-exp") {
    config.drive.her_per_byte = 8.0 * std::pow(10.0, -value);
  } else if (name == "iops") {
    config.drive.max_iops = value;
  } else if (name == "xfer-mbps") {
    config.drive.sustained_rate = megabytes_per_second(value);
  } else if (name == "link-gbps") {
    config.link.raw_speed = gigabits_per_second(value);
  } else if (name == "rebuild-kb") {
    config.rebuild_command = kilobytes(value);
  } else if (name == "restripe-kb") {
    config.restripe_command = kilobytes(value);
  } else if (name == "util") {
    config.capacity_utilization = value;
  } else if (name == "bw-frac") {
    config.rebuild_bandwidth_fraction = value;
  } else {
    return false;
  }
  return true;
}

std::vector<std::string> parameter_names() {
  return {"n",         "r",          "d",          "node-mttf",
          "drive-mttf", "capacity-gb", "her-exp",   "iops",
          "xfer-mbps",  "link-gbps",  "rebuild-kb", "restripe-kb",
          "util",       "bw-frac"};
}

}  // namespace nsrel::core
