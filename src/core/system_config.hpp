// Full description of a networked-storage-node system: the inputs every
// model in this library consumes. `baseline()` is the section-6 parameter
// table verbatim.
#pragma once

#include <string>
#include <vector>

#include "rebuild/drive_model.hpp"
#include "rebuild/link_model.hpp"
#include "util/units.hpp"

namespace nsrel::core {

struct SystemConfig {
  int node_set_size = 64;        ///< N
  int redundancy_set_size = 8;   ///< R
  int drives_per_node = 12;      ///< d
  Hours node_mttf{400'000.0};    ///< paper: 400,000 h
  rebuild::DriveParams drive;    ///< MTTF, capacity, HER, IOPS, rate
  rebuild::LinkParams link;      ///< 10 Gb/s -> 800 MB/s sustained
  Bytes rebuild_command = kilobytes(128.0);
  Bytes restripe_command = megabytes(1.0);
  double capacity_utilization = 0.75;
  double rebuild_bandwidth_fraction = 0.10;

  /// The section-6 baseline (which is also the default-constructed value;
  /// this named factory exists for call-site readability).
  [[nodiscard]] static SystemConfig baseline() { return SystemConfig{}; }

  /// Throws ContractViolation when any field is out of its domain.
  void validate() const;
};

/// Sets one field by its canonical parameter name (the names the CLI and
/// scenario files share): n, r, d, node-mttf, drive-mttf, capacity-gb,
/// her-exp (1 sector per 10^value bits), iops, xfer-mbps, link-gbps,
/// rebuild-kb, restripe-kb, util, bw-frac. Returns false for an unknown
/// name; the value is applied unvalidated (call validate() after the
/// last set).
[[nodiscard]] bool set_parameter(SystemConfig& config, const std::string& name,
                                 double value);

/// The canonical parameter names accepted by set_parameter.
[[nodiscard]] std::vector<std::string> parameter_names();

}  // namespace nsrel::core
