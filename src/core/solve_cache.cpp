#include "core/solve_cache.hpp"

namespace nsrel::core {

std::optional<Expected<double>> SolveCache::lookup(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = values_.find(key);
  if (it == values_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second;
}

void SolveCache::store(const std::string& key, Expected<double> outcome) {
  const std::lock_guard<std::mutex> lock(mutex_);
  values_.emplace(key, std::move(outcome));
}

SolveCache::Stats SolveCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t SolveCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return values_.size();
}

}  // namespace nsrel::core
