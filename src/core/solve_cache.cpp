#include "core/solve_cache.hpp"

#include <cstddef>
#include <optional>
#include <string>
#include <utility>

#include "obs/event_names.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/probe_names.hpp"
#include "util/sync.hpp"

namespace nsrel::core {

namespace {

struct CacheProbes {
  obs::Counter hits;
  obs::Counter misses;
  obs::Counter inserts;
  obs::Histogram insert_ns;
};

CacheProbes cache_probes() {
  auto& registry = obs::Registry::instance();
  return {registry.counter(obs::probe::kSolveCacheHits),
          registry.counter(obs::probe::kSolveCacheMisses),
          registry.counter(obs::probe::kSolveCacheInserts),
          registry.histogram(obs::probe::kSolveCacheInsertNs)};
}

}  // namespace

[[nodiscard]] std::optional<Expected<double>> SolveCache::lookup(const std::string& key) {
  std::optional<Expected<double>> found;
  {
    const util::MutexLock lock(mutex_);
    const auto it = values_.find(key);
    if (it != values_.end()) found = it->second;
  }
  // Counters live outside the map mutex: relaxed atomics keep the Stats
  // façade exact per instance without extending the critical section.
  if (found.has_value()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (obs::Registry::enabled()) {
      obs::Registry::instance().add(cache_probes().hits);
    }
    if (obs::Journal::enabled()) {
      obs::Journal::instance().record(obs::seq_event(obs::event::kCacheHit));
    }
    return found;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (obs::Registry::enabled()) {
    obs::Registry::instance().add(cache_probes().misses);
  }
  if (obs::Journal::enabled()) {
    obs::Journal::instance().record(obs::seq_event(obs::event::kCacheMiss));
  }
  return std::nullopt;
}

void SolveCache::store(const std::string& key, Expected<double> outcome) {
  const CacheProbes probes =
      obs::Registry::enabled() ? cache_probes() : CacheProbes{};
  const obs::ScopedTimer timer(probes.insert_ns);
  bool inserted = false;
  {
    const util::MutexLock lock(mutex_);
    inserted = values_.emplace(key, std::move(outcome)).second;
  }
  if (inserted && obs::Registry::enabled()) {
    obs::Registry::instance().add(probes.inserts);
  }
}

SolveCache::Stats SolveCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  return stats;
}

std::size_t SolveCache::size() const {
  const util::MutexLock lock(mutex_);
  return values_.size();
}

}  // namespace nsrel::core
