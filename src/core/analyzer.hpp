// The library's top-level entry point: evaluate a redundancy configuration
// on a system description and report MTTDL and the paper's headline metric,
// expected data-loss events per PB-year.
#pragma once

#include <cstdint>
#include <string>

#include "core/configuration.hpp"
#include "core/solve_cache.hpp"
#include "core/system_config.hpp"
#include "ctmc/chain.hpp"
#include "ctmc/solver_policy.hpp"
#include "models/internal_raid.hpp"
#include "models/no_internal_raid.hpp"
#include "rebuild/planner.hpp"
#include "sim/estimate.hpp"
#include "sim/parallel.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace nsrel::core {

/// Which solution path to use. Exact builds and numerically solves the
/// full Markov chain; ClosedForm evaluates the paper's approximations.
/// They agree to a few percent in the repair-dominant regime (tested).
enum class Method : unsigned char { kExactChain, kClosedForm };

/// Parses the canonical method names shared by the CLI's --method flag
/// and scenario files' [output] method key: "exact" | "closed".
/// Throws ContractViolation on anything else.
[[nodiscard]] Method parse_method(const std::string& name);

/// The canonical name parse_method accepts: "exact" / "closed".
[[nodiscard]] std::string method_name(Method method);

struct AnalysisResult {
  Configuration configuration;
  Hours mttdl{0.0};
  double events_per_system_year = 0.0;  ///< 1 / MTTDL(years), one node set
  double events_per_pb_year = 0.0;      ///< normalized by logical capacity
  Bytes logical_capacity{0.0};          ///< user data per node set
  rebuild::RebuildRates rebuild;        ///< mu_N / mu_d / re-stripe actually used
  PerHour array_failure_rate{0.0};      ///< lambda_D (internal-RAID configs)
  PerHour sector_error_rate{0.0};       ///< lambda_S (internal-RAID configs)
};

class Analyzer {
 public:
  /// Precondition: config.validate() passes.
  explicit Analyzer(SystemConfig config);

  [[nodiscard]] const SystemConfig& config() const { return config_; }

  /// Full analysis of one configuration. With a non-null `cache`, the
  /// chain solve (the expensive step) is memoized under a key built from
  /// the exact model parameters — a hit returns bit-identical results to
  /// a fresh solve, so caching never changes output. `policy` picks the
  /// CTMC solve backend; the elimination backends are bit-identical, so
  /// it never changes results either (it is still part of the cache key,
  /// because the guarantee is per-path, not assumed).
  [[nodiscard]] AnalysisResult analyze(
      const Configuration& configuration, Method method = Method::kExactChain,
      SolveCache* cache = nullptr,
      ctmc::SolverPolicy policy = ctmc::SolverPolicy::kAuto) const;

  /// Non-throwing form of analyze(): every failure mode comes back as a
  /// typed Error instead of an exception — out-of-range or non-finite
  /// system parameters as invalid_parameter, numerical failures in the
  /// chain solve with their original code (singular_generator,
  /// ill_conditioned, non_finite_result), violated internal contracts as
  /// contract_violation, and non-finite derived metrics (MTTDL, events
  /// per PB-year) as non_finite_result. Failed solves are cached like
  /// successful ones, so a cache hit replays the error bit-identically.
  [[nodiscard]] Expected<AnalysisResult> try_analyze(
      const Configuration& configuration, Method method = Method::kExactChain,
      SolveCache* cache = nullptr,
      ctmc::SolverPolicy policy = ctmc::SolverPolicy::kAuto) const;

  /// Shortcuts.
  [[nodiscard]] Hours mttdl(const Configuration& configuration,
                            Method method = Method::kExactChain) const;
  [[nodiscard]] double events_per_pb_year(
      const Configuration& configuration,
      Method method = Method::kExactChain) const;

  /// Fraction of raw capacity available for user data under this
  /// configuration: (R-t)/R across nodes times (d-m)/d inside them.
  [[nodiscard]] double code_rate(const Configuration& configuration) const;

  /// Logical (user data) capacity of one node set:
  /// N * d * C * utilization * code_rate.
  [[nodiscard]] Bytes logical_capacity(const Configuration& configuration) const;

  /// The rebuild planner for a given node fault tolerance (exposed for
  /// benches that decompose rebuild times).
  [[nodiscard]] rebuild::RebuildPlanner planner(int node_fault_tolerance) const;

  /// Markov-model parameters for a configuration, with rebuild rates from
  /// the planner — the exact inputs analyze() feeds the models, exposed so
  /// simulators and chain consumers stay in lock-step with the analysis.
  /// Preconditions: nir_params requires internal == kNone, ir_params the
  /// opposite.
  [[nodiscard]] models::NoInternalRaidParams nir_params(
      const Configuration& configuration) const;
  [[nodiscard]] models::InternalRaidParams ir_params(
      const Configuration& configuration) const;

  /// The configuration's Markov chain plus its healthy (initial) state.
  struct BuiltChain {
    ctmc::Chain chain;
    ctmc::StateId healthy = 0;
  };
  [[nodiscard]] BuiltChain build_chain(const Configuration& configuration) const;

  /// Monte-Carlo MTTDL estimate from the family's storage simulator,
  /// routed through the parallel engine. Deterministic for a fixed
  /// (seed, trials, options.chunk_trials) at any options.jobs. At the
  /// paper's baseline rates a single trajectory is ~1e8 events — pass an
  /// accelerated SystemConfig (small MTTFs) for tractable runs.
  [[nodiscard]] sim::MttdlEstimate simulate_mttdl(
      const Configuration& configuration, int trials,
      std::uint64_t seed = 0x5EEDULL,
      const sim::ParallelOptions& options = {}) const;

 private:
  SystemConfig config_;
};

/// A reliability goal in events per PB-year.
struct ReliabilityTarget {
  double events_per_pb_year = 2e-3;

  /// The paper's target: a field population of 100 one-PB systems sees
  /// less than one data-loss event in 5 years => 2e-3 events/PB-year.
  [[nodiscard]] static ReliabilityTarget paper() { return {2e-3}; }

  [[nodiscard]] bool met_by(double observed_events_per_pb_year) const {
    return observed_events_per_pb_year < events_per_pb_year;
  }
  [[nodiscard]] bool met_by(const AnalysisResult& result) const {
    return met_by(result.events_per_pb_year);
  }
};

}  // namespace nsrel::core
