// Disk scrubbing extension.
//
// The paper's HER captures uncorrectable (latent) sector errors found
// when a rebuild reads the surviving disks. Periodic scrubbing — reading
// every sector in the background and repairing what it finds — bounds how
// long an error can stay latent, shrinking the h terms; but scrub I/O
// consumes the same drive bandwidth budget the rebuild uses, slowing
// rebuilds and raising the failure-coincidence terms. This module models
// both sides of that trade:
//
//  * Latent errors develop at rate rho per byte-hour. Between scrubs of
//    period T, the average latent density seen by a rebuild at a random
//    time is rho * T / 2, so
//        effective HER(T) = rho * T / 2,
//    calibrated so that a reference latency T0 reproduces the drive's
//    datasheet HER: rho = 2 * HER / T0.
//  * A scrub pass reads the full drive once per period at the scrub
//    command size; the bandwidth it consumes is deducted from the
//    fraction available for rebuild/re-stripe.
//
// Sweeping T exposes a genuine optimum: short periods crush the hard-error
// terms but starve rebuilds; long periods do the opposite.
#pragma once

#include "core/system_config.hpp"
#include "util/units.hpp"

namespace nsrel::core {

struct ScrubbingParams {
  /// Scrub period: every sector is read once per this interval.
  Hours period{720.0};  // monthly
  /// Reference latency that calibrates rho from the datasheet HER: the
  /// latent window assumed by the baseline (no-scrub) model. Default: one
  /// year — an unscubbed error pool ages about a service interval.
  Hours reference_latency{kHoursPerYear};
  /// Command size used by the scrubber (sequential, large).
  Bytes command = megabytes(1.0);
};

struct ScrubbingEffect {
  double effective_her_per_byte = 0.0;   ///< replaces drive HER
  double scrub_bandwidth_fraction = 0.0; ///< of one drive, consumed by scrub
  double rebuild_bandwidth_fraction = 0.0;  ///< what's left for rebuild
};

class ScrubbingModel {
 public:
  /// Preconditions: period > 0, reference_latency > 0, command > 0.
  explicit ScrubbingModel(const ScrubbingParams& params);

  [[nodiscard]] const ScrubbingParams& params() const { return params_; }

  /// The latent-error development rate rho (per byte-hour) implied by the
  /// drive's datasheet HER and the reference latency.
  [[nodiscard]] double latent_rate(double datasheet_her_per_byte) const;

  /// Effective HER and the bandwidth split for the given system.
  /// Throws if the scrub alone needs more than the whole rebuild budget.
  [[nodiscard]] ScrubbingEffect effect(const core::SystemConfig& system) const;

  /// Convenience: a copy of `system` with the effective HER and reduced
  /// rebuild bandwidth fraction applied, ready for core::Analyzer.
  [[nodiscard]] core::SystemConfig apply(const core::SystemConfig& system) const;

 private:
  ScrubbingParams params_;
};

}  // namespace nsrel::core
