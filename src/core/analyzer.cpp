#include "core/analyzer.hpp"

#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "obs/event_names.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/probe_names.hpp"
#include "obs/trace.hpp"
#include "raid/array_model.hpp"
#include "sim/storage_simulator.hpp"
#include "util/assert.hpp"

namespace nsrel::core {

namespace {

/// Cache keys are the exact bytes of every input the chain solve depends
/// on: a one-byte family/method tag followed by the model parameters.
/// Bitwise-equal keys imply bitwise-equal solves.
std::string nir_solve_key(const models::NoInternalRaidParams& p,
                          Method method, ctmc::SolverPolicy policy) {
  std::string key;
  key.reserve(3 + 4 * sizeof(int) + 6 * sizeof(double));
  key.push_back('N');
  key.push_back(static_cast<char>(method));
  key.push_back(static_cast<char>(p.repair_policy));
  // The elimination backends are bit-identical, so distinct policies
  // could share entries — but the key states what actually ran, and a
  // duplicated solve is cheaper than a wrong aliasing assumption.
  key.push_back(static_cast<char>(policy));
  append_key_bytes(key, p.node_set_size);
  append_key_bytes(key, p.redundancy_set_size);
  append_key_bytes(key, p.fault_tolerance);
  append_key_bytes(key, p.drives_per_node);
  append_key_bytes(key, p.node_failure.value());
  append_key_bytes(key, p.drive_failure.value());
  append_key_bytes(key, p.node_rebuild.value());
  append_key_bytes(key, p.drive_rebuild.value());
  append_key_bytes(key, p.capacity.value());
  append_key_bytes(key, p.her_per_byte);
  return key;
}

std::string ir_solve_key(const models::InternalRaidParams& p, Method method,
                         ctmc::SolverPolicy policy) {
  std::string key;
  key.reserve(3 + 3 * sizeof(int) + 4 * sizeof(double));
  key.push_back('I');
  key.push_back(static_cast<char>(method));
  key.push_back(static_cast<char>(p.repair_policy));
  key.push_back(static_cast<char>(policy));
  append_key_bytes(key, p.node_set_size);
  append_key_bytes(key, p.redundancy_set_size);
  append_key_bytes(key, p.fault_tolerance);
  append_key_bytes(key, p.node_failure.value());
  append_key_bytes(key, p.node_rebuild.value());
  append_key_bytes(key, p.array_failure.value());
  append_key_bytes(key, p.sector_error.value());
  return key;
}

/// Runs `solve` with memoization when a cache is supplied. Exceptions
/// from the solve are converted to typed errors and cached exactly like
/// values, so a hit on a known-bad key replays the original error
/// without re-running the failing solve.
template <typename Solve>
[[nodiscard]] Expected<double> cached_solve(SolveCache* cache, const char* backend,
                              const std::string& key, Solve solve) {
  obs::Span span(obs::probe::kSpanSolve, obs::probe::kSpanCategoryCore);
  if (obs::Journal::enabled()) {
    obs::Journal::instance().record(
        obs::seq_event(obs::event::kSolveStart).arg("backend", backend));
  }
  // Brackets every exit below so hit and computed outcomes journal alike.
  const auto journal_end = [&](const Expected<double>& outcome) {
    if (obs::Journal::enabled()) {
      obs::Journal::instance().record(
          obs::seq_event(obs::event::kSolveEnd)
              .arg("backend", backend)
              .arg("outcome", outcome.has_value()
                                  ? "ok"
                                  : error_code_name(outcome.error().code)));
    }
  };
  const auto guarded = [&]() -> Expected<double> {
    const obs::ScopedTimer timer(
        obs::Registry::enabled()
            ? obs::Registry::instance().histogram(obs::probe::kCoreSolveNs)
            : obs::Histogram{});
    try {
      return solve().value();
    } catch (const ErrorException& e) {
      return e.error();
    } catch (const ContractViolation& e) {
      return Error{ErrorCode::kContractViolation, "core.analyzer", e.what()};
    }
  };
  if (cache == nullptr) {
    span.arg("cache", "none");
    Expected<double> outcome = guarded();
    journal_end(outcome);
    return outcome;
  }
  if (auto hit = cache->lookup(key)) {
    span.arg("cache", "hit");
    journal_end(*hit);
    return *std::move(hit);
  }
  span.arg("cache", "miss");
  Expected<double> outcome = guarded();
  cache->store(key, outcome);
  journal_end(outcome);
  return outcome;
}

/// Checks a system parameter for the try_analyze path: finite and
/// strictly positive, else an invalid_parameter error naming it.
std::optional<Error> check_positive_finite(double value, const char* name) {
  if (std::isfinite(value) && value > 0.0) return std::nullopt;
  return Error{ErrorCode::kInvalidParameter, "core.analyzer",
               std::string(name) + " must be finite and positive"};
}

}  // namespace

Method parse_method(const std::string& name) {
  if (name == "exact") return Method::kExactChain;
  if (name == "closed") return Method::kClosedForm;
  throw ContractViolation("unknown method '" + name + "' (use exact|closed)");
}

std::string method_name(Method method) {
  return method == Method::kExactChain ? "exact" : "closed";
}

Analyzer::Analyzer(SystemConfig config) : config_(std::move(config)) {
  config_.validate();
}

rebuild::RebuildPlanner Analyzer::planner(int node_fault_tolerance) const {
  rebuild::RebuildParams p;
  p.node_set_size = config_.node_set_size;
  p.redundancy_set_size = config_.redundancy_set_size;
  p.fault_tolerance = node_fault_tolerance;
  p.drives_per_node = config_.drives_per_node;
  p.drive = config_.drive;
  p.link = config_.link;
  p.rebuild_command = config_.rebuild_command;
  p.restripe_command = config_.restripe_command;
  p.capacity_utilization = config_.capacity_utilization;
  p.rebuild_bandwidth_fraction = config_.rebuild_bandwidth_fraction;
  return rebuild::RebuildPlanner(p);
}

double Analyzer::code_rate(const Configuration& configuration) const {
  const double r = config_.redundancy_set_size;
  const double t = configuration.node_fault_tolerance;
  const double d = config_.drives_per_node;
  const double m = internal_fault_tolerance(configuration.internal);
  NSREL_EXPECTS(r > t);
  NSREL_EXPECTS(d > m);
  return (r - t) / r * (d - m) / d;
}

Bytes Analyzer::logical_capacity(const Configuration& configuration) const {
  const double raw = static_cast<double>(config_.node_set_size) *
                     static_cast<double>(config_.drives_per_node) *
                     config_.drive.capacity.value();
  return Bytes(raw * config_.capacity_utilization * code_rate(configuration));
}

models::NoInternalRaidParams Analyzer::nir_params(
    const Configuration& configuration) const {
  NSREL_EXPECTS(configuration.internal == InternalScheme::kNone);
  const rebuild::RebuildRates rates =
      planner(configuration.node_fault_tolerance).rates();
  models::NoInternalRaidParams p;
  p.node_set_size = config_.node_set_size;
  p.redundancy_set_size = config_.redundancy_set_size;
  p.fault_tolerance = configuration.node_fault_tolerance;
  p.drives_per_node = config_.drives_per_node;
  p.node_failure = rate_of(config_.node_mttf);
  p.drive_failure = rate_of(config_.drive.mttf);
  p.node_rebuild = rates.node_rebuild_rate;
  p.drive_rebuild = rates.drive_rebuild_rate;
  p.capacity = config_.drive.capacity;
  p.her_per_byte = config_.drive.her_per_byte;
  return p;
}

models::InternalRaidParams Analyzer::ir_params(
    const Configuration& configuration) const {
  NSREL_EXPECTS(configuration.internal != InternalScheme::kNone);
  const rebuild::RebuildRates rates =
      planner(configuration.node_fault_tolerance).rates();
  raid::ArrayParams array;
  array.drives = config_.drives_per_node;
  array.drive_mttf = config_.drive.mttf;
  array.restripe_rate = rates.restripe_rate;
  array.capacity = config_.drive.capacity;
  array.her_per_byte = config_.drive.her_per_byte;
  const raid::GeneralArrayModel array_model(
      array, internal_fault_tolerance(configuration.internal));
  const raid::ArrayRates array_rates = array_model.rates();

  models::InternalRaidParams p;
  p.node_set_size = config_.node_set_size;
  p.redundancy_set_size = config_.redundancy_set_size;
  p.fault_tolerance = configuration.node_fault_tolerance;
  p.node_failure = rate_of(config_.node_mttf);
  p.node_rebuild = rates.node_rebuild_rate;
  p.array_failure = array_rates.array_failure;
  p.sector_error = array_rates.sector_error;
  return p;
}

Analyzer::BuiltChain Analyzer::build_chain(
    const Configuration& configuration) const {
  if (configuration.internal == InternalScheme::kNone) {
    return {models::NoInternalRaidModel(nir_params(configuration)).chain(),
            models::NoInternalRaidModel::root_state()};
  }
  return {models::InternalRaidNodeModel(ir_params(configuration)).chain(), 0};
}

sim::MttdlEstimate Analyzer::simulate_mttdl(
    const Configuration& configuration, int trials, std::uint64_t seed,
    const sim::ParallelOptions& options) const {
  if (configuration.internal == InternalScheme::kNone) {
    return sim::NirStorageSimulator(nir_params(configuration), seed)
        .estimate(trials, options);
  }
  return sim::IrStorageSimulator(ir_params(configuration), seed)
      .estimate(trials, options);
}

AnalysisResult Analyzer::analyze(const Configuration& configuration,
                                 Method method, SolveCache* cache,
                                 ctmc::SolverPolicy policy) const {
  NSREL_EXPECTS(configuration.node_fault_tolerance >= 1);
  NSREL_EXPECTS(configuration.node_fault_tolerance <
                config_.redundancy_set_size);
  return try_analyze(configuration, method, cache, policy).value_or_throw();
}

[[nodiscard]] Expected<AnalysisResult> Analyzer::try_analyze(
    const Configuration& configuration, Method method, SolveCache* cache,
    ctmc::SolverPolicy policy) const {
  if (configuration.node_fault_tolerance < 1 ||
      configuration.node_fault_tolerance >= config_.redundancy_set_size) {
    return Error{ErrorCode::kInvalidParameter, "core.analyzer",
                 "node fault tolerance must be >= 1 and below the "
                 "redundancy set size"};
  }
  if (configuration.internal == InternalScheme::kNone &&
      configuration.node_fault_tolerance > 16) {
    // Matches the NoInternalRaidModel cap: the chain has 2^(k+1) states,
    // and 16 is where even the sparse path stops being sensible. A typed
    // error, not a contract violation — the parameter came from user
    // input (a sweep axis), not from a caller bug.
    return Error{ErrorCode::kInvalidParameter, "core.analyzer",
                 "node fault tolerance above 16 is not supported without "
                 "internal RAID (the chain has 2^(k+1) states)"};
  }
  if (auto bad = check_positive_finite(config_.drive.mttf.value(),
                                       "drive MTTF")) {
    return *std::move(bad);
  }
  if (auto bad = check_positive_finite(config_.node_mttf.value(),
                                       "node MTTF")) {
    return *std::move(bad);
  }
  if (auto bad = check_positive_finite(config_.drive.capacity.value(),
                                       "drive capacity")) {
    return *std::move(bad);
  }
  if (!std::isfinite(config_.drive.her_per_byte) ||
      config_.drive.her_per_byte < 0.0) {
    return Error{ErrorCode::kInvalidParameter, "core.analyzer",
                 "hard-error rate must be finite and non-negative"};
  }

  AnalysisResult result;
  result.configuration = configuration;

  try {
    const rebuild::RebuildPlanner plan =
        planner(configuration.node_fault_tolerance);
    result.rebuild = plan.rates();

    Expected<double> mttdl_hours{0.0};
    if (configuration.internal == InternalScheme::kNone) {
      const models::NoInternalRaidParams p = nir_params(configuration);
      mttdl_hours =
          cached_solve(cache, ctmc::solver_policy_name(policy),
                       nir_solve_key(p, method, policy), [&] {
            const models::NoInternalRaidModel model(p);
            return method == Method::kExactChain
                       ? model.mttdl_exact(policy)
                       : model.mttdl_closed_form();
          });
    } else {
      const models::InternalRaidParams p = ir_params(configuration);
      result.array_failure_rate = p.array_failure;
      result.sector_error_rate = p.sector_error;
      mttdl_hours = cached_solve(cache, ctmc::solver_policy_name(policy),
                                 ir_solve_key(p, method, policy), [&] {
        const models::InternalRaidNodeModel model(p);
        return method == Method::kExactChain ? model.mttdl_exact(policy)
                                             : model.mttdl_closed_form();
      });
    }
    if (!mttdl_hours.has_value()) return mttdl_hours.error();
    result.mttdl = Hours(mttdl_hours.value());

    result.events_per_system_year = 1.0 / to_years(result.mttdl);
    result.logical_capacity = logical_capacity(configuration);
    const double petabytes_logical =
        result.logical_capacity.value() / petabytes(1.0).value();
    if (!std::isfinite(petabytes_logical) || petabytes_logical <= 0.0) {
      return Error{ErrorCode::kNonFiniteResult, "core.analyzer",
                   "logical capacity is non-finite or nonpositive"};
    }
    result.events_per_pb_year =
        result.events_per_system_year / petabytes_logical;
  } catch (const ErrorException& e) {
    return e.error();
  } catch (const ContractViolation& e) {
    return Error{ErrorCode::kContractViolation, "core.analyzer", e.what()};
  }

  if (!std::isfinite(result.mttdl.value()) || result.mttdl.value() <= 0.0 ||
      !std::isfinite(result.events_per_pb_year)) {
    return Error{ErrorCode::kNonFiniteResult, "core.analyzer",
                 "MTTDL or events per PB-year is non-finite or nonpositive"};
  }
  return result;
}

Hours Analyzer::mttdl(const Configuration& configuration,
                      Method method) const {
  return analyze(configuration, method).mttdl;
}

double Analyzer::events_per_pb_year(const Configuration& configuration,
                                    Method method) const {
  return analyze(configuration, method).events_per_pb_year;
}

}  // namespace nsrel::core
