#include "core/analyzer.hpp"

#include "raid/array_model.hpp"
#include "sim/storage_simulator.hpp"
#include "util/assert.hpp"

namespace nsrel::core {

Analyzer::Analyzer(SystemConfig config) : config_(std::move(config)) {
  config_.validate();
}

rebuild::RebuildPlanner Analyzer::planner(int node_fault_tolerance) const {
  rebuild::RebuildParams p;
  p.node_set_size = config_.node_set_size;
  p.redundancy_set_size = config_.redundancy_set_size;
  p.fault_tolerance = node_fault_tolerance;
  p.drives_per_node = config_.drives_per_node;
  p.drive = config_.drive;
  p.link = config_.link;
  p.rebuild_command = config_.rebuild_command;
  p.restripe_command = config_.restripe_command;
  p.capacity_utilization = config_.capacity_utilization;
  p.rebuild_bandwidth_fraction = config_.rebuild_bandwidth_fraction;
  return rebuild::RebuildPlanner(p);
}

double Analyzer::code_rate(const Configuration& configuration) const {
  const double r = config_.redundancy_set_size;
  const double t = configuration.node_fault_tolerance;
  const double d = config_.drives_per_node;
  const double m = internal_fault_tolerance(configuration.internal);
  NSREL_EXPECTS(r > t);
  NSREL_EXPECTS(d > m);
  return (r - t) / r * (d - m) / d;
}

Bytes Analyzer::logical_capacity(const Configuration& configuration) const {
  const double raw = static_cast<double>(config_.node_set_size) *
                     static_cast<double>(config_.drives_per_node) *
                     config_.drive.capacity.value();
  return Bytes(raw * config_.capacity_utilization * code_rate(configuration));
}

models::NoInternalRaidParams Analyzer::nir_params(
    const Configuration& configuration) const {
  NSREL_EXPECTS(configuration.internal == InternalScheme::kNone);
  const rebuild::RebuildRates rates =
      planner(configuration.node_fault_tolerance).rates();
  models::NoInternalRaidParams p;
  p.node_set_size = config_.node_set_size;
  p.redundancy_set_size = config_.redundancy_set_size;
  p.fault_tolerance = configuration.node_fault_tolerance;
  p.drives_per_node = config_.drives_per_node;
  p.node_failure = rate_of(config_.node_mttf);
  p.drive_failure = rate_of(config_.drive.mttf);
  p.node_rebuild = rates.node_rebuild_rate;
  p.drive_rebuild = rates.drive_rebuild_rate;
  p.capacity = config_.drive.capacity;
  p.her_per_byte = config_.drive.her_per_byte;
  return p;
}

models::InternalRaidParams Analyzer::ir_params(
    const Configuration& configuration) const {
  NSREL_EXPECTS(configuration.internal != InternalScheme::kNone);
  const rebuild::RebuildRates rates =
      planner(configuration.node_fault_tolerance).rates();
  raid::ArrayParams array;
  array.drives = config_.drives_per_node;
  array.drive_mttf = config_.drive.mttf;
  array.restripe_rate = rates.restripe_rate;
  array.capacity = config_.drive.capacity;
  array.her_per_byte = config_.drive.her_per_byte;
  const raid::GeneralArrayModel array_model(
      array, internal_fault_tolerance(configuration.internal));
  const raid::ArrayRates array_rates = array_model.rates();

  models::InternalRaidParams p;
  p.node_set_size = config_.node_set_size;
  p.redundancy_set_size = config_.redundancy_set_size;
  p.fault_tolerance = configuration.node_fault_tolerance;
  p.node_failure = rate_of(config_.node_mttf);
  p.node_rebuild = rates.node_rebuild_rate;
  p.array_failure = array_rates.array_failure;
  p.sector_error = array_rates.sector_error;
  return p;
}

Analyzer::BuiltChain Analyzer::build_chain(
    const Configuration& configuration) const {
  if (configuration.internal == InternalScheme::kNone) {
    return {models::NoInternalRaidModel(nir_params(configuration)).chain(),
            models::NoInternalRaidModel::root_state()};
  }
  return {models::InternalRaidNodeModel(ir_params(configuration)).chain(), 0};
}

sim::MttdlEstimate Analyzer::simulate_mttdl(
    const Configuration& configuration, int trials, std::uint64_t seed,
    const sim::ParallelOptions& options) const {
  if (configuration.internal == InternalScheme::kNone) {
    return sim::NirStorageSimulator(nir_params(configuration), seed)
        .estimate(trials, options);
  }
  return sim::IrStorageSimulator(ir_params(configuration), seed)
      .estimate(trials, options);
}

AnalysisResult Analyzer::analyze(const Configuration& configuration,
                                 Method method) const {
  NSREL_EXPECTS(configuration.node_fault_tolerance >= 1);
  NSREL_EXPECTS(configuration.node_fault_tolerance <
                config_.redundancy_set_size);

  AnalysisResult result;
  result.configuration = configuration;

  const rebuild::RebuildPlanner plan =
      planner(configuration.node_fault_tolerance);
  result.rebuild = plan.rates();

  if (configuration.internal == InternalScheme::kNone) {
    const models::NoInternalRaidModel model(nir_params(configuration));
    result.mttdl = method == Method::kExactChain ? model.mttdl_exact()
                                                 : model.mttdl_closed_form();
  } else {
    const models::InternalRaidParams p = ir_params(configuration);
    result.array_failure_rate = p.array_failure;
    result.sector_error_rate = p.sector_error;
    const models::InternalRaidNodeModel model(p);
    result.mttdl = method == Method::kExactChain ? model.mttdl_exact()
                                                 : model.mttdl_closed_form();
  }

  result.events_per_system_year = 1.0 / to_years(result.mttdl);
  result.logical_capacity = logical_capacity(configuration);
  const double petabytes_logical =
      result.logical_capacity.value() / petabytes(1.0).value();
  NSREL_ASSERT(petabytes_logical > 0.0);
  result.events_per_pb_year =
      result.events_per_system_year / petabytes_logical;
  return result;
}

Hours Analyzer::mttdl(const Configuration& configuration,
                      Method method) const {
  return analyze(configuration, method).mttdl;
}

double Analyzer::events_per_pb_year(const Configuration& configuration,
                                    Method method) const {
  return analyze(configuration, method).events_per_pb_year;
}

}  // namespace nsrel::core
