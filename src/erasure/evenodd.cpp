#include "erasure/evenodd.hpp"

#include <cstddef>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace nsrel::erasure {

namespace {

void xor_into(Shard& acc, const Shard& x, std::size_t acc_off,
              std::size_t x_off, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) acc[acc_off + i] ^= x[x_off + i];
}

}  // namespace

bool is_small_prime(int n) {
  if (n < 2) return false;
  for (int f = 2; f * f <= n; ++f) {
    if (n % f == 0) return false;
  }
  return true;
}

EvenOddCode::EvenOddCode(int prime) : p_(prime) {
  NSREL_EXPECTS(prime >= 3);
  NSREL_EXPECTS(is_small_prime(prime));
}

std::vector<Shard> EvenOddCode::encode(const std::vector<Shard>& data) const {
  NSREL_EXPECTS(static_cast<int>(data.size()) == p_);
  NSREL_EXPECTS(!data.front().empty());
  const std::size_t column_size = data.front().size();
  NSREL_EXPECTS(column_size % static_cast<std::size_t>(rows()) == 0);
  for (const Shard& column : data) NSREL_EXPECTS(column.size() == column_size);
  const std::size_t cell = column_size / static_cast<std::size_t>(rows());

  const auto p = static_cast<std::size_t>(p_);
  // Cell (i, j) lives at offset i*cell in column j; row p-1 is imaginary 0.
  Shard row_parity(column_size, 0);
  Shard diag_parity(column_size, 0);  // Q before the S adjustment
  Shard s(cell, 0);                   // the missing-diagonal XOR

  for (std::size_t j = 0; j < p; ++j) {
    for (std::size_t i = 0; i + 1 < p; ++i) {
      xor_into(row_parity, data[j], i * cell, i * cell, cell);
      const std::size_t d = (i + j) % p;
      if (d == p - 1) {
        xor_into(s, data[j], 0, i * cell, cell);
      } else {
        xor_into(diag_parity, data[j], d * cell, i * cell, cell);
      }
    }
  }
  // Q[d] = S ^ diag_d for every stored diagonal.
  for (std::size_t d = 0; d + 1 < p; ++d) {
    xor_into(diag_parity, s, d * cell, 0, cell);
  }
  return {std::move(row_parity), std::move(diag_parity)};
}

bool EvenOddCode::recoverable(const std::vector<bool>& present) const {
  NSREL_EXPECTS(static_cast<int>(present.size()) == total_columns());
  int missing = 0;
  for (const bool ok : present) {
    if (!ok) ++missing;
  }
  return missing <= 2;
}

std::vector<Shard> EvenOddCode::reconstruct(
    const std::vector<Shard>& columns, const std::vector<bool>& present) const {
  NSREL_EXPECTS(static_cast<int>(columns.size()) == total_columns());
  NSREL_EXPECTS(recoverable(present));

  const auto p = static_cast<std::size_t>(p_);
  // Determine the column size from any survivor.
  std::size_t column_size = 0;
  for (std::size_t j = 0; j < columns.size(); ++j) {
    if (present[j]) {
      column_size = columns[j].size();
      break;
    }
  }
  NSREL_EXPECTS(column_size > 0);
  NSREL_EXPECTS(column_size % static_cast<std::size_t>(rows()) == 0);
  const std::size_t cell = column_size / static_cast<std::size_t>(rows());

  std::vector<Shard> result = columns;
  std::vector<int> missing;
  for (int j = 0; j < total_columns(); ++j) {
    if (!present[static_cast<std::size_t>(j)]) {
      missing.push_back(j);
      result[static_cast<std::size_t>(j)].assign(column_size, 0);
    } else {
      NSREL_EXPECTS(columns[static_cast<std::size_t>(j)].size() == column_size);
    }
  }

  const int p_col = p_;      // row-parity column index
  const int q_col = p_ + 1;  // diagonal-parity column index

  const auto reencode_parity = [&] {
    const std::vector<Shard> data(result.begin(),
                                  result.begin() + static_cast<long>(p));
    auto parity = encode(data);
    result[static_cast<std::size_t>(p_col)] = std::move(parity[0]);
    result[static_cast<std::size_t>(q_col)] = std::move(parity[1]);
  };

  /// Rebuild one data column from row parity (P and all other data known).
  const auto rebuild_from_rows = [&](int col) {
    Shard& target = result[static_cast<std::size_t>(col)];
    target.assign(column_size, 0);
    for (std::size_t i = 0; i + 1 < p; ++i) {
      xor_into(target, result[static_cast<std::size_t>(p_col)], i * cell,
               i * cell, cell);
      for (std::size_t j = 0; j < p; ++j) {
        if (static_cast<int>(j) == col) continue;
        xor_into(target, result[j], i * cell, i * cell, cell);
      }
    }
  };

  /// Rebuild one data column from diagonal parity (Q and other data known).
  const auto rebuild_from_diagonals = [&](int col) {
    const auto jc = static_cast<std::size_t>(col);
    // Recover S from the diagonal that misses column `col`:
    // d* = (p-1 + col) mod p. If d* == p-1 that diagonal IS the
    // S-diagonal and S equals its surviving XOR; otherwise
    // S = Q[d*] ^ (surviving XOR on d*).
    const std::size_t d_star = (p - 1 + jc) % p;
    Shard s(cell, 0);
    if (d_star != p - 1) {
      xor_into(s, result[static_cast<std::size_t>(q_col)], 0, d_star * cell,
               cell);
    }
    for (std::size_t j = 0; j < p; ++j) {
      if (j == jc) continue;
      const std::size_t i = (d_star + p - j) % p;
      if (i == p - 1) continue;  // imaginary row
      xor_into(s, result[j], 0, i * cell, cell);
    }
    // Each other diagonal d contains exactly one cell of column `col` at
    // row (d - col) mod p: cell = diag_total ^ surviving, with
    // diag_total = (d == p-1 ? S : Q[d] ^ S).
    Shard& target = result[jc];
    target.assign(column_size, 0);
    for (std::size_t d = 0; d < p; ++d) {
      if (d == d_star) continue;
      const std::size_t row = (d + p - jc) % p;
      NSREL_ASSERT(row != p - 1);
      xor_into(target, s, row * cell, 0, cell);
      if (d != p - 1) {
        xor_into(target, result[static_cast<std::size_t>(q_col)], row * cell,
                 d * cell, cell);
      }
      for (std::size_t j = 0; j < p; ++j) {
        if (j == jc) continue;
        const std::size_t i = (d + p - j) % p;
        if (i == p - 1) continue;
        xor_into(target, result[j], row * cell, i * cell, cell);
      }
    }
  };

  /// The zig-zag chase for two missing data columns r < s.
  const auto rebuild_pair = [&](int r_col_i, int s_col_i) {
    const auto r = static_cast<std::size_t>(r_col_i);
    const auto sc = static_cast<std::size_t>(s_col_i);
    // S = XOR of all P cells and all Q cells.
    Shard s(cell, 0);
    for (std::size_t i = 0; i + 1 < p; ++i) {
      xor_into(s, result[static_cast<std::size_t>(p_col)], 0, i * cell, cell);
      xor_into(s, result[static_cast<std::size_t>(q_col)], 0, i * cell, cell);
    }
    // Row syndromes S0[u] = P[u] ^ surviving row XOR.
    Shard s0(column_size, 0);
    for (std::size_t u = 0; u + 1 < p; ++u) {
      xor_into(s0, result[static_cast<std::size_t>(p_col)], u * cell,
               u * cell, cell);
      for (std::size_t j = 0; j < p; ++j) {
        if (j == r || j == sc) continue;
        xor_into(s0, result[j], u * cell, u * cell, cell);
      }
    }
    // Diagonal syndromes S1[d] = diag_total ^ surviving, d in 0..p-1.
    Shard s1(p * cell, 0);
    for (std::size_t d = 0; d < p; ++d) {
      xor_into(s1, s, d * cell, 0, cell);
      if (d != p - 1) {
        xor_into(s1, result[static_cast<std::size_t>(q_col)], d * cell,
                 d * cell, cell);
      }
      for (std::size_t j = 0; j < p; ++j) {
        if (j == r || j == sc) continue;
        const std::size_t i = (d + p - j) % p;
        if (i == p - 1) continue;
        xor_into(s1, result[j], d * cell, i * cell, cell);
      }
    }
    // Chase: start at the row of column s whose diagonal partner in
    // column r is the imaginary row, then alternate diagonal/row steps.
    Shard& col_r = result[r];
    Shard& col_s = result[sc];
    col_r.assign(column_size, 0);
    col_s.assign(column_size, 0);
    const std::size_t gap = sc - r;
    std::size_t row = (p - 1 + p - gap) % p;
    while (row != p - 1) {
      const std::size_t d = (row + sc) % p;
      const std::size_t partner = (row + gap) % p;  // row of col r on d
      // col_s[row] = S1[d] ^ col_r[partner] (zero when partner imaginary).
      xor_into(col_s, s1, row * cell, d * cell, cell);
      if (partner != p - 1) {
        xor_into(col_s, col_r, row * cell, partner * cell, cell);
      }
      // col_r[row] = S0[row] ^ col_s[row].
      xor_into(col_r, s0, row * cell, row * cell, cell);
      xor_into(col_r, col_s, row * cell, row * cell, cell);
      row = (row + p - gap) % p;
    }
  };

  const bool p_missing = !present[static_cast<std::size_t>(p_col)];
  const bool q_missing = !present[static_cast<std::size_t>(q_col)];
  std::vector<int> missing_data;
  for (const int j : missing) {
    if (j < p_col) missing_data.push_back(j);
  }

  if (missing_data.size() == 2) {
    rebuild_pair(missing_data[0], missing_data[1]);
  } else if (missing_data.size() == 1) {
    if (p_missing) {
      rebuild_from_diagonals(missing_data[0]);
    } else {
      rebuild_from_rows(missing_data[0]);
    }
  }
  if (p_missing || q_missing) reencode_parity();
  return result;
}

}  // namespace nsrel::erasure
