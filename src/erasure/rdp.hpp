// RDP — Row-Diagonal Parity (Corbett et al., FAST 2004): the second
// canonical XOR-only double-erasure code, used by production RAID-6
// implementations contemporary with the paper.
//
// Layout for prime p: a (p-1) x (p+1) array of data+P columns plus a Q
// column. Columns 0..p-2 hold data, column p-1 holds row parity P, and Q
// holds diagonal parity. Unlike EVENODD, RDP's diagonals RUN THROUGH the
// row-parity column: diagonal d = (i + j) mod p over columns j = 0..p-1,
// with the "missing" diagonal p-1 never stored. Each stored diagonal
// misses exactly one column, which is what makes the recovery chains
// terminate.
//
// Reconstruction here is by constraint propagation: rows (including P)
// and stored diagonals (including their Q cell) are XOR constraints;
// repeatedly solve any constraint with exactly one unknown cell. For any
// <= 2 missing columns this reaches a fixpoint with everything solved
// (RDP is MDS for two erasures) — and the implementation asserts it.
#pragma once

#include <vector>

#include "erasure/reed_solomon.hpp"  // Shard alias

namespace nsrel::erasure {

class RdpCode {
 public:
  /// Code over a prime p >= 3: p-1 data columns + P + Q.
  explicit RdpCode(int prime);

  [[nodiscard]] int prime() const { return p_; }
  [[nodiscard]] int data_columns() const { return p_ - 1; }
  [[nodiscard]] int total_columns() const { return p_ + 1; }
  [[nodiscard]] int rows() const { return p_ - 1; }

  /// Computes {P, Q} for p-1 data columns of equal size divisible by p-1.
  [[nodiscard]] std::vector<Shard> encode(
      const std::vector<Shard>& data) const;

  [[nodiscard]] bool recoverable(const std::vector<bool>& present) const;

  /// Reconstructs all p+1 columns from any <= 2 erasures.
  [[nodiscard]] std::vector<Shard> reconstruct(
      const std::vector<Shard>& columns, const std::vector<bool>& present) const;

 private:
  int p_;
};

}  // namespace nsrel::erasure
