// Systematic Reed-Solomon erasure code over GF(256).
//
// A redundancy set of size R with fault tolerance t stores k = R - t data
// shards plus t parity shards computed from a Cauchy matrix (an MDS
// construction: every square submatrix of a Cauchy matrix is invertible,
// so ANY t erasures are recoverable). This is the concrete code behind the
// paper's "erasure codes that tolerate 1, 2 and 3 node failures"; t = 1
// degenerates to parity (RAID-5-like across nodes).
#pragma once

#include <cstdint>
#include <vector>

#include "erasure/gf256.hpp"

namespace nsrel::erasure {

using Shard = std::vector<std::uint8_t>;

class ReedSolomonCode {
 public:
  /// Code with `data_shards` data and `parity_shards` parity shards.
  /// Preconditions: data_shards >= 1, parity_shards >= 1,
  /// data_shards + parity_shards <= 256.
  ReedSolomonCode(int data_shards, int parity_shards);

  [[nodiscard]] int data_shards() const { return data_shards_; }
  [[nodiscard]] int parity_shards() const { return parity_shards_; }
  [[nodiscard]] int total_shards() const {
    return data_shards_ + parity_shards_;
  }

  /// Computes the parity shards for the given data shards. All data shards
  /// must have equal size; returns parity_shards() shards of that size.
  [[nodiscard]] std::vector<Shard> encode(
      const std::vector<Shard>& data) const;

  /// Reconstructs ALL shards (data + parity, in index order) from any
  /// subset of at least data_shards() survivors.
  /// `present[i]` says whether shards[i] is available; shards[i] is ignored
  /// when absent. Precondition: count(present) >= data_shards(), sizes of
  /// present shards equal.
  [[nodiscard]] std::vector<Shard> reconstruct(
      const std::vector<Shard>& shards, const std::vector<bool>& present) const;

  /// True when the given erasure pattern is recoverable (i.e. at most
  /// parity_shards() shards missing).
  [[nodiscard]] bool recoverable(const std::vector<bool>& present) const;

  /// The full (R x k) generator matrix: identity on top, Cauchy parity
  /// rows below. Exposed for tests of the MDS property.
  [[nodiscard]] std::vector<std::vector<GF256::Element>> generator() const;

 private:
  int data_shards_;
  int parity_shards_;
  std::vector<std::vector<GF256::Element>> parity_rows_;  // t x k Cauchy
};

/// Gauss-Jordan inversion over GF(256). Returns empty when singular.
[[nodiscard]] std::vector<std::vector<GF256::Element>> gf_invert(
    std::vector<std::vector<GF256::Element>> m);

}  // namespace nsrel::erasure
