#include "erasure/gf256.hpp"

#include "util/assert.hpp"

namespace nsrel::erasure {

GF256::Tables::Tables() {
  // Generator 0x03 is primitive for 0x11B; fill exp/log by repeated
  // multiplication by 3 (= x + 1): t*3 = t ^ (t<<1) with reduction.
  unsigned value = 1;
  for (unsigned i = 0; i < 255; ++i) {
    exp[i] = static_cast<Element>(value);
    log[value] = i;
    const unsigned doubled = value << 1;
    value = (doubled ^ value) & 0x1FF;     // multiply by 3 before reduction
    if (value & 0x100) value ^= 0x11B;
  }
  // Duplicate the table so mul can skip the mod-255 of summed logs.
  for (unsigned i = 255; i < 512; ++i) exp[i] = exp[i - 255];
  log[0] = 0;  // never read; defensive zero
}

const GF256::Tables& GF256::tables() {
  static const Tables instance;
  return instance;
}

GF256::Element GF256::mul(Element a, Element b) {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  return t.exp[t.log[a] + t.log[b]];
}

GF256::Element GF256::div(Element a, Element b) {
  NSREL_EXPECTS(b != 0);
  if (a == 0) return 0;
  const Tables& t = tables();
  return t.exp[t.log[a] + 255 - t.log[b]];
}

GF256::Element GF256::inv(Element a) {
  NSREL_EXPECTS(a != 0);
  const Tables& t = tables();
  return t.exp[255 - t.log[a]];
}

GF256::Element GF256::pow(Element a, unsigned power) {
  if (power == 0) return 1;
  if (a == 0) return 0;
  const Tables& t = tables();
  return t.exp[(t.log[a] * power) % 255];
}

GF256::Element GF256::exp(unsigned power) { return tables().exp[power % 255]; }

unsigned GF256::log(Element a) {
  NSREL_EXPECTS(a != 0);
  return tables().log[a];
}

}  // namespace nsrel::erasure
