// GF(2^8) arithmetic over the AES polynomial x^8+x^4+x^3+x+1 (0x11B),
// implemented with log/antilog tables built at static initialization.
//
// This is the substrate for the Reed-Solomon erasure code that realizes
// the paper's "fault tolerance t across nodes" concretely: the paper
// assumes such a code exists ([2], [3]); a deployable system needs one.
#pragma once

#include <array>
#include <cstdint>

namespace nsrel::erasure {

class GF256 {
 public:
  using Element = std::uint8_t;

  [[nodiscard]] static Element add(Element a, Element b) {
    return a ^ b;  // characteristic 2: addition is XOR
  }
  [[nodiscard]] static Element sub(Element a, Element b) { return a ^ b; }

  [[nodiscard]] static Element mul(Element a, Element b);

  /// Division a / b. Precondition: b != 0.
  [[nodiscard]] static Element div(Element a, Element b);

  /// Multiplicative inverse. Precondition: a != 0.
  [[nodiscard]] static Element inv(Element a);

  /// a^power with a^0 = 1 (including 0^0 = 1 by convention).
  [[nodiscard]] static Element pow(Element a, unsigned power);

  /// The field generator (0x03 for this polynomial) raised to `power`.
  [[nodiscard]] static Element exp(unsigned power);

  /// Discrete log base the generator. Precondition: a != 0.
  [[nodiscard]] static unsigned log(Element a);

 private:
  struct Tables {
    std::array<Element, 512> exp{};
    std::array<unsigned, 256> log{};
    Tables();
  };
  static const Tables& tables();
};

}  // namespace nsrel::erasure
