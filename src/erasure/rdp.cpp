#include "erasure/rdp.hpp"

#include <cstddef>
#include <utility>
#include <vector>

#include "erasure/evenodd.hpp"  // is_small_prime
#include "util/assert.hpp"

namespace nsrel::erasure {

namespace {
void xor_into(Shard& acc, const Shard& x, std::size_t acc_off,
              std::size_t x_off, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) acc[acc_off + i] ^= x[x_off + i];
}
}  // namespace

RdpCode::RdpCode(int prime) : p_(prime) {
  NSREL_EXPECTS(prime >= 3);
  NSREL_EXPECTS(is_small_prime(prime));
}

std::vector<Shard> RdpCode::encode(const std::vector<Shard>& data) const {
  NSREL_EXPECTS(static_cast<int>(data.size()) == data_columns());
  NSREL_EXPECTS(!data.front().empty());
  const std::size_t column_size = data.front().size();
  NSREL_EXPECTS(column_size % static_cast<std::size_t>(rows()) == 0);
  for (const Shard& column : data) NSREL_EXPECTS(column.size() == column_size);
  const std::size_t cell = column_size / static_cast<std::size_t>(rows());
  const auto p = static_cast<std::size_t>(p_);

  // P[i] = XOR of the data row.
  Shard row_parity(column_size, 0);
  for (std::size_t j = 0; j + 1 < p; ++j) {
    for (std::size_t i = 0; i + 1 < p; ++i) {
      xor_into(row_parity, data[j], i * cell, i * cell, cell);
    }
  }
  // Q[d] = XOR over cells with (i + j) mod p == d, columns 0..p-1
  // (data AND row parity), for the stored diagonals d = 0..p-2.
  Shard diag_parity(column_size, 0);
  for (std::size_t j = 0; j < p; ++j) {
    const Shard& column = (j + 1 < p) ? data[j] : row_parity;
    for (std::size_t i = 0; i + 1 < p; ++i) {
      const std::size_t d = (i + j) % p;
      if (d == p - 1) continue;  // the missing diagonal is not stored
      xor_into(diag_parity, column, d * cell, i * cell, cell);
    }
  }
  return {std::move(row_parity), std::move(diag_parity)};
}

bool RdpCode::recoverable(const std::vector<bool>& present) const {
  NSREL_EXPECTS(static_cast<int>(present.size()) == total_columns());
  int missing = 0;
  for (const bool ok : present) {
    if (!ok) ++missing;
  }
  return missing <= 2;
}

std::vector<Shard> RdpCode::reconstruct(
    const std::vector<Shard>& columns, const std::vector<bool>& present) const {
  NSREL_EXPECTS(static_cast<int>(columns.size()) == total_columns());
  NSREL_EXPECTS(recoverable(present));
  const auto p = static_cast<std::size_t>(p_);

  std::size_t column_size = 0;
  for (std::size_t j = 0; j < columns.size(); ++j) {
    if (present[j]) {
      column_size = columns[j].size();
      break;
    }
  }
  NSREL_EXPECTS(column_size > 0);
  NSREL_EXPECTS(column_size % static_cast<std::size_t>(rows()) == 0);
  const std::size_t cell = column_size / static_cast<std::size_t>(rows());

  std::vector<Shard> result = columns;
  // unknown[j][i]: cell (i, j) still unsolved. Q's "rows" are diagonals.
  std::vector<std::vector<bool>> unknown(
      p + 1, std::vector<bool>(static_cast<std::size_t>(rows()), false));
  for (std::size_t j = 0; j < p + 1; ++j) {
    if (!present[j]) {
      result[j].assign(column_size, 0);
      unknown[j].assign(static_cast<std::size_t>(rows()), true);
    } else {
      NSREL_EXPECTS(columns[j].size() == column_size);
    }
  }

  // Constraint propagation: rows (columns 0..p-1), then stored diagonals
  // (columns 0..p-1 plus the Q cell), until fixpoint.
  const std::size_t q_col = p;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    // Row constraints: XOR of cells (i, 0..p-1) == 0.
    for (std::size_t i = 0; i + 1 < p; ++i) {
      std::size_t unknowns = 0;
      std::size_t target = 0;
      for (std::size_t j = 0; j < p; ++j) {
        if (unknown[j][i]) {
          ++unknowns;
          target = j;
        }
      }
      if (unknowns != 1) continue;
      Shard& cell_owner = result[target];
      for (std::size_t off = 0; off < cell; ++off) {
        cell_owner[i * cell + off] = 0;
      }
      for (std::size_t j = 0; j < p; ++j) {
        if (j == target) continue;
        xor_into(cell_owner, result[j], i * cell, i * cell, cell);
      }
      unknown[target][i] = false;
      progressed = true;
    }
    // Diagonal constraints: for stored d, XOR of member cells and Q[d]==0.
    for (std::size_t d = 0; d + 1 < p; ++d) {
      std::size_t unknowns = 0;
      std::size_t target_col = 0;
      std::size_t target_row = 0;
      const auto visit = [&](std::size_t j, std::size_t i) {
        if (unknown[j][i]) {
          ++unknowns;
          target_col = j;
          target_row = i;
        }
      };
      for (std::size_t j = 0; j < p; ++j) {
        const std::size_t i = (d + p - j) % p;
        if (i + 1 < p) visit(j, i);
      }
      visit(q_col, d);
      if (unknowns != 1) continue;
      Shard& owner = result[target_col];
      for (std::size_t off = 0; off < cell; ++off) {
        owner[target_row * cell + off] = 0;
      }
      for (std::size_t j = 0; j < p; ++j) {
        const std::size_t i = (d + p - j) % p;
        if (i + 1 >= p || (j == target_col && i == target_row)) continue;
        xor_into(owner, result[j], target_row * cell, i * cell, cell);
      }
      if (q_col != target_col) {
        xor_into(owner, result[q_col], target_row * cell, d * cell, cell);
      } else {
        NSREL_ASSERT(target_row == d);
      }
      unknown[target_col][target_row] = false;
      progressed = true;
    }
  }
  // MDS for <= 2 erasures: the fixpoint must have solved everything.
  for (const auto& column : unknown) {
    for (const bool still_unknown : column) NSREL_ASSERT(!still_unknown);
  }
  return result;
}

}  // namespace nsrel::erasure
