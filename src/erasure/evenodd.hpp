// EVENODD: the classic XOR-only double-erasure code (Blaum, Brady, Bruck,
// Menon 1995) — the kind of code the paper's era used for RAID 6 inside a
// node, where GF(256) multiply tables were considered too expensive for
// controller hardware.
//
// Layout: a (p-1) x (p+2) array for prime p. Columns 0..p-1 hold data,
// column p holds row parity (P) and column p+1 holds diagonal parity (Q).
// With the imaginary all-zero row p-1, Q[d] = S ^ (XOR of cells on
// diagonal (row + col) mod p == d), where S is the XOR of the "missing"
// diagonal d = p-1. Any TWO column erasures are recoverable with XOR
// alone; the two-data-column case uses the zig-zag chase along diagonals
// starting from the imaginary row.
//
// Each column is a flat byte buffer of (p-1) equal-size cells.
#pragma once

#include <vector>

#include "erasure/reed_solomon.hpp"  // for the Shard alias

namespace nsrel::erasure {

class EvenOddCode {
 public:
  /// Code over a prime p >= 3: p data columns + P + Q.
  /// Throws if p is not prime or < 3.
  explicit EvenOddCode(int prime);

  [[nodiscard]] int prime() const { return p_; }
  [[nodiscard]] int data_columns() const { return p_; }
  [[nodiscard]] int total_columns() const { return p_ + 2; }

  /// Cells per column (= p-1).
  [[nodiscard]] int rows() const { return p_ - 1; }

  /// Computes {P, Q} for p data columns of equal size divisible by p-1.
  [[nodiscard]] std::vector<Shard> encode(
      const std::vector<Shard>& data) const;

  /// True when at most 2 of the p+2 columns are missing.
  [[nodiscard]] bool recoverable(const std::vector<bool>& present) const;

  /// Reconstructs all p+2 columns from any >= p surviving ones.
  /// columns[i] is ignored when !present[i]. Handles every erasure case:
  /// {}, {any 1}, {data,data}, {data,P}, {data,Q}, {P,Q}.
  [[nodiscard]] std::vector<Shard> reconstruct(
      const std::vector<Shard>& columns, const std::vector<bool>& present) const;

 private:
  int p_;
};

/// Primality test for small n (used by the constructor and tests).
[[nodiscard]] bool is_small_prime(int n);

}  // namespace nsrel::erasure
