#include "erasure/reed_solomon.hpp"

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace nsrel::erasure {

namespace {
using Element = GF256::Element;
using GfMatrix = std::vector<std::vector<Element>>;

/// y = y + scalar * x over GF(256), vectorized over shard bytes.
void axpy(Shard& y, Element scalar, const Shard& x) {
  NSREL_ASSERT(y.size() == x.size());
  if (scalar == 0) return;
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = GF256::add(y[i], GF256::mul(scalar, x[i]));
  }
}
}  // namespace

ReedSolomonCode::ReedSolomonCode(int data_shards, int parity_shards)
    : data_shards_(data_shards), parity_shards_(parity_shards) {
  NSREL_EXPECTS(data_shards_ >= 1);
  NSREL_EXPECTS(parity_shards_ >= 1);
  NSREL_EXPECTS(data_shards_ + parity_shards_ <= 256);
  // Cauchy matrix c[i][j] = 1 / (x_i + y_j) with x_i = i + k, y_j = j
  // (distinct by construction since i + k >= k > j).
  parity_rows_.resize(static_cast<std::size_t>(parity_shards_));
  for (int i = 0; i < parity_shards_; ++i) {
    auto& row = parity_rows_[static_cast<std::size_t>(i)];
    row.resize(static_cast<std::size_t>(data_shards_));
    for (int j = 0; j < data_shards_; ++j) {
      const Element x = static_cast<Element>(i + data_shards_);
      const Element y = static_cast<Element>(j);
      row[static_cast<std::size_t>(j)] = GF256::inv(GF256::add(x, y));
    }
  }
}

std::vector<Shard> ReedSolomonCode::encode(
    const std::vector<Shard>& data) const {
  NSREL_EXPECTS(static_cast<int>(data.size()) == data_shards_);
  NSREL_EXPECTS(!data.empty());
  const std::size_t shard_size = data.front().size();
  for (const Shard& shard : data) NSREL_EXPECTS(shard.size() == shard_size);

  std::vector<Shard> parity(static_cast<std::size_t>(parity_shards_),
                            Shard(shard_size, 0));
  for (int i = 0; i < parity_shards_; ++i) {
    for (int j = 0; j < data_shards_; ++j) {
      axpy(parity[static_cast<std::size_t>(i)],
           parity_rows_[static_cast<std::size_t>(i)]
                       [static_cast<std::size_t>(j)],
           data[static_cast<std::size_t>(j)]);
    }
  }
  return parity;
}

bool ReedSolomonCode::recoverable(const std::vector<bool>& present) const {
  NSREL_EXPECTS(static_cast<int>(present.size()) == total_shards());
  const auto available = std::count(present.begin(), present.end(), true);
  return available >= data_shards_;
}

GfMatrix ReedSolomonCode::generator() const {
  GfMatrix g(static_cast<std::size_t>(total_shards()),
             std::vector<Element>(static_cast<std::size_t>(data_shards_), 0));
  for (int i = 0; i < data_shards_; ++i) {
    g[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 1;
  }
  for (int i = 0; i < parity_shards_; ++i) {
    g[static_cast<std::size_t>(data_shards_ + i)] =
        parity_rows_[static_cast<std::size_t>(i)];
  }
  return g;
}

std::vector<Shard> ReedSolomonCode::reconstruct(
    const std::vector<Shard>& shards, const std::vector<bool>& present) const {
  NSREL_EXPECTS(static_cast<int>(shards.size()) == total_shards());
  NSREL_EXPECTS(recoverable(present));

  // Pick the first k available shards and the matching generator rows.
  std::vector<int> chosen;
  for (int i = 0; i < total_shards() && static_cast<int>(chosen.size()) <
                                            data_shards_; ++i) {
    if (present[static_cast<std::size_t>(i)]) chosen.push_back(i);
  }
  const GfMatrix g = generator();
  GfMatrix sub(static_cast<std::size_t>(data_shards_));
  for (int row = 0; row < data_shards_; ++row) {
    sub[static_cast<std::size_t>(row)] =
        g[static_cast<std::size_t>(chosen[static_cast<std::size_t>(row)])];
  }
  const GfMatrix inverse = gf_invert(std::move(sub));
  NSREL_ASSERT(!inverse.empty());  // MDS: every square submatrix invertible

  const std::size_t shard_size =
      shards[static_cast<std::size_t>(chosen.front())].size();
  for (const int idx : chosen) {
    NSREL_EXPECTS(shards[static_cast<std::size_t>(idx)].size() == shard_size);
  }

  // data = inverse * survivors.
  std::vector<Shard> data(static_cast<std::size_t>(data_shards_),
                          Shard(shard_size, 0));
  for (int i = 0; i < data_shards_; ++i) {
    for (int j = 0; j < data_shards_; ++j) {
      axpy(data[static_cast<std::size_t>(i)],
           inverse[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
           shards[static_cast<std::size_t>(chosen[static_cast<std::size_t>(j)])]);
    }
  }

  // Re-encode parity and assemble the full shard list.
  std::vector<Shard> result = data;
  std::vector<Shard> parity = encode(data);
  result.insert(result.end(), std::make_move_iterator(parity.begin()),
                std::make_move_iterator(parity.end()));
  return result;
}

GfMatrix gf_invert(GfMatrix m) {
  const std::size_t n = m.size();
  for (const auto& row : m) NSREL_EXPECTS(row.size() == n);

  GfMatrix inverse(n, std::vector<Element>(n, 0));
  for (std::size_t i = 0; i < n; ++i) inverse[i][i] = 1;

  for (std::size_t col = 0; col < n; ++col) {
    // Find a pivot (any nonzero entry works in a field).
    std::size_t pivot = col;
    while (pivot < n && m[pivot][col] == 0) ++pivot;
    if (pivot == n) return {};  // singular
    std::swap(m[pivot], m[col]);
    std::swap(inverse[pivot], inverse[col]);

    const Element inv_pivot = GF256::inv(m[col][col]);
    for (std::size_t j = 0; j < n; ++j) {
      m[col][j] = GF256::mul(m[col][j], inv_pivot);
      inverse[col][j] = GF256::mul(inverse[col][j], inv_pivot);
    }
    for (std::size_t row = 0; row < n; ++row) {
      if (row == col || m[row][col] == 0) continue;
      const Element factor = m[row][col];
      for (std::size_t j = 0; j < n; ++j) {
        m[row][j] = GF256::sub(m[row][j], GF256::mul(factor, m[col][j]));
        inverse[row][j] =
            GF256::sub(inverse[row][j], GF256::mul(factor, inverse[col][j]));
      }
    }
  }
  return inverse;
}

}  // namespace nsrel::erasure
