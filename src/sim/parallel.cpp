#include "sim/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <optional>
#include <vector>

#include "obs/event_names.hpp"
#include "obs/journal.hpp"
#include "obs/probe_names.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace nsrel::sim {

namespace {

/// Samples one whole chunk into a fresh accumulator. Depends only on
/// (seed, chunk index, chunk trial count) — never on the calling thread.
/// `scope_base` is the journal scope of the run_trials *caller*, passed
/// explicitly because thread-local scope does not cross into pool
/// workers; chunk c journals at scope_base + c + 1, a pure function of
/// the chunk layout.
MomentAccumulator sample_chunk(const TrialSampler& sample_one,
                               std::uint64_t seed, std::uint64_t chunk,
                               int chunk_trials, std::uint64_t scope_base) {
  const obs::ScopeGuard journal_scope(scope_base + chunk + 1);
  obs::Span span(obs::probe::kSpanChunk, obs::probe::kSpanCategorySim);
  if (span.armed()) {
    span.arg("stream", chunk);
    span.arg("trials", static_cast<std::uint64_t>(chunk_trials));
  }
  Xoshiro256 rng(stream_seed(seed, chunk));
  MomentAccumulator acc;
  for (int i = 0; i < chunk_trials; ++i) acc.add(sample_one(rng));
  if (obs::Journal::enabled()) {
    obs::Journal::instance().record(
        obs::seq_event(obs::event::kSimChunk)
            .arg("stream", chunk)
            .arg("trials", static_cast<std::uint64_t>(chunk_trials)));
  }
  return acc;
}

/// Fills accumulators[first..first+count) — one slot per chunk — using
/// the pool (or inline when it is null). Workers claim chunk indices
/// from an atomic counter and write disjoint slots, so the contents of
/// `accumulators` are schedule-independent.
void run_wave(const TrialSampler& sample_one, std::uint64_t seed,
              std::size_t first, std::size_t count, int chunk_trials,
              std::vector<MomentAccumulator>& accumulators,
              ThreadPool* pool, obs::ProgressMeter* progress,
              std::uint64_t scope_base) {
  if (pool == nullptr || count == 1) {
    for (std::size_t c = first; c < first + count; ++c) {
      accumulators[c] =
          sample_chunk(sample_one, seed, c, chunk_trials, scope_base);
      if (progress != nullptr) progress->step();
    }
    return;
  }
  std::atomic<std::size_t> next{first};
  const std::size_t limit = first + count;
  const auto worker = [&] {
    for (;;) {
      const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= limit) return;
      accumulators[c] =
          sample_chunk(sample_one, seed, c, chunk_trials, scope_base);
      if (progress != nullptr) progress->step();
    }
  };
  const std::size_t lanes =
      std::min<std::size_t>(static_cast<std::size_t>(pool->thread_count()),
                            count);
  std::vector<std::future<void>> done;
  done.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) done.push_back(pool->submit(worker));
  for (auto& f : done) f.get();
}

}  // namespace

MttdlEstimate run_trials(const TrialSampler& sample_one, int trials,
                         std::uint64_t seed, const ParallelOptions& options) {
  NSREL_EXPECTS(trials >= 2);
  NSREL_EXPECTS(options.chunk_trials >= 1);
  NSREL_EXPECTS(options.jobs >= 0);
  NSREL_EXPECTS(options.ci_target >= 0.0);

  const int jobs =
      options.jobs == 0 ? ThreadPool::hardware_threads() : options.jobs;
  const bool adaptive = options.ci_target > 0.0;
  NSREL_EXPECTS(!adaptive || options.max_trials >= trials);

  const int chunk = options.chunk_trials;
  // In fixed mode the last chunk is ragged so exactly `trials` run; in
  // adaptive mode every chunk is full so later waves extend the same
  // stream layout (chunk c's contents are identical either way up to
  // the ragged tail, which adaptive mode never produces).
  const std::size_t wave_chunks =
      (static_cast<std::size_t>(trials) + static_cast<std::size_t>(chunk) - 1) /
      static_cast<std::size_t>(chunk);
  const std::size_t max_chunks =
      adaptive ? (static_cast<std::size_t>(options.max_trials) +
                  static_cast<std::size_t>(chunk) - 1) /
                     static_cast<std::size_t>(chunk)
               : wave_chunks;

  // Captured on the calling thread and passed explicitly into every
  // chunk: pool workers have no thread-local scope of their own.
  const std::uint64_t scope_base = obs::current_scope();

  std::vector<MomentAccumulator> accumulators;
  MttdlEstimate estimate;
  {
    std::optional<ThreadPool> pool_storage;
    if (jobs > 1) pool_storage.emplace(jobs);
    ThreadPool* pool = pool_storage ? &*pool_storage : nullptr;

    std::size_t chunks_done = 0;
    for (;;) {
      std::size_t count = std::min(wave_chunks, max_chunks - chunks_done);
      NSREL_ASSERT(count > 0);
      accumulators.resize(chunks_done + count);
      if (!adaptive) {
        // Ragged tail: all chunks full except possibly the last.
        for (std::size_t c = chunks_done; c < chunks_done + count; ++c) {
          const std::size_t begin = c * static_cast<std::size_t>(chunk);
          const int size = static_cast<int>(
              std::min<std::size_t>(static_cast<std::size_t>(chunk),
                                    static_cast<std::size_t>(trials) - begin));
          if (size == chunk) continue;
          // Run the ragged chunk inline (it is unique and tiny).
          accumulators[c] = sample_chunk(sample_one, seed, c, size, scope_base);
          if (options.progress != nullptr) options.progress->step();
        }
        const std::size_t full =
            static_cast<std::size_t>(trials) %
                        static_cast<std::size_t>(chunk) ==
                    0
                ? count
                : count - 1;
        if (full > 0) {
          run_wave(sample_one, seed, chunks_done, full, chunk, accumulators,
                   pool, options.progress, scope_base);
        }
      } else {
        run_wave(sample_one, seed, chunks_done, count, chunk, accumulators,
                 pool, options.progress, scope_base);
      }
      chunks_done += count;

      estimate = make_estimate(merge_pairwise(accumulators));
      if (!adaptive) break;
      if (estimate.relative_half_width() <= options.ci_target) break;
      if (chunks_done >= max_chunks) break;
    }
  }
  // Join point: the pool (if any) is destroyed, its workers' journal
  // rings retired; flush this thread's chunks too.
  if (obs::Journal::enabled()) obs::Journal::instance().drain();
  return estimate;
}

}  // namespace nsrel::sim
