// Monte-Carlo estimate of a mean with a normal-approximation confidence
// interval, shared by the chain and storage simulators.
#pragma once

namespace nsrel::sim {

struct MttdlEstimate {
  double mean_hours = 0.0;
  double stddev_hours = 0.0;
  double stderr_hours = 0.0;
  double ci95_low_hours = 0.0;
  double ci95_high_hours = 0.0;
  int trials = 0;

  /// True when `value` lies inside the 95% confidence interval.
  [[nodiscard]] bool covers(double value) const {
    return value >= ci95_low_hours && value <= ci95_high_hours;
  }
};

/// Builds the estimate from accumulated first/second moments.
[[nodiscard]] MttdlEstimate make_estimate(double sum, double sum_squares,
                                          int trials);

}  // namespace nsrel::sim
