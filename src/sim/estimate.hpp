// Monte-Carlo estimate of a mean with a normal-approximation confidence
// interval, shared by the chain and storage simulators, plus the
// streaming moment accumulator the parallel engine merges across chunks.
#pragma once

#include <cstdint>
#include <vector>

namespace nsrel::sim {

struct MttdlEstimate {
  double mean_hours = 0.0;
  double stddev_hours = 0.0;
  double stderr_hours = 0.0;
  double ci95_low_hours = 0.0;
  double ci95_high_hours = 0.0;
  int trials = 0;

  /// True when `value` lies inside the 95% confidence interval.
  [[nodiscard]] bool covers(double value) const {
    return value >= ci95_low_hours && value <= ci95_high_hours;
  }

  /// Half-width of the 95% CI relative to the mean (the adaptive
  /// stopping criterion). Infinity until the mean is positive.
  [[nodiscard]] double relative_half_width() const;
};

/// A Monte-Carlo grid cell: the merged estimate plus the RNG seed that
/// produced it. This is what `nsrel simulate` sweeps store per cell when
/// they route through engine::evaluate — the analytic cells' counterpart
/// to core::AnalysisResult. The seed is part of the value because a sim
/// cell's identity is (model, trials, chunk, seed): rendering it lets a
/// reader reproduce any one cell without re-deriving the engine's
/// per-cell stream assignment.
struct SimEstimate {
  MttdlEstimate estimate;
  std::uint64_t seed = 0;
};

/// Streaming first/second central moments (Welford's algorithm), with
/// Chan et al.'s pairwise combine so per-chunk accumulators computed on
/// different threads merge into exactly the same result regardless of
/// which thread produced which chunk. The default-constructed value is
/// the identity for `merge`.
struct MomentAccumulator {
  long long count = 0;
  double mean = 0.0;
  double m2 = 0.0;  ///< sum of squared deviations from the running mean

  /// Folds one observation in (Welford update).
  void add(double value);

  /// Chan/Welford parallel combine; exact identity when either side is
  /// empty, and (count, mean, m2) depend only on the two inputs — never
  /// on thread scheduling.
  [[nodiscard]] static MomentAccumulator merge(const MomentAccumulator& a,
                                               const MomentAccumulator& b);
};

/// Merges per-chunk accumulators with a balanced pairwise (tree) combine
/// in index order: deterministic for a given vector, and numerically
/// better-conditioned than a left fold when chunk counts are large.
[[nodiscard]] MomentAccumulator merge_pairwise(
    std::vector<MomentAccumulator> parts);

/// Builds the estimate from a merged accumulator. Precondition:
/// acc.count >= 2.
[[nodiscard]] MttdlEstimate make_estimate(const MomentAccumulator& acc);

/// Builds the estimate from accumulated first/second raw moments (the
/// historical serial path; kept for callers that already have sums).
[[nodiscard]] MttdlEstimate make_estimate(double sum, double sum_squares,
                                          int trials);

}  // namespace nsrel::sim
