// Trajectory sampler for any absorbing ctmc::Chain: an independent
// numerical path to MTTDL that exercises none of the linear algebra, so it
// cross-validates the AbsorbingSolver.
#pragma once

#include <cstdint>

#include "ctmc/chain.hpp"
#include "sim/estimate.hpp"
#include "util/rng.hpp"

namespace nsrel::sim {

class ChainSimulator {
 public:
  /// Preconditions: chain.validate() passes. The chain must outlive the
  /// simulator.
  explicit ChainSimulator(const ctmc::Chain& chain,
                          std::uint64_t seed = 0x5EEDULL);

  /// One sampled time-to-absorption (hours) from the given transient state.
  [[nodiscard]] double sample_absorption_time(ctmc::StateId initial);

  /// Mean time to absorption over `trials` independent trajectories.
  /// Precondition: trials >= 2.
  [[nodiscard]] MttdlEstimate estimate(int trials, ctmc::StateId initial);

 private:
  struct Outgoing {
    std::vector<ctmc::StateId> targets;
    std::vector<double> rates;
    double total_rate = 0.0;
  };
  const ctmc::Chain& chain_;
  std::vector<Outgoing> outgoing_;  // indexed by full state id
  Xoshiro256 rng_;
};

}  // namespace nsrel::sim
