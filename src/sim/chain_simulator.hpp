// Trajectory sampler for any absorbing ctmc::Chain: an independent
// numerical path to MTTDL that exercises none of the linear algebra, so it
// cross-validates the AbsorbingSolver. estimate() routes through the
// shared parallel engine (sim/parallel.hpp) and is bit-identical for a
// fixed seed regardless of options.jobs.
#pragma once

#include <cstdint>
#include <vector>

#include "ctmc/chain.hpp"
#include "sim/estimate.hpp"
#include "sim/parallel.hpp"
#include "util/rng.hpp"

namespace nsrel::sim {

class ChainSimulator {
 public:
  /// Preconditions: chain.validate() passes. The chain must outlive the
  /// simulator.
  explicit ChainSimulator(const ctmc::Chain& chain,
                          std::uint64_t seed = 0x5EEDULL);

  /// One sampled time-to-absorption (hours) from the given transient
  /// state, drawn from the simulator's own stream (serial use).
  [[nodiscard]] double sample_absorption_time(ctmc::StateId initial);

  /// Same, from a caller-supplied stream (thread-safe: the transition
  /// table is read-only).
  [[nodiscard]] double sample_absorption_time(ctmc::StateId initial,
                                              Xoshiro256& rng) const;

  /// Mean time to absorption over `trials` independent trajectories.
  /// Precondition: trials >= 2.
  [[nodiscard]] MttdlEstimate estimate(
      int trials, ctmc::StateId initial,
      const ParallelOptions& options = {}) const;

 private:
  struct Outgoing {
    std::vector<ctmc::StateId> targets;
    std::vector<double> rates;
    double total_rate = 0.0;
  };
  const ctmc::Chain& chain_;
  std::vector<Outgoing> outgoing_;  // indexed by full state id
  std::uint64_t seed_;
  Xoshiro256 rng_;
};

}  // namespace nsrel::sim
