#include "sim/estimate.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace nsrel::sim {

MttdlEstimate make_estimate(double sum, double sum_squares, int trials) {
  NSREL_EXPECTS(trials >= 2);
  MttdlEstimate e;
  e.trials = trials;
  const double n = static_cast<double>(trials);
  e.mean_hours = sum / n;
  const double variance =
      (sum_squares - n * e.mean_hours * e.mean_hours) / (n - 1.0);
  e.stddev_hours = variance > 0.0 ? std::sqrt(variance) : 0.0;
  e.stderr_hours = e.stddev_hours / std::sqrt(n);
  e.ci95_low_hours = e.mean_hours - 1.96 * e.stderr_hours;
  e.ci95_high_hours = e.mean_hours + 1.96 * e.stderr_hours;
  return e;
}

}  // namespace nsrel::sim
