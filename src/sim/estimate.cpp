#include "sim/estimate.hpp"

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "util/assert.hpp"

namespace nsrel::sim {

namespace {

MttdlEstimate from_mean_variance(double mean, double variance, int trials) {
  MttdlEstimate e;
  e.trials = trials;
  e.mean_hours = mean;
  e.stddev_hours = variance > 0.0 ? std::sqrt(variance) : 0.0;
  e.stderr_hours = e.stddev_hours / std::sqrt(static_cast<double>(trials));
  e.ci95_low_hours = e.mean_hours - 1.96 * e.stderr_hours;
  e.ci95_high_hours = e.mean_hours + 1.96 * e.stderr_hours;
  return e;
}

}  // namespace

double MttdlEstimate::relative_half_width() const {
  if (mean_hours <= 0.0) return std::numeric_limits<double>::infinity();
  return 1.96 * stderr_hours / mean_hours;
}

void MomentAccumulator::add(double value) {
  ++count;
  const double delta = value - mean;
  mean += delta / static_cast<double>(count);
  m2 += delta * (value - mean);
}

MomentAccumulator MomentAccumulator::merge(const MomentAccumulator& a,
                                           const MomentAccumulator& b) {
  if (a.count == 0) return b;
  if (b.count == 0) return a;
  MomentAccumulator out;
  out.count = a.count + b.count;
  const double na = static_cast<double>(a.count);
  const double nb = static_cast<double>(b.count);
  const double n = static_cast<double>(out.count);
  const double delta = b.mean - a.mean;
  out.mean = a.mean + delta * (nb / n);
  out.m2 = a.m2 + b.m2 + delta * delta * (na * nb / n);
  return out;
}

MomentAccumulator merge_pairwise(std::vector<MomentAccumulator> parts) {
  if (parts.empty()) return {};
  // Repeatedly combine adjacent pairs: the reduction tree depends only on
  // parts.size(), so the result is identical no matter how many threads
  // filled the vector.
  while (parts.size() > 1) {
    std::size_t out = 0;
    for (std::size_t i = 0; i + 1 < parts.size(); i += 2) {
      parts[out++] = MomentAccumulator::merge(parts[i], parts[i + 1]);
    }
    if (parts.size() % 2 == 1) parts[out++] = parts.back();
    parts.resize(out);
  }
  return parts.front();
}

MttdlEstimate make_estimate(const MomentAccumulator& acc) {
  NSREL_EXPECTS(acc.count >= 2);
  const double n = static_cast<double>(acc.count);
  return from_mean_variance(acc.mean, acc.m2 / (n - 1.0),
                            static_cast<int>(acc.count));
}

MttdlEstimate make_estimate(double sum, double sum_squares, int trials) {
  NSREL_EXPECTS(trials >= 2);
  const double n = static_cast<double>(trials);
  const double mean = sum / n;
  const double variance = (sum_squares - n * mean * mean) / (n - 1.0);
  return from_mean_variance(mean, variance, trials);
}

}  // namespace nsrel::sim
