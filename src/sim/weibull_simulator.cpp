#include "sim/weibull_simulator.hpp"

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace nsrel::sim {

namespace {
using combinat::FailureKind;
using combinat::FailureWord;

constexpr double kNever = std::numeric_limits<double>::infinity();
}  // namespace

WeibullStorageSimulator::WeibullStorageSimulator(
    const models::NoInternalRaidParams& params, const WeibullShapes& shapes,
    std::uint64_t seed)
    : params_(params),
      h_params_(models::NoInternalRaidModel(params).h_params()),
      node_life_(shapes.node_shape, 1.0 / params.node_failure.value()),
      drive_life_(shapes.drive_shape, 1.0 / params.drive_failure.value()),
      seed_(seed),
      rng_(seed) {}

double WeibullStorageSimulator::sample_time_to_data_loss() {
  return sample_time_to_data_loss(rng_);
}

double WeibullStorageSimulator::sample_time_to_data_loss(
    Xoshiro256& rng) const {
  const auto n = static_cast<std::size_t>(params_.node_set_size);
  const auto d = static_cast<std::size_t>(params_.drives_per_node);
  const int k = params_.fault_tolerance;
  const double mu_n = params_.node_rebuild.value();
  const double mu_d = params_.drive_rebuild.value();

  // Absolute next-failure times; kNever while the owning node is
  // suspended (its remaining lifetimes are parked in `frozen_*`).
  std::vector<double> node_clock(n);
  std::vector<std::vector<double>> drive_clock(n, std::vector<double>(d));
  std::vector<double> frozen_node(n, 0.0);
  std::vector<std::vector<double>> frozen_drives(n, std::vector<double>(d));

  for (std::size_t i = 0; i < n; ++i) {
    node_clock[i] = node_life_.sample(rng);
    for (std::size_t j = 0; j < d; ++j) {
      drive_clock[i][j] = drive_life_.sample(rng);
    }
  }

  struct OutstandingFailure {
    FailureKind kind;
    std::size_t node;
    std::size_t drive;  // valid when kind == kDrive
  };
  std::vector<OutstandingFailure> stack;  // LIFO repair
  FailureWord word;                       // kinds only, for h lookup
  double now = 0.0;
  double repair_done = kNever;  // for the current top of the stack

  const auto suspend = [&](std::size_t node, bool node_failed,
                           std::size_t failed_drive) {
    frozen_node[node] = node_failed ? kNever : node_clock[node] - now;
    node_clock[node] = kNever;
    for (std::size_t j = 0; j < d; ++j) {
      frozen_drives[node][j] = (node_failed || j == failed_drive)
                                   ? kNever
                                   : drive_clock[node][j] - now;
      drive_clock[node][j] = kNever;
    }
  };
  const auto resume = [&](const OutstandingFailure& failure) {
    const std::size_t node = failure.node;
    // The repaired component (and, after a node rebuild, its drives) is
    // renewed; everything merely suspended resumes its frozen lifetime.
    node_clock[node] = frozen_node[node] == kNever
                           ? now + node_life_.sample(rng)
                           : now + frozen_node[node];
    for (std::size_t j = 0; j < d; ++j) {
      drive_clock[node][j] = frozen_drives[node][j] == kNever
                                 ? now + drive_life_.sample(rng)
                                 : now + frozen_drives[node][j];
    }
  };

  for (;;) {
    // Next event: earliest component failure or the top repair.
    double next_failure = kNever;
    std::size_t failure_node = 0;
    std::size_t failure_drive = 0;
    bool failure_is_node = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (node_clock[i] < next_failure) {
        next_failure = node_clock[i];
        failure_node = i;
        failure_is_node = true;
      }
      for (std::size_t j = 0; j < d; ++j) {
        if (drive_clock[i][j] < next_failure) {
          next_failure = drive_clock[i][j];
          failure_node = i;
          failure_drive = j;
          failure_is_node = false;
        }
      }
    }
    NSREL_ASSERT(next_failure < kNever || repair_done < kNever);

    if (repair_done <= next_failure) {
      now = repair_done;
      const OutstandingFailure finished = stack.back();
      stack.pop_back();
      word.pop_back();
      resume(finished);
      repair_done =
          stack.empty()
              ? kNever
              : now + rng.exponential(stack.back().kind == FailureKind::kNode
                                           ? mu_n
                                           : mu_d);
      continue;
    }

    now = next_failure;
    const int outstanding = static_cast<int>(stack.size());
    if (outstanding == k) return now;  // failure beyond tolerance

    const FailureKind kind =
        failure_is_node ? FailureKind::kNode : FailureKind::kDrive;
    word.push_back(kind);
    if (outstanding == k - 1) {
      const double h =
          saturated_probability(combinat::h_for_word(h_params_, word));
      if (rng.bernoulli(h)) return now;  // hard error in critical rebuild
    }
    stack.push_back(OutstandingFailure{kind, failure_node, failure_drive});
    suspend(failure_node, failure_is_node, failure_is_node ? d : failure_drive);
    // New top of the LIFO queue: (re)start its repair.
    repair_done = now + rng.exponential(kind == FailureKind::kNode ? mu_n
                                                                    : mu_d);
  }
}

MttdlEstimate WeibullStorageSimulator::estimate(
    int trials, const ParallelOptions& options) const {
  return run_trials(
      [this](Xoshiro256& rng) { return sample_time_to_data_loss(rng); },
      trials, seed_, options);
}

}  // namespace nsrel::sim
