// System-level discrete-event simulators for both configuration families.
//
// These simulate the storage system's failure/repair dynamics directly —
// a failure stack, competing exponential failure and repair clocks, LIFO
// repair, hard-error sampling when the system goes critical — without ever
// constructing a Markov chain. They therefore validate the recursive chain
// construction itself (not just its numerical solve): if the chain encodes
// the wrong transition structure, the simulator and the solver disagree.
//
// Note on scale: at baseline parameters a single trajectory to data loss
// contains ~1e8 failure/repair cycles, so validation runs use accelerated
// failure rates (the chains are exact at any rate ratio; agreement at
// accelerated rates validates the structure).
//
// estimate() routes through the shared parallel engine (sim/parallel.hpp):
// results are bit-identical for a fixed seed regardless of options.jobs.
#pragma once

#include <cstdint>

#include "models/internal_raid.hpp"
#include "models/no_internal_raid.hpp"
#include "sim/estimate.hpp"
#include "sim/parallel.hpp"
#include "util/rng.hpp"

namespace nsrel::sim {

/// No-internal-RAID system: distinct node and drive failures, LIFO repair
/// at mu_N / mu_d, h_alpha hard-error sampling on the k-th failure.
class NirStorageSimulator {
 public:
  explicit NirStorageSimulator(const models::NoInternalRaidParams& params,
                               std::uint64_t seed = 0x5EEDULL);

  /// One trajectory from the simulator's own stream (serial use).
  [[nodiscard]] double sample_time_to_data_loss();
  /// One trajectory from a caller-supplied stream (thread-safe: shared
  /// state is read-only).
  [[nodiscard]] double sample_time_to_data_loss(Xoshiro256& rng) const;

  [[nodiscard]] MttdlEstimate estimate(
      int trials, const ParallelOptions& options = {}) const;

 private:
  models::NoInternalRaidParams params_;
  combinat::HParams h_params_;
  std::uint64_t seed_;
  Xoshiro256 rng_;
};

/// Internal-RAID system: node failures and array failures combine into one
/// failure stream; sector errors strike at rate (N-k) * k_t * lambda_S
/// while the system is critical.
class IrStorageSimulator {
 public:
  explicit IrStorageSimulator(const models::InternalRaidParams& params,
                              std::uint64_t seed = 0x5EEDULL);

  [[nodiscard]] double sample_time_to_data_loss();
  [[nodiscard]] double sample_time_to_data_loss(Xoshiro256& rng) const;

  [[nodiscard]] MttdlEstimate estimate(
      int trials, const ParallelOptions& options = {}) const;

 private:
  models::InternalRaidParams params_;
  double critical_factor_;
  std::uint64_t seed_;
  Xoshiro256 rng_;
};

}  // namespace nsrel::sim
