#include "sim/storage_simulator.hpp"

#include <cstdint>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace nsrel::sim {

namespace {
using combinat::FailureKind;
using combinat::FailureWord;
}  // namespace

NirStorageSimulator::NirStorageSimulator(
    const models::NoInternalRaidParams& params, std::uint64_t seed)
    : params_(params), seed_(seed), rng_(seed) {
  // Reuse the model's parameter validation and h machinery.
  h_params_ = models::NoInternalRaidModel(params).h_params();
}

double NirStorageSimulator::sample_time_to_data_loss() {
  return sample_time_to_data_loss(rng_);
}

double NirStorageSimulator::sample_time_to_data_loss(Xoshiro256& rng) const {
  const int k = params_.fault_tolerance;
  const double lambda_n = params_.node_failure.value();
  const double d_lambda_d = static_cast<double>(params_.drives_per_node) *
                            params_.drive_failure.value();
  const double mu_n = params_.node_rebuild.value();
  const double mu_d = params_.drive_rebuild.value();

  FailureWord stack;  // outstanding failures, most recent last (LIFO repair)
  double elapsed = 0.0;
  for (;;) {
    const int j = static_cast<int>(stack.size());
    const double survivors = static_cast<double>(params_.node_set_size - j);
    const double fail_n = survivors * lambda_n;
    const double fail_d = survivors * d_lambda_d;
    const double repair =
        stack.empty() ? 0.0
                      : (stack.back() == FailureKind::kNode ? mu_n : mu_d);
    const double total = fail_n + fail_d + repair;
    elapsed += rng.exponential(total);

    const double pick = rng.uniform() * total;
    if (pick < repair) {
      stack.pop_back();
      continue;
    }
    const FailureKind kind =
        pick < repair + fail_n ? FailureKind::kNode : FailureKind::kDrive;
    if (j == k) return elapsed;  // failure beyond tolerance
    stack.push_back(kind);
    if (j == k - 1) {
      // System just went critical: does the rebuild hit a hard error?
      // (saturated, matching the exact chain construction)
      const double h =
          saturated_probability(combinat::h_for_word(h_params_, stack));
      if (rng.bernoulli(h)) return elapsed;
    }
  }
}

MttdlEstimate NirStorageSimulator::estimate(
    int trials, const ParallelOptions& options) const {
  return run_trials(
      [this](Xoshiro256& rng) { return sample_time_to_data_loss(rng); },
      trials, seed_, options);
}

IrStorageSimulator::IrStorageSimulator(
    const models::InternalRaidParams& params, std::uint64_t seed)
    : params_(params),
      critical_factor_(models::InternalRaidNodeModel(params).critical_factor()),
      seed_(seed),
      rng_(seed) {}

double IrStorageSimulator::sample_time_to_data_loss() {
  return sample_time_to_data_loss(rng_);
}

double IrStorageSimulator::sample_time_to_data_loss(Xoshiro256& rng) const {
  const int t = params_.fault_tolerance;
  const double lam =
      params_.node_failure.value() + params_.array_failure.value();
  const double mu = params_.node_rebuild.value();
  const double sector = critical_factor_ * params_.sector_error.value();

  int failed = 0;
  double elapsed = 0.0;
  for (;;) {
    const double survivors = static_cast<double>(params_.node_set_size - failed);
    const double fail = survivors * lam;
    const double sector_loss = failed == t ? survivors * sector : 0.0;
    const double repair = failed > 0 ? mu : 0.0;
    const double total = fail + sector_loss + repair;
    elapsed += rng.exponential(total);

    const double pick = rng.uniform() * total;
    if (pick < repair) {
      --failed;
      continue;
    }
    if (pick < repair + sector_loss) return elapsed;  // hard error, critical
    if (failed == t) return elapsed;                  // failure beyond FT
    ++failed;
  }
}

MttdlEstimate IrStorageSimulator::estimate(
    int trials, const ParallelOptions& options) const {
  return run_trials(
      [this](Xoshiro256& rng) { return sample_time_to_data_loss(rng); },
      trials, seed_, options);
}

}  // namespace nsrel::sim
