#include "sim/chain_simulator.hpp"

#include <cstddef>
#include <cstdint>

#include "util/assert.hpp"

namespace nsrel::sim {

ChainSimulator::ChainSimulator(const ctmc::Chain& chain, std::uint64_t seed)
    : chain_(chain), seed_(seed), rng_(seed) {
  NSREL_EXPECTS(chain_.validate().empty());
  outgoing_.resize(chain_.state_count());
  for (const auto& t : chain_.transitions()) {
    auto& out = outgoing_[t.from];
    out.targets.push_back(t.to);
    out.rates.push_back(t.rate);
    out.total_rate += t.rate;
  }
}

double ChainSimulator::sample_absorption_time(ctmc::StateId initial) {
  return sample_absorption_time(initial, rng_);
}

double ChainSimulator::sample_absorption_time(ctmc::StateId initial,
                                              Xoshiro256& rng) const {
  NSREL_EXPECTS(initial < chain_.state_count());
  NSREL_EXPECTS(chain_.state(initial).kind == ctmc::StateKind::kTransient);
  double elapsed = 0.0;
  ctmc::StateId current = initial;
  while (chain_.state(current).kind == ctmc::StateKind::kTransient) {
    const Outgoing& out = outgoing_[current];
    NSREL_ASSERT(out.total_rate > 0.0);
    elapsed += rng.exponential(out.total_rate);
    // Pick the next state proportionally to rates.
    double pick = rng.uniform() * out.total_rate;
    std::size_t chosen = out.targets.size() - 1;
    for (std::size_t i = 0; i < out.rates.size(); ++i) {
      pick -= out.rates[i];
      if (pick <= 0.0) {
        chosen = i;
        break;
      }
    }
    current = out.targets[chosen];
  }
  return elapsed;
}

MttdlEstimate ChainSimulator::estimate(int trials, ctmc::StateId initial,
                                       const ParallelOptions& options) const {
  return run_trials(
      [this, initial](Xoshiro256& rng) {
        return sample_absorption_time(initial, rng);
      },
      trials, seed_, options);
}

}  // namespace nsrel::sim
