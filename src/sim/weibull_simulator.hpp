// Non-Markovian storage simulator: per-component Weibull lifetimes.
//
// The Markov models (and NirStorageSimulator) assume memoryless failures.
// This simulator tracks an individual failure clock per node and per
// drive, sampled from Weibull lifetimes at each renewal, so the hazard
// can rise (wearout) or fall (infant mortality) with component age. With
// both shapes set to 1 it reduces exactly to the Markov model — the test
// suite pins that down — and away from 1 it measures how much the
// exponential assumption distorts MTTDL at fixed MTTF.
//
// Semantics mirrored from the aggregate model: each outstanding failure
// (node or drive) removes one full node from the failure pool — a node
// with a failed drive is suspended (neither it nor its other drives fail)
// until the distributed drive rebuild completes. Repairs are LIFO with
// exponential service at mu_N / mu_d; repaired components (and a rebuilt
// node's drives) restart with fresh lifetimes.
#pragma once

#include <cstdint>
#include <vector>

#include "models/no_internal_raid.hpp"
#include "sim/estimate.hpp"
#include "sim/parallel.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace nsrel::sim {

struct WeibullShapes {
  double node_shape = 1.0;
  double drive_shape = 1.0;
};

class WeibullStorageSimulator {
 public:
  /// Uses the Markov parameters for everything except the lifetime
  /// distributions, whose means stay 1/lambda while the shapes vary.
  WeibullStorageSimulator(const models::NoInternalRaidParams& params,
                          const WeibullShapes& shapes,
                          std::uint64_t seed = 0x5EEDULL);

  /// One trajectory from the simulator's own stream (serial use).
  [[nodiscard]] double sample_time_to_data_loss();
  /// One trajectory from a caller-supplied stream (thread-safe: shared
  /// state is read-only).
  [[nodiscard]] double sample_time_to_data_loss(Xoshiro256& rng) const;

  /// Routed through the shared parallel engine; bit-identical for a
  /// fixed seed regardless of options.jobs.
  [[nodiscard]] MttdlEstimate estimate(
      int trials, const ParallelOptions& options = {}) const;

 private:
  models::NoInternalRaidParams params_;
  combinat::HParams h_params_;
  WeibullLifetime node_life_;
  WeibullLifetime drive_life_;
  std::uint64_t seed_;
  Xoshiro256 rng_;
};

}  // namespace nsrel::sim
