// Shared parallel Monte-Carlo engine for every simulator in src/sim.
//
// Trials are split into fixed-size chunks. Chunk c draws from its own
// Xoshiro256 stream seeded by stream_seed(seed, c) — independent of every
// other chunk and of thread scheduling — and folds its samples into a
// private MomentAccumulator. Completed chunks are merged on the calling
// thread with a balanced pairwise combine in chunk-index order, so the
// returned estimate is **bit-identical for a fixed (seed, trials,
// chunk_trials) no matter how many worker threads run** (jobs = 1 and
// jobs = 64 produce the same doubles).
//
// Adaptive stopping: with ci_target > 0 the engine runs waves of chunks
// (each wave the size of the initial `trials` request, rounded up to
// whole chunks) and stops at the first wave boundary where the 95% CI
// relative half-width falls below the target, or once max_trials is
// reached. Because the decision is evaluated only at wave boundaries —
// a schedule that depends solely on the options, never on which thread
// finished first — adaptive runs are deterministic too.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/estimate.hpp"
#include "util/rng.hpp"

namespace nsrel::obs {
class ProgressMeter;
}  // namespace nsrel::obs

namespace nsrel::sim {

struct ParallelOptions {
  /// Worker threads. 1 runs inline on the caller (no pool); 0 means
  /// "all hardware threads". Thread count never changes results.
  int jobs = 1;

  /// Trials per RNG-stream chunk. Part of the result's identity: the
  /// same seed with a different chunk size is a different (equally
  /// valid) estimate.
  int chunk_trials = 256;

  /// Adaptive stopping target for the 95% CI half-width relative to the
  /// mean (e.g. 0.05 = ±5%). 0 disables adaptive mode and exactly
  /// `trials` trials run.
  double ci_target = 0.0;

  /// Upper bound on total trials in adaptive mode (rounded up to whole
  /// chunks). Ignored when ci_target == 0.
  int max_trials = 1'000'000;

  /// Optional progress meter stepped once per completed chunk (stderr
  /// only — estimates are unaffected). Not owned.
  obs::ProgressMeter* progress = nullptr;
};

/// One Monte-Carlo trial: draws from the given RNG and returns the
/// sampled time. Must be safe to call concurrently from several threads
/// with distinct RNGs (i.e. read-only access to shared model state).
using TrialSampler = std::function<double(Xoshiro256&)>;

/// Runs `trials` trials (more in adaptive mode, see above) and returns
/// the merged estimate. Preconditions: trials >= 2, options valid.
[[nodiscard]] MttdlEstimate run_trials(const TrialSampler& sample_one,
                                       int trials, std::uint64_t seed,
                                       const ParallelOptions& options = {});

}  // namespace nsrel::sim
