#include "linalg/lu.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <optional>
#include <utility>

namespace nsrel::linalg {

LuDecomposition::LuDecomposition(Matrix a) : lu_(std::move(a)) {
  NSREL_EXPECTS(lu_.square());
  original_one_norm_ = lu_.one_norm();
  const std::size_t n = lu_.rows();
  piv_.resize(n);
  for (std::size_t i = 0; i < n; ++i) piv_[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot: largest magnitude in this column at or below diagonal.
    std::size_t pivot_row = col;
    double pivot_mag = std::abs(lu_(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(lu_(r, col));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag == 0.0) {
      singular_ = true;
      return;
    }
    if (pivot_row != col) {
      for (std::size_t j = 0; j < n; ++j)
        std::swap(lu_(pivot_row, j), lu_(col, j));
      std::swap(piv_[pivot_row], piv_[col]);
      pivot_sign_ = -pivot_sign_;
    }
    const double pivot = lu_(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = lu_(r, col) / pivot;
      lu_(r, col) = factor;
      if (factor == 0.0) continue;
      for (std::size_t j = col + 1; j < n; ++j)
        lu_(r, j) -= factor * lu_(col, j);
    }
  }
}

double LuDecomposition::determinant() const {
  if (singular_) return 0.0;
  double det = static_cast<double>(pivot_sign_);
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

Vector LuDecomposition::solve(const Vector& b) const {
  NSREL_EXPECTS(!singular_);
  const std::size_t n = lu_.rows();
  NSREL_EXPECTS(b.size() == n);
  // Apply permutation, then forward substitution (unit lower triangle).
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[piv_[i]];
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) x[i] -= lu_(i, j) * x[j];
  }
  // Back substitution (upper triangle).
  for (std::size_t ip1 = n; ip1 > 0; --ip1) {
    const std::size_t i = ip1 - 1;
    for (std::size_t j = i + 1; j < n; ++j) x[i] -= lu_(i, j) * x[j];
    x[i] /= lu_(i, i);
  }
  return x;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  NSREL_EXPECTS(!singular_);
  NSREL_EXPECTS(b.rows() == lu_.rows());
  Matrix x(b.rows(), b.cols());
  Vector column(b.rows());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < b.rows(); ++i) column[i] = b(i, j);
    const Vector solved = solve(column);
    for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = solved[i];
  }
  return x;
}

Vector LuDecomposition::solve_transposed(const Vector& b) const {
  NSREL_EXPECTS(!singular_);
  const std::size_t n = lu_.rows();
  NSREL_EXPECTS(b.size() == n);
  // A^T = U^T L^T P, so solve U^T y = b, then L^T z = y, then undo P.
  Vector y = b;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) y[i] -= lu_(j, i) * y[j];
    y[i] /= lu_(i, i);
  }
  for (std::size_t ip1 = n; ip1 > 0; --ip1) {
    const std::size_t i = ip1 - 1;
    for (std::size_t j = i + 1; j < n; ++j) y[i] -= lu_(j, i) * y[j];
  }
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[piv_[i]] = y[i];
  return x;
}

Matrix LuDecomposition::inverse() const {
  NSREL_EXPECTS(!singular_);
  return solve(Matrix::identity(lu_.rows()));
}

double LuDecomposition::rcond_estimate() const {
  if (singular_) return 0.0;
  const std::size_t n = lu_.rows();

  // Hager's 1-norm estimator (Higham's algorithm 2.4): walk toward the
  // column of A^{-1} with the largest 1-norm using only solves with A
  // and A^T. Deterministic: starts from the uniform vector, breaks ties
  // toward the lowest index, and converges in a few iterations.
  Vector x(n, 1.0 / static_cast<double>(n));
  double inv_norm = 0.0;
  std::size_t previous_pick = n;  // sentinel: no unit vector picked yet
  for (int iteration = 0; iteration < 5; ++iteration) {
    const Vector y = solve(x);  // y = A^{-1} x
    double y_norm = 0.0;
    for (const double v : y) y_norm += std::abs(v);
    inv_norm = std::max(inv_norm, y_norm);

    Vector sign(n);
    for (std::size_t i = 0; i < n; ++i) sign[i] = y[i] >= 0.0 ? 1.0 : -1.0;
    const Vector z = solve_transposed(sign);  // z = A^{-T} sign(y)

    std::size_t pick = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (std::abs(z[i]) > std::abs(z[pick])) pick = i;
    }
    // Converged when the subgradient says no unit vector improves on the
    // current iterate (or we would revisit the same column).
    if (std::abs(z[pick]) <= dot(z, x) || pick == previous_pick) break;
    x.assign(n, 0.0);
    x[pick] = 1.0;
    previous_pick = pick;
  }

  if (!std::isfinite(inv_norm) || inv_norm == 0.0 ||
      original_one_norm_ == 0.0) {
    return 0.0;
  }
  return 1.0 / (original_one_norm_ * inv_norm);
}

std::optional<Vector> solve(const Matrix& a, const Vector& b) {
  const LuDecomposition lu(a);
  if (lu.singular()) return std::nullopt;
  return lu.solve(b);
}

double determinant(const Matrix& a) { return LuDecomposition(a).determinant(); }

std::optional<Matrix> inverse(const Matrix& a) {
  const LuDecomposition lu(a);
  if (lu.singular()) return std::nullopt;
  return lu.inverse();
}

}  // namespace nsrel::linalg
