// LU decomposition with partial pivoting, and the solve/determinant/inverse
// operations the CTMC solvers need.
//
// The generator submatrices Q_B arising from the paper's models are
// strictly diagonally dominant after negation in the regimes of interest
// (repair rates dwarf failure rates), so partial pivoting is ample.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "linalg/matrix.hpp"

namespace nsrel::linalg {

/// Factorization A = P * L * U held in packed form.
class LuDecomposition {
 public:
  /// Factors `a`. Check `singular()` before using solve/inverse.
  explicit LuDecomposition(Matrix a);

  [[nodiscard]] bool singular() const { return singular_; }

  /// det(A). Zero when singular.
  [[nodiscard]] double determinant() const;

  /// Solves A x = b. Requires !singular() and b.size() == n.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// Solves A X = B column-by-column. Requires !singular().
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  /// Solves x^T A = b^T, i.e. A^T x = b. Requires !singular().
  [[nodiscard]] Vector solve_transposed(const Vector& b) const;

  /// A^{-1}. Requires !singular().
  [[nodiscard]] Matrix inverse() const;

  /// Reciprocal 1-norm condition estimate 1 / (||A||_1 * est ||A^{-1}||_1),
  /// with ||A^{-1}||_1 estimated by Hager's method (a handful of O(n^2)
  /// triangular solves on the existing factorization — no O(n^3) inverse).
  /// The estimate of ||A^{-1}||_1 is a lower bound, so the returned rcond
  /// is an upper bound on the true value: when it is already below a
  /// threshold, the true conditioning is at least that bad. Exact for
  /// diagonal matrices; in practice within a small factor of exact.
  [[nodiscard]] double rcond_estimate() const;

 private:
  Matrix lu_;                     // L below diag (unit), U on/above diag
  std::vector<std::size_t> piv_;  // row permutation
  int pivot_sign_ = 1;
  bool singular_ = false;
  double original_one_norm_ = 0.0;
};

/// Convenience: solve A x = b in one call; nullopt when A is singular.
[[nodiscard]] std::optional<Vector> solve(const Matrix& a, const Vector& b);

/// Convenience: det(A).
[[nodiscard]] double determinant(const Matrix& a);

/// Convenience: A^{-1}; nullopt when singular.
[[nodiscard]] std::optional<Matrix> inverse(const Matrix& a);

}  // namespace nsrel::linalg
