#include "linalg/sparse/sparse_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace nsrel::linalg::sparse {

CsrMatrix CsrMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                   const std::vector<Triplet>& triplets) {
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);

  // Counting sort by row keeps the per-cell accumulation in triplet
  // order: a stable bucket pass, then a stable in-row column sort, then
  // a left-to-right merge of equal coordinates.
  std::vector<std::size_t> row_count(rows, 0);
  for (const Triplet& t : triplets) {
    NSREL_EXPECTS(t.row < rows && t.col < cols);
    ++row_count[t.row];
  }
  std::vector<std::size_t> offset(rows + 1, 0);
  for (std::size_t r = 0; r < rows; ++r) {
    offset[r + 1] = offset[r] + row_count[r];
  }
  std::vector<Triplet> sorted(triplets.size());
  {
    std::vector<std::size_t> cursor(offset.begin(), offset.end() - 1);
    for (const Triplet& t : triplets) sorted[cursor[t.row]++] = t;
  }
  for (std::size_t r = 0; r < rows; ++r) {
    std::stable_sort(sorted.begin() + static_cast<std::ptrdiff_t>(offset[r]),
                     sorted.begin() + static_cast<std::ptrdiff_t>(offset[r + 1]),
                     [](const Triplet& a, const Triplet& b) {
                       return a.col < b.col;
                     });
  }

  m.col_index_.reserve(sorted.size());
  m.values_.reserve(sorted.size());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t i = offset[r]; i < offset[r + 1]; ++i) {
      // row_ptr_[r + 1] counts row r's entries during this loop (prefix
      // sums happen below), so a positive count means col_index_.back()
      // belongs to THIS row and equal columns must merge.
      if (m.row_ptr_[r + 1] > 0 && m.col_index_.back() == sorted[i].col) {
        m.values_.back() += sorted[i].value;
        continue;
      }
      m.col_index_.push_back(sorted[i].col);
      m.values_.push_back(sorted[i].value);
      ++m.row_ptr_[r + 1];
    }
  }
  for (std::size_t r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

CsrMatrix CsrMatrix::from_dense(const Matrix& dense) {
  CsrMatrix m;
  m.rows_ = dense.rows();
  m.cols_ = dense.cols();
  m.row_ptr_.assign(m.rows_ + 1, 0);
  for (std::size_t r = 0; r < m.rows_; ++r) {
    for (std::size_t c = 0; c < m.cols_; ++c) {
      const double v = dense(r, c);
      if (v == 0.0) continue;
      m.col_index_.push_back(static_cast<std::uint32_t>(c));
      m.values_.push_back(v);
    }
    m.row_ptr_[r + 1] = m.values_.size();
  }
  return m;
}

Matrix CsrMatrix::to_dense() const {
  Matrix dense(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      dense(r, col_index_[i]) = values_[i];
    }
  }
  return dense;
}

double CsrMatrix::at(std::size_t row, std::size_t col) const {
  NSREL_EXPECTS(row < rows_ && col < cols_);
  const auto begin =
      col_index_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row]);
  const auto end =
      col_index_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row + 1]);
  const auto it =
      std::lower_bound(begin, end, static_cast<std::uint32_t>(col));
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<std::size_t>(it - col_index_.begin())];
}

Vector CsrMatrix::multiply(const Vector& x) const {
  NSREL_EXPECTS(x.size() == cols_);
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      sum += values_[i] * x[col_index_[i]];
    }
    y[r] = sum;
  }
  return y;
}

Vector CsrMatrix::multiply_transposed(const Vector& x) const {
  NSREL_EXPECTS(x.size() == rows_);
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      y[col_index_[i]] += values_[i] * xr;
    }
  }
  return y;
}

CsrMatrix CsrMatrix::transpose() const {
  CsrMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.row_ptr_.assign(cols_ + 1, 0);
  for (const std::uint32_t c : col_index_) ++t.row_ptr_[c + 1];
  for (std::size_t c = 0; c < cols_; ++c) t.row_ptr_[c + 1] += t.row_ptr_[c];
  t.col_index_.resize(nnz());
  t.values_.resize(nnz());
  std::vector<std::size_t> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      const std::size_t slot = cursor[col_index_[i]]++;
      t.col_index_[slot] = static_cast<std::uint32_t>(r);
      t.values_[slot] = values_[i];
    }
  }
  return t;
}

double CsrMatrix::one_norm() const {
  std::vector<double> column_sum(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      column_sum[col_index_[i]] += std::abs(values_[i]);
    }
  }
  double max = 0.0;
  for (const double s : column_sum) max = std::max(max, s);
  return max;
}

double CsrMatrix::inf_norm() const {
  double max = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      sum += std::abs(values_[i]);
    }
    max = std::max(max, sum);
  }
  return max;
}

}  // namespace nsrel::linalg::sparse
