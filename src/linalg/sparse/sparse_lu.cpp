#include "linalg/sparse/sparse_lu.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace nsrel::linalg::sparse {

namespace {

// Threshold for relative pivot magnitude within the chosen column: a
// candidate must be at least this fraction of the column's largest
// entry. 0.1 is the textbook compromise between stability (1.0 =
// partial pivoting) and sparsity (0 = pure Markowitz); the generators
// here are diagonally dominant after negation, so the threshold rarely
// binds.
constexpr double kPivotThreshold = 0.1;

}  // namespace

SparseLu::SparseLu(const CsrMatrix& a) {
  NSREL_EXPECTS(a.square());
  n_ = a.rows();
  original_one_norm_ = a.one_norm();
  row_of_step_.resize(n_);
  col_of_step_.resize(n_);
  pivot_value_.resize(n_);
  l_entries_.resize(n_);
  u_entries_.resize(n_);

  // Active submatrix in mutable form: ordered containers only, so every
  // traversal below is deterministic.
  std::vector<std::map<std::uint32_t, double>> row(n_);
  std::vector<std::set<std::uint32_t>> col_rows(n_);
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t i = a.row_ptr()[r]; i < a.row_ptr()[r + 1]; ++i) {
      const std::uint32_t c = a.col_index()[i];
      row[r].emplace(c, a.values()[i]);
      col_rows[c].insert(static_cast<std::uint32_t>(r));
    }
  }
  // Active columns keyed by (entry count, column index): the minimum is
  // the emptiest column, ties toward the lowest index.
  std::set<std::pair<std::uint32_t, std::uint32_t>> active_cols;
  for (std::size_t c = 0; c < n_; ++c) {
    active_cols.emplace(static_cast<std::uint32_t>(col_rows[c].size()),
                        static_cast<std::uint32_t>(c));
  }

  for (std::size_t step = 0; step < n_; ++step) {
    // Markowitz-style pivot: take the emptiest active column, then the
    // emptiest row among its acceptably-large entries.
    const std::uint32_t pc = active_cols.begin()->second;
    double max_mag = 0.0;
    for (const std::uint32_t r : col_rows[pc]) {
      max_mag = std::max(max_mag, std::abs(row[r].find(pc)->second));
    }
    if (max_mag == 0.0) {
      // The emptiest column of the active submatrix is (structurally or
      // numerically) zero, so the submatrix is singular.
      singular_ = true;
      return;
    }
    std::uint32_t pr = 0;
    std::size_t pr_nnz = 0;
    bool picked = false;
    for (const std::uint32_t r : col_rows[pc]) {
      const double mag = std::abs(row[r].find(pc)->second);
      if (mag < kPivotThreshold * max_mag) continue;
      if (!picked || row[r].size() < pr_nnz) {
        pr = r;
        pr_nnz = row[r].size();
        picked = true;
      }
    }
    NSREL_ASSERT(picked);

    const double pivot = row[pr].find(pc)->second;
    row_of_step_[step] = pr;
    col_of_step_[step] = static_cast<std::uint32_t>(pc);
    pivot_value_[step] = pivot;

    // Retire the pivot row from the column structures.
    for (const auto& [c, value] : row[pr]) {
      active_cols.erase({static_cast<std::uint32_t>(col_rows[c].size()),
                         static_cast<std::uint32_t>(c)});
      col_rows[c].erase(pr);
      if (c != pc) {
        active_cols.emplace(static_cast<std::uint32_t>(col_rows[c].size()),
                            static_cast<std::uint32_t>(c));
        u_entries_[step].push_back({c, value});
      }
    }

    // Eliminate the pivot column from every remaining row.
    for (const std::uint32_t r : col_rows[pc]) {
      const auto pivot_entry = row[r].find(pc);
      const double factor = pivot_entry->second / pivot;
      row[r].erase(pivot_entry);
      if (factor == 0.0) continue;  // stored zero: structural only
      l_entries_[step].push_back({r, factor});
      for (const Entry& u : u_entries_[step]) {
        const auto [it, inserted] = row[r].emplace(u.index, 0.0);
        it->second -= factor * u.value;
        if (inserted) {
          active_cols.erase(
              {static_cast<std::uint32_t>(col_rows[u.index].size()),
               u.index});
          col_rows[u.index].insert(r);
          active_cols.emplace(
              static_cast<std::uint32_t>(col_rows[u.index].size()), u.index);
        }
      }
    }
    col_rows[pc].clear();
    row[pr].clear();
  }

  step_of_row_.resize(n_);
  for (std::size_t s = 0; s < n_; ++s) {
    step_of_row_[row_of_step_[s]] = static_cast<std::uint32_t>(s);
  }
}

std::size_t SparseLu::factor_nnz() const {
  if (singular_) return 0;
  std::size_t count = n_;  // pivots
  for (std::size_t s = 0; s < n_; ++s) {
    count += l_entries_[s].size() + u_entries_[s].size();
  }
  return count;
}

Vector SparseLu::solve(const Vector& b) const {
  NSREL_EXPECTS(!singular_);
  NSREL_EXPECTS(b.size() == n_);
  // Forward substitution replays the elimination on the right-hand
  // side: y[s] is the pivot row's value once all earlier steps have
  // been applied to it.
  Vector work = b;
  Vector y(n_);
  for (std::size_t s = 0; s < n_; ++s) {
    y[s] = work[row_of_step_[s]];
    for (const Entry& l : l_entries_[s]) work[l.index] -= l.value * y[s];
  }
  // Back substitution through U, scattering into original columns.
  Vector x(n_, 0.0);
  for (std::size_t sp1 = n_; sp1 > 0; --sp1) {
    const std::size_t s = sp1 - 1;
    double sum = y[s];
    for (const Entry& u : u_entries_[s]) sum -= u.value * x[u.index];
    x[col_of_step_[s]] = sum / pivot_value_[s];
  }
  return x;
}

Vector SparseLu::solve_transposed(const Vector& b) const {
  NSREL_EXPECTS(!singular_);
  NSREL_EXPECTS(b.size() == n_);
  // A^T x = b with P A Q = L U: forward through U^T (gathering from
  // original columns), then backward through L^T, then scatter through
  // the row permutation.
  Vector work = b;
  Vector w(n_);
  for (std::size_t s = 0; s < n_; ++s) {
    w[s] = work[col_of_step_[s]] / pivot_value_[s];
    for (const Entry& u : u_entries_[s]) work[u.index] -= u.value * w[s];
  }
  Vector z(n_);
  for (std::size_t sp1 = n_; sp1 > 0; --sp1) {
    const std::size_t s = sp1 - 1;
    double sum = w[s];
    // L's entries at step s live in rows pivoted at later steps, whose
    // z values are already final when iterating steps downward.
    for (const Entry& l : l_entries_[s]) {
      sum -= l.value * z[step_of_row_[l.index]];
    }
    z[s] = sum;
  }
  Vector x(n_);
  for (std::size_t s = 0; s < n_; ++s) x[row_of_step_[s]] = z[s];
  return x;
}

double SparseLu::rcond_estimate() const {
  if (singular_) return 0.0;
  const std::size_t n = n_;

  // Hager's 1-norm estimator, kept line-for-line parallel to
  // LuDecomposition::rcond_estimate so both backends report comparable
  // conditioning for the same matrix.
  Vector x(n, 1.0 / static_cast<double>(n));
  double inv_norm = 0.0;
  std::size_t previous_pick = n;  // sentinel: no unit vector picked yet
  for (int iteration = 0; iteration < 5; ++iteration) {
    const Vector y = solve(x);  // y = A^{-1} x
    double y_norm = 0.0;
    for (const double v : y) y_norm += std::abs(v);
    inv_norm = std::max(inv_norm, y_norm);

    Vector sign(n);
    for (std::size_t i = 0; i < n; ++i) sign[i] = y[i] >= 0.0 ? 1.0 : -1.0;
    const Vector z = solve_transposed(sign);  // z = A^{-T} sign(y)

    std::size_t pick = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (std::abs(z[i]) > std::abs(z[pick])) pick = i;
    }
    if (std::abs(z[pick]) <= dot(z, x) || pick == previous_pick) break;
    x.assign(n, 0.0);
    x[pick] = 1.0;
    previous_pick = pick;
  }

  if (!std::isfinite(inv_norm) || inv_norm == 0.0 ||
      original_one_norm_ == 0.0) {
    return 0.0;
  }
  return 1.0 / (original_one_norm_ * inv_norm);
}

}  // namespace nsrel::linalg::sparse
