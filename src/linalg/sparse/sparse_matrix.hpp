// Sparse matrix substrate for the large structured CTMC generators.
//
// The appendix recursion's absorption matrix at fault tolerance k has
// 2^(k+1)-1 rows but only ~3 nonzeros per row (a binary tree of failure
// edges plus one repair edge per state), so past k ~ 5 the dense Matrix
// wastes quadratic memory and the O(n^3) factorizations dominate every
// sweep. Triplets are the mutable assembly form (duplicates accumulate,
// like Chain::add_transition); CsrMatrix is the immutable compressed
// sparse row form the solvers consume.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"

namespace nsrel::linalg::sparse {

/// One assembly entry: (row, col, value). Duplicate coordinates sum.
struct Triplet {
  std::uint32_t row = 0;
  std::uint32_t col = 0;
  double value = 0.0;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from triplets: entries are bucketed by row, sorted by
  /// column, and duplicates accumulated IN TRIPLET ORDER (so assembly
  /// reproduces the exact floating-point sums a dense `+=` loop over
  /// the same triplets would produce). Exact zeros are kept — a stored
  /// zero and an absent entry are numerically identical everywhere the
  /// solvers look, and dropping them would change nothing but nnz().
  [[nodiscard]] static CsrMatrix from_triplets(
      std::size_t rows, std::size_t cols,
      const std::vector<Triplet>& triplets);

  /// Compresses a dense matrix (entries with value exactly 0 dropped).
  [[nodiscard]] static CsrMatrix from_dense(const Matrix& dense);

  /// Expands back to dense — diff-harness and test plumbing only.
  [[nodiscard]] Matrix to_dense() const;

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return values_.size(); }
  [[nodiscard]] bool square() const { return rows_ == cols_; }

  /// CSR internals: row r's entries are [row_ptr()[r], row_ptr()[r+1])
  /// into col_index()/values(), columns strictly increasing per row.
  [[nodiscard]] const std::vector<std::size_t>& row_ptr() const {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& col_index() const {
    return col_index_;
  }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

  /// Entry lookup by binary search within the row; 0.0 when absent.
  [[nodiscard]] double at(std::size_t row, std::size_t col) const;

  /// y = A x. Requires x.size() == cols().
  [[nodiscard]] Vector multiply(const Vector& x) const;

  /// y = A^T x. Requires x.size() == rows().
  [[nodiscard]] Vector multiply_transposed(const Vector& x) const;

  [[nodiscard]] CsrMatrix transpose() const;

  /// Column-sum norm (induced 1-norm) — the Hager estimator's norm.
  [[nodiscard]] double one_norm() const;

  /// Row-sum norm (induced infinity norm).
  [[nodiscard]] double inf_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::uint32_t> col_index_;
  std::vector<double> values_;
};

}  // namespace nsrel::linalg::sparse
