// Sparse LU factorization with Markowitz pivoting.
//
// The dense LuDecomposition picks pivots for numerical stability alone;
// on a sparse matrix that fills the factors in and the O(n^3) cost
// returns through the back door. Markowitz's rule picks, at each step,
// an acceptably-large pivot whose row and column are as empty as
// possible — the classic fill-minimizing heuristic for asymmetric
// sparse Gaussian elimination. On the CTMC generators the models
// produce (a handful of nonzeros per row) the factors stay near-linear
// in size and solves run in O(nnz).
//
// Pivot choice is fully deterministic (ordered containers only, ties
// broken toward the lowest index), so factorizations are reproducible
// across runs and thread counts. Because the pivot order differs from
// the dense code's partial pivoting, results agree with dense LU to the
// bound documented in DESIGN.md §11 — not bit-for-bit (the GTH
// elimination path is the bit-identical one; see ctmc/elimination).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/sparse/sparse_matrix.hpp"

namespace nsrel::linalg::sparse {

/// Factorization P A Q = L U in pivot-step coordinates. Check
/// `singular()` before calling the solves, exactly like the dense
/// LuDecomposition.
class SparseLu {
 public:
  explicit SparseLu(const CsrMatrix& a);

  [[nodiscard]] bool singular() const { return singular_; }

  [[nodiscard]] std::size_t dimension() const { return n_; }

  /// Stored entries in L and U combined (pivots included) — the
  /// fill-in measure the perf ablation and probes report.
  [[nodiscard]] std::size_t factor_nnz() const;

  /// Solves A x = b. Requires !singular() and b.size() == dimension().
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// Solves A^T x = b. Requires !singular() and b.size() == dimension().
  [[nodiscard]] Vector solve_transposed(const Vector& b) const;

  /// Reciprocal 1-norm condition estimate via Hager's method — the
  /// same estimator (same start vector, iteration cap, and tie-breaks)
  /// as LuDecomposition::rcond_estimate, riding on the sparse solves.
  [[nodiscard]] double rcond_estimate() const;

 private:
  struct Entry {
    std::uint32_t index = 0;  // original row (L) or original column (U)
    double value = 0.0;
  };

  std::size_t n_ = 0;
  bool singular_ = false;
  double original_one_norm_ = 0.0;
  std::vector<std::uint32_t> row_of_step_;
  std::vector<std::uint32_t> col_of_step_;
  std::vector<std::uint32_t> step_of_row_;
  std::vector<double> pivot_value_;
  // l_entries_[s]: rows eliminated at step s as (original row, factor).
  // u_entries_[s]: the pivot row's surviving entries at step s as
  // (original column, value), pivot column excluded.
  std::vector<std::vector<Entry>> l_entries_;
  std::vector<std::vector<Entry>> u_entries_;
};

}  // namespace nsrel::linalg::sparse
