#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <sstream>
#include <string>

#include "util/format.hpp"

namespace nsrel::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    NSREL_EXPECTS(row.size() == cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  NSREL_EXPECTS(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  NSREL_EXPECTS(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (auto& x : data_) x *= s;
  return *this;
}

Matrix Matrix::multiply(const Matrix& other) const {
  NSREL_EXPECTS(cols_ == other.rows_);
  Matrix result(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        result(i, j) += a * other(k, j);
      }
    }
  }
  return result;
}

Vector Matrix::multiply(const Vector& v) const {
  NSREL_EXPECTS(cols_ == v.size());
  Vector result(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) sum += (*this)(i, j) * v[j];
    result[i] = sum;
  }
  return result;
}

Matrix Matrix::transpose() const {
  Matrix result(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) result(j, i) = (*this)(i, j);
  return result;
}

Matrix Matrix::minor_matrix(std::size_t drop_row, std::size_t drop_col) const {
  NSREL_EXPECTS(drop_row < rows_ && drop_col < cols_);
  NSREL_EXPECTS(rows_ > 1 && cols_ > 1);
  Matrix result(rows_ - 1, cols_ - 1);
  for (std::size_t i = 0, ri = 0; i < rows_; ++i) {
    if (i == drop_row) continue;
    for (std::size_t j = 0, rj = 0; j < cols_; ++j) {
      if (j == drop_col) continue;
      result(ri, rj) = (*this)(i, j);
      ++rj;
    }
    ++ri;
  }
  return result;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::abs(x));
  return m;
}

double Matrix::inf_norm() const {
  double m = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) row_sum += std::abs((*this)(i, j));
    m = std::max(m, row_sum);
  }
  return m;
}

double Matrix::one_norm() const {
  double m = 0.0;
  for (std::size_t j = 0; j < cols_; ++j) {
    double col_sum = 0.0;
    for (std::size_t i = 0; i < rows_; ++i) col_sum += std::abs((*this)(i, j));
    m = std::max(m, col_sum);
  }
  return m;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream out;
  for (std::size_t i = 0; i < rows_; ++i) {
    out << (i == 0 ? "[" : " ");
    for (std::size_t j = 0; j < cols_; ++j) {
      out << (j == 0 ? "[" : ", ") << sci((*this)(i, j), precision);
    }
    out << "]" << (i + 1 == rows_ ? "]" : "\n");
  }
  return out.str();
}

double norm2(const Vector& v) {
  double sum = 0.0;
  for (double x : v) sum += x * x;
  return std::sqrt(sum);
}

double norm_inf(const Vector& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

double dot(const Vector& a, const Vector& b) {
  NSREL_EXPECTS(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace nsrel::linalg
