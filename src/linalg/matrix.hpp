// Dense row-major matrix of doubles.
//
// This is the numeric substrate under the CTMC solvers. Markov chains in
// this library are small (the largest, the appendix's recursive model at
// fault tolerance k, has 2^(k+1)-1 transient states), so a straightforward
// dense representation with O(n^3) factorizations is the right tool; no
// sparse machinery is warranted.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace nsrel::linalg {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix of zeros.
  Matrix(std::size_t rows, std::size_t cols);

  /// From nested initializer lists; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool square() const { return rows_ == cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    NSREL_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    NSREL_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  /// Matrix product; requires cols() == other.rows().
  [[nodiscard]] Matrix multiply(const Matrix& other) const;
  friend Matrix operator*(const Matrix& a, const Matrix& b) {
    return a.multiply(b);
  }

  /// Matrix-vector product; requires cols() == v.size().
  [[nodiscard]] Vector multiply(const Vector& v) const;

  [[nodiscard]] Matrix transpose() const;

  /// Submatrix dropping one row and one column (used by adjugate-based
  /// identities in the appendix tests).
  [[nodiscard]] Matrix minor_matrix(std::size_t drop_row,
                                    std::size_t drop_col) const;

  /// Max absolute entry (infinity norm of the vectorization).
  [[nodiscard]] double max_abs() const;

  /// Row-sum norm (induced infinity norm).
  [[nodiscard]] double inf_norm() const;

  /// Column-sum norm (induced 1-norm) — the norm the Hager condition
  /// estimator works in.
  [[nodiscard]] double one_norm() const;

  [[nodiscard]] bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  [[nodiscard]] std::string to_string(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean norm.
[[nodiscard]] double norm2(const Vector& v);
/// Max-abs norm.
[[nodiscard]] double norm_inf(const Vector& v);
/// Dot product; requires equal sizes.
[[nodiscard]] double dot(const Vector& a, const Vector& b);

}  // namespace nsrel::linalg
