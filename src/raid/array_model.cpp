#include "raid/array_model.hpp"

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "ctmc/absorbing.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace nsrel::raid {

GeneralArrayModel::GeneralArrayModel(ArrayParams params, int fault_tolerance)
    : params_(params), fault_tolerance_(fault_tolerance) {
  NSREL_EXPECTS(fault_tolerance_ >= 1);
  NSREL_EXPECTS(params_.drives > fault_tolerance_);
  NSREL_EXPECTS(params_.drive_mttf.value() > 0.0);
  NSREL_EXPECTS(params_.restripe_rate.value() > 0.0);
  NSREL_EXPECTS(params_.capacity.value() > 0.0);
  NSREL_EXPECTS(params_.her_per_byte >= 0.0);
}

double GeneralArrayModel::critical_hard_error_probability() const {
  // Rebuilding with m drives gone reads the d - m survivors.
  return static_cast<double>(params_.drives - fault_tolerance_) *
         params_.capacity.value() * params_.her_per_byte;
}

ctmc::Chain GeneralArrayModel::chain() const {
  const int d = params_.drives;
  const int m = fault_tolerance_;
  const double lambda = rate_of(params_.drive_mttf).value();
  const double mu = params_.restripe_rate.value();
  const double h = critical_hard_error_probability();

  const double h_sat = saturated_probability(h);

  ctmc::Chain c;
  std::vector<ctmc::StateId> degraded(static_cast<std::size_t>(m) + 1);
  for (int i = 0; i <= m; ++i) {
    degraded[static_cast<std::size_t>(i)] =
        c.add_state(std::to_string(i) + "_failed");
  }
  const ctmc::StateId loss =
      c.add_state("data_loss", ctmc::StateKind::kAbsorbing);

  for (int i = 0; i < m; ++i) {
    const double rate = static_cast<double>(d - i) * lambda;
    const auto from = degraded[static_cast<std::size_t>(i)];
    const auto to = degraded[static_cast<std::size_t>(i) + 1];
    if (i == m - 1) {
      // The failure that makes the array critical: pre-sample whether the
      // ensuing re-stripe will hit a hard error (paper's state semantics:
      // state m is "will not experience an uncorrectable error").
      c.add_transition(from, to, rate * (1.0 - h_sat));
      if (h_sat > 0.0) c.add_transition(from, loss, rate * h_sat);
    } else {
      c.add_transition(from, to, rate);
    }
  }
  // A failure beyond tolerance loses data.
  c.add_transition(degraded[static_cast<std::size_t>(m)], loss,
                   static_cast<double>(d - m) * lambda);
  // Re-stripes restore one level of redundancy at a time.
  for (int i = 1; i <= m; ++i) {
    c.add_transition(degraded[static_cast<std::size_t>(i)],
                     degraded[static_cast<std::size_t>(i) - 1], mu);
  }
  NSREL_ENSURES(c.validate().empty());
  return c;
}

Hours GeneralArrayModel::mttdl_exact() const {
  return Hours(ctmc::AbsorbingSolver::mttdl_hours(chain()));
}

Hours GeneralArrayModel::mttdl_closed_form() const {
  const int m = fault_tolerance_;
  const double lambda = rate_of(params_.drive_mttf).value();
  const double mu = params_.restripe_rate.value();
  const double c_her = params_.capacity.value() * params_.her_per_byte;
  // d (d-1) ... (d-m): m+1 factors.
  const double ff = falling_factorial(params_.drives, m + 1);
  const double mu_pow_m = std::pow(mu, m);
  const double lambda_pow_m = std::pow(lambda, m);
  const double denominator =
      ff * lambda_pow_m * lambda + ff * lambda_pow_m * mu * c_her;
  NSREL_ASSERT(denominator > 0.0);
  return Hours(mu_pow_m / denominator);
}

ArrayRates GeneralArrayModel::rates() const {
  const int m = fault_tolerance_;
  const double lambda = rate_of(params_.drive_mttf).value();
  const double mu = params_.restripe_rate.value();
  const double c_her = params_.capacity.value() * params_.her_per_byte;
  const double ff = falling_factorial(params_.drives, m + 1);
  ArrayRates r;
  // lambda_D = d...(d-m) lambda^{m+1} / mu^m  (drive-loss path)
  r.array_failure = PerHour(ff * std::pow(lambda, m + 1) / std::pow(mu, m));
  // lambda_S = d...(d-m) lambda^m C HER / mu^{m-1}  (hard-error path)
  r.sector_error =
      PerHour(ff * std::pow(lambda, m) * c_her / std::pow(mu, m - 1));
  return r;
}

GeneralArrayModel raid5(const ArrayParams& params) {
  return GeneralArrayModel(params, 1);
}

GeneralArrayModel raid6(const ArrayParams& params) {
  return GeneralArrayModel(params, 2);
}

Hours raid5_mttdl_full(const ArrayParams& params) {
  const GeneralArrayModel model(params, 1);
  const double d = params.drives;
  const double lambda = rate_of(params.drive_mttf).value();
  const double mu = params.restripe_rate.value();
  const double h = model.critical_hard_error_probability();
  const double numerator = (2.0 * d - 1.0 - d * h) * lambda + mu;
  const double denominator =
      d * (d - 1.0) * lambda * lambda + d * lambda * mu * h;
  return Hours(numerator / denominator);
}

}  // namespace nsrel::raid
