// Internal RAID array reliability models (paper Figures 1 and 4).
//
// Under fail-in-place, a drive failure triggers a re-stripe that removes
// the failed drive and restores redundancy, so the repair rate mu_d in
// these chains is the re-stripe rate, not a spare-rebuild rate. An array
// "fails" when drive failures exceed the RAID scheme's tolerance, or when
// an uncorrectable (hard) read error strikes during a critical re-stripe.
//
// The models export two rates consumed by the hierarchical node-level
// models of section 4.2:
//   lambda_D: rate of array failure (drive-loss path), and
//   lambda_S: rate of a sector (hard) error during a critical re-stripe.
//
// `GeneralArrayModel` generalizes both figures to an m-fault-tolerant
// array: states 0..m count failed drives, state m+1 absorbs. The hard
// error probability h_m = (d-m) * C * HER applies on the transition into
// the critical state (h = (d-1)*C*HER for RAID 5, (d-2)*C*HER for RAID 6,
// matching section 4).
#pragma once

#include "ctmc/chain.hpp"
#include "util/units.hpp"

namespace nsrel::raid {

struct ArrayParams {
  int drives = 12;                 ///< d
  Hours drive_mttf{300'000.0};     ///< 1 / lambda_d
  PerHour restripe_rate{0.0};      ///< mu_d (from rebuild::RebuildPlanner)
  Bytes capacity = gigabytes(300.0);  ///< C per drive
  double her_per_byte = 8e-14;        ///< HER, errors per byte read
};

/// Rates exported to the node-level models.
struct ArrayRates {
  PerHour array_failure;  ///< lambda_D
  PerHour sector_error;   ///< lambda_S
};

class GeneralArrayModel {
 public:
  /// An array tolerating `fault_tolerance` drive failures (1 = RAID 5,
  /// 2 = RAID 6). Preconditions: 1 <= fault_tolerance < drives;
  /// restripe_rate > 0; drive_mttf > 0.
  GeneralArrayModel(ArrayParams params, int fault_tolerance);

  [[nodiscard]] const ArrayParams& params() const { return params_; }
  [[nodiscard]] int fault_tolerance() const { return fault_tolerance_; }

  /// Probability of a hard error during the critical re-stripe:
  /// (d - m) * C * HER.
  [[nodiscard]] double critical_hard_error_probability() const;

  /// The exact absorbing chain (Figure 1 for m=1, Figure 4 for m=2).
  [[nodiscard]] ctmc::Chain chain() const;

  /// MTTDL from numerically solving the exact chain.
  [[nodiscard]] Hours mttdl_exact() const;

  /// The paper's closed-form approximation:
  ///   mu_d^m / (d...(d-m) lambda_d^{m+1} + d...(d-m) lambda_d^m mu_d C HER)
  [[nodiscard]] Hours mttdl_closed_form() const;

  /// lambda_D and lambda_S (section 4.2's exports).
  [[nodiscard]] ArrayRates rates() const;

 private:
  ArrayParams params_;
  int fault_tolerance_;
};

/// Figure 1: RAID 5 (fault tolerance 1).
[[nodiscard]] GeneralArrayModel raid5(const ArrayParams& params);

/// Figure 4: RAID 6 (fault tolerance 2).
[[nodiscard]] GeneralArrayModel raid6(const ArrayParams& params);

/// RAID 5 MTTDL including the lower-order terms the paper prints before
/// approximating: ((2d-1-dh) lambda + mu) / (d(d-1)lambda^2 + d lambda mu h).
[[nodiscard]] Hours raid5_mttdl_full(const ArrayParams& params);

}  // namespace nsrel::raid
