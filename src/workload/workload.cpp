#include "workload/workload.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/event_names.hpp"
#include "obs/journal.hpp"
#include "util/assert.hpp"
#include "util/error.hpp"

namespace nsrel::workload {

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  NSREL_EXPECTS(n >= 1);
  NSREL_EXPECTS(exponent >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = total;
  }
  for (double& value : cdf_) value /= total;
  cdf_.back() = 1.0;  // guard against round-off at the top
}

std::size_t ZipfSampler::sample(Xoshiro256& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::probability(std::size_t k) const {
  NSREL_EXPECTS(k < cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

WorkloadResult run_read_workload(brick::ObjectStore& store,
                                 const std::vector<brick::ObjectId>& objects,
                                 const std::vector<std::size_t>& object_sizes,
                                 const WorkloadParams& params) {
  NSREL_EXPECTS(!objects.empty());
  NSREL_EXPECTS(objects.size() == object_sizes.size());
  NSREL_EXPECTS(params.operations >= 1);
  NSREL_EXPECTS(params.read_bytes >= 1);
  for (const std::size_t size : object_sizes) {
    NSREL_EXPECTS(size >= params.read_bytes);
  }

  store.reset_io_stats();
  Xoshiro256 rng(params.seed);
  const ZipfSampler popularity(objects.size(), params.zipf_exponent);

  WorkloadResult result;
  result.operations = params.operations;
  std::uint64_t decodes_before = 0;
  const auto chunk =
      static_cast<std::size_t>(store.params().chunk_size.value());
  for (int op = 0; op < params.operations; ++op) {
    const std::size_t pick = popularity.sample(rng);
    // Chunk-aligned offsets (the natural client block boundary): a
    // healthy read then touches exactly ceil(read_bytes/chunk) chunks,
    // making amplification 1.0 the clean baseline.
    const std::size_t span = object_sizes[pick] - params.read_bytes;
    const std::size_t aligned_slots = span / chunk + 1;
    const std::size_t offset = chunk * rng.below(aligned_slots);
    const Expected<std::vector<std::uint8_t>> read =
        store.try_read_range(objects[pick], offset, params.read_bytes);
    if (!read.has_value()) {
      ++result.failed_reads;
      if (obs::Journal::enabled()) {
        obs::Journal::instance().record(
            obs::seq_event(obs::event::kWorkloadReadFailed));
      }
    }
    const std::uint64_t decodes_now = store.io_stats().decode_operations;
    if (decodes_now > decodes_before) ++result.degraded_reads;
    decodes_before = decodes_now;
  }
  result.io = store.io_stats();
  result.read_amplification =
      result.io.read_amplification(store.params().chunk_size.value());
  return result;
}

}  // namespace nsrel::workload
