// Synthetic client workloads for the brick store: the foreground traffic
// whose degraded-mode amplification rebuild::DegradedModel prices
// analytically. The generator produces chunk-aligned random-range reads
// over a populated store with uniform or Zipf-skewed object popularity,
// and the runner measures the empirical read amplification from the
// store's I/O counters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "brick/object_store.hpp"
#include "util/rng.hpp"

namespace nsrel::workload {

/// Zipf(s) sampler over {0, ..., n-1} by inverse CDF on a precomputed
/// table (n is small here: object catalogs). s = 0 is uniform.
class ZipfSampler {
 public:
  /// Preconditions: n >= 1, exponent >= 0.
  ZipfSampler(std::size_t n, double exponent);

  [[nodiscard]] std::size_t sample(Xoshiro256& rng) const;

  /// Probability mass of item k (exposed for tests).
  [[nodiscard]] double probability(std::size_t k) const;

 private:
  std::vector<double> cdf_;
};

struct WorkloadParams {
  int operations = 1000;
  double zipf_exponent = 0.0;     ///< 0 = uniform popularity
  std::size_t read_bytes = 4096;  ///< logical size of each read
  std::uint64_t seed = 0x10ADULL;
};

struct WorkloadResult {
  brick::ObjectStore::IoStats io;     ///< counters for this run
  double read_amplification = 0.0;    ///< physical/logical chunk reads
  std::uint64_t degraded_reads = 0;   ///< ops that needed a decode
  std::uint64_t failed_reads = 0;     ///< ops that hit typed data loss
  int operations = 0;
};

/// Runs random-range reads against the store over the given objects and
/// returns the measured amplification. Resets the store's I/O counters.
/// Reads that hit a stripe beyond the code's tolerance are counted in
/// failed_reads instead of throwing, so clients keep serving against a
/// degraded store mid-rebuild. Preconditions: objects non-empty; every
/// object at least read_bytes long.
[[nodiscard]] WorkloadResult run_read_workload(
    brick::ObjectStore& store, const std::vector<brick::ObjectId>& objects,
    const std::vector<std::size_t>& object_sizes,
    const WorkloadParams& params);

}  // namespace nsrel::workload
