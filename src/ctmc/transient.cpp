#include "ctmc/transient.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/error.hpp"

namespace nsrel::ctmc {

TransientSolver::TransientSolver(const Chain& chain) : chain_(chain) {
  NSREL_EXPECTS(chain.state_count() > 0);
  const linalg::Matrix q = chain.generator();
  const std::size_t n = q.rows();
  for (std::size_t i = 0; i < n; ++i) {
    lambda_ = std::max(lambda_, -q(i, i));
  }
  if (lambda_ == 0.0) lambda_ = 1.0;  // all-absorbing chain: P = I
  p_ = linalg::Matrix::identity(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      p_(i, j) += q(i, j) / lambda_;
    }
  }
}

std::vector<double> TransientSolver::distribution_at(double t_hours,
                                                     StateId initial,
                                                     double tol) const {
  return try_distribution_at(t_hours, initial, tol).value_or_throw();
}

[[nodiscard]] Expected<std::vector<double>> TransientSolver::try_distribution_at(
    double t_hours, StateId initial, double tol) const {
  NSREL_EXPECTS(t_hours >= 0.0);
  NSREL_EXPECTS(initial < chain_.state_count());
  NSREL_EXPECTS(tol > 0.0);
  const std::size_t n = chain_.state_count();
  std::vector<double> v(n, 0.0);
  v[initial] = 1.0;
  if (t_hours == 0.0) return v;

  const double a = lambda_ * t_hours;
  if (!std::isfinite(a)) {
    return Error{ErrorCode::kInvalidParameter, "ctmc.transient",
                 "uniformization horizon Lambda*t is non-finite"};
  }
  // Poisson(k; a) computed iteratively in linear space with underflow
  // protection: start from the log of the k=0 term.
  std::vector<double> result(n, 0.0);
  double log_weight = -a;  // log Poisson(0; a)
  double accumulated = 0.0;
  // Iterate until the accumulated Poisson mass covers 1 - tol. Bound the
  // loop generously: a + 12*sqrt(a) + 64 terms covers any practical tail.
  const std::size_t max_terms =
      static_cast<std::size_t>(a + 12.0 * std::sqrt(a) + 64.0);
  for (std::size_t k = 0; k <= max_terms; ++k) {
    if (k > 0) {
      log_weight += std::log(a / static_cast<double>(k));
      // v <- v * P (row vector times matrix).
      std::vector<double> next(n, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        const double vi = v[i];
        if (vi == 0.0) continue;
        for (std::size_t j = 0; j < n; ++j) next[j] += vi * p_(i, j);
      }
      v = std::move(next);
    }
    const double weight = std::exp(log_weight);
    if (weight > 0.0) {
      for (std::size_t i = 0; i < n; ++i) result[i] += weight * v[i];
      accumulated += weight;
      if (1.0 - accumulated < tol) break;
    }
  }
  for (const double p : result) {
    if (!std::isfinite(p)) {
      return Error{ErrorCode::kNonFiniteResult, "ctmc.transient",
                   "transient distribution has a non-finite probability"};
    }
  }
  return result;
}

[[nodiscard]] Expected<double> TransientSolver::try_survival(double t_hours, StateId initial,
                                               double tol) const {
  const auto dist = try_distribution_at(t_hours, initial, tol);
  if (!dist.has_value()) return dist.error();
  double transient_mass = 0.0;
  for (const StateId s : chain_.transient_states()) {
    transient_mass += dist.value()[s];
  }
  return transient_mass;
}

double TransientSolver::survival(double t_hours, StateId initial,
                                 double tol) const {
  const std::vector<double> dist = distribution_at(t_hours, initial, tol);
  double transient_mass = 0.0;
  for (const StateId s : chain_.transient_states()) transient_mass += dist[s];
  return transient_mass;
}

std::vector<double> TransientSolver::survival_curve(
    const std::vector<double>& times_hours, StateId initial,
    double tol) const {
  std::vector<double> curve;
  curve.reserve(times_hours.size());
  for (const double t : times_hours) curve.push_back(survival(t, initial, tol));
  return curve;
}

}  // namespace nsrel::ctmc
