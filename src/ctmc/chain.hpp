// Continuous-time Markov chain representation.
//
// A `Chain` is a labeled state space with exponential transition rates,
// some states marked absorbing (data-loss states in this library's models).
// The class exposes the infinitesimal generator Q, its restriction Q_B to
// the transient (non-absorbing) states, and the paper appendix's
// "absorption matrix" R = -Q_B.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace nsrel::ctmc {

using StateId = std::size_t;

enum class StateKind : unsigned char { kTransient, kAbsorbing };

struct State {
  std::string label;
  StateKind kind = StateKind::kTransient;
};

struct Transition {
  StateId from = 0;
  StateId to = 0;
  double rate = 0.0;  ///< events per hour
};

class Chain {
 public:
  /// Adds a state; returns its id (ids are dense, in insertion order).
  StateId add_state(std::string label,
                    StateKind kind = StateKind::kTransient);

  /// Adds a transition with the given rate (> 0). Transitions out of
  /// absorbing states are rejected; parallel transitions accumulate.
  void add_transition(StateId from, StateId to, double rate);

  [[nodiscard]] std::size_t state_count() const { return states_.size(); }
  [[nodiscard]] std::size_t transient_count() const;
  [[nodiscard]] std::size_t absorbing_count() const;
  [[nodiscard]] const State& state(StateId id) const;
  [[nodiscard]] const std::vector<Transition>& transitions() const {
    return transitions_;
  }

  /// Id of the state with the given label; throws if absent or ambiguous.
  [[nodiscard]] StateId find_state(const std::string& label) const;

  /// Ids of transient states, in insertion order. This ordering defines the
  /// rows/columns of transient_generator() and absorption_matrix().
  [[nodiscard]] std::vector<StateId> transient_states() const;
  [[nodiscard]] std::vector<StateId> absorbing_states() const;

  /// Full infinitesimal generator Q: off-diagonal entries are transition
  /// rates, diagonal entries make each row sum to zero.
  [[nodiscard]] linalg::Matrix generator() const;

  /// Q_B: Q restricted to transient states.
  [[nodiscard]] linalg::Matrix transient_generator() const;

  /// R = -Q_B, the appendix's absorption matrix: positive diagonal,
  /// non-positive off-diagonal entries.
  [[nodiscard]] linalg::Matrix absorption_matrix() const;

  /// For each transient state (in transient_states() order), the total rate
  /// into the given absorbing state.
  [[nodiscard]] std::vector<double> rates_into(StateId absorbing) const;

  /// Total exit rate of a state (sum of outgoing transition rates).
  [[nodiscard]] double exit_rate(StateId id) const;

  /// Structural sanity checks: at least one transient and one absorbing
  /// state, and every transient state can reach an absorbing state.
  /// Returns an empty string when valid, else a description of the defect.
  [[nodiscard]] std::string validate() const;

 private:
  std::vector<State> states_;
  std::vector<Transition> transitions_;
};

}  // namespace nsrel::ctmc
