// Graphviz DOT export for Markov chains: render the paper's figures
// (and the recursive constructions beyond them) directly from the code
// that the solvers consume, so the documentation can never drift from the
// implementation. `dot -Tpdf` turns the output into Figure-5-style
// diagrams.
#pragma once

#include <iosfwd>
#include <string>

#include "ctmc/chain.hpp"

namespace nsrel::ctmc {

struct DotOptions {
  std::string graph_name = "chain";
  /// Print rates in engineering notation with this many significant
  /// digits.
  int rate_digits = 3;
  /// Left-to-right layout (the paper's figures read that way).
  bool left_to_right = true;
};

/// Writes the chain as a DOT digraph: transient states as circles,
/// absorbing states as double circles, edges labeled with rates.
void write_dot(const Chain& chain, std::ostream& out,
               const DotOptions& options = {});

/// Convenience: DOT text as a string.
[[nodiscard]] std::string to_dot(const Chain& chain,
                                 const DotOptions& options = {});

}  // namespace nsrel::ctmc
