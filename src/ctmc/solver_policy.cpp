#include "ctmc/solver_policy.hpp"

#include <cstddef>
#include <string>

#include "util/assert.hpp"

namespace nsrel::ctmc {

SolverPolicy parse_solver_policy(const std::string& name) {
  if (name == "auto") return SolverPolicy::kAuto;
  if (name == "dense") return SolverPolicy::kDense;
  if (name == "sparse") return SolverPolicy::kSparse;
  throw ContractViolation("unknown solver policy '" + name +
                          "' (use auto|dense|sparse)");
}

const char* solver_policy_name(SolverPolicy policy) {
  switch (policy) {
    case SolverPolicy::kAuto:
      return "auto";
    case SolverPolicy::kDense:
      return "dense";
    case SolverPolicy::kSparse:
      return "sparse";
  }
  NSREL_ASSERT(false);
  return "auto";
}

bool use_sparse(SolverPolicy policy, std::size_t dimension) {
  switch (policy) {
    case SolverPolicy::kDense:
      return false;
    case SolverPolicy::kSparse:
      return true;
    case SolverPolicy::kAuto:
      return dimension >= kSparseAutoThreshold;
  }
  NSREL_ASSERT(false);
  return false;
}

Error dense_dimension_error(const char* layer, std::size_t dimension) {
  return Error{ErrorCode::kInvalidParameter, layer,
               "dense solver refused: dimension " +
                   std::to_string(dimension) + " exceeds the dense cap of " +
                   std::to_string(kDenseMaxDimension) +
                   " (use SolverPolicy::kSparse or kAuto)"};
}

}  // namespace nsrel::ctmc
