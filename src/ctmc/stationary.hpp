// Stationary distribution of an irreducible CTMC (no absorbing states):
// solve pi * Q = 0 with sum(pi) = 1.
//
// The reliability models in this library are absorbing, but their
// "repairable" variants (data loss followed by restore from backup) are
// irreducible; the availability example and several tests use this solver.
#pragma once

#include <vector>

#include "ctmc/chain.hpp"

namespace nsrel::ctmc {

class StationarySolver {
 public:
  /// Stationary distribution over all states.
  /// Preconditions: no absorbing states; the chain is irreducible (the
  /// solve fails with a contract violation otherwise).
  [[nodiscard]] static std::vector<double> distribution(const Chain& chain);

  /// Long-run fraction of time spent in the given set of states.
  [[nodiscard]] static double occupancy(const Chain& chain,
                                        const std::vector<StateId>& states);
};

}  // namespace nsrel::ctmc
