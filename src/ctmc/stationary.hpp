// Stationary distribution of an irreducible CTMC (no absorbing states):
// solve pi * Q = 0 with sum(pi) = 1.
//
// The reliability models in this library are absorbing, but their
// "repairable" variants (data loss followed by restore from backup) are
// irreducible; the availability example and several tests use this solver.
#pragma once

#include <vector>

#include "ctmc/chain.hpp"
#include "ctmc/solver_policy.hpp"
#include "util/error.hpp"

namespace nsrel::ctmc {

class StationarySolver {
 public:
  /// Stationary distribution over all states.
  /// Preconditions: no absorbing states, non-empty chain. A reducible
  /// chain (singular solve) or a non-finite/negative distribution throws
  /// ErrorException; use try_distribution for the typed error.
  [[nodiscard]] static std::vector<double> distribution(
      const Chain& chain, SolverPolicy policy = SolverPolicy::kAuto);

  /// Non-throwing form: singular generator (reducible chain) and
  /// non-finite or negative probabilities come back as typed errors.
  /// `policy` selects the factorization backend (dense partial-pivot LU
  /// vs Markowitz sparse LU; agreement bound in DESIGN.md §11); a
  /// forced-dense solve above kDenseMaxDimension is refused with
  /// kInvalidParameter.
  [[nodiscard]] static Expected<std::vector<double>> try_distribution(
      const Chain& chain, SolverPolicy policy = SolverPolicy::kAuto);

  /// Long-run fraction of time spent in the given set of states.
  [[nodiscard]] static double occupancy(const Chain& chain,
                                        const std::vector<StateId>& states);
};

}  // namespace nsrel::ctmc
