// Solver-backend selection for the CTMC solve stack.
//
// Every numerical entry point (elimination, absorbing analysis,
// stationary distributions) has two backends: the original dense path
// (O(n^2) storage, O(n^3) factorization) and a sparse path that exploits
// the structure of the generators the models produce (the appendix
// recursion is a binary tree, so leaf-first elimination has zero
// fill-in and runs in O(n)). `SolverPolicy` picks between them:
//
//   kAuto    dense below kSparseAutoThreshold transient states, sparse
//            at or above it — the default everywhere, chosen so the
//            paper-baseline chains (k <= 5, <= 63 states) keep the
//            exact dense arithmetic while the recursion's large-k
//            chains switch to the sparse path.
//   kDense   always the dense path. Refused (typed invalid_parameter
//            error) above kDenseMaxDimension, where the O(n^2) matrix
//            alone is gigabytes.
//   kSparse  always the sparse path.
//
// The GTH elimination sparse backend replays the dense backend's
// elimination order and per-entry arithmetic exactly, so its results
// are BIT-IDENTICAL to dense at any size — `auto` never changes MTTDL
// bytes, only wall clock. The LU-based backends (absorbing occupancy,
// stationary distributions) pivot differently and agree to the bound
// documented in DESIGN.md §11 (enforced by tests/diffharness).
#pragma once

#include <cstddef>
#include <string>

#include "util/error.hpp"

namespace nsrel::ctmc {

enum class SolverPolicy : unsigned char { kAuto, kDense, kSparse };

/// Transient-state dimension at which kAuto switches to the sparse
/// backend. Set from the bench/perf_solvers crossover ablation: dense
/// wins (by ns) below a few dozen states, sparse wins above; 64 keeps
/// every paper-figure chain except the k >= 6 recursion on dense.
inline constexpr std::size_t kSparseAutoThreshold = 64;

/// Largest dimension the dense backend accepts when forced with
/// kDense: beyond this the dense matrix alone exceeds ~128 MiB and the
/// O(n^3) factorization is hopeless, so the solvers return a typed
/// invalid_parameter error instead of thrashing.
inline constexpr std::size_t kDenseMaxDimension = 4096;

/// Parses the canonical policy names shared by the CLI's --solver flag:
/// "auto" | "dense" | "sparse". Throws ContractViolation on anything
/// else.
[[nodiscard]] SolverPolicy parse_solver_policy(const std::string& name);

/// The canonical name parse_solver_policy accepts.
[[nodiscard]] const char* solver_policy_name(SolverPolicy policy);

/// True when `policy` resolves to the sparse backend at this dimension.
[[nodiscard]] bool use_sparse(SolverPolicy policy, std::size_t dimension);

/// The typed error for a forced-dense solve whose dimension exceeds
/// kDenseMaxDimension (shared by every solver so the message and code
/// are identical on all paths). `layer` names the solver, e.g.
/// "ctmc.elimination".
[[nodiscard]] Error dense_dimension_error(const char* layer,
                                          std::size_t dimension);

/// Guard shared by the dense entry points: nullopt when the dense
/// backend may run, else the typed error.
[[nodiscard]] inline bool dense_refuses(std::size_t dimension) {
  return dimension > kDenseMaxDimension;
}

}  // namespace nsrel::ctmc
