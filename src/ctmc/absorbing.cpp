#include "ctmc/absorbing.hpp"

#include <cmath>
#include <cstddef>
#include <numeric>
#include <string>
#include <vector>

#include "ctmc/elimination.hpp"
#include "linalg/lu.hpp"
#include "util/assert.hpp"
#include "util/format.hpp"
#include "util/math.hpp"

namespace nsrel::ctmc {

AbsorbingAnalysis AbsorbingSolver::analyze(const Chain& chain,
                                           StateId initial) {
  return try_analyze(chain, initial).value_or_throw();
}

AbsorbingAnalysis AbsorbingSolver::analyze_distribution(
    const Chain& chain, const std::vector<double>& initial) {
  return try_analyze_distribution(chain, initial).value_or_throw();
}

Expected<AbsorbingAnalysis> AbsorbingSolver::try_analyze(
    const Chain& chain, StateId initial, const NumericalGuards& guards) {
  NSREL_EXPECTS(initial < chain.state_count());
  NSREL_EXPECTS(chain.state(initial).kind == StateKind::kTransient);
  const auto transient = chain.transient_states();
  std::vector<double> pi0(transient.size(), 0.0);
  for (std::size_t i = 0; i < transient.size(); ++i) {
    if (transient[i] == initial) pi0[i] = 1.0;
  }
  return try_analyze_distribution(chain, pi0, guards);
}

Expected<AbsorbingAnalysis> AbsorbingSolver::try_analyze_distribution(
    const Chain& chain, const std::vector<double>& initial,
    const NumericalGuards& guards) {
  const std::string defect = chain.validate();
  NSREL_EXPECTS(defect.empty());
  const auto transient = chain.transient_states();
  NSREL_EXPECTS(initial.size() == transient.size());
  NSREL_EXPECTS(approx_equal(
      std::accumulate(initial.begin(), initial.end(), 0.0), 1.0, 1e-9));

  const linalg::Matrix r = chain.absorption_matrix();
  const linalg::LuDecomposition lu(r);
  if (lu.singular()) {
    return Error{ErrorCode::kSingularGenerator, "ctmc.absorbing",
                 "absorption matrix is numerically singular"};
  }
  const double rcond = lu.rcond_estimate();
  if (rcond < guards.min_rcond) {
    return Error{ErrorCode::kIllConditioned, "ctmc.absorbing",
                 "absorption matrix rcond " + sci(rcond) +
                     " below threshold " + sci(guards.min_rcond)};
  }

  AbsorbingAnalysis result;
  // tau^T R = pi0^T  <=>  R^T tau = pi0.
  result.occupancy_hours = lu.solve_transposed(initial);

  KahanSum total;
  for (const double tau : result.occupancy_hours) total.add(tau);
  result.mean_time_to_absorption_hours = total.value();

  // m = R^{-1} 1: expected time to absorption from each transient state.
  // E[T^2] = 2 * sum_i tau_i * m_i (phase-type second moment).
  const linalg::Vector ones(transient.size(), 1.0);
  const linalg::Vector m = lu.solve(ones);
  KahanSum second_moment;
  for (std::size_t i = 0; i < m.size(); ++i) {
    second_moment.add(2.0 * result.occupancy_hours[i] * m[i]);
  }
  const double variance =
      second_moment.value() - result.mean_time_to_absorption_hours *
                                  result.mean_time_to_absorption_hours;
  result.stddev_time_to_absorption_hours =
      variance > 0.0 ? std::sqrt(variance) : 0.0;

  // P(absorb into a) = sum_i tau_i * rate(i -> a).
  for (const StateId a : chain.absorbing_states()) {
    const std::vector<double> rates = chain.rates_into(a);
    KahanSum p;
    for (std::size_t i = 0; i < rates.size(); ++i) {
      p.add(result.occupancy_hours[i] * rates[i]);
    }
    result.absorption_probability.push_back(p.value());
  }

  // Health check on everything the solve produced: a conditioning
  // problem that slipped past the rcond estimate shows up here as NaN,
  // infinity, or a negative mean time.
  bool finite = std::isfinite(result.mean_time_to_absorption_hours) &&
                result.mean_time_to_absorption_hours > 0.0 &&
                std::isfinite(result.stddev_time_to_absorption_hours);
  for (const double tau : result.occupancy_hours) {
    finite = finite && std::isfinite(tau);
  }
  for (const double p : result.absorption_probability) {
    finite = finite && std::isfinite(p);
  }
  if (!finite) {
    return Error{ErrorCode::kNonFiniteResult, "ctmc.absorbing",
                 "absorption analysis produced a non-finite or nonpositive "
                 "result"};
  }
  return result;
}

double AbsorbingSolver::mttdl_hours(const Chain& chain, StateId initial) {
  // The GTH-style elimination path: identical to the LU route at normal
  // conditioning, and still exact when MTTDL/rate ratios exceed double
  // precision (where LU produces garbage, including negative times).
  return EliminationSolver::mean_absorption_time_hours(chain, initial);
}

}  // namespace nsrel::ctmc
