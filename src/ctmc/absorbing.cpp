#include "ctmc/absorbing.hpp"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "ctmc/elimination.hpp"
#include "linalg/lu.hpp"
#include "linalg/sparse/sparse_lu.hpp"
#include "linalg/sparse/sparse_matrix.hpp"
#include "obs/probe_names.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/format.hpp"
#include "util/math.hpp"

namespace nsrel::ctmc {

namespace {

/// Assembles R = -Q_B in CSR form straight from the transition list —
/// the sparse twin of Chain::absorption_matrix, same per-cell
/// accumulation order, without the n x n intermediate.
linalg::sparse::CsrMatrix sparse_absorption_matrix(const Chain& chain) {
  const auto transient = chain.transient_states();
  const std::size_t n = transient.size();
  std::vector<std::size_t> index(chain.state_count(), chain.state_count());
  for (std::size_t i = 0; i < n; ++i) index[transient[i]] = i;

  std::vector<linalg::sparse::Triplet> triplets;
  triplets.reserve(2 * chain.transitions().size());
  for (const auto& t : chain.transitions()) {
    const std::size_t from = index[t.from];
    NSREL_ASSERT(from < n);
    // Diagonal reflects ALL outflow, including flow into absorbing
    // states; off-diagonals are negated transient-to-transient rates.
    triplets.push_back({static_cast<std::uint32_t>(from),
                        static_cast<std::uint32_t>(from), t.rate});
    const std::size_t to = index[t.to];
    if (to < n) {
      triplets.push_back({static_cast<std::uint32_t>(from),
                          static_cast<std::uint32_t>(to), -t.rate});
    }
  }
  return linalg::sparse::CsrMatrix::from_triplets(n, n, triplets);
}

/// Everything downstream of the factorization, shared verbatim between
/// the dense and sparse backends (both expose singular/rcond_estimate/
/// solve/solve_transposed): occupancy, MTTDL, phase-type stddev,
/// absorption probabilities, and the final health check.
template <typename Factorization>
[[nodiscard]] Expected<AbsorbingAnalysis> finish_analysis(const Chain& chain,
                                            const Factorization& lu,
                                            const std::vector<double>& initial,
                                            const NumericalGuards& guards) {
  if (lu.singular()) {
    return Error{ErrorCode::kSingularGenerator, "ctmc.absorbing",
                 "absorption matrix is numerically singular"};
  }
  const double rcond = lu.rcond_estimate();
  if (rcond < guards.min_rcond) {
    return Error{ErrorCode::kIllConditioned, "ctmc.absorbing",
                 "absorption matrix rcond " + sci(rcond) +
                     " below threshold " + sci(guards.min_rcond)};
  }

  AbsorbingAnalysis result;
  // tau^T R = pi0^T  <=>  R^T tau = pi0.
  result.occupancy_hours = lu.solve_transposed(initial);

  KahanSum total;
  for (const double tau : result.occupancy_hours) total.add(tau);
  result.mean_time_to_absorption_hours = total.value();

  // m = R^{-1} 1: expected time to absorption from each transient state.
  // E[T^2] = 2 * sum_i tau_i * m_i (phase-type second moment).
  const linalg::Vector ones(result.occupancy_hours.size(), 1.0);
  const linalg::Vector m = lu.solve(ones);
  KahanSum second_moment;
  for (std::size_t i = 0; i < m.size(); ++i) {
    second_moment.add(2.0 * result.occupancy_hours[i] * m[i]);
  }
  const double variance =
      second_moment.value() - result.mean_time_to_absorption_hours *
                                  result.mean_time_to_absorption_hours;
  result.stddev_time_to_absorption_hours =
      variance > 0.0 ? std::sqrt(variance) : 0.0;

  // P(absorb into a) = sum_i tau_i * rate(i -> a).
  for (const StateId a : chain.absorbing_states()) {
    const std::vector<double> rates = chain.rates_into(a);
    KahanSum p;
    for (std::size_t i = 0; i < rates.size(); ++i) {
      p.add(result.occupancy_hours[i] * rates[i]);
    }
    result.absorption_probability.push_back(p.value());
  }

  // Health check on everything the solve produced: a conditioning
  // problem that slipped past the rcond estimate shows up here as NaN,
  // infinity, or a negative mean time.
  bool finite = std::isfinite(result.mean_time_to_absorption_hours) &&
                result.mean_time_to_absorption_hours > 0.0 &&
                std::isfinite(result.stddev_time_to_absorption_hours);
  for (const double tau : result.occupancy_hours) {
    finite = finite && std::isfinite(tau);
  }
  for (const double p : result.absorption_probability) {
    finite = finite && std::isfinite(p);
  }
  if (!finite) {
    return Error{ErrorCode::kNonFiniteResult, "ctmc.absorbing",
                 "absorption analysis produced a non-finite or nonpositive "
                 "result"};
  }
  return result;
}

}  // namespace

AbsorbingAnalysis AbsorbingSolver::analyze(const Chain& chain, StateId initial,
                                           SolverPolicy policy) {
  return try_analyze(chain, initial, {}, policy).value_or_throw();
}

AbsorbingAnalysis AbsorbingSolver::analyze_distribution(
    const Chain& chain, const std::vector<double>& initial,
    SolverPolicy policy) {
  return try_analyze_distribution(chain, initial, {}, policy)
      .value_or_throw();
}

[[nodiscard]] Expected<AbsorbingAnalysis> AbsorbingSolver::try_analyze(
    const Chain& chain, StateId initial, const NumericalGuards& guards,
    SolverPolicy policy) {
  NSREL_EXPECTS(initial < chain.state_count());
  NSREL_EXPECTS(chain.state(initial).kind == StateKind::kTransient);
  const auto transient = chain.transient_states();
  std::vector<double> pi0(transient.size(), 0.0);
  for (std::size_t i = 0; i < transient.size(); ++i) {
    if (transient[i] == initial) pi0[i] = 1.0;
  }
  return try_analyze_distribution(chain, pi0, guards, policy);
}

[[nodiscard]] Expected<AbsorbingAnalysis> AbsorbingSolver::try_analyze_distribution(
    const Chain& chain, const std::vector<double>& initial,
    const NumericalGuards& guards, SolverPolicy policy) {
  const std::string defect = chain.validate();
  NSREL_EXPECTS(defect.empty());
  const auto transient = chain.transient_states();
  NSREL_EXPECTS(initial.size() == transient.size());
  NSREL_EXPECTS(approx_equal(
      std::accumulate(initial.begin(), initial.end(), 0.0), 1.0, 1e-9));

  const bool sparse_backend = use_sparse(policy, transient.size());
  obs::Span span(obs::probe::kSpanAbsorbingSolve,
                 obs::probe::kSpanCategoryCtmc);
  if (span.armed()) {
    span.arg("backend", sparse_backend ? "sparse" : "dense");
    span.arg("states", static_cast<std::uint64_t>(transient.size()));
  }
  if (sparse_backend) {
    const linalg::sparse::SparseLu lu(sparse_absorption_matrix(chain));
    return finish_analysis(chain, lu, initial, guards);
  }
  if (policy == SolverPolicy::kDense && dense_refuses(transient.size())) {
    return dense_dimension_error("ctmc.absorbing", transient.size());
  }
  const linalg::LuDecomposition lu(chain.absorption_matrix());
  return finish_analysis(chain, lu, initial, guards);
}

double AbsorbingSolver::mttdl_hours(const Chain& chain, StateId initial,
                                    SolverPolicy policy) {
  // The GTH-style elimination path: identical to the LU route at normal
  // conditioning, and still exact when MTTDL/rate ratios exceed double
  // precision (where LU produces garbage, including negative times).
  return EliminationSolver::mean_absorption_time_hours(chain, initial,
                                                       policy);
}

}  // namespace nsrel::ctmc
