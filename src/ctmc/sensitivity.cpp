#include "ctmc/sensitivity.hpp"

#include <cmath>
#include <cstddef>
#include <vector>

#include "linalg/lu.hpp"
#include "util/assert.hpp"
#include "util/format.hpp"

namespace nsrel::ctmc {

double SensitivitySolver::mtta_derivative(const Chain& chain, StateId initial,
                                          const TransitionSelector& selector) {
  return try_mtta_derivative(chain, initial, selector).value_or_throw();
}

[[nodiscard]] Expected<double> SensitivitySolver::try_mtta_derivative(
    const Chain& chain, StateId initial, const TransitionSelector& selector,
    const NumericalGuards& guards) {
  NSREL_EXPECTS(chain.validate().empty());
  NSREL_EXPECTS(initial < chain.state_count());
  NSREL_EXPECTS(chain.state(initial).kind == StateKind::kTransient);
  NSREL_EXPECTS(selector != nullptr);

  const auto transient = chain.transient_states();
  const std::size_t n = transient.size();
  std::vector<std::size_t> index(chain.state_count(), n);
  for (std::size_t i = 0; i < n; ++i) index[transient[i]] = i;

  const linalg::LuDecomposition lu(chain.absorption_matrix());
  if (lu.singular()) {
    return Error{ErrorCode::kSingularGenerator, "ctmc.sensitivity",
                 "absorption matrix is numerically singular"};
  }
  const double rcond = lu.rcond_estimate();
  if (rcond < guards.min_rcond) {
    return Error{ErrorCode::kIllConditioned, "ctmc.sensitivity",
                 "absorption matrix rcond " + sci(rcond) +
                     " below threshold " + sci(guards.min_rcond)};
  }

  // m = R^{-1} 1 (mean absorption times), y = R^{-T} e_init.
  const linalg::Vector m = lu.solve(linalg::Vector(n, 1.0));
  linalg::Vector e_init(n, 0.0);
  e_init[index[initial]] = 1.0;
  const linalg::Vector y = lu.solve_transposed(e_init);

  // dMTTA/dtheta = -y^T D m with D = dR/dtheta assembled on the fly.
  double derivative = 0.0;
  for (const auto& t : chain.transitions()) {
    if (!selector(t)) continue;
    const std::size_t from = index[t.from];
    NSREL_ASSERT(from < n);
    // Diagonal of R grows with the rate regardless of destination.
    double contribution = y[from] * t.rate * m[from];
    const std::size_t to = index[t.to];
    if (to < n) contribution -= y[from] * t.rate * m[to];
    derivative -= contribution;
  }
  if (!std::isfinite(derivative)) {
    return Error{ErrorCode::kNonFiniteResult, "ctmc.sensitivity",
                 "MTTA derivative is non-finite"};
  }
  return derivative;
}

double SensitivitySolver::mtta_elasticity(const Chain& chain, StateId initial,
                                          const TransitionSelector& selector) {
  return try_mtta_elasticity(chain, initial, selector).value_or_throw();
}

[[nodiscard]] Expected<double> SensitivitySolver::try_mtta_elasticity(
    const Chain& chain, StateId initial, const TransitionSelector& selector,
    const NumericalGuards& guards) {
  const auto derivative =
      try_mtta_derivative(chain, initial, selector, guards);
  if (!derivative.has_value()) return derivative.error();

  const linalg::LuDecomposition lu(chain.absorption_matrix());
  // try_mtta_derivative already screened singular/ill-conditioned.
  NSREL_ASSERT(!lu.singular());
  const auto transient = chain.transient_states();
  std::size_t init_index = transient.size();
  for (std::size_t i = 0; i < transient.size(); ++i) {
    if (transient[i] == initial) init_index = i;
  }
  NSREL_EXPECTS(init_index < transient.size());
  const linalg::Vector m = lu.solve(linalg::Vector(transient.size(), 1.0));
  const double mtta = m[init_index];
  if (!std::isfinite(mtta) || mtta == 0.0) {
    return Error{ErrorCode::kNonFiniteResult, "ctmc.sensitivity",
                 "MTTA is non-finite or zero, elasticity undefined"};
  }
  const double elasticity = derivative.value() / mtta;
  if (!std::isfinite(elasticity)) {
    return Error{ErrorCode::kNonFiniteResult, "ctmc.sensitivity",
                 "MTTA elasticity is non-finite"};
  }
  return elasticity;
}

}  // namespace nsrel::ctmc
