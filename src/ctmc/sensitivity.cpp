#include "ctmc/sensitivity.hpp"

#include <cstddef>
#include <vector>

#include "linalg/lu.hpp"
#include "util/assert.hpp"

namespace nsrel::ctmc {

double SensitivitySolver::mtta_derivative(const Chain& chain, StateId initial,
                                          const TransitionSelector& selector) {
  NSREL_EXPECTS(chain.validate().empty());
  NSREL_EXPECTS(initial < chain.state_count());
  NSREL_EXPECTS(chain.state(initial).kind == StateKind::kTransient);
  NSREL_EXPECTS(selector != nullptr);

  const auto transient = chain.transient_states();
  const std::size_t n = transient.size();
  std::vector<std::size_t> index(chain.state_count(), n);
  for (std::size_t i = 0; i < n; ++i) index[transient[i]] = i;

  const linalg::LuDecomposition lu(chain.absorption_matrix());
  NSREL_EXPECTS(!lu.singular());

  // m = R^{-1} 1 (mean absorption times), y = R^{-T} e_init.
  const linalg::Vector m = lu.solve(linalg::Vector(n, 1.0));
  linalg::Vector e_init(n, 0.0);
  e_init[index[initial]] = 1.0;
  const linalg::Vector y = lu.solve_transposed(e_init);

  // dMTTA/dtheta = -y^T D m with D = dR/dtheta assembled on the fly.
  double derivative = 0.0;
  for (const auto& t : chain.transitions()) {
    if (!selector(t)) continue;
    const std::size_t from = index[t.from];
    NSREL_ASSERT(from < n);
    // Diagonal of R grows with the rate regardless of destination.
    double contribution = y[from] * t.rate * m[from];
    const std::size_t to = index[t.to];
    if (to < n) contribution -= y[from] * t.rate * m[to];
    derivative -= contribution;
  }
  return derivative;
}

double SensitivitySolver::mtta_elasticity(const Chain& chain, StateId initial,
                                          const TransitionSelector& selector) {
  const linalg::LuDecomposition lu(chain.absorption_matrix());
  NSREL_EXPECTS(!lu.singular());
  const auto transient = chain.transient_states();
  std::size_t init_index = transient.size();
  for (std::size_t i = 0; i < transient.size(); ++i) {
    if (transient[i] == initial) init_index = i;
  }
  NSREL_EXPECTS(init_index < transient.size());
  const linalg::Vector m = lu.solve(linalg::Vector(transient.size(), 1.0));
  const double mtta = m[init_index];
  NSREL_ASSERT(mtta != 0.0);
  return mtta_derivative(chain, initial, selector) / mtta;
}

}  // namespace nsrel::ctmc
