#include "ctmc/chain.hpp"

#include <algorithm>
#include <cstddef>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace nsrel::ctmc {

StateId Chain::add_state(std::string label, StateKind kind) {
  states_.push_back(State{std::move(label), kind});
  return states_.size() - 1;
}

void Chain::add_transition(StateId from, StateId to, double rate) {
  NSREL_EXPECTS(from < states_.size());
  NSREL_EXPECTS(to < states_.size());
  NSREL_EXPECTS(from != to);
  NSREL_EXPECTS(rate > 0.0);
  NSREL_EXPECTS(states_[from].kind == StateKind::kTransient);
  for (auto& t : transitions_) {
    if (t.from == from && t.to == to) {
      t.rate += rate;
      return;
    }
  }
  transitions_.push_back(Transition{from, to, rate});
}

std::size_t Chain::transient_count() const {
  return static_cast<std::size_t>(
      std::count_if(states_.begin(), states_.end(), [](const State& s) {
        return s.kind == StateKind::kTransient;
      }));
}

std::size_t Chain::absorbing_count() const {
  return states_.size() - transient_count();
}

const State& Chain::state(StateId id) const {
  NSREL_EXPECTS(id < states_.size());
  return states_[id];
}

StateId Chain::find_state(const std::string& label) const {
  StateId found = states_.size();
  for (StateId i = 0; i < states_.size(); ++i) {
    if (states_[i].label == label) {
      NSREL_EXPECTS(found == states_.size());  // ambiguous label
      found = i;
    }
  }
  NSREL_EXPECTS(found < states_.size());  // missing label
  return found;
}

std::vector<StateId> Chain::transient_states() const {
  std::vector<StateId> result;
  for (StateId i = 0; i < states_.size(); ++i) {
    if (states_[i].kind == StateKind::kTransient) result.push_back(i);
  }
  return result;
}

std::vector<StateId> Chain::absorbing_states() const {
  std::vector<StateId> result;
  for (StateId i = 0; i < states_.size(); ++i) {
    if (states_[i].kind == StateKind::kAbsorbing) result.push_back(i);
  }
  return result;
}

linalg::Matrix Chain::generator() const {
  const std::size_t n = states_.size();
  linalg::Matrix q(n, n);
  for (const auto& t : transitions_) {
    q(t.from, t.to) += t.rate;
    q(t.from, t.from) -= t.rate;
  }
  return q;
}

linalg::Matrix Chain::transient_generator() const {
  const auto transient = transient_states();
  // Map full state id -> transient index.
  std::vector<std::size_t> index(states_.size(), states_.size());
  for (std::size_t i = 0; i < transient.size(); ++i) index[transient[i]] = i;

  linalg::Matrix qb(transient.size(), transient.size());
  for (const auto& t : transitions_) {
    const std::size_t from = index[t.from];
    if (from == states_.size()) continue;  // from absorbing (cannot happen)
    qb(from, from) -= t.rate;  // diagonal reflects ALL outflow, including
                               // flow into absorbing states
    const std::size_t to = index[t.to];
    if (to != states_.size()) qb(from, to) += t.rate;
  }
  return qb;
}

linalg::Matrix Chain::absorption_matrix() const {
  linalg::Matrix r = transient_generator();
  r *= -1.0;
  return r;
}

std::vector<double> Chain::rates_into(StateId absorbing) const {
  NSREL_EXPECTS(absorbing < states_.size());
  NSREL_EXPECTS(states_[absorbing].kind == StateKind::kAbsorbing);
  const auto transient = transient_states();
  std::vector<std::size_t> index(states_.size(), states_.size());
  for (std::size_t i = 0; i < transient.size(); ++i) index[transient[i]] = i;

  std::vector<double> rates(transient.size(), 0.0);
  for (const auto& t : transitions_) {
    if (t.to != absorbing) continue;
    const std::size_t from = index[t.from];
    NSREL_ASSERT(from != states_.size());
    rates[from] += t.rate;
  }
  return rates;
}

double Chain::exit_rate(StateId id) const {
  NSREL_EXPECTS(id < states_.size());
  double total = 0.0;
  for (const auto& t : transitions_) {
    if (t.from == id) total += t.rate;
  }
  return total;
}

std::string Chain::validate() const {
  if (transient_count() == 0) return "chain has no transient states";
  if (absorbing_count() == 0) return "chain has no absorbing states";

  // BFS on the reversed graph from absorbing states: every transient state
  // must be able to reach absorption, otherwise MTTDL is infinite and the
  // absorption matrix is singular.
  std::vector<char> reaches(states_.size(), 0);
  std::queue<StateId> frontier;
  for (const StateId a : absorbing_states()) {
    reaches[a] = 1;
    frontier.push(a);
  }
  while (!frontier.empty()) {
    const StateId current = frontier.front();
    frontier.pop();
    for (const auto& t : transitions_) {
      if (t.to == current && !reaches[t.from]) {
        reaches[t.from] = 1;
        frontier.push(t.from);
      }
    }
  }
  for (StateId i = 0; i < states_.size(); ++i) {
    if (!reaches[i]) {
      return "state '" + states_[i].label + "' cannot reach absorption";
    }
  }
  return {};
}

}  // namespace nsrel::ctmc
