#include "ctmc/stationary.hpp"

#include <cmath>
#include <cstddef>
#include <vector>

#include "linalg/lu.hpp"
#include "util/assert.hpp"

namespace nsrel::ctmc {

std::vector<double> StationarySolver::distribution(const Chain& chain) {
  return try_distribution(chain).value_or_throw();
}

Expected<std::vector<double>> StationarySolver::try_distribution(
    const Chain& chain) {
  NSREL_EXPECTS(chain.absorbing_count() == 0);
  const std::size_t n = chain.state_count();
  NSREL_EXPECTS(n > 0);

  // pi Q = 0 with sum(pi) = 1: transpose to Q^T pi^T = 0 and replace the
  // last equation by the normalization row.
  linalg::Matrix a = chain.generator().transpose();
  for (std::size_t j = 0; j < n; ++j) a(n - 1, j) = 1.0;
  linalg::Vector b(n, 0.0);
  b[n - 1] = 1.0;

  const auto solution = linalg::solve(a, b);
  if (!solution.has_value()) {  // singular iff chain is reducible
    return Error{ErrorCode::kSingularGenerator, "ctmc.stationary",
                 "generator is singular (chain is reducible)"};
  }
  for (const double p : *solution) {
    if (!std::isfinite(p) || p < -1e-12) {
      return Error{ErrorCode::kNonFiniteResult, "ctmc.stationary",
                   "stationary distribution has a non-finite or negative "
                   "probability"};
    }
  }
  return *solution;
}

double StationarySolver::occupancy(const Chain& chain,
                                   const std::vector<StateId>& states) {
  const std::vector<double> pi = distribution(chain);
  double total = 0.0;
  for (const StateId s : states) {
    NSREL_EXPECTS(s < pi.size());
    total += pi[s];
  }
  return total;
}

}  // namespace nsrel::ctmc
