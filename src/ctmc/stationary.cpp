#include "ctmc/stationary.hpp"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/lu.hpp"
#include "linalg/sparse/sparse_lu.hpp"
#include "linalg/sparse/sparse_matrix.hpp"
#include "obs/probe_names.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace nsrel::ctmc {

namespace {

/// Q^T with the last row replaced by the normalization equation, in CSR
/// form straight from the transition list (no n x n intermediate).
linalg::sparse::CsrMatrix sparse_normalized_transpose(const Chain& chain) {
  const std::size_t n = chain.state_count();
  std::vector<linalg::sparse::Triplet> triplets;
  triplets.reserve(2 * chain.transitions().size() + n);
  for (const auto& t : chain.transitions()) {
    // Q's (from, to) += rate and (from, from) -= rate, transposed —
    // except entries landing in the normalization row.
    if (t.to != n - 1) {
      triplets.push_back({static_cast<std::uint32_t>(t.to),
                          static_cast<std::uint32_t>(t.from), t.rate});
    }
    if (t.from != n - 1) {
      triplets.push_back({static_cast<std::uint32_t>(t.from),
                          static_cast<std::uint32_t>(t.from), -t.rate});
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    triplets.push_back({static_cast<std::uint32_t>(n - 1),
                        static_cast<std::uint32_t>(j), 1.0});
  }
  return linalg::sparse::CsrMatrix::from_triplets(n, n, triplets);
}

}  // namespace

std::vector<double> StationarySolver::distribution(const Chain& chain,
                                                   SolverPolicy policy) {
  return try_distribution(chain, policy).value_or_throw();
}

[[nodiscard]] Expected<std::vector<double>> StationarySolver::try_distribution(
    const Chain& chain, SolverPolicy policy) {
  NSREL_EXPECTS(chain.absorbing_count() == 0);
  const std::size_t n = chain.state_count();
  NSREL_EXPECTS(n > 0);

  // pi Q = 0 with sum(pi) = 1: transpose to Q^T pi^T = 0 and replace the
  // last equation by the normalization row.
  const bool sparse_backend = use_sparse(policy, n);
  obs::Span span(obs::probe::kSpanStationarySolve,
                 obs::probe::kSpanCategoryCtmc);
  if (span.armed()) {
    span.arg("backend", sparse_backend ? "sparse" : "dense");
    span.arg("states", static_cast<std::uint64_t>(n));
  }
  linalg::Vector solution;
  if (sparse_backend) {
    const linalg::sparse::SparseLu lu(sparse_normalized_transpose(chain));
    if (lu.singular()) {  // singular iff chain is reducible
      return Error{ErrorCode::kSingularGenerator, "ctmc.stationary",
                   "generator is singular (chain is reducible)"};
    }
    linalg::Vector b(n, 0.0);
    b[n - 1] = 1.0;
    solution = lu.solve(b);
  } else {
    if (policy == SolverPolicy::kDense && dense_refuses(n)) {
      return dense_dimension_error("ctmc.stationary", n);
    }
    linalg::Matrix a = chain.generator().transpose();
    for (std::size_t j = 0; j < n; ++j) a(n - 1, j) = 1.0;
    linalg::Vector b(n, 0.0);
    b[n - 1] = 1.0;

    const auto dense = linalg::solve(a, b);
    if (!dense.has_value()) {  // singular iff chain is reducible
      return Error{ErrorCode::kSingularGenerator, "ctmc.stationary",
                   "generator is singular (chain is reducible)"};
    }
    solution = *dense;
  }
  for (const double p : solution) {
    if (!std::isfinite(p) || p < -1e-12) {
      return Error{ErrorCode::kNonFiniteResult, "ctmc.stationary",
                   "stationary distribution has a non-finite or negative "
                   "probability"};
    }
  }
  return solution;
}

double StationarySolver::occupancy(const Chain& chain,
                                   const std::vector<StateId>& states) {
  const std::vector<double> pi = distribution(chain);
  double total = 0.0;
  for (const StateId s : states) {
    NSREL_EXPECTS(s < pi.size());
    total += pi[s];
  }
  return total;
}

}  // namespace nsrel::ctmc
