// Absorbing-chain analysis: mean time to absorption (the paper's MTTDL),
// per-state occupancy times, absorption probabilities and the standard
// deviation of the absorption time.
//
// Method (paper appendix, after Trivedi): with B the transient states,
// occupancy times tau solve tau_B * Q_B = -pi_B(0); then
// MTTDL = sum_i tau_i = <pi0> * R^{-1} * <1,...,1>^t with R = -Q_B.
#pragma once

#include <vector>

#include "ctmc/chain.hpp"
#include "ctmc/solver_policy.hpp"
#include "util/error.hpp"

namespace nsrel::ctmc {

struct AbsorbingAnalysis {
  /// Expected total time spent in each transient state before absorption,
  /// indexed like Chain::transient_states(). Hours.
  std::vector<double> occupancy_hours;

  /// Mean time to absorption = sum of occupancy times. Hours.
  double mean_time_to_absorption_hours = 0.0;

  /// Standard deviation of the absorption time (phase-type second moment).
  double stddev_time_to_absorption_hours = 0.0;

  /// Probability of eventually absorbing into each absorbing state,
  /// indexed like Chain::absorbing_states(). Sums to 1.
  std::vector<double> absorption_probability;
};

class AbsorbingSolver {
 public:
  /// Analyzes the chain starting from transient state `initial`
  /// (a full-state id; defaults to state 0).
  /// Preconditions: chain.validate() passes; `initial` is transient.
  /// Numerical failures (singular or ill-conditioned absorption matrix,
  /// non-finite results) throw ErrorException; use try_analyze to get
  /// the typed error without an exception.
  [[nodiscard]] static AbsorbingAnalysis analyze(
      const Chain& chain, StateId initial = 0,
      SolverPolicy policy = SolverPolicy::kAuto);

  /// Same, with an arbitrary initial distribution over transient states
  /// (indexed like Chain::transient_states(); must sum to ~1).
  [[nodiscard]] static AbsorbingAnalysis analyze_distribution(
      const Chain& chain, const std::vector<double>& initial,
      SolverPolicy policy = SolverPolicy::kAuto);

  /// Non-throwing forms: numerical-health failures come back as typed
  /// errors (singular_generator, ill_conditioned below guards.min_rcond,
  /// non_finite_result). Caller-bug preconditions (bad initial state,
  /// size mismatch, invalid chain) still throw ContractViolation.
  /// `policy` selects the factorization backend (dense partial-pivot LU
  /// vs Markowitz sparse LU); the two agree to the bound documented in
  /// DESIGN.md §11, and a forced-dense solve above kDenseMaxDimension
  /// is refused with kInvalidParameter.
  [[nodiscard]] static Expected<AbsorbingAnalysis> try_analyze(
      const Chain& chain, StateId initial = 0,
      const NumericalGuards& guards = {},
      SolverPolicy policy = SolverPolicy::kAuto);
  [[nodiscard]] static Expected<AbsorbingAnalysis> try_analyze_distribution(
      const Chain& chain, const std::vector<double>& initial,
      const NumericalGuards& guards = {},
      SolverPolicy policy = SolverPolicy::kAuto);

  /// Convenience: just the MTTDL in hours from transient state `initial`.
  [[nodiscard]] static double mttdl_hours(
      const Chain& chain, StateId initial = 0,
      SolverPolicy policy = SolverPolicy::kAuto);
};

}  // namespace nsrel::ctmc
