// Cancellation-free mean-absorption-time solver (GTH-style state
// elimination).
//
// Why: the LU route computes MTTDL ~ 1e19 hours from matrix entries of
// order 1, which requires resolving cancellations beyond double precision
// once the chain is reliable enough (observed as a NEGATIVE MTTDL at fault
// tolerance 6). Grassmann-Taksar-Heyman elimination avoids subtraction
// entirely: writing the mean-absorption-time system as
//     m_i = c_i + sum_j b_ij m_j,   with  sum_j b_ij + ab_i = 1,
// (b_ij = jump probabilities, ab_i = absorption probability, c_i = mean
// hold time), eliminating a state divides by D_s = 1 - b_ss, and the
// row-sum invariant lets D_s be computed as the POSITIVE SUM
// sum_{j != s} b_sj + ab_s. Every update is add/multiply of non-negative
// numbers, so the result is accurate to machine epsilon at ANY condition
// number.
//
// Backends: the dense path stores b as an n x n array; the sparse path
// stores only the nonzero jump probabilities (ordered row maps plus a
// column index). Both run the SAME elimination order (last state to
// first, skipping `initial`) with the SAME per-cell arithmetic — the
// sparse path merely skips the dense path's additions of exact 0.0,
// which are no-ops on the non-negative quantities GTH maintains — so
// their results are BIT-IDENTICAL on every chain (asserted across
// hundreds of random chains by tests/diffharness). On the appendix
// recursion's binary-tree chains, last-to-first order is leaf-first, so
// the sparse elimination has zero fill-in and runs in O(n); arbitrary
// chains may fill in, and the ordered maps absorb it.
#pragma once

#include <cstddef>
#include <vector>

#include "ctmc/chain.hpp"
#include "ctmc/solver_policy.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse/sparse_matrix.hpp"
#include "util/error.hpp"

namespace nsrel::ctmc {

class EliminationSolver {
 public:
  /// Mean time to absorption (hours) from `initial`, built directly from
  /// the chain's transition rates (no subtractions anywhere).
  /// Preconditions: chain.validate() passes; initial is transient.
  /// Numerical failures (degenerate elimination pivot, non-finite
  /// result) throw ErrorException; use the try_ form for typed errors.
  [[nodiscard]] static double mean_absorption_time_hours(
      const Chain& chain, StateId initial,
      SolverPolicy policy = SolverPolicy::kAuto);

  /// Non-throwing form of the chain overload: a vanishing elimination
  /// pivot (no remaining path to absorption — a numerically singular
  /// generator) or a non-finite mean comes back as a typed error. A
  /// forced-dense solve above kDenseMaxDimension is refused with
  /// kInvalidParameter.
  [[nodiscard]] static Expected<double> try_mean_absorption_time_hours(
      const Chain& chain, StateId initial,
      SolverPolicy policy = SolverPolicy::kAuto);

  /// Same, from an absorption matrix R = -Q_B (appendix form): row i's
  /// absorption rate is its row sum. The subtraction needed to recover
  /// those rates from R limits accuracy to ~eps * diag / absorption_rate —
  /// fine for ordinary chains, NOT for ultra-reliable ones. Prefer the
  /// overload below when the absorption rates are known analytically.
  /// Precondition: r is square; `initial` indexes its rows.
  [[nodiscard]] static double mean_absorption_time_hours(
      const linalg::Matrix& r, std::size_t initial);

  /// Fully cancellation-free variant: R's off-diagonals give jump rates,
  /// diagonals give exit rates, and the caller supplies the exact
  /// absorption rate of each state (no row-sum subtraction anywhere).
  /// Preconditions: r square, absorption_rates.size() == r.rows().
  [[nodiscard]] static double mean_absorption_time_hours(
      const linalg::Matrix& r, const std::vector<double>& absorption_rates,
      std::size_t initial);

  /// Sparse twin of the exact-absorption-rates overload: R in CSR form
  /// with the same entry values a dense assembly would hold. Produces
  /// bit-identical results to the dense overload (see header comment)
  /// without ever materializing the n x n array — the path that takes
  /// the appendix recursion past fault tolerance ~12.
  [[nodiscard]] static double mean_absorption_time_hours(
      const linalg::sparse::CsrMatrix& r,
      const std::vector<double>& absorption_rates, std::size_t initial);

  /// Non-throwing form of the sparse CSR overload.
  [[nodiscard]] static Expected<double> try_mean_absorption_time_hours(
      const linalg::sparse::CsrMatrix& r,
      const std::vector<double>& absorption_rates, std::size_t initial);
};

}  // namespace nsrel::ctmc
