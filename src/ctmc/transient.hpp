// Transient analysis via uniformization (Jensen's method).
//
// Computes the state distribution pi(t) = pi(0) * exp(Q t) without forming
// a matrix exponential: with Lambda >= max_i |Q_ii| and P = I + Q/Lambda,
// pi(t) = sum_k Poisson(k; Lambda*t) * pi(0) * P^k, truncated when the
// remaining Poisson tail is below a tolerance. Numerically robust because
// every term is a probability vector.
//
// Used for survival curves R(t) = P(no data loss by time t) — a view the
// closed-form MTTDL cannot give — and to cross-check MTTDL by integrating
// the survival function in tests.
#pragma once

#include <vector>

#include "ctmc/chain.hpp"
#include "util/error.hpp"

namespace nsrel::ctmc {

class TransientSolver {
 public:
  /// Builds the uniformized representation of `chain`.
  /// Precondition: chain has at least one state. Zero-rate chains (every
  /// state absorbing, or a single state with no transitions) are valid:
  /// the uniformized kernel degenerates to the identity and the
  /// distribution stays at pi(0) for all t.
  explicit TransientSolver(const Chain& chain);

  /// Distribution over ALL states at time t (hours), starting from the
  /// given full-state id (must be transient unless t == 0).
  [[nodiscard]] std::vector<double> distribution_at(double t_hours,
                                                    StateId initial = 0,
                                                    double tol = 1e-12) const;

  /// Non-throwing form: a uniformization horizon too large for the
  /// Poisson expansion (non-finite Lambda*t) comes back as
  /// kInvalidParameter, and a distribution that lost probability mass
  /// beyond the tolerance (a conditioning failure in the power
  /// iteration) as kNonFiniteResult. Caller-bug preconditions (bad
  /// state id, negative t or tol) still throw ContractViolation.
  [[nodiscard]] Expected<std::vector<double>> try_distribution_at(
      double t_hours, StateId initial = 0, double tol = 1e-12) const;

  /// Survival probability: P(not absorbed by t) from `initial`.
  [[nodiscard]] double survival(double t_hours, StateId initial = 0,
                                double tol = 1e-12) const;

  /// Non-throwing form of survival(), same error taxonomy as
  /// try_distribution_at.
  [[nodiscard]] Expected<double> try_survival(double t_hours,
                                              StateId initial = 0,
                                              double tol = 1e-12) const;

  /// Survival curve at the given time points (hours, non-decreasing not
  /// required; each point evaluated independently).
  [[nodiscard]] std::vector<double> survival_curve(
      const std::vector<double>& times_hours, StateId initial = 0,
      double tol = 1e-12) const;

  /// Uniformization rate Lambda actually used.
  [[nodiscard]] double uniformization_rate() const { return lambda_; }

 private:
  const Chain& chain_;
  linalg::Matrix p_;  // uniformized DTMC kernel
  double lambda_ = 0.0;
};

}  // namespace nsrel::ctmc
