#include "ctmc/elimination.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "obs/probe_names.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace nsrel::ctmc {

namespace {

/// Core elimination on the embedded-jump form:
///   m_i = c[i] + sum_j b[i][j] * m_j,   sum_j b[i][j] + ab[i] = 1.
/// Eliminates every state except `initial` (order: last to first, skipping
/// `initial`), then m_initial = c[initial] / ab[initial].
[[nodiscard]] Expected<double> eliminate(std::vector<std::vector<double>> b,
                           std::vector<double> ab, std::vector<double> c,
                           std::size_t initial) {
  const std::size_t n = b.size();
  std::vector<bool> eliminated(n, false);

  for (std::size_t step = n; step-- > 0;) {
    const std::size_t s = step;
    if (s == initial) continue;
    // D_s = 1 - b[s][s], computed as a positive sum via the invariant.
    double d = ab[s];
    for (std::size_t j = 0; j < n; ++j) {
      if (j != s && !eliminated[j]) d += b[s][j];
    }
    if (!(d > 0.0)) {
      return Error{ErrorCode::kSingularGenerator, "ctmc.elimination",
                   "elimination pivot vanished (state has no remaining "
                   "path to absorption)"};
    }
    const double inv_d = 1.0 / d;
    for (std::size_t i = 0; i < n; ++i) {
      if (eliminated[i] || i == s) continue;
      const double weight = b[i][s] * inv_d;
      if (weight == 0.0) continue;
      c[i] += weight * c[s];
      ab[i] += weight * ab[s];
      for (std::size_t j = 0; j < n; ++j) {
        if (j != s && !eliminated[j]) b[i][j] += weight * b[s][j];
      }
      b[i][s] = 0.0;
    }
    eliminated[s] = true;
  }
  // Only the initial state remains: 1 - b[ii] = ab[i], so
  // m = c / ab (both accumulated without any subtraction).
  if (!(ab[initial] > 0.0)) {
    return Error{ErrorCode::kSingularGenerator, "ctmc.elimination",
                 "initial state's absorption probability vanished"};
  }
  const double mean = c[initial] / ab[initial];
  if (!std::isfinite(mean) || !(mean > 0.0)) {
    return Error{ErrorCode::kNonFiniteResult, "ctmc.elimination",
                 "mean absorption time is non-finite or nonpositive"};
  }
  return mean;
}

/// Sparse twin of `eliminate`, bit-identical by construction: the same
/// elimination order and the same per-cell operations, with the dense
/// path's additions of exact 0.0 (no-ops on non-negative values — every
/// b/ab/c entry here is >= +0.0, and +0.0 + 0.0 == +0.0 exactly)
/// skipped structurally. `b[i]` holds row i's nonzero jump
/// probabilities keyed by column; `col_rows[j]` indexes the rows with a
/// stored entry in column j. Eliminated rows/columns are detached from
/// both structures, which plays the role of the dense `eliminated[]`
/// mask. On tree-structured chains (the appendix recursion) the
/// last-to-first order eliminates leaves before parents, so no fill-in
/// occurs and the whole solve is O(n); general chains fill into the
/// ordered maps.
[[nodiscard]] Expected<double> eliminate_sparse(
    std::vector<std::map<std::uint32_t, double>> b,
    std::vector<std::set<std::uint32_t>> col_rows, std::vector<double> ab,
    std::vector<double> c, std::size_t initial) {
  const std::size_t n = b.size();

  for (std::size_t step = n; step-- > 0;) {
    const std::uint32_t s = static_cast<std::uint32_t>(step);
    if (step == initial) continue;
    double d = ab[s];
    for (const auto& [j, value] : b[s]) {
      if (j != s) d += value;
    }
    if (!(d > 0.0)) {
      return Error{ErrorCode::kSingularGenerator, "ctmc.elimination",
                   "elimination pivot vanished (state has no remaining "
                   "path to absorption)"};
    }
    const double inv_d = 1.0 / d;
    for (const std::uint32_t i : col_rows[s]) {
      if (i == s) continue;
      const auto entry = b[i].find(s);
      const double weight = entry->second * inv_d;
      b[i].erase(entry);  // dense: b[i][s] = 0.0 (never read again)
      if (weight == 0.0) continue;
      c[i] += weight * c[s];
      ab[i] += weight * ab[s];
      for (const auto& [j, value] : b[s]) {
        if (j == s) continue;
        const auto [cell, inserted] = b[i].emplace(j, 0.0);
        cell->second += weight * value;
        if (inserted) col_rows[j].insert(i);
      }
    }
    // Detach the eliminated row from the column index so later steps
    // never walk it (the dense path's eliminated[] checks).
    for (const auto& entry : b[s]) col_rows[entry.first].erase(s);
    b[s].clear();
    col_rows[s].clear();
  }
  if (!(ab[initial] > 0.0)) {
    return Error{ErrorCode::kSingularGenerator, "ctmc.elimination",
                 "initial state's absorption probability vanished"};
  }
  const double mean = c[initial] / ab[initial];
  if (!std::isfinite(mean) || !(mean > 0.0)) {
    return Error{ErrorCode::kNonFiniteResult, "ctmc.elimination",
                 "mean absorption time is non-finite or nonpositive"};
  }
  return mean;
}

}  // namespace

double EliminationSolver::mean_absorption_time_hours(const Chain& chain,
                                                     StateId initial,
                                                     SolverPolicy policy) {
  return try_mean_absorption_time_hours(chain, initial, policy)
      .value_or_throw();
}

[[nodiscard]] Expected<double> EliminationSolver::try_mean_absorption_time_hours(
    const Chain& chain, StateId initial, SolverPolicy policy) {
  NSREL_EXPECTS(chain.validate().empty());
  NSREL_EXPECTS(initial < chain.state_count());
  NSREL_EXPECTS(chain.state(initial).kind == StateKind::kTransient);

  const auto transient = chain.transient_states();
  const std::size_t n = transient.size();
  std::vector<std::size_t> index(chain.state_count(), n);
  for (std::size_t i = 0; i < n; ++i) index[transient[i]] = i;
  NSREL_ASSERT(index[initial] < n);

  const bool sparse_backend = use_sparse(policy, n);
  obs::Span span(obs::probe::kSpanEliminationSolve,
                 obs::probe::kSpanCategoryCtmc);
  if (span.armed()) {
    span.arg("backend", sparse_backend ? "sparse" : "dense");
    span.arg("states", static_cast<std::uint64_t>(n));
  }
  if (sparse_backend) {
    // Exit rates first (transition order, same accumulation as dense),
    // then the jump-probability rows keyed by transient column index.
    std::vector<double> exit(n, 0.0);
    std::vector<double> absorb(n, 0.0);
    for (const auto& t : chain.transitions()) {
      const std::size_t from = index[t.from];
      NSREL_ASSERT(from < n);
      exit[from] += t.rate;
      if (index[t.to] >= n) absorb[from] += t.rate;
    }
    std::vector<std::map<std::uint32_t, double>> rates(n);
    std::vector<std::set<std::uint32_t>> col_rows(n);
    for (const auto& t : chain.transitions()) {
      const std::size_t from = index[t.from];
      const std::size_t to = index[t.to];
      if (to >= n) continue;
      const auto [cell, inserted] =
          rates[from].emplace(static_cast<std::uint32_t>(to), 0.0);
      cell->second += t.rate;
      if (inserted) {
        col_rows[to].insert(static_cast<std::uint32_t>(from));
      }
    }
    std::vector<std::map<std::uint32_t, double>> b(n);
    std::vector<double> ab(n, 0.0);
    std::vector<double> c(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      NSREL_ASSERT(exit[i] > 0.0);
      const double inv_exit = 1.0 / exit[i];
      c[i] = inv_exit;
      ab[i] = absorb[i] * inv_exit;
      for (const auto& [j, rate] : rates[i]) b[i].emplace(j, rate * inv_exit);
    }
    return eliminate_sparse(std::move(b), std::move(col_rows), std::move(ab),
                            std::move(c), index[initial]);
  }
  if (policy == SolverPolicy::kDense && dense_refuses(n)) {
    return dense_dimension_error("ctmc.elimination", n);
  }

  // Exit rates and split into transient-jump vs absorption flows.
  std::vector<double> exit(n, 0.0);
  std::vector<std::vector<double>> rates(n, std::vector<double>(n, 0.0));
  std::vector<double> absorb(n, 0.0);
  for (const auto& t : chain.transitions()) {
    const std::size_t from = index[t.from];
    NSREL_ASSERT(from < n);
    exit[from] += t.rate;
    const std::size_t to = index[t.to];
    if (to < n) {
      rates[from][to] += t.rate;
    } else {
      absorb[from] += t.rate;
    }
  }

  std::vector<std::vector<double>> b(n, std::vector<double>(n, 0.0));
  std::vector<double> ab(n, 0.0);
  std::vector<double> c(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    NSREL_ASSERT(exit[i] > 0.0);
    const double inv_exit = 1.0 / exit[i];
    c[i] = inv_exit;
    ab[i] = absorb[i] * inv_exit;
    for (std::size_t j = 0; j < n; ++j) b[i][j] = rates[i][j] * inv_exit;
  }
  return eliminate(std::move(b), std::move(ab), std::move(c),
                   index[initial]);
}

double EliminationSolver::mean_absorption_time_hours(const linalg::Matrix& r,
                                                     std::size_t initial) {
  NSREL_EXPECTS(r.square());
  const std::size_t n = r.rows();
  // Absorption rate = row sum of R; the only subtraction in this path,
  // on same-scale entries, clamped against round-off noise.
  std::vector<double> absorption(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    KahanSum row_sum;
    for (std::size_t j = 0; j < n; ++j) row_sum.add(r(i, j));
    absorption[i] = std::max(0.0, row_sum.value());
  }
  return mean_absorption_time_hours(r, absorption, initial);
}


double EliminationSolver::mean_absorption_time_hours(
    const linalg::Matrix& r, const std::vector<double>& absorption_rates,
    std::size_t initial) {
  NSREL_EXPECTS(r.square());
  const std::size_t n = r.rows();
  NSREL_EXPECTS(absorption_rates.size() == n);
  NSREL_EXPECTS(initial < n);

  std::vector<std::vector<double>> b(n, std::vector<double>(n, 0.0));
  std::vector<double> ab(n, 0.0);
  std::vector<double> c(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double exit = r(i, i);
    NSREL_EXPECTS(exit > 0.0);
    NSREL_EXPECTS(absorption_rates[i] >= 0.0);
    const double inv_exit = 1.0 / exit;
    c[i] = inv_exit;
    ab[i] = absorption_rates[i] * inv_exit;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      NSREL_EXPECTS(r(i, j) <= 0.0);
      b[i][j] = -r(i, j) * inv_exit;
    }
  }
  return eliminate(std::move(b), std::move(ab), std::move(c), initial)
      .value_or_throw();
}

double EliminationSolver::mean_absorption_time_hours(
    const linalg::sparse::CsrMatrix& r,
    const std::vector<double>& absorption_rates, std::size_t initial) {
  return try_mean_absorption_time_hours(r, absorption_rates, initial)
      .value_or_throw();
}

[[nodiscard]] Expected<double> EliminationSolver::try_mean_absorption_time_hours(
    const linalg::sparse::CsrMatrix& r,
    const std::vector<double>& absorption_rates, std::size_t initial) {
  NSREL_EXPECTS(r.square());
  const std::size_t n = r.rows();
  NSREL_EXPECTS(absorption_rates.size() == n);
  NSREL_EXPECTS(initial < n);

  std::vector<std::map<std::uint32_t, double>> b(n);
  std::vector<std::set<std::uint32_t>> col_rows(n);
  std::vector<double> ab(n, 0.0);
  std::vector<double> c(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double exit = r.at(i, i);
    NSREL_EXPECTS(exit > 0.0);
    NSREL_EXPECTS(absorption_rates[i] >= 0.0);
    const double inv_exit = 1.0 / exit;
    c[i] = inv_exit;
    ab[i] = absorption_rates[i] * inv_exit;
    for (std::size_t e = r.row_ptr()[i]; e < r.row_ptr()[i + 1]; ++e) {
      const std::uint32_t j = r.col_index()[e];
      if (j == i) continue;
      NSREL_EXPECTS(r.values()[e] <= 0.0);
      b[i].emplace(j, -r.values()[e] * inv_exit);
      col_rows[j].insert(static_cast<std::uint32_t>(i));
    }
  }
  return eliminate_sparse(std::move(b), std::move(col_rows), std::move(ab),
                          std::move(c), initial);
}

}  // namespace nsrel::ctmc
