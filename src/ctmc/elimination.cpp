#include "ctmc/elimination.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace nsrel::ctmc {

namespace {

/// Core elimination on the embedded-jump form:
///   m_i = c[i] + sum_j b[i][j] * m_j,   sum_j b[i][j] + ab[i] = 1.
/// Eliminates every state except `initial` (order: last to first, skipping
/// `initial`), then m_initial = c[initial] / ab[initial].
Expected<double> eliminate(std::vector<std::vector<double>> b,
                           std::vector<double> ab, std::vector<double> c,
                           std::size_t initial) {
  const std::size_t n = b.size();
  std::vector<bool> eliminated(n, false);

  for (std::size_t step = n; step-- > 0;) {
    const std::size_t s = step;
    if (s == initial) continue;
    // D_s = 1 - b[s][s], computed as a positive sum via the invariant.
    double d = ab[s];
    for (std::size_t j = 0; j < n; ++j) {
      if (j != s && !eliminated[j]) d += b[s][j];
    }
    if (!(d > 0.0)) {
      return Error{ErrorCode::kSingularGenerator, "ctmc.elimination",
                   "elimination pivot vanished (state has no remaining "
                   "path to absorption)"};
    }
    const double inv_d = 1.0 / d;
    for (std::size_t i = 0; i < n; ++i) {
      if (eliminated[i] || i == s) continue;
      const double weight = b[i][s] * inv_d;
      if (weight == 0.0) continue;
      c[i] += weight * c[s];
      ab[i] += weight * ab[s];
      for (std::size_t j = 0; j < n; ++j) {
        if (j != s && !eliminated[j]) b[i][j] += weight * b[s][j];
      }
      b[i][s] = 0.0;
    }
    eliminated[s] = true;
  }
  // Only the initial state remains: 1 - b[ii] = ab[i], so
  // m = c / ab (both accumulated without any subtraction).
  if (!(ab[initial] > 0.0)) {
    return Error{ErrorCode::kSingularGenerator, "ctmc.elimination",
                 "initial state's absorption probability vanished"};
  }
  const double mean = c[initial] / ab[initial];
  if (!std::isfinite(mean) || !(mean > 0.0)) {
    return Error{ErrorCode::kNonFiniteResult, "ctmc.elimination",
                 "mean absorption time is non-finite or nonpositive"};
  }
  return mean;
}

}  // namespace

double EliminationSolver::mean_absorption_time_hours(const Chain& chain,
                                                     StateId initial) {
  return try_mean_absorption_time_hours(chain, initial).value_or_throw();
}

Expected<double> EliminationSolver::try_mean_absorption_time_hours(
    const Chain& chain, StateId initial) {
  NSREL_EXPECTS(chain.validate().empty());
  NSREL_EXPECTS(initial < chain.state_count());
  NSREL_EXPECTS(chain.state(initial).kind == StateKind::kTransient);

  const auto transient = chain.transient_states();
  const std::size_t n = transient.size();
  std::vector<std::size_t> index(chain.state_count(), n);
  for (std::size_t i = 0; i < n; ++i) index[transient[i]] = i;
  NSREL_ASSERT(index[initial] < n);

  // Exit rates and split into transient-jump vs absorption flows.
  std::vector<double> exit(n, 0.0);
  std::vector<std::vector<double>> rates(n, std::vector<double>(n, 0.0));
  std::vector<double> absorb(n, 0.0);
  for (const auto& t : chain.transitions()) {
    const std::size_t from = index[t.from];
    NSREL_ASSERT(from < n);
    exit[from] += t.rate;
    const std::size_t to = index[t.to];
    if (to < n) {
      rates[from][to] += t.rate;
    } else {
      absorb[from] += t.rate;
    }
  }

  std::vector<std::vector<double>> b(n, std::vector<double>(n, 0.0));
  std::vector<double> ab(n, 0.0);
  std::vector<double> c(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    NSREL_ASSERT(exit[i] > 0.0);
    const double inv_exit = 1.0 / exit[i];
    c[i] = inv_exit;
    ab[i] = absorb[i] * inv_exit;
    for (std::size_t j = 0; j < n; ++j) b[i][j] = rates[i][j] * inv_exit;
  }
  return eliminate(std::move(b), std::move(ab), std::move(c),
                   index[initial]);
}

double EliminationSolver::mean_absorption_time_hours(const linalg::Matrix& r,
                                                     std::size_t initial) {
  NSREL_EXPECTS(r.square());
  const std::size_t n = r.rows();
  // Absorption rate = row sum of R; the only subtraction in this path,
  // on same-scale entries, clamped against round-off noise.
  std::vector<double> absorption(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    KahanSum row_sum;
    for (std::size_t j = 0; j < n; ++j) row_sum.add(r(i, j));
    absorption[i] = std::max(0.0, row_sum.value());
  }
  return mean_absorption_time_hours(r, absorption, initial);
}


double EliminationSolver::mean_absorption_time_hours(
    const linalg::Matrix& r, const std::vector<double>& absorption_rates,
    std::size_t initial) {
  NSREL_EXPECTS(r.square());
  const std::size_t n = r.rows();
  NSREL_EXPECTS(absorption_rates.size() == n);
  NSREL_EXPECTS(initial < n);

  std::vector<std::vector<double>> b(n, std::vector<double>(n, 0.0));
  std::vector<double> ab(n, 0.0);
  std::vector<double> c(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double exit = r(i, i);
    NSREL_EXPECTS(exit > 0.0);
    NSREL_EXPECTS(absorption_rates[i] >= 0.0);
    const double inv_exit = 1.0 / exit;
    c[i] = inv_exit;
    ab[i] = absorption_rates[i] * inv_exit;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      NSREL_EXPECTS(r(i, j) <= 0.0);
      b[i][j] = -r(i, j) * inv_exit;
    }
  }
  return eliminate(std::move(b), std::move(ab), std::move(c), initial)
      .value_or_throw();
}

}  // namespace nsrel::ctmc
