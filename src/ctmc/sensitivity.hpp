// Analytic parameter sensitivities of the mean time to absorption.
//
// Section 7 of the paper explores sensitivity by sweeping one parameter
// at a time. This solver gives the local view exactly: for a parameter
// theta that multiplicatively scales a chosen subset S of transition
// rates (e.g. "all drive-failure transitions" or "all repairs"),
//     MTTA(theta) = <e_init, R(theta)^{-1} 1>,
// and at theta = 1,
//     dMTTA/dtheta = -y^T D m,
// where R m = 1, R^T y = e_init, and D = dR/dtheta collects the selected
// rates (+rate on the diagonal, -rate off-diagonal for transitions that
// stay transient). The ELASTICITY (theta/MTTA)*dMTTA/dtheta is the
// dimensionless "% change in MTTDL per % change in the rate" — scaling
// every transition at once gives exactly -1 (pure time rescaling), a
// property the tests pin down.
#pragma once

#include <functional>

#include "ctmc/chain.hpp"
#include "util/error.hpp"

namespace nsrel::ctmc {

class SensitivitySolver {
 public:
  using TransitionSelector = std::function<bool(const Transition&)>;

  /// d(MTTA)/d(theta) at theta = 1, where theta scales the rates of all
  /// transitions matched by `selector`.
  /// Preconditions: chain.validate() passes; initial is transient.
  /// Numerical failures (singular or ill-conditioned absorption matrix,
  /// non-finite derivative) throw ErrorException; use the try_ form for
  /// the typed error.
  [[nodiscard]] static double mtta_derivative(
      const Chain& chain, StateId initial, const TransitionSelector& selector);

  /// Non-throwing form: a singular absorption matrix comes back as
  /// kSingularGenerator, rcond below guards.min_rcond as
  /// kIllConditioned, and a non-finite derivative as kNonFiniteResult.
  [[nodiscard]] static Expected<double> try_mtta_derivative(
      const Chain& chain, StateId initial, const TransitionSelector& selector,
      const NumericalGuards& guards = {});

  /// Dimensionless elasticity: (theta / MTTA) * dMTTA/dtheta at theta=1.
  [[nodiscard]] static double mtta_elasticity(
      const Chain& chain, StateId initial, const TransitionSelector& selector);

  /// Non-throwing form of mtta_elasticity, same taxonomy as
  /// try_mtta_derivative plus kNonFiniteResult for a vanishing MTTA.
  [[nodiscard]] static Expected<double> try_mtta_elasticity(
      const Chain& chain, StateId initial, const TransitionSelector& selector,
      const NumericalGuards& guards = {});
};

}  // namespace nsrel::ctmc
