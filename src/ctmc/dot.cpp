#include "ctmc/dot.hpp"

#include <ostream>
#include <sstream>
#include <string>

#include "util/format.hpp"

namespace nsrel::ctmc {

namespace {
std::string escape(const std::string& label) {
  std::string escaped;
  for (const char ch : label) {
    if (ch == '"' || ch == '\\') escaped += '\\';
    escaped += ch;
  }
  return escaped;
}
}  // namespace

void write_dot(const Chain& chain, std::ostream& out,
               const DotOptions& options) {
  out << "digraph \"" << escape(options.graph_name) << "\" {\n";
  if (options.left_to_right) out << "  rankdir=LR;\n";
  out << "  node [shape=circle];\n";
  for (StateId s = 0; s < chain.state_count(); ++s) {
    const State& state = chain.state(s);
    out << "  s" << s << " [label=\"" << escape(state.label) << "\"";
    if (state.kind == StateKind::kAbsorbing) {
      out << ", shape=doublecircle";
    }
    out << "];\n";
  }
  for (const Transition& t : chain.transitions()) {
    out << "  s" << t.from << " -> s" << t.to << " [label=\""
        << sci(t.rate, options.rate_digits) << "\"];\n";
  }
  out << "}\n";
}

std::string to_dot(const Chain& chain, const DotOptions& options) {
  std::ostringstream out;
  write_dot(chain, out, options);
  return out.str();
}

}  // namespace nsrel::ctmc
