// The serialized form of an evaluated grid: the `nsrel-resultset-v3`
// document, with both halves of the loop in one place — a canonical
// writer and a strict reader that round-trips the writer byte-exactly.
//
// The document layer deliberately lives below the engine (report depends
// on nothing but util/obs): the engine converts its in-memory ResultSet
// into a ResultSetDoc to write, and tools that only *consume* documents
// (`nsrel diff`) never touch the solve stack at all.
//
// v3 schema (two-space JSON, keys in this order):
//   {
//     "schema": "nsrel-resultset-v3",
//     "method": "exact" | "closed",
//     "meta": {"cache": {"hits": H, "misses": M, "lookups": L}},  [opt]
//     "axes": [{"name": "drive-mttf"}, ...],        // [] = single point
//     "points": [{"label": "...", "x": [c0, c1, ...]}, ...],
//                                       // "x" present iff axes nonempty
//     "configurations": ["raid5-ft1", ...],
//     "cells": [ ... one record per cell, row-major, see below ... ]
//   }
// Cell records always carry "point", "configuration", "error". Failed
// cells: "error" is {code, layer, detail} and nothing follows. Ok cells:
// "error" is null, then "kind": "analytic" (AnalysisResult scalars; the
// three internal-RAID rates appear only for internal-RAID
// configurations) or "kind": "sim" (mean/CI/trials/seed).
//
// vs v2: "axis": string|null became the "axes" array and per-point "x"
// became the coordinate vector — the schema cost of N-axis grids — and
// ok cells gained "kind" so Monte-Carlo sweeps share the document.
//
// Reading is strict: wrong schema tag, unknown or missing keys, type
// mismatches, out-of-range indices, or cells out of row-major order are
// typed kMalformedDocument errors naming the offending path — never a
// best-effort partial document. Accepted member order is flexible
// (re-serialization is canonical regardless); numbers re-emit through
// json_number, so read-then-write reproduces a writer-produced document
// byte for byte (seeds round-trip as exact uint64 digits).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/error.hpp"

namespace nsrel::report {

inline constexpr std::string_view kResultSetSchema = "nsrel-resultset-v3";

struct AxisDoc {
  std::string name;
};

struct PointDoc {
  std::string label;
  /// One coordinate per axis; empty for 0-axis (single point) documents.
  std::vector<double> x;
};

struct CacheMetaDoc {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t lookups = 0;
};

struct ErrorCellDoc {
  std::string code;  ///< stable snake_case name (error_code_name)
  std::string layer;
  std::string detail;
};

struct AnalyticCellDoc {
  double mttdl_hours = 0.0;
  double events_per_system_year = 0.0;
  double events_per_pb_year = 0.0;
  double logical_capacity_bytes = 0.0;
  double node_rebuild_hours = 0.0;
  std::string node_rebuild_bottleneck;  ///< "disk" | "network"
  /// The three rates below are serialized only for internal-RAID
  /// configurations (mirrors the writer's historical behavior).
  bool has_internal_raid = false;
  double array_failure_per_hour = 0.0;
  double sector_error_per_hour = 0.0;
  double restripe_hours = 0.0;
};

struct SimCellDoc {
  double mean_hours = 0.0;
  double stddev_hours = 0.0;
  double stderr_hours = 0.0;
  double ci95_low_hours = 0.0;
  double ci95_high_hours = 0.0;
  int trials = 0;
  std::uint64_t seed = 0;
};

struct CellDoc {
  std::uint64_t point = 0;
  std::uint64_t configuration = 0;
  std::variant<AnalyticCellDoc, SimCellDoc, ErrorCellDoc> data;

  [[nodiscard]] bool ok() const {
    return !std::holds_alternative<ErrorCellDoc>(data);
  }
};

struct ResultSetDoc {
  std::string method;
  std::optional<CacheMetaDoc> cache;
  std::vector<AxisDoc> axes;
  std::vector<PointDoc> points;
  std::vector<std::string> configurations;
  /// Row-major: cell i is (point i / C, configuration i % C); the reader
  /// enforces exactly points*configurations cells in that order.
  std::vector<CellDoc> cells;
};

/// Serializes the document in canonical v3 form (deterministic bytes).
void write_resultset_json(const ResultSetDoc& doc, std::ostream& out);

/// Parses and strictly validates one v3 document. All failures are
/// typed kMalformedDocument errors (layer "report.resultset" for schema
/// violations, "report.json" for syntax errors underneath).
[[nodiscard]] Expected<ResultSetDoc> read_resultset_json(
    std::string_view text);

}  // namespace nsrel::report
