// The single writer for per-command stderr/stdout footers appended
// after rendered results. Every front-end (CLI commands, scenario
// runner) routes --cache-stats through here so the footer bytes are
// identical in every format branch — previously each command duplicated
// the call per format and the branches could drift.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "report/table.hpp"

namespace nsrel::report {

/// One-line solve-cache summary ("cache: N hits, M misses (L lookups)")
/// appended after table and CSV output when the CLI's --cache-stats
/// flag asks for it. No-op for kJson: the JSON document carries cache
/// stats structurally (JsonOptions::cache_meta) instead of a trailing
/// non-JSON line that would corrupt the document.
void print_cache_footer(std::uint64_t hits, std::uint64_t misses,
                        OutputFormat format, std::ostream& out);

}  // namespace nsrel::report
