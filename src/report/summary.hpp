// Cross-run summary behind `nsrel report`: one-or-more observability
// documents — nsrel-metrics-v1 snapshots and/or nsrel-events-v1
// journals — aggregated into a single matrix (rows = counters,
// histogram summaries, event occurrence counts; columns = one per
// input document plus an exact "total" built with MetricsSnapshot's
// merge algebra; total percentiles are recomputed from the *merged*
// buckets, never averaged).
//
// Document type is detected from the first line's "schema" member, so
// callers can mix metrics and events files in one invocation; every
// malformed input is a typed kMalformedDocument naming the file.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/snapshot.hpp"
#include "report/events_doc.hpp"
#include "report/table.hpp"
#include "util/error.hpp"

namespace nsrel::report {

inline constexpr const char* kReportSchema = "nsrel-report-v1";

/// One parsed input document, tagged with its origin label (the CLI
/// passes the file path). Exactly one of metrics/events is set.
struct RunDoc {
  std::string label;
  std::optional<obs::MetricsSnapshot> metrics;
  std::optional<EventsDoc> events;
};

/// Parses `text` as whichever observability document it is (see file
/// comment for the detection rule).
[[nodiscard]] Expected<RunDoc> read_run_document(std::string label,
                                                 std::string_view text);

/// The summary matrix. Row order: counters (name order), histogram
/// summary sub-rows (name.count/.sum/.p50/.p90/.p99), event counts
/// ("events.<name>"), then "events.dropped" when any journal was given.
/// Cells render "-" where an input has no such row.
[[nodiscard]] Table report_table(const std::vector<RunDoc>& runs);

/// The same aggregation as a stable nsrel-report-v1 JSON document.
void write_report_json(const std::vector<RunDoc>& runs, std::ostream& out);

}  // namespace nsrel::report
