// Serialization loop for metrics documents (schema nsrel-metrics-v1):
// the write half renders an obs::MetricsSnapshot as a stable JSON
// document, the read half parses one back strictly (unknown keys,
// wrong types, inconsistent percentile summaries, and malformed
// buckets are all typed kMalformedDocument errors, layer
// "report.metrics").
//
// The document is integer-exact: counters, histogram counts, sums,
// extremes, and sparse log2 buckets all round-trip through uint64
// tokens, so read(write(s)) == s field for field — which is what lets
// `nsrel report` merge documents from different runs with
// MetricsSnapshot's exact algebra. p50/p90/p99 are included as a
// convenience summary and are *derived*: the reader recomputes them
// from the buckets and rejects a document whose summary disagrees.
#pragma once

#include <iosfwd>
#include <string_view>

#include "obs/snapshot.hpp"
#include "util/error.hpp"

namespace nsrel::report {

inline constexpr const char* kMetricsSchema = "nsrel-metrics-v1";

/// Writes the snapshot as an nsrel-metrics-v1 document. Deterministic:
/// rows in name order (the snapshot invariant), buckets sparse in
/// ascending index order.
void write_metrics_json(const obs::MetricsSnapshot& snapshot,
                        std::ostream& out);

/// Strict read of an nsrel-metrics-v1 document.
[[nodiscard]] Expected<obs::MetricsSnapshot> read_metrics_json(
    std::string_view text);

}  // namespace nsrel::report
