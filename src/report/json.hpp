// Minimal streaming JSON emitter for machine-readable reports.
//
// The engine's ResultSet (and any future structured report) renders
// through this writer so every front-end produces the same JSON dialect:
// two-space indentation, keys in insertion order, numbers printed with
// the shortest representation that round-trips exactly through strtod.
// Deterministic by construction — the same data always serializes to the
// same bytes, which is what lets jobs-invariance tests compare whole
// documents.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace nsrel::report {

/// Escapes a string for use inside JSON quotes (backslash, quote,
/// control characters as \uXXXX, the common short escapes).
[[nodiscard]] std::string json_escape(std::string_view text);

/// Shortest decimal representation of `v` that parses back to exactly
/// the same double. Non-finite values render as null (JSON has no
/// inf/nan).
[[nodiscard]] std::string json_number(double v);

/// Streaming writer with scope tracking. Usage:
///
///   JsonWriter w(out);
///   w.begin_object();
///   w.key("name").value("raid5-ft2");
///   w.key("cells").begin_array();
///   w.value(1.5);
///   w.end_array();
///   w.end_object();
///
/// Misuse (a value with no pending key inside an object, unbalanced
/// scopes) trips a contract violation.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out);

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; the next value/begin_* attaches to it.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text);
  JsonWriter& value(double number);
  JsonWriter& value(int number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// True once the single top-level value is complete and balanced.
  [[nodiscard]] bool complete() const;

 private:
  struct Scope {
    char closer;
    bool has_items = false;
  };

  /// Writes separators/indentation before an item and validates that an
  /// item is legal here (object members need a pending key).
  void prepare_item();
  /// Marks the document complete (with a trailing newline) when the item
  /// just written closed the top-level value.
  void finish_item();
  void write_indent(std::size_t depth);

  std::ostream& out_;
  std::vector<Scope> scopes_;
  bool pending_key_ = false;
  bool done_ = false;
};

}  // namespace nsrel::report
