#include "report/resultset_doc.hpp"

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "obs/probe_names.hpp"
#include "obs/trace.hpp"
#include "report/json.hpp"
#include "report/json_parse.hpp"

namespace nsrel::report {

namespace {

// --- writer -----------------------------------------------------------

void write_cell(JsonWriter& json, const CellDoc& cell) {
  json.begin_object();
  json.key("point").value(cell.point);
  json.key("configuration").value(cell.configuration);
  if (const auto* error = std::get_if<ErrorCellDoc>(&cell.data)) {
    json.key("error").begin_object();
    json.key("code").value(error->code);
    json.key("layer").value(error->layer);
    json.key("detail").value(error->detail);
    json.end_object();
    json.end_object();
    return;
  }
  json.key("error").null();
  if (const auto* analytic = std::get_if<AnalyticCellDoc>(&cell.data)) {
    json.key("kind").value("analytic");
    json.key("mttdl_hours").value(analytic->mttdl_hours);
    json.key("events_per_system_year").value(analytic->events_per_system_year);
    json.key("events_per_pb_year").value(analytic->events_per_pb_year);
    json.key("logical_capacity_bytes").value(analytic->logical_capacity_bytes);
    json.key("node_rebuild_hours").value(analytic->node_rebuild_hours);
    json.key("node_rebuild_bottleneck")
        .value(analytic->node_rebuild_bottleneck);
    if (analytic->has_internal_raid) {
      json.key("array_failure_per_hour")
          .value(analytic->array_failure_per_hour);
      json.key("sector_error_per_hour").value(analytic->sector_error_per_hour);
      json.key("restripe_hours").value(analytic->restripe_hours);
    }
  } else {
    const auto& sim = std::get<SimCellDoc>(cell.data);
    json.key("kind").value("sim");
    json.key("mean_hours").value(sim.mean_hours);
    json.key("stddev_hours").value(sim.stddev_hours);
    json.key("stderr_hours").value(sim.stderr_hours);
    json.key("ci95_low_hours").value(sim.ci95_low_hours);
    json.key("ci95_high_hours").value(sim.ci95_high_hours);
    json.key("trials").value(sim.trials);
    json.key("seed").value(sim.seed);
  }
  json.end_object();
}

// --- reader -----------------------------------------------------------

/// Schema-validation failure. Thrown internally, converted to Expected
/// at the read_resultset_json boundary.
[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw ErrorException(Error{ErrorCode::kMalformedDocument,
                             "report.resultset", path + ": " + what});
}

const JsonValue& require(const JsonValue& object, const std::string& path,
                         std::string_view key) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) {
    fail(path, "missing key '" + std::string(key) + "'");
  }
  return *value;
}

void check_object(const JsonValue& value, const std::string& path) {
  if (!value.is_object()) fail(path, "expected an object");
}

void check_keys(const JsonValue& object, const std::string& path,
                const std::vector<std::string_view>& allowed) {
  for (const auto& [key, value] : object.members) {
    bool known = false;
    for (const std::string_view candidate : allowed) {
      if (key == candidate) {
        known = true;
        break;
      }
    }
    if (!known) fail(path, "unknown key '" + key + "'");
  }
}

std::string read_string(const JsonValue& object, const std::string& path,
                        std::string_view key) {
  const JsonValue& value = require(object, path, key);
  if (!value.is_string()) {
    fail(path + "." + std::string(key), "expected a string");
  }
  return value.text;
}

double read_number(const JsonValue& object, const std::string& path,
                   std::string_view key) {
  const JsonValue& value = require(object, path, key);
  if (!value.is_number()) {
    fail(path + "." + std::string(key), "expected a number");
  }
  return value.number;
}

/// An exact non-negative integer: the raw token must be plain digits
/// (no sign, fraction, or exponent) so uint64 values — solve-cache
/// counters, sim seeds — survive without a double round-trip.
std::uint64_t read_uint(const JsonValue& object, const std::string& path,
                        std::string_view key) {
  const JsonValue& value = require(object, path, key);
  const std::string field = path + "." + std::string(key);
  if (!value.is_number()) fail(field, "expected an unsigned integer");
  const std::string& token = value.text;
  const bool digits_only =
      !token.empty() && token.find_first_not_of("0123456789") ==
                            std::string::npos;
  if (!digits_only || (token.size() > 1 && token[0] == '0')) {
    fail(field, "expected an unsigned integer");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(token.c_str(), &end, 10);
  if (errno == ERANGE || end != token.c_str() + token.size()) {
    fail(field, "unsigned integer out of range");
  }
  return parsed;
}

CacheMetaDoc read_cache_meta(const JsonValue& meta, const std::string& path) {
  check_object(meta, path);
  check_keys(meta, path, {"cache"});
  const JsonValue& cache = require(meta, path, "cache");
  const std::string cache_path = path + ".cache";
  check_object(cache, cache_path);
  check_keys(cache, cache_path, {"hits", "misses", "lookups"});
  CacheMetaDoc doc;
  doc.hits = read_uint(cache, cache_path, "hits");
  doc.misses = read_uint(cache, cache_path, "misses");
  doc.lookups = read_uint(cache, cache_path, "lookups");
  return doc;
}

std::vector<AxisDoc> read_axes(const JsonValue& axes) {
  if (!axes.is_array()) fail("axes", "expected an array");
  std::vector<AxisDoc> out;
  out.reserve(axes.items.size());
  for (std::size_t i = 0; i < axes.items.size(); ++i) {
    const std::string path = "axes[" + std::to_string(i) + "]";
    const JsonValue& axis = axes.items[i];
    check_object(axis, path);
    check_keys(axis, path, {"name"});
    AxisDoc doc;
    doc.name = read_string(axis, path, "name");
    if (doc.name.empty()) fail(path + ".name", "axis name must be non-empty");
    out.push_back(std::move(doc));
  }
  return out;
}

std::vector<PointDoc> read_points(const JsonValue& points,
                                  std::size_t axis_count) {
  if (!points.is_array()) fail("points", "expected an array");
  if (points.items.empty()) fail("points", "must be non-empty");
  std::vector<PointDoc> out;
  out.reserve(points.items.size());
  for (std::size_t i = 0; i < points.items.size(); ++i) {
    const std::string path = "points[" + std::to_string(i) + "]";
    const JsonValue& point = points.items[i];
    check_object(point, path);
    PointDoc doc;
    doc.label = read_string(point, path, "label");
    if (axis_count == 0) {
      check_keys(point, path, {"label"});
    } else {
      check_keys(point, path, {"label", "x"});
      const JsonValue& x = require(point, path, "x");
      if (!x.is_array()) fail(path + ".x", "expected an array");
      if (x.items.size() != axis_count) {
        fail(path + ".x", "expected one coordinate per axis (" +
                              std::to_string(axis_count) + ")");
      }
      doc.x.reserve(x.items.size());
      for (std::size_t a = 0; a < x.items.size(); ++a) {
        if (!x.items[a].is_number()) {
          fail(path + ".x[" + std::to_string(a) + "]", "expected a number");
        }
        doc.x.push_back(x.items[a].number);
      }
    }
    out.push_back(std::move(doc));
  }
  return out;
}

std::vector<std::string> read_configurations(const JsonValue& configurations) {
  if (!configurations.is_array()) fail("configurations", "expected an array");
  if (configurations.items.empty()) {
    fail("configurations", "must be non-empty");
  }
  std::vector<std::string> out;
  out.reserve(configurations.items.size());
  for (std::size_t i = 0; i < configurations.items.size(); ++i) {
    const JsonValue& name = configurations.items[i];
    if (!name.is_string()) {
      fail("configurations[" + std::to_string(i) + "]", "expected a string");
    }
    out.push_back(name.text);
  }
  return out;
}

CellDoc read_cell(const JsonValue& cell, const std::string& path,
                  std::size_t points, std::size_t configurations) {
  check_object(cell, path);
  CellDoc doc;
  doc.point = read_uint(cell, path, "point");
  doc.configuration = read_uint(cell, path, "configuration");
  if (doc.point >= points) fail(path + ".point", "index out of range");
  if (doc.configuration >= configurations) {
    fail(path + ".configuration", "index out of range");
  }
  const JsonValue& error = require(cell, path, "error");
  if (error.is_object()) {
    const std::string error_path = path + ".error";
    check_keys(cell, path, {"point", "configuration", "error"});
    check_keys(error, error_path, {"code", "layer", "detail"});
    ErrorCellDoc failed;
    failed.code = read_string(error, error_path, "code");
    failed.layer = read_string(error, error_path, "layer");
    failed.detail = read_string(error, error_path, "detail");
    if (failed.code.empty()) {
      fail(error_path + ".code", "error code must be non-empty");
    }
    doc.data = std::move(failed);
    return doc;
  }
  if (!error.is_null()) fail(path + ".error", "expected null or an object");
  const std::string kind = read_string(cell, path, "kind");
  if (kind == "analytic") {
    AnalyticCellDoc analytic;
    analytic.has_internal_raid = cell.find("array_failure_per_hour") != nullptr;
    std::vector<std::string_view> allowed = {
        "point",
        "configuration",
        "error",
        "kind",
        "mttdl_hours",
        "events_per_system_year",
        "events_per_pb_year",
        "logical_capacity_bytes",
        "node_rebuild_hours",
        "node_rebuild_bottleneck"};
    if (analytic.has_internal_raid) {
      allowed.push_back("array_failure_per_hour");
      allowed.push_back("sector_error_per_hour");
      allowed.push_back("restripe_hours");
    }
    check_keys(cell, path, allowed);
    analytic.mttdl_hours = read_number(cell, path, "mttdl_hours");
    analytic.events_per_system_year =
        read_number(cell, path, "events_per_system_year");
    analytic.events_per_pb_year =
        read_number(cell, path, "events_per_pb_year");
    analytic.logical_capacity_bytes =
        read_number(cell, path, "logical_capacity_bytes");
    analytic.node_rebuild_hours = read_number(cell, path, "node_rebuild_hours");
    analytic.node_rebuild_bottleneck =
        read_string(cell, path, "node_rebuild_bottleneck");
    if (analytic.node_rebuild_bottleneck != "disk" &&
        analytic.node_rebuild_bottleneck != "network") {
      fail(path + ".node_rebuild_bottleneck", "expected 'disk' or 'network'");
    }
    if (analytic.has_internal_raid) {
      analytic.array_failure_per_hour =
          read_number(cell, path, "array_failure_per_hour");
      analytic.sector_error_per_hour =
          read_number(cell, path, "sector_error_per_hour");
      analytic.restripe_hours = read_number(cell, path, "restripe_hours");
    }
    doc.data = std::move(analytic);
    return doc;
  }
  if (kind == "sim") {
    check_keys(cell, path,
               {"point", "configuration", "error", "kind", "mean_hours",
                "stddev_hours", "stderr_hours", "ci95_low_hours",
                "ci95_high_hours", "trials", "seed"});
    SimCellDoc sim;
    sim.mean_hours = read_number(cell, path, "mean_hours");
    sim.stddev_hours = read_number(cell, path, "stddev_hours");
    sim.stderr_hours = read_number(cell, path, "stderr_hours");
    sim.ci95_low_hours = read_number(cell, path, "ci95_low_hours");
    sim.ci95_high_hours = read_number(cell, path, "ci95_high_hours");
    const std::uint64_t trials = read_uint(cell, path, "trials");
    if (trials >
        static_cast<std::uint64_t>(std::numeric_limits<int>::max())) {
      fail(path + ".trials", "unsigned integer out of range");
    }
    sim.trials = static_cast<int>(trials);
    sim.seed = read_uint(cell, path, "seed");
    doc.data = std::move(sim);
    return doc;
  }
  fail(path + ".kind", "expected 'analytic' or 'sim'");
}

ResultSetDoc read_document(const JsonValue& root) {
  check_object(root, "document");
  check_keys(root, "document",
             {"schema", "method", "meta", "axes", "points", "configurations",
              "cells"});
  const std::string schema = read_string(root, "document", "schema");
  if (schema != kResultSetSchema) {
    fail("schema", "expected '" + std::string(kResultSetSchema) + "', got '" +
                       schema + "'");
  }
  ResultSetDoc doc;
  doc.method = read_string(root, "document", "method");
  if (doc.method.empty()) fail("method", "must be non-empty");
  if (const JsonValue* meta = root.find("meta")) {
    doc.cache = read_cache_meta(*meta, "meta");
  }
  doc.axes = read_axes(require(root, "document", "axes"));
  doc.points = read_points(require(root, "document", "points"),
                           doc.axes.size());
  doc.configurations =
      read_configurations(require(root, "document", "configurations"));

  const JsonValue& cells = require(root, "document", "cells");
  if (!cells.is_array()) fail("cells", "expected an array");
  const std::size_t expected = doc.points.size() * doc.configurations.size();
  if (cells.items.size() != expected) {
    fail("cells", "expected " + std::to_string(expected) +
                      " cells (points x configurations), got " +
                      std::to_string(cells.items.size()));
  }
  doc.cells.reserve(cells.items.size());
  for (std::size_t i = 0; i < cells.items.size(); ++i) {
    const std::string path = "cells[" + std::to_string(i) + "]";
    CellDoc cell = read_cell(cells.items[i], path, doc.points.size(),
                             doc.configurations.size());
    const std::uint64_t expected_point = i / doc.configurations.size();
    const std::uint64_t expected_configuration =
        i % doc.configurations.size();
    if (cell.point != expected_point ||
        cell.configuration != expected_configuration) {
      fail(path, "cells must be in row-major (point-major) order");
    }
    doc.cells.push_back(std::move(cell));
  }
  return doc;
}

}  // namespace

void write_resultset_json(const ResultSetDoc& doc, std::ostream& out) {
  JsonWriter json(out);
  json.begin_object();
  json.key("schema").value(kResultSetSchema);
  json.key("method").value(doc.method);
  if (doc.cache.has_value()) {
    json.key("meta").begin_object();
    json.key("cache").begin_object();
    json.key("hits").value(doc.cache->hits);
    json.key("misses").value(doc.cache->misses);
    json.key("lookups").value(doc.cache->lookups);
    json.end_object();
    json.end_object();
  }
  json.key("axes").begin_array();
  for (const AxisDoc& axis : doc.axes) {
    json.begin_object();
    json.key("name").value(axis.name);
    json.end_object();
  }
  json.end_array();

  json.key("points").begin_array();
  for (const PointDoc& point : doc.points) {
    json.begin_object();
    json.key("label").value(point.label);
    if (!doc.axes.empty()) {
      json.key("x").begin_array();
      for (const double coordinate : point.x) json.value(coordinate);
      json.end_array();
    }
    json.end_object();
  }
  json.end_array();

  json.key("configurations").begin_array();
  for (const std::string& name : doc.configurations) json.value(name);
  json.end_array();

  json.key("cells").begin_array();
  for (const CellDoc& cell : doc.cells) write_cell(json, cell);
  json.end_array();
  json.end_object();
}

[[nodiscard]] Expected<ResultSetDoc> read_resultset_json(std::string_view text) {
  obs::Span span(obs::probe::kSpanResultSetRead,
                 obs::probe::kSpanCategoryReport);
  span.arg("bytes", static_cast<std::uint64_t>(text.size()));
  Expected<JsonValue> parsed = parse_json(text);
  if (!parsed.has_value()) return parsed.error();
  try {
    ResultSetDoc doc = read_document(parsed.value());
    if (span.armed()) span.arg("outcome", "ok");
    return doc;
  } catch (const ErrorException& e) {
    if (span.armed()) span.arg("outcome", error_code_name(e.error().code));
    return e.error();
  }
}

}  // namespace nsrel::report
