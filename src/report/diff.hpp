// Structured comparison of two nsrel-resultset-v3 documents — the
// engine behind `nsrel diff A.json B.json`.
//
// Two documents are *comparable* when their shape matches: same method,
// axes, points (labels and coordinates), and configuration names. A
// shape mismatch is a typed invalid_parameter error (the caller passed
// incomparable runs), not drift. Comparable documents are then compared
// cell by cell; a numeric field drifts when
//   |a - b| > abs_tol + rel_tol * max(|a|, |b|)
// (both tolerances default to 0 = exact bit comparison of the rendered
// doubles), and identity fields — cell kind, error code/layer/detail,
// rebuild bottleneck, sim trials/seed — drift on any inequality.
// The report lists every drifting field in row-major cell order, so the
// rendered output is deterministic for a given pair of inputs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "report/resultset_doc.hpp"
#include "report/table.hpp"
#include "util/error.hpp"

namespace nsrel::report {

struct DiffOptions {
  double abs_tol = 0.0;
  double rel_tol = 0.0;
};

/// One drifting field of one cell. `a`/`b` are the rendered values
/// (shortest round-trip form for numbers); the deltas are meaningful
/// only when `numeric`.
struct DriftRow {
  std::uint64_t point = 0;
  std::uint64_t configuration = 0;
  std::string configuration_name;
  std::string field;
  std::string a;
  std::string b;
  bool numeric = false;
  double a_value = 0.0;
  double b_value = 0.0;
  double abs_delta = 0.0;
  double rel_delta = 0.0;  ///< abs_delta / max(|a|, |b|)
};

struct DiffReport {
  std::size_t cells = 0;  ///< cells compared
  std::vector<DriftRow> rows;

  [[nodiscard]] bool clean() const { return rows.empty(); }
};

/// Compares two documents. Shape mismatches come back as typed
/// invalid_parameter errors (layer "report.diff"); comparable documents
/// always produce a report (possibly clean).
[[nodiscard]] Expected<DiffReport> diff_resultsets(
    const ResultSetDoc& a, const ResultSetDoc& b,
    const DiffOptions& options = {});

/// Drift rows as a table: point, configuration, field, a, b, |delta|,
/// rel. Non-numeric drifts render "-" in the delta columns.
[[nodiscard]] Table diff_table(const DiffReport& report);

/// Machine-readable drift document (schema nsrel-diff-v1): the
/// tolerances, the compared cell count, and one record per drift row.
void write_diff_json(const DiffReport& report, const DiffOptions& options,
                     std::ostream& out);

}  // namespace nsrel::report
