#include "report/summary.hpp"

#include <cstddef>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "report/json.hpp"
#include "report/json_parse.hpp"
#include "report/metrics_doc.hpp"

namespace nsrel::report {

namespace {

/// Per-run lookup indexes (std::map for deterministic iteration).
struct RunIndex {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, const obs::Registry::HistogramRow*> histograms;
  std::map<std::string, std::uint64_t> events;
};

RunIndex index_run(const RunDoc& run) {
  RunIndex index;
  if (run.metrics.has_value()) {
    for (const auto& row : run.metrics->counters) {
      index.counters.emplace(row.name, row.value);
    }
    for (const auto& row : run.metrics->histograms) {
      index.histograms.emplace(row.name, &row);
    }
  }
  if (run.events.has_value()) {
    for (auto& [name, count] : event_counts(*run.events)) {
      index.events.emplace(name, count);
    }
  }
  return index;
}

/// The aggregation both renderers share.
struct Aggregate {
  std::vector<RunIndex> indexes;
  obs::MetricsSnapshot total;                       ///< merged metrics
  std::map<std::string, std::uint64_t> total_events;
  std::uint64_t total_dropped = 0;
  bool any_metrics = false;
  bool any_events = false;
};

Aggregate aggregate(const std::vector<RunDoc>& runs) {
  Aggregate agg;
  for (const RunDoc& run : runs) {
    agg.indexes.push_back(index_run(run));
    if (run.metrics.has_value()) {
      agg.any_metrics = true;
      agg.total = obs::MetricsSnapshot::merge(agg.total, *run.metrics);
    }
    if (run.events.has_value()) {
      agg.any_events = true;
      agg.total_dropped += run.events->dropped;
      for (const auto& [name, count] : event_counts(*run.events)) {
        agg.total_events[name] += count;
      }
    }
  }
  return agg;
}

void write_histogram_summary(JsonWriter& json,
                             const obs::Registry::HistogramRow& row) {
  json.begin_object();
  json.key("name").value(row.name);
  json.key("count").value(row.count);
  json.key("sum").value(row.sum);
  json.key("min").value(row.min);
  json.key("max").value(row.max);
  json.key("p50").value(row.quantile_bound(0.50));
  json.key("p90").value(row.quantile_bound(0.90));
  json.key("p99").value(row.quantile_bound(0.99));
  json.end_object();
}

void write_name_values(JsonWriter& json, const char* key,
                       const std::map<std::string, std::uint64_t>& values) {
  json.key(key).begin_array();
  for (const auto& [name, value] : values) {
    json.begin_object();
    json.key("name").value(name);
    json.key("value").value(value);
    json.end_object();
  }
  json.end_array();
}

}  // namespace

[[nodiscard]] Expected<RunDoc> read_run_document(std::string label, std::string_view text) {
  RunDoc run;
  run.label = std::move(label);

  // Detection: an events journal's first line is a complete one-line
  // header object; a metrics document's first line is just "{".
  std::size_t end = text.find('\n');
  if (end == std::string_view::npos) end = text.size();
  const Expected<JsonValue> first = parse_json(text.substr(0, end));
  bool is_events = false;
  if (first.has_value() && first.value().is_object()) {
    const JsonValue* schema = first.value().find("schema");
    is_events = schema != nullptr && schema->is_string() &&
                schema->text == kEventsSchema;
  }

  if (is_events) {
    Expected<EventsDoc> events = read_events_ndjson(text);
    if (!events.has_value()) {
      Error error = events.error();
      error.detail = run.label + ": " + error.detail;
      return error;
    }
    run.events = std::move(events.value());
    return run;
  }

  Expected<obs::MetricsSnapshot> metrics = read_metrics_json(text);
  if (!metrics.has_value()) {
    Error error = metrics.error();
    error.detail = run.label + ": " + error.detail;
    return error;
  }
  run.metrics = std::move(metrics.value());
  return run;
}

Table report_table(const std::vector<RunDoc>& runs) {
  const Aggregate agg = aggregate(runs);

  std::vector<std::string> headers{"row"};
  for (const RunDoc& run : runs) headers.push_back(run.label);
  headers.emplace_back("total");
  Table table(std::move(headers));

  const auto add_row = [&](const std::string& name, const auto& per_run,
                           const std::string& total) {
    std::vector<std::string> cells{name};
    for (std::size_t i = 0; i < runs.size(); ++i) cells.push_back(per_run(i));
    cells.push_back(total);
    table.add_row(std::move(cells));
  };

  for (const auto& counter : agg.total.counters) {
    add_row(
        counter.name,
        [&](std::size_t i) -> std::string {
          const auto it = agg.indexes[i].counters.find(counter.name);
          return it == agg.indexes[i].counters.end()
                     ? "-"
                     : std::to_string(it->second);
        },
        std::to_string(counter.value));
  }

  for (const auto& histogram : agg.total.histograms) {
    const struct {
      const char* suffix;
      std::uint64_t (*field)(const obs::Registry::HistogramRow&);
    } sub_rows[] = {
        {".count", [](const obs::Registry::HistogramRow& r) { return r.count; }},
        {".sum", [](const obs::Registry::HistogramRow& r) { return r.sum; }},
        {".p50",
         [](const obs::Registry::HistogramRow& r) {
           return r.quantile_bound(0.50);
         }},
        {".p90",
         [](const obs::Registry::HistogramRow& r) {
           return r.quantile_bound(0.90);
         }},
        {".p99",
         [](const obs::Registry::HistogramRow& r) {
           return r.quantile_bound(0.99);
         }},
    };
    for (const auto& sub : sub_rows) {
      add_row(
          histogram.name + sub.suffix,
          [&](std::size_t i) -> std::string {
            const auto it = agg.indexes[i].histograms.find(histogram.name);
            return it == agg.indexes[i].histograms.end()
                       ? "-"
                       : std::to_string(sub.field(*it->second));
          },
          std::to_string(sub.field(histogram)));
    }
  }

  for (const auto& [name, total] : agg.total_events) {
    add_row(
        "events." + name,
        [&](std::size_t i) -> std::string {
          if (!runs[i].events.has_value()) return "-";
          const auto it = agg.indexes[i].events.find(name);
          return std::to_string(
              it == agg.indexes[i].events.end() ? 0 : it->second);
        },
        std::to_string(total));
  }
  if (agg.any_events) {
    add_row(
        "events.dropped",
        [&](std::size_t i) -> std::string {
          return runs[i].events.has_value()
                     ? std::to_string(runs[i].events->dropped)
                     : "-";
        },
        std::to_string(agg.total_dropped));
  }
  return table;
}

void write_report_json(const std::vector<RunDoc>& runs, std::ostream& out) {
  const Aggregate agg = aggregate(runs);

  JsonWriter json(out);
  json.begin_object();
  json.key("schema").value(kReportSchema);
  json.key("runs").begin_array();
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunDoc& run = runs[i];
    json.begin_object();
    json.key("label").value(run.label);
    if (run.metrics.has_value()) {
      json.key("metrics").begin_object();
      json.key("counters").begin_array();
      for (const auto& row : run.metrics->counters) {
        json.begin_object();
        json.key("name").value(row.name);
        json.key("value").value(row.value);
        json.end_object();
      }
      json.end_array();
      json.key("histograms").begin_array();
      for (const auto& row : run.metrics->histograms) {
        write_histogram_summary(json, row);
      }
      json.end_array();
      json.end_object();
    } else {
      json.key("metrics").null();
    }
    if (run.events.has_value()) {
      json.key("events").begin_object();
      json.key("dropped").value(run.events->dropped);
      write_name_values(json, "counts", agg.indexes[i].events);
      json.end_object();
    } else {
      json.key("events").null();
    }
    json.end_object();
  }
  json.end_array();

  json.key("total").begin_object();
  json.key("counters").begin_array();
  for (const auto& row : agg.total.counters) {
    json.begin_object();
    json.key("name").value(row.name);
    json.key("value").value(row.value);
    json.end_object();
  }
  json.end_array();
  json.key("histograms").begin_array();
  for (const auto& row : agg.total.histograms) {
    write_histogram_summary(json, row);
  }
  json.end_array();
  write_name_values(json, "events", agg.total_events);
  json.key("events_dropped").value(agg.total_dropped);
  json.end_object();
  json.end_object();
}

}  // namespace nsrel::report
