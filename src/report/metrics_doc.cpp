#include "report/metrics_doc.hpp"

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "report/json.hpp"
#include "report/json_parse.hpp"

namespace nsrel::report {

namespace {

// --- writer -----------------------------------------------------------

void write_histogram(JsonWriter& json, const obs::Registry::HistogramRow& row) {
  json.begin_object();
  json.key("name").value(row.name);
  json.key("count").value(row.count);
  json.key("sum").value(row.sum);
  json.key("min").value(row.min);
  json.key("max").value(row.max);
  json.key("p50").value(row.quantile_bound(0.50));
  json.key("p90").value(row.quantile_bound(0.90));
  json.key("p99").value(row.quantile_bound(0.99));
  json.key("buckets").begin_array();
  for (std::size_t i = 0; i < obs::kHistogramBuckets; ++i) {
    if (row.buckets[i] == 0) continue;
    json.begin_array();
    json.value(static_cast<std::uint64_t>(i));
    json.value(row.buckets[i]);
    json.end_array();
  }
  json.end_array();
  json.end_object();
}

// --- reader -----------------------------------------------------------

/// Schema-validation failure. Thrown internally, converted to Expected
/// at the read_metrics_json boundary.
[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw ErrorException(Error{ErrorCode::kMalformedDocument, "report.metrics",
                             path + ": " + what});
}

const JsonValue& require(const JsonValue& object, const std::string& path,
                         std::string_view key) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) fail(path, "missing key '" + std::string(key) + "'");
  return *value;
}

void check_keys(const JsonValue& object, const std::string& path,
                const std::vector<std::string_view>& allowed) {
  for (const auto& [key, value] : object.members) {
    bool known = false;
    for (const std::string_view candidate : allowed) {
      if (key == candidate) {
        known = true;
        break;
      }
    }
    if (!known) fail(path, "unknown key '" + key + "'");
  }
}

std::string read_string(const JsonValue& object, const std::string& path,
                        std::string_view key) {
  const JsonValue& value = require(object, path, key);
  if (!value.is_string()) {
    fail(path + "." + std::string(key), "expected a string");
  }
  return value.text;
}

/// An exact non-negative integer: plain digits only, no double detour.
std::uint64_t parse_uint(const JsonValue& value, const std::string& field) {
  if (!value.is_number()) fail(field, "expected an unsigned integer");
  const std::string& token = value.text;
  const bool digits_only =
      !token.empty() &&
      token.find_first_not_of("0123456789") == std::string::npos;
  if (!digits_only || (token.size() > 1 && token[0] == '0')) {
    fail(field, "expected an unsigned integer");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(token.c_str(), &end, 10);
  if (errno != 0 || end != token.c_str() + token.size()) {
    fail(field, "unsigned integer out of range");
  }
  return parsed;
}

std::uint64_t read_uint(const JsonValue& object, const std::string& path,
                        std::string_view key) {
  return parse_uint(require(object, path, key),
                    path + "." + std::string(key));
}

obs::Registry::CounterRow read_counter(const JsonValue& value,
                                       const std::string& path) {
  if (!value.is_object()) fail(path, "expected an object");
  check_keys(value, path, {"name", "value"});
  obs::Registry::CounterRow row;
  row.name = read_string(value, path, "name");
  if (row.name.empty()) fail(path + ".name", "must be non-empty");
  row.value = read_uint(value, path, "value");
  return row;
}

obs::Registry::HistogramRow read_histogram(const JsonValue& value,
                                           const std::string& path) {
  if (!value.is_object()) fail(path, "expected an object");
  check_keys(value, path,
             {"name", "count", "sum", "min", "max", "p50", "p90", "p99",
              "buckets"});
  obs::Registry::HistogramRow row;
  row.name = read_string(value, path, "name");
  if (row.name.empty()) fail(path + ".name", "must be non-empty");
  row.count = read_uint(value, path, "count");
  row.sum = read_uint(value, path, "sum");
  row.min = read_uint(value, path, "min");
  row.max = read_uint(value, path, "max");

  const JsonValue& buckets = require(value, path, "buckets");
  const std::string buckets_path = path + ".buckets";
  if (!buckets.is_array()) fail(buckets_path, "expected an array");
  std::uint64_t total = 0;
  std::int64_t last_index = -1;
  for (std::size_t i = 0; i < buckets.items.size(); ++i) {
    const std::string entry_path =
        buckets_path + "[" + std::to_string(i) + "]";
    const JsonValue& entry = buckets.items[i];
    if (!entry.is_array() || entry.items.size() != 2) {
      fail(entry_path, "expected an [index, count] pair");
    }
    const std::uint64_t index =
        parse_uint(entry.items[0], entry_path + "[0]");
    const std::uint64_t count =
        parse_uint(entry.items[1], entry_path + "[1]");
    if (index >= obs::kHistogramBuckets) {
      fail(entry_path, "bucket index out of range");
    }
    if (static_cast<std::int64_t>(index) <= last_index) {
      fail(entry_path, "bucket indices must be strictly ascending");
    }
    if (count == 0) fail(entry_path, "sparse buckets must be non-zero");
    last_index = static_cast<std::int64_t>(index);
    row.buckets[index] = count;
    total += count;
  }
  if (total != row.count) {
    fail(buckets_path, "bucket counts must sum to 'count'");
  }
  if (row.count == 0 && (row.min != 0 || row.max != 0 || row.sum != 0)) {
    fail(path, "empty histogram must have zero sum/min/max");
  }

  // The percentile summary is derived data; a document that disagrees
  // with its own buckets was corrupted or hand-edited inconsistently.
  const struct {
    const char* key;
    double q;
  } summaries[] = {{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}};
  for (const auto& summary : summaries) {
    if (read_uint(value, path, summary.key) !=
        row.quantile_bound(summary.q)) {
      fail(path + "." + summary.key,
           "percentile summary does not match buckets");
    }
  }
  return row;
}

obs::MetricsSnapshot read_document(const JsonValue& root) {
  if (!root.is_object()) fail("document", "expected an object");
  check_keys(root, "document", {"schema", "counters", "histograms"});
  const std::string schema = read_string(root, "document", "schema");
  if (schema != kMetricsSchema) {
    fail("schema", "expected '" + std::string(kMetricsSchema) + "', got '" +
                       schema + "'");
  }

  obs::MetricsSnapshot snapshot;
  const JsonValue& counters = require(root, "document", "counters");
  if (!counters.is_array()) fail("counters", "expected an array");
  std::string last_name;
  for (std::size_t i = 0; i < counters.items.size(); ++i) {
    const std::string path = "counters[" + std::to_string(i) + "]";
    obs::Registry::CounterRow row = read_counter(counters.items[i], path);
    if (i > 0 && row.name <= last_name) {
      fail(path, "counter names must be strictly ascending");
    }
    last_name = row.name;
    snapshot.counters.push_back(std::move(row));
  }

  const JsonValue& histograms = require(root, "document", "histograms");
  if (!histograms.is_array()) fail("histograms", "expected an array");
  last_name.clear();
  for (std::size_t i = 0; i < histograms.items.size(); ++i) {
    const std::string path = "histograms[" + std::to_string(i) + "]";
    obs::Registry::HistogramRow row =
        read_histogram(histograms.items[i], path);
    if (i > 0 && row.name <= last_name) {
      fail(path, "histogram names must be strictly ascending");
    }
    last_name = row.name;
    snapshot.histograms.push_back(std::move(row));
  }
  return snapshot;
}

}  // namespace

void write_metrics_json(const obs::MetricsSnapshot& snapshot,
                        std::ostream& out) {
  JsonWriter json(out);
  json.begin_object();
  json.key("schema").value(kMetricsSchema);
  json.key("counters").begin_array();
  for (const auto& row : snapshot.counters) {
    json.begin_object();
    json.key("name").value(row.name);
    json.key("value").value(row.value);
    json.end_object();
  }
  json.end_array();
  json.key("histograms").begin_array();
  for (const auto& row : snapshot.histograms) write_histogram(json, row);
  json.end_array();
  json.end_object();
}

[[nodiscard]] Expected<obs::MetricsSnapshot> read_metrics_json(std::string_view text) {
  Expected<JsonValue> parsed = parse_json(text);
  if (!parsed.has_value()) return parsed.error();
  try {
    return read_document(parsed.value());
  } catch (const ErrorException& e) {
    return e.error();
  }
}

}  // namespace nsrel::report
