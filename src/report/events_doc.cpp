#include "report/events_doc.hpp"

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/event_names.hpp"
#include "report/json.hpp"
#include "report/json_parse.hpp"

namespace nsrel::report {

namespace {

// --- writer -----------------------------------------------------------

/// NDJSON lines are written compactly by hand: JsonWriter pretty-prints
/// one multi-line document, which is the wrong shape for a journal that
/// wants one self-contained event per line.
void write_event_line(const obs::Event& event, std::ostream& out) {
  out << "{\"event\":\"" << json_escape(event.name) << "\",\"domain\":\""
      << (event.domain == obs::ClockDomain::kSimTime ? "sim" : "seq")
      << "\",\"seq\":" << event.seq;
  if (event.domain == obs::ClockDomain::kSimTime) {
    out << ",\"t\":" << json_number(event.sim_seconds);
  }
  for (std::uint32_t i = 0; i < event.arg_count; ++i) {
    const obs::EventArg& arg = event.args[i];
    out << ",\"" << json_escape(arg.key) << "\":";
    switch (arg.kind) {
      case obs::EventArg::Kind::kUint:
        out << arg.uint_value;
        break;
      case obs::EventArg::Kind::kDouble:
        out << json_number(arg.double_value);
        break;
      case obs::EventArg::Kind::kLiteral:
        out << '"' << json_escape(arg.literal_value) << '"';
        break;
      case obs::EventArg::Kind::kNone:
        out << "null";
        break;
    }
  }
  out << "}\n";
}

// --- reader -----------------------------------------------------------

/// Schema-validation failure. Thrown internally, converted to Expected
/// at the read_events_ndjson boundary.
[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw ErrorException(Error{ErrorCode::kMalformedDocument, "report.events",
                             path + ": " + what});
}

std::uint64_t parse_uint(const JsonValue& value, const std::string& field) {
  if (!value.is_number()) fail(field, "expected an unsigned integer");
  const std::string& token = value.text;
  const bool digits_only =
      !token.empty() &&
      token.find_first_not_of("0123456789") == std::string::npos;
  if (!digits_only || (token.size() > 1 && token[0] == '0')) {
    fail(field, "expected an unsigned integer");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(token.c_str(), &end, 10);
  if (errno != 0 || end != token.c_str() + token.size()) {
    fail(field, "unsigned integer out of range");
  }
  return parsed;
}

std::uint64_t read_header(const JsonValue& root, const std::string& path) {
  if (!root.is_object()) fail(path, "expected an object");
  if (root.members.size() != 2 || root.members[0].first != "schema" ||
      root.members[1].first != "dropped") {
    fail(path, "header must be {\"schema\", \"dropped\"}");
  }
  const JsonValue& schema = root.members[0].second;
  if (!schema.is_string() || schema.text != kEventsSchema) {
    fail(path + ".schema",
         "expected '" + std::string(kEventsSchema) + "'");
  }
  return parse_uint(root.members[1].second, path + ".dropped");
}

EventRecord read_event(const JsonValue& root, const std::string& path) {
  if (!root.is_object()) fail(path, "expected an object");
  const auto& members = root.members;
  // Reserved keys come first and in order; everything after is an arg.
  // (The parser already rejected duplicate keys.)
  if (members.size() < 3 || members[0].first != "event" ||
      members[1].first != "domain" || members[2].first != "seq") {
    fail(path, "event lines must start with event, domain, seq");
  }
  EventRecord record;
  if (!members[0].second.is_string() || members[0].second.text.empty()) {
    fail(path + ".event", "expected a non-empty string");
  }
  record.name = members[0].second.text;
  const JsonValue& domain = members[1].second;
  if (!domain.is_string() || (domain.text != "seq" && domain.text != "sim")) {
    fail(path + ".domain", "expected \"seq\" or \"sim\"");
  }
  record.sim_domain = domain.text == "sim";
  record.seq = parse_uint(members[2].second, path + ".seq");

  std::size_t next = 3;
  if (record.sim_domain) {
    if (members.size() < 4 || members[3].first != "t" ||
        !members[3].second.is_number()) {
      fail(path, "sim-domain events must carry a numeric 't'");
    }
    record.sim_seconds = members[3].second.number;
    next = 4;
  }

  for (std::size_t i = next; i < members.size(); ++i) {
    const auto& [key, value] = members[i];
    const std::string field = path + "." + key;
    if (key == "event" || key == "domain" || key == "seq" || key == "t") {
      fail(field, "reserved key out of position");
    }
    EventRecord::Arg arg;
    arg.key = key;
    if (value.is_string()) {
      arg.kind = EventRecord::Arg::Kind::kLiteral;
      arg.literal_value = value.text;
    } else if (value.is_number()) {
      const std::string& token = value.text;
      const bool digits_only =
          !token.empty() &&
          token.find_first_not_of("0123456789") == std::string::npos;
      if (digits_only) {
        arg.kind = EventRecord::Arg::Kind::kUint;
        arg.uint_value = parse_uint(value, field);
      } else {
        arg.kind = EventRecord::Arg::Kind::kDouble;
        arg.double_value = value.number;
      }
    } else {
      fail(field, "args must be numbers or strings");
    }
    record.args.push_back(std::move(arg));
  }
  return record;
}

// --- views ------------------------------------------------------------

std::string arg_to_string(const EventRecord::Arg& arg) {
  switch (arg.kind) {
    case EventRecord::Arg::Kind::kUint:
      return std::to_string(arg.uint_value);
    case EventRecord::Arg::Kind::kDouble:
      return json_number(arg.double_value);
    case EventRecord::Arg::Kind::kLiteral:
      return arg.literal_value;
  }
  return "";
}

std::optional<std::uint64_t> find_uint_arg(const EventRecord& record,
                                           std::string_view key) {
  for (const auto& arg : record.args) {
    if (arg.key == key && arg.kind == EventRecord::Arg::Kind::kUint) {
      return arg.uint_value;
    }
  }
  return std::nullopt;
}

/// Per-batch accumulator for the batches rollup.
struct BatchCounts {
  std::uint64_t faults = 0;
  std::uint64_t applied = 0;
  std::uint64_t replans = 0;
  std::uint64_t retries = 0;
  std::uint64_t degraded = 0;
  std::uint64_t failed_reads = 0;

  [[nodiscard]] bool any() const {
    return faults != 0 || applied != 0 || replans != 0 || retries != 0 ||
           degraded != 0 || failed_reads != 0;
  }

  void add(const EventRecord& record) {
    if (record.name == obs::event::kRepairFault) {
      ++faults;
      if (find_uint_arg(record, "applied").value_or(0) != 0) ++applied;
    } else if (record.name == obs::event::kRepairReplan) {
      replans += find_uint_arg(record, "invalidated").value_or(0);
    } else if (record.name == obs::event::kRepairRetry) {
      ++retries;
    } else if (record.name == obs::event::kBrickDegradedRead) {
      ++degraded;
    } else if (record.name == obs::event::kWorkloadReadFailed) {
      ++failed_reads;
    }
  }
};

std::vector<std::string> batch_row(const std::string& batch,
                                   const std::string& t,
                                   const std::string& committed,
                                   const BatchCounts& counts) {
  return {batch,
          t,
          committed,
          std::to_string(counts.faults),
          std::to_string(counts.applied),
          std::to_string(counts.replans),
          std::to_string(counts.retries),
          std::to_string(counts.degraded),
          std::to_string(counts.failed_reads)};
}

}  // namespace

void write_events_ndjson(const std::vector<obs::Event>& events,
                         std::uint64_t dropped, std::ostream& out) {
  out << "{\"schema\":\"" << kEventsSchema << "\",\"dropped\":" << dropped
      << "}\n";
  for (const obs::Event& event : events) write_event_line(event, out);
}

[[nodiscard]] Expected<EventsDoc> read_events_ndjson(std::string_view text) {
  EventsDoc doc;
  std::size_t line_number = 0;
  std::size_t pos = 0;
  bool saw_header = false;
  try {
    while (pos < text.size()) {
      std::size_t end = text.find('\n', pos);
      if (end == std::string_view::npos) end = text.size();
      const std::string_view line = text.substr(pos, end - pos);
      pos = end + 1;
      ++line_number;
      const std::string path = "line " + std::to_string(line_number);
      if (line.find_first_not_of(" \t\r") == std::string_view::npos) {
        if (!saw_header) fail(path, "journal must start with a header line");
        continue;  // tolerate a trailing blank line
      }
      Expected<JsonValue> parsed = parse_json(line);
      if (!parsed.has_value()) {
        fail(path, parsed.error().detail);
      }
      if (!saw_header) {
        doc.dropped = read_header(parsed.value(), path);
        saw_header = true;
      } else {
        doc.events.push_back(read_event(parsed.value(), path));
      }
    }
    if (!saw_header) fail("line 1", "journal must start with a header line");
  } catch (const ErrorException& e) {
    return e.error();
  }
  return doc;
}

std::vector<std::pair<std::string, std::uint64_t>> event_counts(
    const EventsDoc& doc) {
  std::map<std::string, std::uint64_t> counts;
  for (const EventRecord& record : doc.events) ++counts[record.name];
  return {counts.begin(), counts.end()};
}

Table events_timeline_table(const EventsDoc& doc) {
  Table table({"#", "domain", "clock", "event", "details"});
  std::size_t index = 0;
  for (const EventRecord& record : doc.events) {
    std::string details;
    for (const auto& arg : record.args) {
      if (!details.empty()) details += " ";
      details += arg.key + "=" + arg_to_string(arg);
    }
    table.add_row({std::to_string(index++),
                   record.sim_domain ? "sim" : "seq",
                   record.sim_domain ? json_number(record.sim_seconds)
                                     : std::to_string(record.seq),
                   record.name, details});
  }
  return table;
}

Table events_batches_table(const EventsDoc& doc) {
  Table table({"batch", "t", "committed", "faults", "applied", "replans",
               "retries", "degraded", "failed_reads"});
  BatchCounts counts;
  std::size_t i = 0;
  const std::vector<EventRecord>& events = doc.events;
  while (i < events.size()) {
    const EventRecord& record = events[i];
    if (record.name != obs::event::kRepairBarrier) {
      counts.add(record);
      ++i;
      continue;
    }
    // Foreground reads served *at* this barrier share its sequence
    // number and sort directly after it — fold them into this row.
    std::size_t j = i + 1;
    while (j < events.size() && events[j].seq == record.seq &&
           events[j].name != obs::event::kRepairBarrier) {
      counts.add(events[j]);
      ++j;
    }
    const auto batch = find_uint_arg(record, "batch");
    const auto committed = find_uint_arg(record, "committed");
    table.add_row(batch_row(
        batch.has_value() ? std::to_string(*batch) : "-",
        json_number(record.sim_seconds),
        committed.has_value() ? std::to_string(*committed) : "-", counts));
    counts = BatchCounts{};
    i = j;
  }
  if (counts.any()) table.add_row(batch_row("-", "-", "-", counts));
  return table;
}

void write_events_json(const EventsDoc& doc, std::ostream& out) {
  JsonWriter json(out);
  json.begin_object();
  json.key("schema").value(kEventsSchema);
  json.key("dropped").value(doc.dropped);
  json.key("events").begin_array();
  for (const EventRecord& record : doc.events) {
    json.begin_object();
    json.key("event").value(record.name);
    json.key("domain").value(record.sim_domain ? "sim" : "seq");
    json.key("seq").value(record.seq);
    if (record.sim_domain) json.key("t").value(record.sim_seconds);
    json.key("args").begin_object();
    for (const auto& arg : record.args) {
      json.key(arg.key);
      switch (arg.kind) {
        case EventRecord::Arg::Kind::kUint:
          json.value(arg.uint_value);
          break;
        case EventRecord::Arg::Kind::kDouble:
          json.value(arg.double_value);
          break;
        case EventRecord::Arg::Kind::kLiteral:
          json.value(arg.literal_value);
          break;
      }
    }
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

}  // namespace nsrel::report
