// Minimal strict JSON parser — the read half of the report layer's
// serialization loop (json.hpp is the write half).
//
// Deliberately small: parses exactly the dialect JsonWriter emits (plus
// arbitrary whitespace and member order, since part of the point is
// reading documents that other tools may have reformatted). Objects keep
// members in insertion order in a vector — never a hash map — so
// everything downstream of a parse stays deterministically ordered.
// Every malformed input comes back as a typed kMalformedDocument error
// with a byte offset, not an exception.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace nsrel::report {

/// One parsed JSON value. Numbers keep both the strtod double and the
/// raw source token (`text`), so integer fields that must round-trip
/// exactly (uint64 seeds) can re-parse the token losslessly.
struct JsonValue {
  enum class Kind : unsigned char {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  /// String payload for kString; the raw source token for kNumber.
  std::string text;
  std::vector<JsonValue> items;  ///< kArray elements
  /// kObject members in source order (duplicate keys are a parse error).
  std::vector<std::pair<std::string, JsonValue>> members;

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }

  /// The member with the given key, or nullptr. Precondition: is_object().
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
};

/// Parses one complete JSON document (trailing content beyond the single
/// top-level value is an error). Failures are typed
/// kMalformedDocument errors (layer "report.json") carrying the byte
/// offset of the problem.
[[nodiscard]] Expected<JsonValue> parse_json(std::string_view text);

}  // namespace nsrel::report
