#include "report/footer.hpp"

#include <cstdint>
#include <ostream>

namespace nsrel::report {

void print_cache_footer(std::uint64_t hits, std::uint64_t misses,
                        OutputFormat format, std::ostream& out) {
  if (format == OutputFormat::kJson) return;
  out << "cache: " << hits << " hits, " << misses << " misses ("
      << (hits + misses) << " lookups)\n";
}

}  // namespace nsrel::report
