#include "report/table.hpp"

#include <algorithm>
#include <cstddef>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace nsrel::report {

OutputFormat parse_output_format(const std::string& name) {
  if (name == "table") return OutputFormat::kTable;
  if (name == "csv") return OutputFormat::kCsv;
  if (name == "json") return OutputFormat::kJson;
  throw ContractViolation("unknown output format '" + name +
                          "' (use table|csv|json)");
}

std::string format_name(OutputFormat format) {
  switch (format) {
    case OutputFormat::kTable: return "table";
    case OutputFormat::kCsv: return "csv";
    case OutputFormat::kJson: return "json";
  }
  NSREL_ASSERT(false);
  return "table";
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  NSREL_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  NSREL_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << cells[c];
      if (c + 1 < cells.size()) {
        out << std::string(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string escaped = "\"";
  for (const char ch : cell) {
    if (ch == '"') escaped += '"';
    escaped += ch;
  }
  escaped += '"';
  return escaped;
}
}  // namespace

void Table::print_csv(std::ostream& out) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << ',';
      out << csv_escape(cells[c]);
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string Table::to_string() const {
  std::ostringstream out;
  print(out);
  return out.str();
}

void print_section(std::ostream& out, const std::string& title) {
  out << "\n== " << title << " ==\n";
}

}  // namespace nsrel::report
