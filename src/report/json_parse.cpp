#include "report/json_parse.hpp"

#include <cerrno>
#include <cstddef>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nsrel::report {

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

/// Guards against stack exhaustion from adversarial nesting; the
/// documents this library writes are at most ~6 levels deep.
constexpr std::size_t kMaxDepth = 64;

/// Recursive-descent parser. Errors are signalled through ErrorException
/// (caught once at the parse_json boundary) so the recursion does not
/// have to thread Expected through every production.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ErrorException(Error{ErrorCode::kMalformedDocument, "report.json",
                               what + " at offset " + std::to_string(pos_)});
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_whitespace() {
    while (!at_end()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c, const char* context) {
    if (at_end() || peek() != c) {
      fail(std::string("expected '") + c + "' " + context);
    }
    ++pos_;
  }

  void expect_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      fail("invalid literal (expected '" + std::string(literal) + "')");
    }
    pos_ += literal.size();
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_whitespace();
    if (at_end()) fail("unexpected end of document");
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return parse_string_value();
      case 't':
        expect_literal("true");
        return make_bool(true);
      case 'f':
        expect_literal("false");
        return make_bool(false);
      case 'n':
        expect_literal("null");
        return JsonValue{};
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail("unexpected character");
    }
  }

  static JsonValue make_bool(bool flag) {
    JsonValue value;
    value.kind = JsonValue::Kind::kBool;
    value.boolean = flag;
    return value;
  }

  JsonValue parse_object(std::size_t depth) {
    expect('{', "to open object");
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    skip_whitespace();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return value;
    }
    for (;;) {
      skip_whitespace();
      if (at_end() || peek() != '"') fail("expected object key");
      std::string key = parse_string();
      if (value.find(key) != nullptr) fail("duplicate key '" + key + "'");
      skip_whitespace();
      expect(':', "after object key");
      value.members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      if (at_end()) fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}', "to close object");
      return value;
    }
  }

  JsonValue parse_array(std::size_t depth) {
    expect('[', "to open array");
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    skip_whitespace();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return value;
    }
    for (;;) {
      value.items.push_back(parse_value(depth + 1));
      skip_whitespace();
      if (at_end()) fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']', "to close array");
      return value;
    }
  }

  JsonValue parse_string_value() {
    JsonValue value;
    value.kind = JsonValue::Kind::kString;
    value.text = parse_string();
    return value;
  }

  std::string parse_string() {
    expect('"', "to open string");
    std::string out;
    for (;;) {
      if (at_end()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u':
          append_unicode_escape(out);
          break;
        default:
          pos_ -= 2;
          fail("invalid escape sequence");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4U;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape digit");
      }
    }
    return code;
  }

  void append_unicode_escape(std::string& out) {
    unsigned code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      // High surrogate: must be followed by \uDC00-\uDFFF.
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        fail("unpaired surrogate in \\u escape");
      }
      pos_ += 2;
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10U) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired surrogate in \\u escape");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6U)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3FU)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12U)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6U) & 0x3FU)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3FU)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18U)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12U) & 0x3FU)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6U) & 0x3FU)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3FU)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    if (at_end() || peek() < '0' || peek() > '9') fail("invalid number");
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!at_end() && peek() == '.') {
      ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') {
        fail("invalid number fraction");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') {
        fail("invalid number exponent");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.text = std::string(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    value.number = std::strtod(value.text.c_str(), &end);
    if (end != value.text.c_str() + value.text.size()) fail("invalid number");
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

[[nodiscard]] Expected<JsonValue> parse_json(std::string_view text) {
  try {
    return Parser(text).parse_document();
  } catch (const ErrorException& e) {
    return e.error();
  }
}

}  // namespace nsrel::report
