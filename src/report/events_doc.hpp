// Serialization loop for flight-recorder journals (schema
// nsrel-events-v1): the write half renders drained obs::Journal events
// as NDJSON — line 1 is a header object, every following line one
// event — and the read half parses a journal back strictly (typed
// kMalformedDocument, layer "report.events", on anything malformed).
//
// NDJSON rather than one JSON document because the journal is the
// designed-for ingest path of a resident `nsreld`: an open journal can
// be tailed and each complete line is independently parseable; a
// truncated final line is detectable damage, not silent data loss.
//
// Line shapes:
//   {"schema":"nsrel-events-v1","dropped":0}
//   {"event":"cell.claim","domain":"seq","seq":4294967296,"cell":0,...}
//   {"event":"repair.barrier","domain":"sim","seq":7,"t":0.5,...}
//
// Event args are flattened into the line in emission order after the
// reserved keys (event, domain, seq, t); arg keys never collide with
// the reserved set (event_names.hpp documents each event's args).
// Deterministic: events arrive stable-sorted by seq from
// Journal::events(), numbers are raw uint tokens or shortest
// round-trip doubles, so the same run writes the same bytes at any
// --jobs value.
//
// This header also hosts the post-hoc views behind `nsrel events`: a
// flat timeline table and the repair batches rollup (per-barrier rows
// with fault/replan/retry/degraded-read/failed-read counts).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/journal.hpp"
#include "report/table.hpp"
#include "util/error.hpp"

namespace nsrel::report {

inline constexpr const char* kEventsSchema = "nsrel-events-v1";

/// One parsed journal event (owning strings, unlike the in-process
/// obs::Event whose names are static literals).
struct EventRecord {
  struct Arg {
    enum class Kind : unsigned char { kUint, kDouble, kLiteral };
    std::string key;
    Kind kind = Kind::kUint;
    std::uint64_t uint_value = 0;
    double double_value = 0.0;
    std::string literal_value;
  };

  std::string name;
  bool sim_domain = false;
  std::uint64_t seq = 0;
  double sim_seconds = 0.0;  ///< sim domain only
  std::vector<Arg> args;
};

/// A parsed journal document.
struct EventsDoc {
  std::uint64_t dropped = 0;
  std::vector<EventRecord> events;
};

/// Writes the drained journal as nsrel-events-v1 NDJSON. `events` must
/// come from Journal::events() (already seq-sorted).
void write_events_ndjson(const std::vector<obs::Event>& events,
                         std::uint64_t dropped, std::ostream& out);

/// Strict read of an nsrel-events-v1 journal.
[[nodiscard]] Expected<EventsDoc> read_events_ndjson(std::string_view text);

/// Occurrence count per event name, in name order — the cross-run rows
/// `nsrel report` shows for a journal column.
[[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> event_counts(
    const EventsDoc& doc);

/// Flat timeline: one row per event (#, domain, clock, event, details
/// with args as "k=v" pairs).
[[nodiscard]] Table events_timeline_table(const EventsDoc& doc);

/// Repair batches rollup: one row per repair.barrier event carrying
/// the batch index, sim time, cumulative committed stripes, and the
/// counts of faults (fired / applied), re-planned stripes, retries,
/// degraded reads, and failed foreground reads attributed to that
/// batch. Events after the final barrier roll into a trailing "-" row.
[[nodiscard]] Table events_batches_table(const EventsDoc& doc);

/// The parsed journal re-rendered as one pretty JSON document (the
/// `nsrel events --format json` shape): {"schema", "dropped",
/// "events": [{"event", "domain", "seq", "t"?, "args": {...}}, ...]}.
void write_events_json(const EventsDoc& doc, std::ostream& out);

}  // namespace nsrel::report
