#include "report/json.hpp"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <string>
#include <string_view>

#include "util/assert.hpp"

namespace nsrel::report {

std::string json_escape(std::string_view text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      case '\r': escaped += "\\r"; break;
      case '\t': escaped += "\\t"; break;
      case '\b': escaped += "\\b"; break;
      case '\f': escaped += "\\f"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          escaped += buf;
        } else {
          escaped += ch;
        }
    }
  }
  return escaped;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

JsonWriter::JsonWriter(std::ostream& out) : out_(out) {}

void JsonWriter::write_indent(std::size_t depth) {
  out_ << '\n';
  for (std::size_t i = 0; i < depth; ++i) out_ << "  ";
}

void JsonWriter::prepare_item() {
  NSREL_EXPECTS(!done_);
  if (scopes_.empty()) return;  // the single top-level value
  Scope& scope = scopes_.back();
  if (scope.closer == '}') {
    // Object members are emitted by key(); a bare value here means the
    // key is pending and separators were already written.
    NSREL_EXPECTS(pending_key_);
    pending_key_ = false;
    return;
  }
  NSREL_EXPECTS(!pending_key_);
  if (scope.has_items) out_ << ',';
  scope.has_items = true;
  write_indent(scopes_.size());
}

void JsonWriter::finish_item() {
  if (scopes_.empty()) {
    out_ << '\n';
    done_ = true;
  }
}

JsonWriter& JsonWriter::key(std::string_view name) {
  NSREL_EXPECTS(!done_ && !pending_key_);
  NSREL_EXPECTS(!scopes_.empty() && scopes_.back().closer == '}');
  Scope& scope = scopes_.back();
  if (scope.has_items) out_ << ',';
  scope.has_items = true;
  write_indent(scopes_.size());
  out_ << '"' << json_escape(name) << "\": ";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  prepare_item();
  out_ << '{';
  scopes_.push_back({'}'});
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prepare_item();
  out_ << '[';
  scopes_.push_back({']'});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  NSREL_EXPECTS(!pending_key_);
  NSREL_EXPECTS(!scopes_.empty() && scopes_.back().closer == '}');
  const bool had_items = scopes_.back().has_items;
  scopes_.pop_back();
  if (had_items) write_indent(scopes_.size());
  out_ << '}';
  finish_item();
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  NSREL_EXPECTS(!pending_key_);
  NSREL_EXPECTS(!scopes_.empty() && scopes_.back().closer == ']');
  const bool had_items = scopes_.back().has_items;
  scopes_.pop_back();
  if (had_items) write_indent(scopes_.size());
  out_ << ']';
  finish_item();
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  prepare_item();
  out_ << '"' << json_escape(text) << '"';
  finish_item();
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string_view(text));
}

JsonWriter& JsonWriter::value(double number) {
  prepare_item();
  out_ << json_number(number);
  finish_item();
  return *this;
}

JsonWriter& JsonWriter::value(int number) {
  return value(static_cast<std::int64_t>(number));
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  prepare_item();
  out_ << number;
  finish_item();
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  prepare_item();
  out_ << number;
  finish_item();
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  prepare_item();
  out_ << (flag ? "true" : "false");
  finish_item();
  return *this;
}

JsonWriter& JsonWriter::null() {
  prepare_item();
  out_ << "null";
  finish_item();
  return *this;
}

bool JsonWriter::complete() const { return done_; }

}  // namespace nsrel::report
