// Fixed-width table and CSV emitters used by every bench binary: the
// figures in the paper become printed series a reader can diff run-to-run.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace nsrel::report {

/// The rendering targets every front-end (CLI flags, scenario files)
/// shares: aligned text table, CSV, or the JSON emitter.
enum class OutputFormat : unsigned char { kTable, kCsv, kJson };

/// Parses "table" | "csv" | "json"; throws ContractViolation otherwise.
[[nodiscard]] OutputFormat parse_output_format(const std::string& name);

/// The canonical name parse_output_format accepts.
[[nodiscard]] std::string format_name(OutputFormat format);

class Table {
 public:
  /// Column headers define the width floor; cells widen columns as needed.
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Renders with aligned columns, a header underline, and 2-space gutters.
  void print(std::ostream& out) const;

  /// Renders as CSV (quotes cells containing commas or quotes).
  void print_csv(std::ostream& out) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Convenience header line for bench output: "== title ==".
void print_section(std::ostream& out, const std::string& title);

}  // namespace nsrel::report
