#include "report/diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "obs/probe_names.hpp"
#include "obs/trace.hpp"
#include "report/json.hpp"

namespace nsrel::report {

namespace {

/// Structural (shape) mismatch: the documents are not comparable runs.
[[nodiscard]] Error shape_error(const std::string& detail) {
  return Error{ErrorCode::kInvalidParameter, "report.diff", detail};
}

/// Collects one cell's drifting fields.
class CellDiff {
 public:
  CellDiff(const CellDoc& cell, const std::string& configuration_name,
           const DiffOptions& options, std::vector<DriftRow>& rows)
      : cell_(cell),
        configuration_name_(configuration_name),
        options_(options),
        rows_(rows) {}

  void field(const std::string& name, double a, double b) {
    const double magnitude = std::max(std::abs(a), std::abs(b));
    const double delta = std::abs(a - b);
    if (a == b || delta <= options_.abs_tol + options_.rel_tol * magnitude) {
      return;
    }
    DriftRow row = base(name);
    row.a = json_number(a);
    row.b = json_number(b);
    row.numeric = true;
    row.a_value = a;
    row.b_value = b;
    row.abs_delta = delta;
    row.rel_delta = magnitude > 0.0 ? delta / magnitude : 0.0;
    rows_.push_back(std::move(row));
  }

  void field(const std::string& name, const std::string& a,
             const std::string& b) {
    if (a == b) return;
    DriftRow row = base(name);
    row.a = a;
    row.b = b;
    rows_.push_back(std::move(row));
  }

 private:
  [[nodiscard]] DriftRow base(const std::string& name) const {
    DriftRow row;
    row.point = cell_.point;
    row.configuration = cell_.configuration;
    row.configuration_name = configuration_name_;
    row.field = name;
    return row;
  }

  const CellDoc& cell_;
  const std::string& configuration_name_;
  const DiffOptions& options_;
  std::vector<DriftRow>& rows_;
};

std::string kind_name(const CellDoc& cell) {
  if (std::holds_alternative<ErrorCellDoc>(cell.data)) return "error";
  if (std::holds_alternative<SimCellDoc>(cell.data)) return "sim";
  return "analytic";
}

void diff_cell(const CellDoc& a, const CellDoc& b,
               const std::string& configuration_name,
               const DiffOptions& options, std::vector<DriftRow>& rows) {
  CellDiff diff(a, configuration_name, options, rows);
  const std::string kind_a = kind_name(a);
  const std::string kind_b = kind_name(b);
  if (kind_a != kind_b) {
    diff.field("kind", kind_a, kind_b);
    return;
  }
  if (const auto* error_a = std::get_if<ErrorCellDoc>(&a.data)) {
    const auto& error_b = std::get<ErrorCellDoc>(b.data);
    diff.field("error.code", error_a->code, error_b.code);
    diff.field("error.layer", error_a->layer, error_b.layer);
    diff.field("error.detail", error_a->detail, error_b.detail);
    return;
  }
  if (const auto* sim_a = std::get_if<SimCellDoc>(&a.data)) {
    const auto& sim_b = std::get<SimCellDoc>(b.data);
    // Trials and seed are the estimate's identity, not measurements:
    // exact compare, tolerances do not apply.
    diff.field("trials", std::to_string(sim_a->trials),
               std::to_string(sim_b.trials));
    diff.field("seed", std::to_string(sim_a->seed),
               std::to_string(sim_b.seed));
    diff.field("mean_hours", sim_a->mean_hours, sim_b.mean_hours);
    diff.field("stddev_hours", sim_a->stddev_hours, sim_b.stddev_hours);
    diff.field("stderr_hours", sim_a->stderr_hours, sim_b.stderr_hours);
    diff.field("ci95_low_hours", sim_a->ci95_low_hours, sim_b.ci95_low_hours);
    diff.field("ci95_high_hours", sim_a->ci95_high_hours,
               sim_b.ci95_high_hours);
    return;
  }
  const auto& analytic_a = std::get<AnalyticCellDoc>(a.data);
  const auto& analytic_b = std::get<AnalyticCellDoc>(b.data);
  diff.field("mttdl_hours", analytic_a.mttdl_hours, analytic_b.mttdl_hours);
  diff.field("events_per_system_year", analytic_a.events_per_system_year,
             analytic_b.events_per_system_year);
  diff.field("events_per_pb_year", analytic_a.events_per_pb_year,
             analytic_b.events_per_pb_year);
  diff.field("logical_capacity_bytes", analytic_a.logical_capacity_bytes,
             analytic_b.logical_capacity_bytes);
  diff.field("node_rebuild_hours", analytic_a.node_rebuild_hours,
             analytic_b.node_rebuild_hours);
  diff.field("node_rebuild_bottleneck", analytic_a.node_rebuild_bottleneck,
             analytic_b.node_rebuild_bottleneck);
  if (analytic_a.has_internal_raid != analytic_b.has_internal_raid) {
    diff.field("internal_raid_fields",
               analytic_a.has_internal_raid ? "present" : "absent",
               analytic_b.has_internal_raid ? "present" : "absent");
    return;
  }
  if (analytic_a.has_internal_raid) {
    diff.field("array_failure_per_hour", analytic_a.array_failure_per_hour,
               analytic_b.array_failure_per_hour);
    diff.field("sector_error_per_hour", analytic_a.sector_error_per_hour,
               analytic_b.sector_error_per_hour);
    diff.field("restripe_hours", analytic_a.restripe_hours,
               analytic_b.restripe_hours);
  }
}

}  // namespace

[[nodiscard]] Expected<DiffReport> diff_resultsets(const ResultSetDoc& a,
                                     const ResultSetDoc& b,
                                     const DiffOptions& options) {
  obs::Span span(obs::probe::kSpanDiff, obs::probe::kSpanCategoryReport);
  if (a.method != b.method) {
    return shape_error("method mismatch: '" + a.method + "' vs '" + b.method +
                       "'");
  }
  if (a.axes.size() != b.axes.size()) {
    return shape_error("axis count mismatch: " + std::to_string(a.axes.size()) +
                       " vs " + std::to_string(b.axes.size()));
  }
  for (std::size_t i = 0; i < a.axes.size(); ++i) {
    if (a.axes[i].name != b.axes[i].name) {
      return shape_error("axis " + std::to_string(i) + " mismatch: '" +
                         a.axes[i].name + "' vs '" + b.axes[i].name + "'");
    }
  }
  if (a.points.size() != b.points.size()) {
    return shape_error(
        "point count mismatch: " + std::to_string(a.points.size()) + " vs " +
        std::to_string(b.points.size()));
  }
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    if (a.points[i].label != b.points[i].label ||
        a.points[i].x != b.points[i].x) {
      return shape_error("point " + std::to_string(i) + " mismatch: '" +
                         a.points[i].label + "' vs '" + b.points[i].label +
                         "'");
    }
  }
  if (a.configurations != b.configurations) {
    return shape_error("configuration list mismatch");
  }
  // Comparable by shape; the readers guarantee both cell lists are
  // complete and row-major, so cells align index-for-index.
  DiffReport report;
  report.cells = a.cells.size();
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    diff_cell(a.cells[i], b.cells[i],
              a.configurations[a.cells[i].configuration], options,
              report.rows);
  }
  if (span.armed()) {
    span.arg("cells", static_cast<std::uint64_t>(report.cells));
    span.arg("drift", static_cast<std::uint64_t>(report.rows.size()));
  }
  return report;
}

Table diff_table(const DiffReport& report) {
  Table table(
      {"point", "configuration", "field", "a", "b", "|delta|", "rel"});
  for (const DriftRow& row : report.rows) {
    table.add_row({std::to_string(row.point), row.configuration_name,
                   row.field, row.a, row.b,
                   row.numeric ? json_number(row.abs_delta) : "-",
                   row.numeric ? json_number(row.rel_delta) : "-"});
  }
  return table;
}

void write_diff_json(const DiffReport& report, const DiffOptions& options,
                     std::ostream& out) {
  JsonWriter json(out);
  json.begin_object();
  json.key("schema").value("nsrel-diff-v1");
  json.key("abs_tol").value(options.abs_tol);
  json.key("rel_tol").value(options.rel_tol);
  json.key("cells").value(static_cast<std::uint64_t>(report.cells));
  json.key("clean").value(report.clean());
  json.key("drift").begin_array();
  for (const DriftRow& row : report.rows) {
    json.begin_object();
    json.key("point").value(row.point);
    json.key("configuration").value(row.configuration);
    json.key("configuration_name").value(row.configuration_name);
    json.key("field").value(row.field);
    if (row.numeric) {
      json.key("a").value(row.a_value);
      json.key("b").value(row.b_value);
      json.key("abs_delta").value(row.abs_delta);
      json.key("rel_delta").value(row.rel_delta);
    } else {
      json.key("a").value(row.a);
      json.key("b").value(row.b);
      json.key("abs_delta").null();
      json.key("rel_delta").null();
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

}  // namespace nsrel::report
