// Data placement over the node set (paper section 4.1).
//
// Each data object is one stripe whose R blocks land on R distinct nodes
// (its redundancy set). Even distribution means every node participates in
// the same share of redundancy sets — the property that makes the failure
// domain the whole node set and drives the k2/k3 critical-fraction math.
// `RotatingPlacement` is a concrete even layout; `enumerate_redundancy_sets`
// supports exhaustive small-system tests of the combinatorial identities.
#pragma once

#include <cstdint>
#include <vector>

namespace nsrel::placement {

struct PlacementParams {
  int node_set_size = 64;       ///< N
  int redundancy_set_size = 8;  ///< R
};

/// Round-robin rotated placement: stripe s occupies nodes
/// (s, s+1, ..., s+R-1) mod N. Over any window of N consecutive stripes
/// every node appears in exactly R of them, so data (and therefore spare
/// consumption and rebuild work) is evenly distributed.
class RotatingPlacement {
 public:
  /// Preconditions: 1 <= R <= N.
  explicit RotatingPlacement(const PlacementParams& params);

  [[nodiscard]] const PlacementParams& params() const { return params_; }

  /// The R node ids holding stripe `stripe`, in shard-index order.
  [[nodiscard]] std::vector<int> nodes_for_stripe(std::uint64_t stripe) const;

  /// True if `node` holds a shard of `stripe`.
  [[nodiscard]] bool stripe_uses_node(std::uint64_t stripe, int node) const;

  /// Of `window` consecutive stripes starting at 0, how many does each node
  /// participate in? (Even distribution check.)
  [[nodiscard]] std::vector<std::uint64_t> participation(
      std::uint64_t window) const;

  /// Stripes among [0, window) that are critical — i.e. contain ALL of the
  /// given failed nodes. Empirical counterpart of combinat's critical
  /// fractions.
  [[nodiscard]] std::uint64_t critical_stripes(
      std::uint64_t window, const std::vector<int>& failed_nodes) const;

 private:
  PlacementParams params_;
};

/// All C(N, R) node subsets of size R, each sorted ascending. Guarded to
/// small systems (C(N, R) <= 2^20) — exhaustive-test use only.
[[nodiscard]] std::vector<std::vector<int>> enumerate_redundancy_sets(
    int node_set_size, int redundancy_set_size);

/// Fail-in-place spare-capacity ledger (paper section 3): the node set is
/// over-provisioned; failures consume spare capacity until the pool can no
/// longer hold a node's worth of rebuilt data.
class SpareLedger {
 public:
  /// Preconditions: nodes >= 2, per-node raw > 0, 0 < utilization <= 1.
  SpareLedger(int nodes, double per_node_raw_bytes, double initial_utilization);

  [[nodiscard]] int surviving_nodes() const { return surviving_; }
  [[nodiscard]] double utilization() const;
  [[nodiscard]] double spare_bytes() const;

  /// True if losing one more node still leaves room to rebuild its data
  /// onto the survivors.
  [[nodiscard]] bool can_absorb_failure() const;

  /// Records a node failure and the redistribution of its data onto the
  /// survivors. Precondition: can_absorb_failure().
  void fail_node();

  /// Number of additional node failures the current spare pool can absorb.
  [[nodiscard]] int failures_absorbable() const;

 private:
  int surviving_;
  double per_node_raw_;
  double data_bytes_;  // total user data (constant across failures)
};

/// Fail-in-place provisioning (paper section 3): "the over-provisioned
/// storage capacity is either sufficient to deal with expected failures
/// over the operational life of the installation, or spare nodes are
/// added at appropriate times." This planner answers: given node/drive
/// failure rates and a service life, what initial utilization keeps the
/// probability of running out of spare capacity below a target?
class ProvisioningPlanner {
 public:
  struct Params {
    int nodes = 64;
    int drives_per_node = 12;
    double node_failures_per_hour = 1.0 / 400'000.0;   ///< per node
    double drive_failures_per_hour = 1.0 / 300'000.0;  ///< per drive
    double service_life_hours = 5.0 * 24.0 * 365.25;
  };

  explicit ProvisioningPlanner(const Params& params);

  /// Expected whole-node-equivalents of capacity lost over the service
  /// life: node failures plus drive failures weighted by 1/d.
  [[nodiscard]] double expected_node_equivalents_lost() const;

  /// Probability that at most `spare_nodes` node-equivalents are lost
  /// over the life (Poisson tail on the combined failure stream).
  [[nodiscard]] double survival_probability(int spare_nodes) const;

  /// Smallest number of spare node-equivalents with survival probability
  /// at least `target` (0 < target < 1).
  [[nodiscard]] int spares_needed(double target) const;

  /// Maximum initial utilization that leaves spares_needed(target) free:
  /// (nodes - spares) / nodes.
  [[nodiscard]] double max_initial_utilization(double target) const;

 private:
  Params params_;
};

}  // namespace nsrel::placement
