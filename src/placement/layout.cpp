#include "placement/layout.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace nsrel::placement {

RotatingPlacement::RotatingPlacement(const PlacementParams& params)
    : params_(params) {
  NSREL_EXPECTS(params_.redundancy_set_size >= 1);
  NSREL_EXPECTS(params_.redundancy_set_size <= params_.node_set_size);
}

std::vector<int> RotatingPlacement::nodes_for_stripe(
    std::uint64_t stripe) const {
  const auto n = static_cast<std::uint64_t>(params_.node_set_size);
  std::vector<int> nodes;
  nodes.reserve(static_cast<std::size_t>(params_.redundancy_set_size));
  for (int i = 0; i < params_.redundancy_set_size; ++i) {
    nodes.push_back(
        static_cast<int>((stripe + static_cast<std::uint64_t>(i)) % n));
  }
  return nodes;
}

bool RotatingPlacement::stripe_uses_node(std::uint64_t stripe,
                                         int node) const {
  NSREL_EXPECTS(node >= 0 && node < params_.node_set_size);
  const auto n = static_cast<std::uint64_t>(params_.node_set_size);
  const auto start = stripe % n;
  const auto offset = (static_cast<std::uint64_t>(node) + n - start) % n;
  return offset < static_cast<std::uint64_t>(params_.redundancy_set_size);
}

std::vector<std::uint64_t> RotatingPlacement::participation(
    std::uint64_t window) const {
  std::vector<std::uint64_t> counts(
      static_cast<std::size_t>(params_.node_set_size), 0);
  for (std::uint64_t s = 0; s < window; ++s) {
    for (const int node : nodes_for_stripe(s)) {
      ++counts[static_cast<std::size_t>(node)];
    }
  }
  return counts;
}

std::uint64_t RotatingPlacement::critical_stripes(
    std::uint64_t window, const std::vector<int>& failed_nodes) const {
  std::uint64_t count = 0;
  for (std::uint64_t s = 0; s < window; ++s) {
    const bool all_present = std::all_of(
        failed_nodes.begin(), failed_nodes.end(),
        [&](int node) { return stripe_uses_node(s, node); });
    if (all_present) ++count;
  }
  return count;
}

namespace {
void enumerate_recursive(int node_set_size, int redundancy_set_size,
                         int next, std::vector<int>& current,
                         std::vector<std::vector<int>>& out) {
  if (static_cast<int>(current.size()) == redundancy_set_size) {
    out.push_back(current);
    return;
  }
  const int remaining = redundancy_set_size - static_cast<int>(current.size());
  for (int node = next; node <= node_set_size - remaining; ++node) {
    current.push_back(node);
    enumerate_recursive(node_set_size, redundancy_set_size, node + 1, current,
                        out);
    current.pop_back();
  }
}
}  // namespace

std::vector<std::vector<int>> enumerate_redundancy_sets(
    int node_set_size, int redundancy_set_size) {
  NSREL_EXPECTS(redundancy_set_size >= 1);
  NSREL_EXPECTS(redundancy_set_size <= node_set_size);
  NSREL_EXPECTS(binomial(node_set_size, redundancy_set_size) <=
                static_cast<double>(1 << 20));
  std::vector<std::vector<int>> out;
  std::vector<int> current;
  enumerate_recursive(node_set_size, redundancy_set_size, 0, current, out);
  return out;
}

SpareLedger::SpareLedger(int nodes, double per_node_raw_bytes,
                         double initial_utilization)
    : surviving_(nodes),
      per_node_raw_(per_node_raw_bytes),
      data_bytes_(static_cast<double>(nodes) * per_node_raw_bytes *
                  initial_utilization) {
  NSREL_EXPECTS(nodes >= 2);
  NSREL_EXPECTS(per_node_raw_bytes > 0.0);
  NSREL_EXPECTS(initial_utilization > 0.0 && initial_utilization <= 1.0);
}

double SpareLedger::utilization() const {
  return data_bytes_ / (static_cast<double>(surviving_) * per_node_raw_);
}

double SpareLedger::spare_bytes() const {
  return static_cast<double>(surviving_) * per_node_raw_ - data_bytes_;
}

bool SpareLedger::can_absorb_failure() const {
  // After losing a node, the survivors must still hold all the data.
  return surviving_ >= 2 &&
         static_cast<double>(surviving_ - 1) * per_node_raw_ >= data_bytes_;
}

void SpareLedger::fail_node() {
  NSREL_EXPECTS(can_absorb_failure());
  --surviving_;
}

int SpareLedger::failures_absorbable() const {
  // Largest f with (surviving - f) * per_node_raw >= data.
  const double nodes_needed = data_bytes_ / per_node_raw_;
  const int min_nodes = static_cast<int>(std::ceil(nodes_needed - 1e-12));
  return std::max(0, surviving_ - std::max(min_nodes, 1));
}

ProvisioningPlanner::ProvisioningPlanner(const Params& params)
    : params_(params) {
  NSREL_EXPECTS(params_.nodes >= 1);
  NSREL_EXPECTS(params_.drives_per_node >= 1);
  NSREL_EXPECTS(params_.node_failures_per_hour >= 0.0);
  NSREL_EXPECTS(params_.drive_failures_per_hour >= 0.0);
  NSREL_EXPECTS(params_.service_life_hours > 0.0);
}

double ProvisioningPlanner::expected_node_equivalents_lost() const {
  const double nodes = static_cast<double>(params_.nodes);
  const double drives =
      nodes * static_cast<double>(params_.drives_per_node);
  // A dead node removes a full node of capacity; a dead drive removes
  // 1/d of one (fail-in-place: neither is replaced).
  const double node_events = nodes * params_.node_failures_per_hour *
                             params_.service_life_hours;
  const double drive_events = drives * params_.drive_failures_per_hour *
                              params_.service_life_hours /
                              static_cast<double>(params_.drives_per_node);
  return node_events + drive_events;
}

double ProvisioningPlanner::survival_probability(int spare_nodes) const {
  NSREL_EXPECTS(spare_nodes >= 0);
  // Poisson CDF at spare_nodes with the combined node-equivalent rate.
  // (Drive failures arrive in 1/d quanta; treating them as fractional
  // contributions to a single Poisson stream slightly over-weights their
  // variance — conservative.)
  const double mean = expected_node_equivalents_lost();
  double term = std::exp(-mean);
  double cdf = term;
  for (int k = 1; k <= spare_nodes; ++k) {
    term *= mean / static_cast<double>(k);
    cdf += term;
  }
  return std::min(cdf, 1.0);
}

int ProvisioningPlanner::spares_needed(double target) const {
  NSREL_EXPECTS(target > 0.0 && target < 1.0);
  for (int spares = 0; spares <= params_.nodes; ++spares) {
    if (survival_probability(spares) >= target) return spares;
  }
  throw ContractViolation(
      "provisioning target unreachable within the node set");
}

double ProvisioningPlanner::max_initial_utilization(double target) const {
  const int spares = spares_needed(target);
  return static_cast<double>(params_.nodes - spares) /
         static_cast<double>(params_.nodes);
}

}  // namespace nsrel::placement
