#include "brick/node.hpp"

#include <algorithm>
#include <cstddef>
#include <optional>
#include <utility>

#include "util/assert.hpp"

namespace nsrel::brick {

Drive::Drive(Bytes capacity) : capacity_(capacity.value()) {
  NSREL_EXPECTS(capacity_ > 0.0);
}

bool Drive::put(ChunkId id, Chunk chunk) {
  if (!alive_) return false;
  const double size = static_cast<double>(chunk.size());
  if (used_ + size > capacity_) return false;
  NSREL_EXPECTS(!chunks_.contains(id));
  used_ += size;
  chunks_.emplace(id, std::move(chunk));
  return true;
}

std::optional<Chunk> Drive::get(ChunkId id) const {
  if (!alive_) return std::nullopt;
  const auto it = chunks_.find(id);
  if (it == chunks_.end()) return std::nullopt;
  return it->second;
}

void Drive::drop(ChunkId id) {
  const auto it = chunks_.find(id);
  if (it == chunks_.end()) return;
  used_ -= static_cast<double>(it->second.size());
  chunks_.erase(it);
}

bool Drive::fail() {
  const bool changed = alive_;
  alive_ = false;
  return changed;
}

Node::Node(int id, int drives, Bytes drive_capacity) : id_(id) {
  NSREL_EXPECTS(drives >= 1);
  drives_.reserve(static_cast<std::size_t>(drives));
  for (int i = 0; i < drives; ++i) drives_.emplace_back(drive_capacity);
}

const Drive& Node::drive(int index) const {
  NSREL_EXPECTS(index >= 0 && index < drive_count());
  return drives_[static_cast<std::size_t>(index)];
}

double Node::used_bytes() const {
  double total = 0.0;
  for (const Drive& d : drives_) {
    if (d.alive()) total += d.used_bytes();
  }
  return alive_ ? total : 0.0;
}

double Node::capacity_bytes() const {
  if (!alive_) return 0.0;
  double total = 0.0;
  for (const Drive& d : drives_) {
    if (d.alive()) total += d.capacity_bytes();
  }
  return total;
}

std::optional<int> Node::put(ChunkId id, Chunk chunk) {
  if (!alive_) return std::nullopt;
  int best = -1;
  double best_free = static_cast<double>(chunk.size()) - 1.0;
  for (int i = 0; i < drive_count(); ++i) {
    const Drive& d = drives_[static_cast<std::size_t>(i)];
    if (d.alive() && d.free_bytes() > best_free) {
      best = i;
      best_free = d.free_bytes();
    }
  }
  if (best < 0) return std::nullopt;
  const bool stored =
      drives_[static_cast<std::size_t>(best)].put(id, std::move(chunk));
  NSREL_ASSERT(stored);
  return best;
}

std::optional<Chunk> Node::get(int drive_index, ChunkId id) const {
  NSREL_EXPECTS(drive_index >= 0 && drive_index < drive_count());
  if (!alive_) return std::nullopt;
  return drives_[static_cast<std::size_t>(drive_index)].get(id);
}

void Node::drop(int drive_index, ChunkId id) {
  NSREL_EXPECTS(drive_index >= 0 && drive_index < drive_count());
  drives_[static_cast<std::size_t>(drive_index)].drop(id);
}

bool Node::fail() {
  const bool changed = alive_;
  alive_ = false;
  return changed;
}

bool Node::fail_drive(int drive_index) {
  if (drive_index < 0 || drive_index >= drive_count()) return false;
  return drives_[static_cast<std::size_t>(drive_index)].fail();
}

}  // namespace nsrel::brick
