// A storage brick: the sealed unit of the Collective-Intelligent-Bricks
// system the paper models — a controller with d drives, no field service.
// Chunks are stored on specific drives so that drive failures (which in
// the no-internal-RAID configurations erase single shards of many
// stripes) and whole-node failures are both representable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "erasure/reed_solomon.hpp"  // Shard alias
#include "util/units.hpp"

namespace nsrel::brick {

using ChunkId = std::uint64_t;
using Chunk = erasure::Shard;

class Drive {
 public:
  explicit Drive(Bytes capacity);

  [[nodiscard]] bool alive() const { return alive_; }
  [[nodiscard]] double used_bytes() const { return used_; }
  [[nodiscard]] double capacity_bytes() const { return capacity_; }
  [[nodiscard]] double free_bytes() const { return capacity_ - used_; }
  [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }

  /// Stores a chunk; returns false when the drive is dead or full.
  bool put(ChunkId id, Chunk chunk);

  /// Reads a chunk; nullopt when dead or absent.
  [[nodiscard]] std::optional<Chunk> get(ChunkId id) const;

  /// Removes a chunk (idempotent); frees its space.
  void drop(ChunkId id);

  /// Fail-in-place: contents become permanently unreadable. Idempotent;
  /// returns true when this call changed the state (a fresh failure),
  /// false when the drive was already dead.
  bool fail();

 private:
  double capacity_;
  double used_ = 0.0;
  bool alive_ = true;
  std::unordered_map<ChunkId, Chunk> chunks_;
};

class Node {
 public:
  Node(int id, int drives, Bytes drive_capacity);

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] bool alive() const { return alive_; }
  [[nodiscard]] int drive_count() const { return static_cast<int>(drives_.size()); }
  [[nodiscard]] const Drive& drive(int index) const;

  /// Total bytes stored on live drives / total live capacity.
  [[nodiscard]] double used_bytes() const;
  [[nodiscard]] double capacity_bytes() const;
  [[nodiscard]] double free_bytes() const {
    return capacity_bytes() - used_bytes();
  }

  /// Stores a chunk on the live drive with the most free space; returns
  /// the drive index, or nullopt when the node is dead or full.
  std::optional<int> put(ChunkId id, Chunk chunk);

  /// Reads a chunk from the given drive; nullopt when node/drive dead or
  /// chunk absent.
  [[nodiscard]] std::optional<Chunk> get(int drive_index, ChunkId id) const;

  void drop(int drive_index, ChunkId id);

  /// Whole-node failure (controller/power): everything inaccessible.
  /// Idempotent; returns true only on the first (state-changing) call.
  bool fail();

  /// Single-drive failure. Idempotent and range-checked: an out-of-range
  /// index or an already-dead drive returns false instead of crashing —
  /// fault schedules replay raw (node, drive) ids without pre-validation.
  bool fail_drive(int drive_index);

 private:
  int id_;
  bool alive_ = true;
  std::vector<Drive> drives_;
};

}  // namespace nsrel::brick
