// The distributed object store over a collection of bricks — a working
// implementation of the system the paper models: objects are striped into
// redundancy sets of size R (R-t data + t Reed-Solomon parity shards)
// placed on R distinct nodes by the rotating even layout; node and drive
// failures are tolerated fail-in-place; `rebuild()` reconstructs every
// lost shard from survivors into the distributed spare capacity and
// reports exactly how many bytes each node sourced and received — the
// quantities section 5.1's flow model predicts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "brick/node.hpp"
#include "erasure/reed_solomon.hpp"
#include "placement/layout.hpp"
#include "util/units.hpp"

namespace nsrel::brick {

/// Thrown when data is genuinely gone (more erasures than the code
/// tolerates on some stripe).
class DataLossError : public std::runtime_error {
 public:
  explicit DataLossError(const std::string& what)
      : std::runtime_error(what) {}
};

using ObjectId = std::uint64_t;

struct StoreParams {
  int node_count = 16;
  int drives_per_node = 4;
  Bytes drive_capacity = megabytes(1.0);
  int redundancy_set_size = 8;  ///< R
  int fault_tolerance = 2;      ///< t
  Bytes chunk_size = kilobytes(4.0);  ///< shard size
};

/// Where one shard of one stripe lives.
struct ShardLocation {
  int node = -1;
  int drive = -1;
  ChunkId chunk = 0;
};

struct RebuildReport {
  std::size_t shards_rebuilt = 0;
  double bytes_reconstructed = 0.0;
  /// Bytes each node contributed as rebuild input (by node id).
  std::map<int, double> sourced_bytes;
  /// Bytes each node received as rebuilt output (by node id).
  std::map<int, double> received_bytes;
};

class ObjectStore {
 public:
  /// Preconditions: 1 <= t < R <= node_count; chunk_size > 0.
  explicit ObjectStore(const StoreParams& params);

  [[nodiscard]] const StoreParams& params() const { return params_; }
  [[nodiscard]] const Node& node(int id) const;
  [[nodiscard]] int live_nodes() const;

  /// Stores an object; splits it into stripes of (R-t) data chunks (the
  /// last stripe zero-padded), encodes t parity chunks per stripe, and
  /// places each stripe on R distinct live nodes.
  /// Throws ContractViolation when too few live nodes or out of space.
  ObjectId write(const std::vector<std::uint8_t>& bytes);

  /// Reads an object back, reconstructing shards from parity where nodes
  /// or drives have failed. Throws DataLossError when some stripe has
  /// more than t shards missing.
  [[nodiscard]] std::vector<std::uint8_t> read(ObjectId id) const;

  /// Partial read: [offset, offset+length) of the object. Healthy chunks
  /// are fetched directly (one chunk read per touched chunk); a chunk on
  /// a failed node/drive forces a degraded read of R-t survivor chunks
  /// plus a decode — the read-amplification mechanism the
  /// rebuild::DegradedModel prices. Preconditions: offset+length within
  /// the object, length > 0.
  [[nodiscard]] std::vector<std::uint8_t> read_range(ObjectId id,
                                                     std::size_t offset,
                                                     std::size_t length) const;

  /// I/O accounting since the last reset (chunk fetches, decode events,
  /// logical bytes served). Counts read() and read_range() work.
  struct IoStats {
    std::uint64_t chunk_reads = 0;
    std::uint64_t decode_operations = 0;
    double logical_bytes = 0.0;
    /// Physical chunk reads per logical chunk-equivalent served.
    [[nodiscard]] double read_amplification(double chunk_size) const {
      const double logical_chunks = logical_bytes / chunk_size;
      return logical_chunks > 0.0
                 ? static_cast<double>(chunk_reads) / logical_chunks
                 : 0.0;
    }
  };
  [[nodiscard]] const IoStats& io_stats() const { return io_stats_; }
  void reset_io_stats() { io_stats_ = IoStats{}; }

  /// Fail-in-place events.
  void fail_node(int id);
  void fail_drive(int node_id, int drive_index);

  /// Reconstructs every shard lost to failed nodes/drives onto live nodes
  /// outside each stripe's surviving set, restoring full redundancy.
  /// Throws ContractViolation when the survivors lack capacity or
  /// DataLossError when a stripe is beyond recovery.
  RebuildReport rebuild();

  /// True when every stripe of every object has all R shards on live
  /// nodes and drives (full redundancy).
  [[nodiscard]] bool fully_redundant() const;

  /// Total user-data bytes stored (excluding parity overhead).
  [[nodiscard]] double user_bytes() const;

 private:
  struct Stripe {
    std::vector<ShardLocation> shards;  // R entries, shard index = position
  };
  struct ObjectMeta {
    std::vector<Stripe> stripes;
    std::size_t size = 0;
  };

  [[nodiscard]] bool shard_available(const ShardLocation& loc) const;
  /// Collects a stripe's shards; missing ones flagged false.
  [[nodiscard]] std::pair<std::vector<Chunk>, std::vector<bool>> gather(
      const Stripe& stripe) const;
  /// Picks R distinct live nodes for a new stripe via the rotating layout.
  [[nodiscard]] std::vector<int> place_stripe();

  StoreParams params_;
  erasure::ReedSolomonCode code_;
  placement::RotatingPlacement layout_;
  std::vector<Node> nodes_;
  std::map<ObjectId, ObjectMeta> objects_;
  ObjectId next_object_ = 1;
  ChunkId next_chunk_ = 1;
  std::uint64_t next_stripe_slot_ = 0;
  mutable IoStats io_stats_;
};

}  // namespace nsrel::brick
