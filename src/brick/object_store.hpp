// The distributed object store over a collection of bricks — a working
// implementation of the system the paper models: objects are striped into
// redundancy sets of size R (R-t data + t Reed-Solomon parity shards)
// placed on R distinct nodes by the rotating even layout; node and drive
// failures are tolerated fail-in-place; `rebuild()` reconstructs every
// lost shard from survivors into the distributed spare capacity and
// reports exactly how many bytes each node sourced and received — the
// quantities section 5.1's flow model predicts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "brick/node.hpp"
#include "erasure/reed_solomon.hpp"
#include "placement/layout.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace nsrel::brick {

/// Thrown when data is genuinely gone (more erasures than the code
/// tolerates on some stripe).
class DataLossError : public std::runtime_error {
 public:
  explicit DataLossError(const std::string& what)
      : std::runtime_error(what) {}
};

using ObjectId = std::uint64_t;

struct StoreParams {
  int node_count = 16;
  int drives_per_node = 4;
  Bytes drive_capacity = megabytes(1.0);
  int redundancy_set_size = 8;  ///< R
  int fault_tolerance = 2;      ///< t
  Bytes chunk_size = kilobytes(4.0);  ///< shard size
};

/// Where one shard of one stripe lives.
struct ShardLocation {
  int node = -1;
  int drive = -1;
  ChunkId chunk = 0;
};

struct RebuildReport {
  std::size_t shards_rebuilt = 0;
  double bytes_reconstructed = 0.0;
  /// Bytes each node contributed as rebuild input (by node id).
  std::map<int, double> sourced_bytes;
  /// Bytes each node received as rebuilt output (by node id).
  std::map<int, double> received_bytes;
};

/// Identifies one stripe of one object — the unit of repair planning.
struct StripeRef {
  ObjectId object = 0;
  std::uint32_t stripe = 0;

  friend bool operator==(const StripeRef&, const StripeRef&) = default;
  friend bool operator<(const StripeRef& a, const StripeRef& b) {
    return a.object != b.object ? a.object < b.object : a.stripe < b.stripe;
  }
};

/// Snapshot of a stripe's shard placement and per-shard availability.
struct StripeStatus {
  std::vector<ShardLocation> shards;  ///< R entries, shard index = position
  std::vector<bool> available;        ///< parallel to shards

  [[nodiscard]] int missing() const {
    int count = 0;
    for (const bool ok : available) count += ok ? 0 : 1;
    return count;
  }
};

class ObjectStore {
 public:
  /// Preconditions: 1 <= t < R <= node_count; chunk_size > 0.
  explicit ObjectStore(const StoreParams& params);

  [[nodiscard]] const StoreParams& params() const { return params_; }
  [[nodiscard]] const Node& node(int id) const;
  [[nodiscard]] int live_nodes() const;

  /// Stores an object; splits it into stripes of (R-t) data chunks (the
  /// last stripe zero-padded), encodes t parity chunks per stripe, and
  /// places each stripe on R distinct live nodes.
  /// Throws ContractViolation when too few live nodes or out of space.
  ObjectId write(const std::vector<std::uint8_t>& bytes);

  /// Typed twin of write(): kContractViolation when too few live nodes
  /// or out of space, kDataLoss/kCapacityExhausted passed through.
  [[nodiscard]] Expected<ObjectId> try_write(
      const std::vector<std::uint8_t>& bytes);

  /// Reads an object back, reconstructing shards from parity where nodes
  /// or drives have failed. Throws DataLossError when some stripe has
  /// more than t shards missing.
  [[nodiscard]] std::vector<std::uint8_t> read(ObjectId id) const;

  /// Typed twin of read(): kDataLoss when a stripe is beyond recovery
  /// instead of the thrown DataLossError.
  [[nodiscard]] Expected<std::vector<std::uint8_t>> try_read(
      ObjectId id) const;

  /// Partial read: [offset, offset+length) of the object. Healthy chunks
  /// are fetched directly (one chunk read per touched chunk); a chunk on
  /// a failed node/drive forces a degraded read of R-t survivor chunks
  /// plus a decode — the read-amplification mechanism the
  /// rebuild::DegradedModel prices. Preconditions: offset+length within
  /// the object, length > 0.
  [[nodiscard]] std::vector<std::uint8_t> read_range(ObjectId id,
                                                     std::size_t offset,
                                                     std::size_t length) const;

  /// Typed twin of read_range().
  [[nodiscard]] Expected<std::vector<std::uint8_t>> try_read_range(
      ObjectId id, std::size_t offset, std::size_t length) const;

  /// I/O accounting since the last reset (chunk fetches, decode events,
  /// logical bytes served). Counts read() and read_range() work.
  struct IoStats {
    std::uint64_t chunk_reads = 0;
    std::uint64_t decode_operations = 0;
    double logical_bytes = 0.0;
    /// Physical chunk reads per logical chunk-equivalent served.
    [[nodiscard]] double read_amplification(double chunk_size) const {
      const double logical_chunks = logical_bytes / chunk_size;
      return logical_chunks > 0.0
                 ? static_cast<double>(chunk_reads) / logical_chunks
                 : 0.0;
    }
  };
  [[nodiscard]] const IoStats& io_stats() const { return io_stats_; }
  void reset_io_stats() { io_stats_ = IoStats{}; }

  /// Fail-in-place events. Idempotent and range-checked: out-of-range
  /// ids and repeat failures return false (no state change) rather than
  /// crashing — fault schedules replay raw ids without pre-validation.
  /// Returns true exactly when this call killed a live node/drive.
  bool fail_node(int id);
  bool fail_drive(int node_id, int drive_index);

  /// Reconstructs every shard lost to failed nodes/drives onto live nodes
  /// outside each stripe's surviving set, restoring full redundancy.
  /// Throws ErrorException(kCapacityExhausted) when the survivors lack
  /// capacity or DataLossError when a stripe is beyond recovery.
  /// (Single-threaded, all-or-nothing; src/repair is the concurrent,
  /// fault-tolerant engine built on the stripe-level API below.)
  RebuildReport rebuild();

  /// Typed twin of rebuild(): kDataLoss / kCapacityExhausted instead of
  /// the exceptions.
  [[nodiscard]] Expected<RebuildReport> try_rebuild();

  // --- stripe-level repair API (used by repair::run_repair) -----------

  /// Every stripe with at least one unavailable shard, in deterministic
  /// (object id, stripe index) order.
  [[nodiscard]] std::vector<StripeRef> degraded_stripes() const;

  /// Placement + availability snapshot. Precondition: ref is valid.
  [[nodiscard]] StripeStatus stripe_status(const StripeRef& ref) const;

  /// Gathers the stripe's survivors and decodes the full R shards.
  /// Read-only and safe to call concurrently with other const reads (it
  /// bypasses the IoStats counters). kDataLoss when more than t shards
  /// are missing. Precondition: ref is valid.
  [[nodiscard]] Expected<std::vector<Chunk>> try_reconstruct_stripe(
      const StripeRef& ref) const;

  /// Installs a reconstructed shard on `target_node` and repoints the
  /// stripe's metadata at it. NOT thread-safe — the repair engine
  /// serializes commits in task order, which is what makes the final
  /// store state jobs-invariant. Errors: kInvalidParameter (bad index,
  /// shard still available, target dead or already holding a live shard
  /// of this stripe) and kCapacityExhausted (target has no room).
  [[nodiscard]] Expected<ShardLocation> commit_repaired_shard(
      const StripeRef& ref, int shard_index, int target_node, Chunk chunk);

  /// Order-independent digest of the full logical state: object metadata,
  /// shard placements, availability, and the bytes of every available
  /// chunk. Two stores with equal fingerprints hold byte-identical data
  /// in identical locations — the jobs-invariance tests' equality oracle.
  [[nodiscard]] std::uint64_t content_fingerprint() const;

  /// True when every stripe of every object has all R shards on live
  /// nodes and drives (full redundancy).
  [[nodiscard]] bool fully_redundant() const;

  /// Total user-data bytes stored (excluding parity overhead).
  [[nodiscard]] double user_bytes() const;

 private:
  struct Stripe {
    std::vector<ShardLocation> shards;  // R entries, shard index = position
  };
  struct ObjectMeta {
    std::vector<Stripe> stripes;
    std::size_t size = 0;
  };

  [[nodiscard]] bool shard_available(const ShardLocation& loc) const;
  /// Collects a stripe's shards; missing ones flagged false.
  [[nodiscard]] std::pair<std::vector<Chunk>, std::vector<bool>> gather(
      const Stripe& stripe) const;
  /// Picks R distinct live nodes for a new stripe via the rotating layout.
  [[nodiscard]] std::vector<int> place_stripe();

  StoreParams params_;
  erasure::ReedSolomonCode code_;
  placement::RotatingPlacement layout_;
  std::vector<Node> nodes_;
  std::map<ObjectId, ObjectMeta> objects_;
  ObjectId next_object_ = 1;
  ChunkId next_chunk_ = 1;
  std::uint64_t next_stripe_slot_ = 0;
  mutable IoStats io_stats_;
};

}  // namespace nsrel::brick
