#include "brick/object_store.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace nsrel::brick {

ObjectStore::ObjectStore(const StoreParams& params)
    : params_(params),
      code_(params.redundancy_set_size - params.fault_tolerance,
            params.fault_tolerance),
      layout_({params.node_count, params.redundancy_set_size}) {
  NSREL_EXPECTS(params_.fault_tolerance >= 1);
  NSREL_EXPECTS(params_.redundancy_set_size > params_.fault_tolerance);
  NSREL_EXPECTS(params_.redundancy_set_size <= params_.node_count);
  NSREL_EXPECTS(params_.chunk_size.value() > 0.0);
  nodes_.reserve(static_cast<std::size_t>(params_.node_count));
  for (int i = 0; i < params_.node_count; ++i) {
    nodes_.emplace_back(i, params_.drives_per_node, params_.drive_capacity);
  }
}

const Node& ObjectStore::node(int id) const {
  NSREL_EXPECTS(id >= 0 && id < params_.node_count);
  return nodes_[static_cast<std::size_t>(id)];
}

int ObjectStore::live_nodes() const {
  return static_cast<int>(
      std::count_if(nodes_.begin(), nodes_.end(),
                    [](const Node& n) { return n.alive(); }));
}

std::vector<int> ObjectStore::place_stripe() {
  // A node can host a shard when it is alive AND some drive has room (a
  // fail-in-place node can be alive with every drive dead or full).
  const auto placeable = [&](int n) {
    const Node& candidate = nodes_[static_cast<std::size_t>(n)];
    return candidate.alive() &&
           candidate.free_bytes() >= params_.chunk_size.value();
  };
  // Walk the rotating layout until a slot whose R nodes all qualify —
  // the even-distribution placement of section 4.1.
  for (int attempt = 0; attempt < params_.node_count; ++attempt) {
    const std::vector<int> candidate =
        layout_.nodes_for_stripe(next_stripe_slot_);
    ++next_stripe_slot_;
    if (std::all_of(candidate.begin(), candidate.end(), placeable)) {
      return candidate;
    }
  }
  // Degraded fallback: with failures scattered, every R-consecutive window
  // can be blocked even while >= R nodes qualify. Place on the R usable
  // nodes with the most free space (correctness over evenness; the next
  // rebuild re-levels).
  std::vector<int> usable;
  for (int n = 0; n < params_.node_count; ++n) {
    if (placeable(n)) usable.push_back(n);
  }
  if (static_cast<int>(usable.size()) < params_.redundancy_set_size) {
    throw ContractViolation("fewer than R live nodes available for placement");
  }
  std::sort(usable.begin(), usable.end(), [&](int a, int b) {
    return nodes_[static_cast<std::size_t>(a)].free_bytes() >
           nodes_[static_cast<std::size_t>(b)].free_bytes();
  });
  usable.resize(static_cast<std::size_t>(params_.redundancy_set_size));
  return usable;
}

ObjectId ObjectStore::write(const std::vector<std::uint8_t>& bytes) {
  NSREL_EXPECTS(!bytes.empty());
  const auto chunk = static_cast<std::size_t>(params_.chunk_size.value());
  const int data_shards = code_.data_shards();
  const std::size_t stripe_capacity =
      chunk * static_cast<std::size_t>(data_shards);
  const std::size_t stripe_count =
      (bytes.size() + stripe_capacity - 1) / stripe_capacity;

  ObjectMeta meta;
  meta.size = bytes.size();
  for (std::size_t s = 0; s < stripe_count; ++s) {
    // Slice this stripe's data into k zero-padded chunks.
    std::vector<Chunk> data(static_cast<std::size_t>(data_shards),
                            Chunk(chunk, 0));
    const std::size_t base = s * stripe_capacity;
    for (std::size_t i = 0; i < stripe_capacity && base + i < bytes.size();
         ++i) {
      data[i / chunk][i % chunk] = bytes[base + i];
    }
    std::vector<Chunk> shards = data;
    std::vector<Chunk> parity = code_.encode(data);
    shards.insert(shards.end(), std::make_move_iterator(parity.begin()),
                  std::make_move_iterator(parity.end()));

    const std::vector<int> placement = place_stripe();
    Stripe stripe;
    stripe.shards.resize(shards.size());
    for (std::size_t i = 0; i < shards.size(); ++i) {
      Node& target = nodes_[static_cast<std::size_t>(placement[i])];
      const ChunkId id = next_chunk_++;
      const std::optional<int> drive = target.put(id, std::move(shards[i]));
      NSREL_EXPECTS(drive.has_value());  // out of space
      stripe.shards[i] = ShardLocation{placement[i], *drive, id};
    }
    meta.stripes.push_back(std::move(stripe));
  }
  const ObjectId id = next_object_++;
  objects_.emplace(id, std::move(meta));
  return id;
}

bool ObjectStore::shard_available(const ShardLocation& loc) const {
  const Node& n = nodes_[static_cast<std::size_t>(loc.node)];
  return n.alive() && n.drive(loc.drive).alive() &&
         n.get(loc.drive, loc.chunk).has_value();
}

std::pair<std::vector<Chunk>, std::vector<bool>> ObjectStore::gather(
    const Stripe& stripe) const {
  const auto chunk = static_cast<std::size_t>(params_.chunk_size.value());
  std::vector<Chunk> shards(stripe.shards.size(), Chunk(chunk, 0));
  std::vector<bool> present(stripe.shards.size(), false);
  for (std::size_t i = 0; i < stripe.shards.size(); ++i) {
    const ShardLocation& loc = stripe.shards[i];
    const Node& n = nodes_[static_cast<std::size_t>(loc.node)];
    if (!n.alive()) continue;
    const std::optional<Chunk> data = n.get(loc.drive, loc.chunk);
    if (data.has_value()) {
      shards[i] = *data;
      present[i] = true;
    }
  }
  return {std::move(shards), std::move(present)};
}

std::vector<std::uint8_t> ObjectStore::read(ObjectId id) const {
  const auto it = objects_.find(id);
  NSREL_EXPECTS(it != objects_.end());
  const ObjectMeta& meta = it->second;
  const auto chunk = static_cast<std::size_t>(params_.chunk_size.value());
  const int data_shards = code_.data_shards();

  std::vector<std::uint8_t> bytes;
  bytes.reserve(meta.size);
  for (const Stripe& stripe : meta.stripes) {
    auto [shards, present] = gather(stripe);
    if (!code_.recoverable(present)) {
      throw DataLossError("object " + std::to_string(id) +
                          ": a stripe lost more shards than the code "
                          "tolerates");
    }
    const bool all_data_present = [&] {
      for (int i = 0; i < data_shards; ++i) {
        if (!present[static_cast<std::size_t>(i)]) return false;
      }
      return true;
    }();
    io_stats_.chunk_reads += static_cast<std::uint64_t>(data_shards);
    if (!all_data_present) ++io_stats_.decode_operations;
    const std::vector<Chunk> full =
        all_data_present ? shards : code_.reconstruct(shards, present);
    for (int i = 0; i < data_shards; ++i) {
      const Chunk& piece = full[static_cast<std::size_t>(i)];
      for (std::size_t b = 0; b < chunk && bytes.size() < meta.size; ++b) {
        bytes.push_back(piece[b]);
      }
    }
  }
  NSREL_ENSURES(bytes.size() == meta.size);
  io_stats_.logical_bytes += static_cast<double>(meta.size);
  return bytes;
}

std::vector<std::uint8_t> ObjectStore::read_range(ObjectId id,
                                                  std::size_t offset,
                                                  std::size_t length) const {
  const auto it = objects_.find(id);
  NSREL_EXPECTS(it != objects_.end());
  const ObjectMeta& meta = it->second;
  NSREL_EXPECTS(length > 0);
  NSREL_EXPECTS(offset + length <= meta.size);
  const auto chunk = static_cast<std::size_t>(params_.chunk_size.value());
  const auto data_shards = static_cast<std::size_t>(code_.data_shards());
  const std::size_t stripe_capacity = chunk * data_shards;

  std::vector<std::uint8_t> bytes;
  bytes.reserve(length);
  std::size_t cursor = offset;
  const std::size_t end = offset + length;
  while (cursor < end) {
    const std::size_t stripe_index = cursor / stripe_capacity;
    const std::size_t within_stripe = cursor % stripe_capacity;
    const std::size_t shard_index = within_stripe / chunk;
    const std::size_t within_chunk = within_stripe % chunk;
    const std::size_t take =
        std::min(chunk - within_chunk, end - cursor);

    const Stripe& stripe = meta.stripes[stripe_index];
    const ShardLocation& loc = stripe.shards[shard_index];
    Chunk piece;
    if (shard_available(loc)) {
      piece = *nodes_[static_cast<std::size_t>(loc.node)].get(loc.drive,
                                                              loc.chunk);
      ++io_stats_.chunk_reads;
    } else {
      // Degraded read: fetch any k survivors of the stripe and decode.
      auto [shards, present] = gather(stripe);
      if (!code_.recoverable(present)) {
        throw DataLossError("object " + std::to_string(id) +
                            ": a stripe lost more shards than the code "
                            "tolerates");
      }
      io_stats_.chunk_reads += data_shards;
      ++io_stats_.decode_operations;
      const std::vector<Chunk> full = code_.reconstruct(shards, present);
      piece = full[shard_index];
    }
    bytes.insert(bytes.end(),
                 piece.begin() + static_cast<long>(within_chunk),
                 piece.begin() + static_cast<long>(within_chunk + take));
    cursor += take;
  }
  io_stats_.logical_bytes += static_cast<double>(length);
  return bytes;
}

void ObjectStore::fail_node(int id) {
  NSREL_EXPECTS(id >= 0 && id < params_.node_count);
  nodes_[static_cast<std::size_t>(id)].fail();
}

void ObjectStore::fail_drive(int node_id, int drive_index) {
  NSREL_EXPECTS(node_id >= 0 && node_id < params_.node_count);
  nodes_[static_cast<std::size_t>(node_id)].fail_drive(drive_index);
}

RebuildReport ObjectStore::rebuild() {
  RebuildReport report;
  const auto chunk_bytes = params_.chunk_size.value();
  for (auto& [object_id, meta] : objects_) {
    for (Stripe& stripe : meta.stripes) {
      // Which shards are gone?
      std::vector<std::size_t> lost;
      for (std::size_t i = 0; i < stripe.shards.size(); ++i) {
        if (!shard_available(stripe.shards[i])) lost.push_back(i);
      }
      if (lost.empty()) continue;

      auto [shards, present] = gather(stripe);
      if (!code_.recoverable(present)) {
        throw DataLossError("stripe of object " + std::to_string(object_id) +
                            " is beyond recovery");
      }
      // Account the R-t survivor reads the decode consumes.
      int inputs_counted = 0;
      for (std::size_t i = 0;
           i < present.size() && inputs_counted < code_.data_shards(); ++i) {
        if (!present[i]) continue;
        report.sourced_bytes[stripe.shards[i].node] += chunk_bytes;
        ++inputs_counted;
      }
      const std::vector<Chunk> full = code_.reconstruct(shards, present);

      // Re-place each lost shard on a live node outside the stripe.
      for (const std::size_t i : lost) {
        std::vector<bool> occupied(
            static_cast<std::size_t>(params_.node_count), false);
        for (std::size_t j = 0; j < stripe.shards.size(); ++j) {
          if (j != i && shard_available(stripe.shards[j])) {
            occupied[static_cast<std::size_t>(stripe.shards[j].node)] = true;
          }
        }
        int target = -1;
        double best_free = chunk_bytes - 1.0;
        for (int n = 0; n < params_.node_count; ++n) {
          const Node& candidate = nodes_[static_cast<std::size_t>(n)];
          if (!candidate.alive() ||
              occupied[static_cast<std::size_t>(n)]) {
            continue;
          }
          if (candidate.free_bytes() > best_free) {
            target = n;
            best_free = candidate.free_bytes();
          }
        }
        if (target < 0) {
          throw ContractViolation(
              "no live node with spare capacity outside the stripe");
        }
        const ChunkId new_chunk = next_chunk_++;
        const std::optional<int> drive =
            nodes_[static_cast<std::size_t>(target)].put(new_chunk, full[i]);
        NSREL_ASSERT(drive.has_value());
        stripe.shards[i] = ShardLocation{target, *drive, new_chunk};
        report.received_bytes[target] += chunk_bytes;
        report.bytes_reconstructed += chunk_bytes;
        ++report.shards_rebuilt;
      }
    }
  }
  return report;
}

bool ObjectStore::fully_redundant() const {
  for (const auto& [object_id, meta] : objects_) {
    for (const Stripe& stripe : meta.stripes) {
      for (const ShardLocation& loc : stripe.shards) {
        if (!shard_available(loc)) return false;
      }
    }
  }
  return true;
}

double ObjectStore::user_bytes() const {
  double total = 0.0;
  for (const auto& [object_id, meta] : objects_) {
    total += static_cast<double>(meta.size);
  }
  return total;
}

}  // namespace nsrel::brick
