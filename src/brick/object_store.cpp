#include "brick/object_store.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/event_names.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/probe_names.hpp"
#include "util/assert.hpp"
#include "util/error.hpp"

namespace nsrel::brick {

namespace {

/// Counts one degraded read (a decode forced by a missing shard) when
/// the metrics registry is on, and journals it: inside a repair
/// barrier scope the event sorts right after the barrier that served
/// the read.
void count_degraded_read() {
  if (obs::Registry::enabled()) {
    auto& registry = obs::Registry::instance();
    registry.add(registry.counter(obs::probe::kBrickDegradedReads));
  }
  if (obs::Journal::enabled()) {
    obs::Journal::instance().record(
        obs::seq_event(obs::event::kBrickDegradedRead));
  }
}

/// Shared body of the try_* twins: runs `fn`, converting the store's
/// exception vocabulary into typed Errors (DataLossError -> kDataLoss,
/// ErrorException -> its payload, ContractViolation -> the usual
/// kContractViolation the solve stack uses for caller-contract breaks).
template <typename Fn>
auto as_expected(Fn&& fn) -> Expected<decltype(fn())> {
  try {
    return fn();
  } catch (const DataLossError& e) {
    return Error{ErrorCode::kDataLoss, "brick.store", e.what()};
  } catch (const ErrorException& e) {
    return e.error();
  } catch (const ContractViolation& e) {
    return Error{ErrorCode::kContractViolation, "brick.store", e.what()};
  }
}

}  // namespace

ObjectStore::ObjectStore(const StoreParams& params)
    : params_(params),
      code_(params.redundancy_set_size - params.fault_tolerance,
            params.fault_tolerance),
      layout_({params.node_count, params.redundancy_set_size}) {
  NSREL_EXPECTS(params_.fault_tolerance >= 1);
  NSREL_EXPECTS(params_.redundancy_set_size > params_.fault_tolerance);
  NSREL_EXPECTS(params_.redundancy_set_size <= params_.node_count);
  NSREL_EXPECTS(params_.chunk_size.value() > 0.0);
  nodes_.reserve(static_cast<std::size_t>(params_.node_count));
  for (int i = 0; i < params_.node_count; ++i) {
    nodes_.emplace_back(i, params_.drives_per_node, params_.drive_capacity);
  }
}

const Node& ObjectStore::node(int id) const {
  NSREL_EXPECTS(id >= 0 && id < params_.node_count);
  return nodes_[static_cast<std::size_t>(id)];
}

int ObjectStore::live_nodes() const {
  return static_cast<int>(
      std::count_if(nodes_.begin(), nodes_.end(),
                    [](const Node& n) { return n.alive(); }));
}

std::vector<int> ObjectStore::place_stripe() {
  // A node can host a shard when it is alive AND some drive has room (a
  // fail-in-place node can be alive with every drive dead or full).
  const auto placeable = [&](int n) {
    const Node& candidate = nodes_[static_cast<std::size_t>(n)];
    return candidate.alive() &&
           candidate.free_bytes() >= params_.chunk_size.value();
  };
  // Walk the rotating layout until a slot whose R nodes all qualify —
  // the even-distribution placement of section 4.1.
  for (int attempt = 0; attempt < params_.node_count; ++attempt) {
    const std::vector<int> candidate =
        layout_.nodes_for_stripe(next_stripe_slot_);
    ++next_stripe_slot_;
    if (std::all_of(candidate.begin(), candidate.end(), placeable)) {
      return candidate;
    }
  }
  // Degraded fallback: with failures scattered, every R-consecutive window
  // can be blocked even while >= R nodes qualify. Place on the R usable
  // nodes with the most free space (correctness over evenness; the next
  // rebuild re-levels).
  std::vector<int> usable;
  for (int n = 0; n < params_.node_count; ++n) {
    if (placeable(n)) usable.push_back(n);
  }
  if (static_cast<int>(usable.size()) < params_.redundancy_set_size) {
    throw ContractViolation("fewer than R live nodes available for placement");
  }
  std::sort(usable.begin(), usable.end(), [&](int a, int b) {
    return nodes_[static_cast<std::size_t>(a)].free_bytes() >
           nodes_[static_cast<std::size_t>(b)].free_bytes();
  });
  usable.resize(static_cast<std::size_t>(params_.redundancy_set_size));
  return usable;
}

ObjectId ObjectStore::write(const std::vector<std::uint8_t>& bytes) {
  NSREL_EXPECTS(!bytes.empty());
  const auto chunk = static_cast<std::size_t>(params_.chunk_size.value());
  const int data_shards = code_.data_shards();
  const std::size_t stripe_capacity =
      chunk * static_cast<std::size_t>(data_shards);
  const std::size_t stripe_count =
      (bytes.size() + stripe_capacity - 1) / stripe_capacity;

  ObjectMeta meta;
  meta.size = bytes.size();
  for (std::size_t s = 0; s < stripe_count; ++s) {
    // Slice this stripe's data into k zero-padded chunks.
    std::vector<Chunk> data(static_cast<std::size_t>(data_shards),
                            Chunk(chunk, 0));
    const std::size_t base = s * stripe_capacity;
    for (std::size_t i = 0; i < stripe_capacity && base + i < bytes.size();
         ++i) {
      data[i / chunk][i % chunk] = bytes[base + i];
    }
    std::vector<Chunk> shards = data;
    std::vector<Chunk> parity = code_.encode(data);
    shards.insert(shards.end(), std::make_move_iterator(parity.begin()),
                  std::make_move_iterator(parity.end()));

    const std::vector<int> placement = place_stripe();
    Stripe stripe;
    stripe.shards.resize(shards.size());
    for (std::size_t i = 0; i < shards.size(); ++i) {
      Node& target = nodes_[static_cast<std::size_t>(placement[i])];
      const ChunkId id = next_chunk_++;
      const std::optional<int> drive = target.put(id, std::move(shards[i]));
      NSREL_EXPECTS(drive.has_value());  // out of space
      stripe.shards[i] = ShardLocation{placement[i], *drive, id};
    }
    meta.stripes.push_back(std::move(stripe));
  }
  const ObjectId id = next_object_++;
  objects_.emplace(id, std::move(meta));
  return id;
}

bool ObjectStore::shard_available(const ShardLocation& loc) const {
  const Node& n = nodes_[static_cast<std::size_t>(loc.node)];
  return n.alive() && n.drive(loc.drive).alive() &&
         n.get(loc.drive, loc.chunk).has_value();
}

std::pair<std::vector<Chunk>, std::vector<bool>> ObjectStore::gather(
    const Stripe& stripe) const {
  const auto chunk = static_cast<std::size_t>(params_.chunk_size.value());
  std::vector<Chunk> shards(stripe.shards.size(), Chunk(chunk, 0));
  std::vector<bool> present(stripe.shards.size(), false);
  for (std::size_t i = 0; i < stripe.shards.size(); ++i) {
    const ShardLocation& loc = stripe.shards[i];
    const Node& n = nodes_[static_cast<std::size_t>(loc.node)];
    if (!n.alive()) continue;
    const std::optional<Chunk> data = n.get(loc.drive, loc.chunk);
    if (data.has_value()) {
      shards[i] = *data;
      present[i] = true;
    }
  }
  return {std::move(shards), std::move(present)};
}

std::vector<std::uint8_t> ObjectStore::read(ObjectId id) const {
  const auto it = objects_.find(id);
  NSREL_EXPECTS(it != objects_.end());
  const ObjectMeta& meta = it->second;
  const auto chunk = static_cast<std::size_t>(params_.chunk_size.value());
  const int data_shards = code_.data_shards();

  std::vector<std::uint8_t> bytes;
  bytes.reserve(meta.size);
  for (const Stripe& stripe : meta.stripes) {
    auto [shards, present] = gather(stripe);
    if (!code_.recoverable(present)) {
      throw DataLossError("object " + std::to_string(id) +
                          ": a stripe lost more shards than the code "
                          "tolerates");
    }
    const bool all_data_present = [&] {
      for (int i = 0; i < data_shards; ++i) {
        if (!present[static_cast<std::size_t>(i)]) return false;
      }
      return true;
    }();
    io_stats_.chunk_reads += static_cast<std::uint64_t>(data_shards);
    if (!all_data_present) {
      ++io_stats_.decode_operations;
      count_degraded_read();
    }
    const std::vector<Chunk> full =
        all_data_present ? shards : code_.reconstruct(shards, present);
    for (int i = 0; i < data_shards; ++i) {
      const Chunk& piece = full[static_cast<std::size_t>(i)];
      for (std::size_t b = 0; b < chunk && bytes.size() < meta.size; ++b) {
        bytes.push_back(piece[b]);
      }
    }
  }
  NSREL_ENSURES(bytes.size() == meta.size);
  io_stats_.logical_bytes += static_cast<double>(meta.size);
  return bytes;
}

std::vector<std::uint8_t> ObjectStore::read_range(ObjectId id,
                                                  std::size_t offset,
                                                  std::size_t length) const {
  const auto it = objects_.find(id);
  NSREL_EXPECTS(it != objects_.end());
  const ObjectMeta& meta = it->second;
  NSREL_EXPECTS(length > 0);
  NSREL_EXPECTS(offset + length <= meta.size);
  const auto chunk = static_cast<std::size_t>(params_.chunk_size.value());
  const auto data_shards = static_cast<std::size_t>(code_.data_shards());
  const std::size_t stripe_capacity = chunk * data_shards;

  std::vector<std::uint8_t> bytes;
  bytes.reserve(length);
  std::size_t cursor = offset;
  const std::size_t end = offset + length;
  while (cursor < end) {
    const std::size_t stripe_index = cursor / stripe_capacity;
    const std::size_t within_stripe = cursor % stripe_capacity;
    const std::size_t shard_index = within_stripe / chunk;
    const std::size_t within_chunk = within_stripe % chunk;
    const std::size_t take =
        std::min(chunk - within_chunk, end - cursor);

    const Stripe& stripe = meta.stripes[stripe_index];
    const ShardLocation& loc = stripe.shards[shard_index];
    Chunk piece;
    if (shard_available(loc)) {
      piece = *nodes_[static_cast<std::size_t>(loc.node)].get(loc.drive,
                                                              loc.chunk);
      ++io_stats_.chunk_reads;
    } else {
      // Degraded read: fetch any k survivors of the stripe and decode.
      auto [shards, present] = gather(stripe);
      if (!code_.recoverable(present)) {
        throw DataLossError("object " + std::to_string(id) +
                            ": a stripe lost more shards than the code "
                            "tolerates");
      }
      io_stats_.chunk_reads += data_shards;
      ++io_stats_.decode_operations;
      count_degraded_read();
      const std::vector<Chunk> full = code_.reconstruct(shards, present);
      piece = full[shard_index];
    }
    bytes.insert(bytes.end(),
                 piece.begin() + static_cast<long>(within_chunk),
                 piece.begin() + static_cast<long>(within_chunk + take));
    cursor += take;
  }
  io_stats_.logical_bytes += static_cast<double>(length);
  return bytes;
}

bool ObjectStore::fail_node(int id) {
  if (id < 0 || id >= params_.node_count) return false;
  return nodes_[static_cast<std::size_t>(id)].fail();
}

bool ObjectStore::fail_drive(int node_id, int drive_index) {
  if (node_id < 0 || node_id >= params_.node_count) return false;
  return nodes_[static_cast<std::size_t>(node_id)].fail_drive(drive_index);
}

RebuildReport ObjectStore::rebuild() {
  RebuildReport report;
  const auto chunk_bytes = params_.chunk_size.value();
  for (auto& [object_id, meta] : objects_) {
    for (Stripe& stripe : meta.stripes) {
      // Which shards are gone?
      std::vector<std::size_t> lost;
      for (std::size_t i = 0; i < stripe.shards.size(); ++i) {
        if (!shard_available(stripe.shards[i])) lost.push_back(i);
      }
      if (lost.empty()) continue;

      auto [shards, present] = gather(stripe);
      if (!code_.recoverable(present)) {
        throw DataLossError("stripe of object " + std::to_string(object_id) +
                            " is beyond recovery");
      }
      // Account the R-t survivor reads the decode consumes.
      int inputs_counted = 0;
      for (std::size_t i = 0;
           i < present.size() && inputs_counted < code_.data_shards(); ++i) {
        if (!present[i]) continue;
        report.sourced_bytes[stripe.shards[i].node] += chunk_bytes;
        ++inputs_counted;
      }
      const std::vector<Chunk> full = code_.reconstruct(shards, present);

      // Re-place each lost shard on a live node outside the stripe.
      for (const std::size_t i : lost) {
        std::vector<bool> occupied(
            static_cast<std::size_t>(params_.node_count), false);
        for (std::size_t j = 0; j < stripe.shards.size(); ++j) {
          if (j != i && shard_available(stripe.shards[j])) {
            occupied[static_cast<std::size_t>(stripe.shards[j].node)] = true;
          }
        }
        int target = -1;
        double best_free = chunk_bytes - 1.0;
        for (int n = 0; n < params_.node_count; ++n) {
          const Node& candidate = nodes_[static_cast<std::size_t>(n)];
          if (!candidate.alive() ||
              occupied[static_cast<std::size_t>(n)]) {
            continue;
          }
          if (candidate.free_bytes() > best_free) {
            target = n;
            best_free = candidate.free_bytes();
          }
        }
        if (target < 0) {
          throw ErrorException(
              Error{ErrorCode::kCapacityExhausted, "brick.store",
                    "no live node with spare capacity outside the stripe"});
        }
        const ChunkId new_chunk = next_chunk_++;
        const std::optional<int> drive =
            nodes_[static_cast<std::size_t>(target)].put(new_chunk, full[i]);
        NSREL_ASSERT(drive.has_value());
        stripe.shards[i] = ShardLocation{target, *drive, new_chunk};
        report.received_bytes[target] += chunk_bytes;
        report.bytes_reconstructed += chunk_bytes;
        ++report.shards_rebuilt;
      }
    }
  }
  return report;
}

[[nodiscard]] Expected<ObjectId> ObjectStore::try_write(
    const std::vector<std::uint8_t>& bytes) {
  return as_expected([&] { return write(bytes); });
}

[[nodiscard]] Expected<std::vector<std::uint8_t>> ObjectStore::try_read(ObjectId id) const {
  return as_expected([&] { return read(id); });
}

[[nodiscard]] Expected<std::vector<std::uint8_t>> ObjectStore::try_read_range(
    ObjectId id, std::size_t offset, std::size_t length) const {
  return as_expected([&] { return read_range(id, offset, length); });
}

[[nodiscard]] Expected<RebuildReport> ObjectStore::try_rebuild() {
  return as_expected([&] { return rebuild(); });
}

std::vector<StripeRef> ObjectStore::degraded_stripes() const {
  std::vector<StripeRef> result;
  for (const auto& [object_id, meta] : objects_) {
    for (std::size_t s = 0; s < meta.stripes.size(); ++s) {
      const Stripe& stripe = meta.stripes[s];
      for (const ShardLocation& loc : stripe.shards) {
        if (!shard_available(loc)) {
          result.push_back(
              StripeRef{object_id, static_cast<std::uint32_t>(s)});
          break;
        }
      }
    }
  }
  return result;
}

StripeStatus ObjectStore::stripe_status(const StripeRef& ref) const {
  const auto it = objects_.find(ref.object);
  NSREL_EXPECTS(it != objects_.end());
  NSREL_EXPECTS(ref.stripe < it->second.stripes.size());
  const Stripe& stripe = it->second.stripes[ref.stripe];
  StripeStatus status;
  status.shards = stripe.shards;
  status.available.reserve(stripe.shards.size());
  for (const ShardLocation& loc : stripe.shards) {
    status.available.push_back(shard_available(loc));
  }
  return status;
}

[[nodiscard]] Expected<std::vector<Chunk>> ObjectStore::try_reconstruct_stripe(
    const StripeRef& ref) const {
  const auto it = objects_.find(ref.object);
  NSREL_EXPECTS(it != objects_.end());
  NSREL_EXPECTS(ref.stripe < it->second.stripes.size());
  const Stripe& stripe = it->second.stripes[ref.stripe];
  auto [shards, present] = gather(stripe);
  if (!code_.recoverable(present)) {
    return Error{ErrorCode::kDataLoss, "brick.store",
                 "stripe " + std::to_string(ref.stripe) + " of object " +
                     std::to_string(ref.object) +
                     " lost more shards than the code tolerates"};
  }
  const bool all_present =
      std::all_of(present.begin(), present.end(), [](bool p) { return p; });
  if (all_present) return shards;
  return code_.reconstruct(shards, present);
}

[[nodiscard]] Expected<ShardLocation> ObjectStore::commit_repaired_shard(
    const StripeRef& ref, int shard_index, int target_node, Chunk chunk) {
  const auto it = objects_.find(ref.object);
  NSREL_EXPECTS(it != objects_.end());
  NSREL_EXPECTS(ref.stripe < it->second.stripes.size());
  Stripe& stripe = it->second.stripes[ref.stripe];
  const auto invalid = [&](const std::string& detail) {
    return Error{ErrorCode::kInvalidParameter, "brick.store",
                 "commit_repaired_shard: " + detail};
  };
  if (shard_index < 0 ||
      shard_index >= static_cast<int>(stripe.shards.size())) {
    return invalid("shard index " + std::to_string(shard_index) +
                   " out of range");
  }
  if (shard_available(stripe.shards[static_cast<std::size_t>(shard_index)])) {
    return invalid("shard " + std::to_string(shard_index) +
                   " is still available (re-repair must be a no-op)");
  }
  if (target_node < 0 || target_node >= params_.node_count ||
      !nodes_[static_cast<std::size_t>(target_node)].alive()) {
    return invalid("target node " + std::to_string(target_node) +
                   " is out of range or dead");
  }
  if (chunk.size() != static_cast<std::size_t>(params_.chunk_size.value())) {
    return invalid("chunk size mismatch");
  }
  for (std::size_t j = 0; j < stripe.shards.size(); ++j) {
    if (static_cast<int>(j) != shard_index &&
        stripe.shards[j].node == target_node &&
        shard_available(stripe.shards[j])) {
      return invalid("target node " + std::to_string(target_node) +
                     " already holds a live shard of this stripe");
    }
  }
  Node& target = nodes_[static_cast<std::size_t>(target_node)];
  const ChunkId new_chunk = next_chunk_++;
  const std::optional<int> drive = target.put(new_chunk, std::move(chunk));
  if (!drive.has_value()) {
    // The id was consumed but never stored; leaving a gap in the chunk-id
    // sequence is harmless (ids are opaque) and keeps this path simple.
    return Error{ErrorCode::kCapacityExhausted, "brick.store",
                 "target node " + std::to_string(target_node) +
                     " has no drive with room for the rebuilt shard"};
  }
  const ShardLocation location{target_node, *drive, new_chunk};
  stripe.shards[static_cast<std::size_t>(shard_index)] = location;
  return location;
}

std::uint64_t ObjectStore::content_fingerprint() const {
  // FNV-1a over the ordered logical state. std::map iteration gives a
  // canonical traversal; availability and bytes capture what a reader
  // could observe.
  std::uint64_t hash = 14695981039346656037ULL;
  const auto mix_byte = [&hash](std::uint8_t b) {
    hash ^= b;
    hash *= 1099511628211ULL;
  };
  const auto mix = [&mix_byte](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      mix_byte(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  for (const auto& [object_id, meta] : objects_) {
    mix(object_id);
    mix(static_cast<std::uint64_t>(meta.size));
    for (const Stripe& stripe : meta.stripes) {
      for (const ShardLocation& loc : stripe.shards) {
        mix(static_cast<std::uint64_t>(loc.node));
        mix(static_cast<std::uint64_t>(loc.drive));
        mix(loc.chunk);
        const bool available = shard_available(loc);
        mix_byte(available ? 1 : 0);
        if (!available) continue;
        const std::optional<Chunk> data =
            nodes_[static_cast<std::size_t>(loc.node)].get(loc.drive,
                                                           loc.chunk);
        for (const std::uint8_t b : *data) mix_byte(b);
      }
    }
  }
  return hash;
}

bool ObjectStore::fully_redundant() const {
  for (const auto& [object_id, meta] : objects_) {
    for (const Stripe& stripe : meta.stripes) {
      for (const ShardLocation& loc : stripe.shards) {
        if (!shard_available(loc)) return false;
      }
    }
  }
  return true;
}

double ObjectStore::user_bytes() const {
  double total = 0.0;
  for (const auto& [object_id, meta] : objects_) {
    total += static_cast<double>(meta.size);
  }
  return total;
}

}  // namespace nsrel::brick
