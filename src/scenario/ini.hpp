// Minimal INI reader for scenario files.
//
// Grammar:
//   file     := (blank | comment | section | keyvalue)*
//   comment  := ('#' | ';') ... end of line
//   section  := '[' name ']'
//   keyvalue := key '=' value        (both trimmed; value may be empty)
//
// Keys before any section header land in the "" section. Duplicate keys
// within a section are an error (scenario files are declarative, a silent
// override hides typos). Errors carry 1-based line numbers.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace nsrel::scenario {

class IniDocument {
 public:
  using Section = std::map<std::string, std::string>;

  /// Parses the text; throws ContractViolation with a line number on
  /// malformed input.
  [[nodiscard]] static IniDocument parse(const std::string& text);

  [[nodiscard]] bool has_section(const std::string& name) const;
  /// The section's key/value map; empty map when absent.
  [[nodiscard]] const Section& section(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> section_names() const;

  /// Value lookup with default; `section.key` style.
  [[nodiscard]] std::string get(const std::string& section_name,
                                const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& section_name,
                                  const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool has(const std::string& section_name,
                         const std::string& key) const;

 private:
  std::map<std::string, Section> sections_;
  static const Section kEmpty;
};

/// Strips leading/trailing whitespace.
[[nodiscard]] std::string trim(const std::string& s);

/// Splits on a delimiter and trims each piece; empty pieces dropped.
[[nodiscard]] std::vector<std::string> split_list(const std::string& s,
                                                  char delimiter = ',');

}  // namespace nsrel::scenario
