#include "scenario/ini.hpp"

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace nsrel::scenario {

const IniDocument::Section IniDocument::kEmpty;

namespace {
[[noreturn]] void fail(int line, const std::string& message) {
  throw ContractViolation("scenario line " + std::to_string(line) + ": " +
                          message);
}
}  // namespace

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return {};
  const auto last = s.find_last_not_of(" \t\r\n");
  return s.substr(first, last - first + 1);
}

std::vector<std::string> split_list(const std::string& s, char delimiter) {
  std::vector<std::string> result;
  std::string piece;
  std::istringstream in(s);
  while (std::getline(in, piece, delimiter)) {
    const std::string trimmed = trim(piece);
    if (!trimmed.empty()) result.push_back(trimmed);
  }
  return result;
}

IniDocument IniDocument::parse(const std::string& text) {
  IniDocument doc;
  std::string current;  // section name
  std::istringstream in(text);
  std::string raw;
  int line_number = 0;
  while (std::getline(in, raw)) {
    ++line_number;
    // Strip comments (outside of any quoting — the format has none).
    const auto comment = raw.find_first_of("#;");
    const std::string line =
        trim(comment == std::string::npos ? raw : raw.substr(0, comment));
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') fail(line_number, "unterminated section header");
      current = trim(line.substr(1, line.size() - 2));
      if (current.empty()) fail(line_number, "empty section name");
      doc.sections_[current];  // create even if it stays empty
      continue;
    }
    const auto equals = line.find('=');
    if (equals == std::string::npos) {
      fail(line_number, "expected 'key = value', got '" + line + "'");
    }
    const std::string key = trim(line.substr(0, equals));
    const std::string value = trim(line.substr(equals + 1));
    if (key.empty()) fail(line_number, "empty key");
    auto& section = doc.sections_[current];
    if (section.contains(key)) {
      fail(line_number, "duplicate key '" + key + "' in section [" + current +
                            "]");
    }
    section[key] = value;
  }
  return doc;
}

bool IniDocument::has_section(const std::string& name) const {
  return sections_.contains(name);
}

const IniDocument::Section& IniDocument::section(
    const std::string& name) const {
  const auto it = sections_.find(name);
  return it == sections_.end() ? kEmpty : it->second;
}

std::vector<std::string> IniDocument::section_names() const {
  std::vector<std::string> names;
  for (const auto& [name, values] : sections_) names.push_back(name);
  return names;
}

std::string IniDocument::get(const std::string& section_name,
                             const std::string& key,
                             const std::string& fallback) const {
  const Section& s = section(section_name);
  const auto it = s.find(key);
  return it == s.end() ? fallback : it->second;
}

double IniDocument::get_double(const std::string& section_name,
                               const std::string& key, double fallback) const {
  const Section& s = section(section_name);
  const auto it = s.find(key);
  if (it == s.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  NSREL_EXPECTS(end != nullptr && *end == '\0' && !it->second.empty());
  return value;
}

bool IniDocument::has(const std::string& section_name,
                      const std::string& key) const {
  return section(section_name).contains(key);
}

}  // namespace nsrel::scenario
