#include "scenario/scenario.hpp"

#include <cmath>
#include <ostream>

#include "report/table.hpp"
#include "util/assert.hpp"
#include "util/format.hpp"

namespace nsrel::scenario {

core::Configuration parse_configuration_token(const std::string& token) {
  const auto dash = token.rfind("-ft");
  if (dash == std::string::npos) {
    throw ContractViolation("configuration token '" + token +
                            "' is not of the form <scheme>-ft<K>");
  }
  const std::string scheme = token.substr(0, dash);
  const std::string ft_text = token.substr(dash + 3);
  core::Configuration configuration;
  if (scheme == "none") {
    configuration.internal = core::InternalScheme::kNone;
  } else if (scheme == "raid5") {
    configuration.internal = core::InternalScheme::kRaid5;
  } else if (scheme == "raid6") {
    configuration.internal = core::InternalScheme::kRaid6;
  } else {
    throw ContractViolation("unknown scheme '" + scheme +
                            "' (use none|raid5|raid6)");
  }
  char* end = nullptr;
  const long ft = std::strtol(ft_text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || ft_text.empty() || ft < 1) {
    throw ContractViolation("bad fault tolerance in '" + token + "'");
  }
  configuration.node_fault_tolerance = static_cast<int>(ft);
  return configuration;
}

Scenario parse_scenario(const std::string& text) {
  const IniDocument doc = IniDocument::parse(text);
  Scenario scenario;

  // [system]: every key must be a known parameter name.
  scenario.system = core::SystemConfig::baseline();
  for (const auto& [key, value] : doc.section("system")) {
    const double number = doc.get_double("system", key, 0.0);
    if (!core::set_parameter(scenario.system, key, number)) {
      throw ContractViolation("unknown system parameter '" + key + "'");
    }
  }
  scenario.system.validate();

  // [configurations].
  const std::string list =
      doc.get("configurations", "list", "none-ft2, raid5-ft2, none-ft3");
  for (const std::string& token : split_list(list)) {
    scenario.configurations.push_back(parse_configuration_token(token));
  }
  NSREL_ENSURES(!scenario.configurations.empty());

  // [sweep] (optional).
  if (doc.has_section("sweep")) {
    Sweep sweep;
    sweep.parameter = doc.get("sweep", "param", "");
    if (sweep.parameter.empty()) {
      throw ContractViolation("[sweep] requires 'param'");
    }
    core::SystemConfig probe = scenario.system;
    if (!core::set_parameter(probe, sweep.parameter, 1.0)) {
      throw ContractViolation("unknown sweep parameter '" + sweep.parameter +
                              "'");
    }
    sweep.from = doc.get_double("sweep", "from", 0.0);
    sweep.to = doc.get_double("sweep", "to", 0.0);
    sweep.steps = static_cast<int>(doc.get_double("sweep", "steps", 5.0));
    const std::string scale = doc.get("sweep", "scale", "log");
    if (scale == "log") {
      sweep.log_scale = true;
    } else if (scale == "linear") {
      sweep.log_scale = false;
    } else {
      throw ContractViolation("unknown sweep scale '" + scale + "'");
    }
    if (!(sweep.from > 0.0) || !(sweep.to > sweep.from) || sweep.steps < 2) {
      throw ContractViolation("[sweep] requires 0 < from < to and steps >= 2");
    }
    scenario.sweep = sweep;
  }

  // [output].
  const std::string format = doc.get("output", "format", "table");
  if (format == "csv") {
    scenario.csv = true;
  } else if (format != "table") {
    throw ContractViolation("unknown output format '" + format + "'");
  }
  scenario.target =
      core::ReliabilityTarget{doc.get_double("output", "target", 2e-3)};
  const std::string method = doc.get("output", "method", "exact");
  if (method == "closed") {
    scenario.method = core::Method::kClosedForm;
  } else if (method != "exact") {
    throw ContractViolation("unknown method '" + method + "'");
  }

  // Reject unexpected sections (likely typos).
  for (const std::string& name : doc.section_names()) {
    if (name != "system" && name != "configurations" && name != "sweep" &&
        name != "output" && !name.empty()) {
      throw ContractViolation("unknown section [" + name + "]");
    }
  }
  return scenario;
}

void run_scenario(const Scenario& scenario, std::ostream& out) {
  std::vector<std::string> headers;
  headers.push_back(scenario.sweep ? scenario.sweep->parameter : "metric");
  for (const auto& configuration : scenario.configurations) {
    headers.push_back(core::name(configuration));
  }
  report::Table table(std::move(headers));

  const auto evaluate = [&](const core::SystemConfig& system,
                            const std::string& label) {
    const core::Analyzer analyzer(system);
    std::vector<std::string> row{label};
    for (const auto& configuration : scenario.configurations) {
      const double events =
          analyzer.events_per_pb_year(configuration, scenario.method);
      row.push_back(sci(events) +
                    (!scenario.csv && scenario.target.met_by(events) ? " *"
                                                                     : ""));
    }
    table.add_row(std::move(row));
  };

  if (scenario.sweep) {
    const Sweep& sweep = *scenario.sweep;
    for (int i = 0; i < sweep.steps; ++i) {
      const double fraction =
          static_cast<double>(i) / static_cast<double>(sweep.steps - 1);
      const double x =
          sweep.log_scale
              ? sweep.from * std::pow(sweep.to / sweep.from, fraction)
              : sweep.from + (sweep.to - sweep.from) * fraction;
      core::SystemConfig system = scenario.system;
      NSREL_ASSERT(core::set_parameter(system, sweep.parameter, x));
      system.validate();
      evaluate(system, sci(x, 4));
    }
  } else {
    evaluate(scenario.system, "events/PB-yr");
  }

  if (scenario.csv) {
    table.print_csv(out);
  } else {
    table.print(out);
    out << "(* = meets " << sci(scenario.target.events_per_pb_year)
        << " events/PB-yr)\n";
  }
}

void run_scenario_text(const std::string& text, std::ostream& out) {
  run_scenario(parse_scenario(text), out);
}

}  // namespace nsrel::scenario
