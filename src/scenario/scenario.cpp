#include "scenario/scenario.hpp"

#include <cstddef>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.hpp"
#include "engine/grid.hpp"
#include "engine/render.hpp"
#include "obs/journal.hpp"
#include "obs/trace.hpp"
#include "report/events_doc.hpp"
#include "report/table.hpp"
#include "util/assert.hpp"
#include "util/format.hpp"

namespace nsrel::scenario {

core::Configuration parse_configuration_token(const std::string& token) {
  const auto dash = token.rfind("-ft");
  if (dash == std::string::npos) {
    throw ContractViolation("configuration token '" + token +
                            "' is not of the form <scheme>-ft<K>");
  }
  const std::string scheme = token.substr(0, dash);
  const std::string ft_text = token.substr(dash + 3);
  core::Configuration configuration;
  if (scheme == "none") {
    configuration.internal = core::InternalScheme::kNone;
  } else if (scheme == "raid5") {
    configuration.internal = core::InternalScheme::kRaid5;
  } else if (scheme == "raid6") {
    configuration.internal = core::InternalScheme::kRaid6;
  } else {
    throw ContractViolation("unknown scheme '" + scheme +
                            "' (use none|raid5|raid6)");
  }
  char* end = nullptr;
  const long ft = std::strtol(ft_text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || ft_text.empty() || ft < 1) {
    throw ContractViolation("bad fault tolerance in '" + token + "'");
  }
  configuration.node_fault_tolerance = static_cast<int>(ft);
  return configuration;
}

Scenario parse_scenario(const std::string& text) {
  const IniDocument doc = IniDocument::parse(text);
  Scenario scenario;

  // [system]: every key must be a known parameter name.
  scenario.system = core::SystemConfig::baseline();
  for (const auto& [key, value] : doc.section("system")) {
    const double number = doc.get_double("system", key, 0.0);
    if (!core::set_parameter(scenario.system, key, number)) {
      throw ContractViolation("unknown system parameter '" + key + "'");
    }
  }
  scenario.system.validate();

  // [configurations].
  const std::string list =
      doc.get("configurations", "list", "none-ft2, raid5-ft2, none-ft3");
  for (const std::string& token : split_list(list)) {
    scenario.configurations.push_back(parse_configuration_token(token));
  }
  NSREL_ENSURES(!scenario.configurations.empty());

  // [sweep], [sweep.2], [sweep.3], ... (optional; consecutive sections,
  // each one axis of a cartesian grid).
  for (std::size_t axis = 1;; ++axis) {
    const std::string section =
        axis == 1 ? "sweep" : "sweep." + std::to_string(axis);
    if (!doc.has_section(section)) break;
    Sweep sweep;
    sweep.parameter = doc.get(section, "param", "");
    if (sweep.parameter.empty()) {
      throw ContractViolation("[" + section + "] requires 'param'");
    }
    core::SystemConfig probe = scenario.system;
    if (!core::set_parameter(probe, sweep.parameter, 1.0)) {
      throw ContractViolation("unknown sweep parameter '" + sweep.parameter +
                              "'");
    }
    for (const Sweep& existing : scenario.sweeps) {
      if (existing.parameter == sweep.parameter) {
        throw ContractViolation("sweep parameter '" + sweep.parameter +
                                "' appears on more than one axis");
      }
    }
    sweep.from = doc.get_double(section, "from", 0.0);
    sweep.to = doc.get_double(section, "to", 0.0);
    sweep.steps = static_cast<int>(doc.get_double(section, "steps", 5.0));
    const std::string scale = doc.get(section, "scale", "log");
    if (scale == "log") {
      sweep.log_scale = true;
    } else if (scale == "linear") {
      sweep.log_scale = false;
    } else {
      throw ContractViolation("unknown sweep scale '" + scale + "'");
    }
    if (!(sweep.from > 0.0) || !(sweep.to > sweep.from) || sweep.steps < 2) {
      throw ContractViolation("[" + section +
                              "] requires 0 < from < to and steps >= 2");
    }
    scenario.sweeps.push_back(sweep);
  }

  // [output].
  scenario.format =
      report::parse_output_format(doc.get("output", "format", "table"));
  scenario.target =
      core::ReliabilityTarget{doc.get_double("output", "target", 2e-3)};
  scenario.method = core::parse_method(doc.get("output", "method", "exact"));
  scenario.jobs = static_cast<int>(doc.get_double("output", "jobs", 1.0));
  if (scenario.jobs < 0) {
    throw ContractViolation("[output] jobs must be >= 0 (0 = all cores)");
  }
  scenario.on_error =
      engine::parse_on_error(doc.get("output", "on_error", "skip"));
  scenario.trace = doc.get("output", "trace", "");
  scenario.events = doc.get("output", "events", "");

  // Reject unexpected sections (likely typos). Sweep sections beyond the
  // consecutive run parsed above ([sweep.4] with no [sweep.3]) land here
  // too, with a hint about the numbering rule.
  for (const std::string& name : doc.section_names()) {
    if (name == "system" || name == "configurations" || name == "output" ||
        name.empty()) {
      continue;
    }
    bool consumed_sweep = false;
    for (std::size_t axis = 1; axis <= scenario.sweeps.size(); ++axis) {
      const std::string section =
          axis == 1 ? "sweep" : "sweep." + std::to_string(axis);
      if (name == section) {
        consumed_sweep = true;
        break;
      }
    }
    if (consumed_sweep) continue;
    if (name.rfind("sweep", 0) == 0) {
      throw ContractViolation(
          "unknown section [" + name +
          "] (sweep axes must be consecutive: [sweep], [sweep.2], ...)");
    }
    throw ContractViolation("unknown section [" + name + "]");
  }
  return scenario;
}

RunOutcome run_scenario(const Scenario& scenario, std::ostream& out) {
  if (!scenario.trace.empty()) obs::TraceRecorder::instance().begin();
  if (!scenario.events.empty()) obs::Journal::instance().begin();
  engine::Grid grid;
  if (!scenario.sweeps.empty()) {
    std::vector<engine::AxisSpec> axes;
    axes.reserve(scenario.sweeps.size());
    for (const Sweep& sweep : scenario.sweeps) {
      engine::AxisSpec axis;
      axis.parameter = sweep.parameter;
      axis.values = engine::spaced_points(sweep.from, sweep.to, sweep.steps,
                                          sweep.log_scale);
      axes.push_back(std::move(axis));
    }
    grid = engine::cartesian_sweep(scenario.system, axes,
                                   scenario.configurations, scenario.method);
  } else {
    grid = engine::single_point(scenario.system, scenario.configurations,
                                scenario.method);
  }

  engine::EvalOptions options;
  options.jobs = scenario.jobs;
  options.on_error = scenario.on_error;
  const engine::ResultSet results = engine::evaluate(grid, options);

  switch (scenario.format) {
    case report::OutputFormat::kTable:
      engine::events_table(results, &scenario.target).print(out);
      out << "(* = meets " << sci(scenario.target.events_per_pb_year)
          << " events/PB-yr)\n";
      for (const engine::CellError& failure : results.errors()) {
        out << "failed: " << grid.points[failure.point].label << " / "
            << core::name(grid.configurations[failure.configuration]) << ": "
            << failure.error.message() << "\n";
      }
      break;
    case report::OutputFormat::kCsv:
      engine::events_table(results, nullptr).print_csv(out);
      break;
    case report::OutputFormat::kJson:
      engine::write_json(results, out);
      break;
  }

  if (!scenario.trace.empty() &&
      !obs::TraceRecorder::instance().write_file(scenario.trace)) {
    throw ContractViolation("cannot write trace file '" + scenario.trace +
                            "'");
  }
  if (!scenario.events.empty()) {
    // evaluate() drained at its join; this catches this thread's tail.
    obs::Journal::instance().drain();
    obs::Journal::instance().disable();
    std::ofstream file(scenario.events);
    if (file) {
      report::write_events_ndjson(obs::Journal::instance().events(),
                                  obs::Journal::instance().dropped(), file);
    }
    if (!file) {
      throw ContractViolation("cannot write events file '" + scenario.events +
                              "'");
    }
  }

  const std::size_t total =
      results.point_count() * results.configuration_count();
  const std::size_t ok = results.ok_count();
  return RunOutcome{ok, total - ok};
}

RunOutcome run_scenario_text(const std::string& text, std::ostream& out) {
  return run_scenario(parse_scenario(text), out);
}

}  // namespace nsrel::scenario
