#include "scenario/scenario.hpp"

#include <cstddef>
#include <cstdlib>
#include <ostream>
#include <string>

#include "engine/engine.hpp"
#include "engine/grid.hpp"
#include "engine/render.hpp"
#include "obs/trace.hpp"
#include "report/table.hpp"
#include "util/assert.hpp"
#include "util/format.hpp"

namespace nsrel::scenario {

core::Configuration parse_configuration_token(const std::string& token) {
  const auto dash = token.rfind("-ft");
  if (dash == std::string::npos) {
    throw ContractViolation("configuration token '" + token +
                            "' is not of the form <scheme>-ft<K>");
  }
  const std::string scheme = token.substr(0, dash);
  const std::string ft_text = token.substr(dash + 3);
  core::Configuration configuration;
  if (scheme == "none") {
    configuration.internal = core::InternalScheme::kNone;
  } else if (scheme == "raid5") {
    configuration.internal = core::InternalScheme::kRaid5;
  } else if (scheme == "raid6") {
    configuration.internal = core::InternalScheme::kRaid6;
  } else {
    throw ContractViolation("unknown scheme '" + scheme +
                            "' (use none|raid5|raid6)");
  }
  char* end = nullptr;
  const long ft = std::strtol(ft_text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || ft_text.empty() || ft < 1) {
    throw ContractViolation("bad fault tolerance in '" + token + "'");
  }
  configuration.node_fault_tolerance = static_cast<int>(ft);
  return configuration;
}

Scenario parse_scenario(const std::string& text) {
  const IniDocument doc = IniDocument::parse(text);
  Scenario scenario;

  // [system]: every key must be a known parameter name.
  scenario.system = core::SystemConfig::baseline();
  for (const auto& [key, value] : doc.section("system")) {
    const double number = doc.get_double("system", key, 0.0);
    if (!core::set_parameter(scenario.system, key, number)) {
      throw ContractViolation("unknown system parameter '" + key + "'");
    }
  }
  scenario.system.validate();

  // [configurations].
  const std::string list =
      doc.get("configurations", "list", "none-ft2, raid5-ft2, none-ft3");
  for (const std::string& token : split_list(list)) {
    scenario.configurations.push_back(parse_configuration_token(token));
  }
  NSREL_ENSURES(!scenario.configurations.empty());

  // [sweep] (optional).
  if (doc.has_section("sweep")) {
    Sweep sweep;
    sweep.parameter = doc.get("sweep", "param", "");
    if (sweep.parameter.empty()) {
      throw ContractViolation("[sweep] requires 'param'");
    }
    core::SystemConfig probe = scenario.system;
    if (!core::set_parameter(probe, sweep.parameter, 1.0)) {
      throw ContractViolation("unknown sweep parameter '" + sweep.parameter +
                              "'");
    }
    sweep.from = doc.get_double("sweep", "from", 0.0);
    sweep.to = doc.get_double("sweep", "to", 0.0);
    sweep.steps = static_cast<int>(doc.get_double("sweep", "steps", 5.0));
    const std::string scale = doc.get("sweep", "scale", "log");
    if (scale == "log") {
      sweep.log_scale = true;
    } else if (scale == "linear") {
      sweep.log_scale = false;
    } else {
      throw ContractViolation("unknown sweep scale '" + scale + "'");
    }
    if (!(sweep.from > 0.0) || !(sweep.to > sweep.from) || sweep.steps < 2) {
      throw ContractViolation("[sweep] requires 0 < from < to and steps >= 2");
    }
    scenario.sweep = sweep;
  }

  // [output].
  scenario.format =
      report::parse_output_format(doc.get("output", "format", "table"));
  scenario.target =
      core::ReliabilityTarget{doc.get_double("output", "target", 2e-3)};
  scenario.method = core::parse_method(doc.get("output", "method", "exact"));
  scenario.jobs = static_cast<int>(doc.get_double("output", "jobs", 1.0));
  if (scenario.jobs < 0) {
    throw ContractViolation("[output] jobs must be >= 0 (0 = all cores)");
  }
  scenario.on_error =
      engine::parse_on_error(doc.get("output", "on_error", "skip"));
  scenario.trace = doc.get("output", "trace", "");

  // Reject unexpected sections (likely typos).
  for (const std::string& name : doc.section_names()) {
    if (name != "system" && name != "configurations" && name != "sweep" &&
        name != "output" && !name.empty()) {
      throw ContractViolation("unknown section [" + name + "]");
    }
  }
  return scenario;
}

RunOutcome run_scenario(const Scenario& scenario, std::ostream& out) {
  if (!scenario.trace.empty()) obs::TraceRecorder::instance().begin();
  engine::Grid grid;
  if (scenario.sweep) {
    const Sweep& sweep = *scenario.sweep;
    grid = engine::parameter_sweep(
        scenario.system, sweep.parameter,
        engine::spaced_points(sweep.from, sweep.to, sweep.steps,
                              sweep.log_scale),
        scenario.configurations, scenario.method);
  } else {
    grid = engine::single_point(scenario.system, scenario.configurations,
                                scenario.method);
  }

  engine::EvalOptions options;
  options.jobs = scenario.jobs;
  options.on_error = scenario.on_error;
  const engine::ResultSet results = engine::evaluate(grid, options);

  switch (scenario.format) {
    case report::OutputFormat::kTable:
      engine::events_table(results, &scenario.target).print(out);
      out << "(* = meets " << sci(scenario.target.events_per_pb_year)
          << " events/PB-yr)\n";
      for (const engine::CellError& failure : results.errors()) {
        out << "failed: " << grid.points[failure.point].label << " / "
            << core::name(grid.configurations[failure.configuration]) << ": "
            << failure.error.message() << "\n";
      }
      break;
    case report::OutputFormat::kCsv:
      engine::events_table(results, nullptr).print_csv(out);
      break;
    case report::OutputFormat::kJson:
      engine::write_json(results, out);
      break;
  }

  if (!scenario.trace.empty() &&
      !obs::TraceRecorder::instance().write_file(scenario.trace)) {
    throw ContractViolation("cannot write trace file '" + scenario.trace +
                            "'");
  }

  const std::size_t total =
      results.point_count() * results.configuration_count();
  const std::size_t ok = results.ok_count();
  return RunOutcome{ok, total - ok};
}

RunOutcome run_scenario_text(const std::string& text, std::ostream& out) {
  return run_scenario(parse_scenario(text), out);
}

}  // namespace nsrel::scenario
