// Scenario files: declarative reliability studies.
//
// A scenario describes a system (overrides over the paper baseline), a
// set of redundancy configurations, and optionally one or more sweep
// axes, then runs to a table or CSV. Example:
//
//   # my-study.scenario
//   [system]
//   n = 64
//   drive-mttf = 300e3
//   link-gbps = 10
//
//   [configurations]
//   list = none-ft2, raid5-ft2, none-ft3
//
//   [sweep]              ; optional — without it, a single evaluation
//   param = rebuild-kb
//   from = 4
//   to = 1024
//   steps = 9
//   scale = log          ; or linear
//
//   [sweep.2]            ; optional second axis: the grid becomes the
//   param = link-gbps    ; cartesian product (rows ordered first axis
//   from = 1             ; outermost, last axis fastest). [sweep.3] etc.
//   to = 10              ; nest further; sections must be consecutive.
//   steps = 3
//
//   [output]
//   format = table       ; or csv, json
//   target = 2e-3
//   jobs = 1             ; worker threads (0 = all cores; never changes
//                        ; results — the engine is jobs-invariant)
//   on_error = skip      ; skip: evaluate the rest and mark failed cells
//                        ; with their error code; fail: stop at the
//                        ; first failure (throws ErrorException)
//   trace = run.json     ; optional — write a Chrome/Perfetto trace of
//                        ; the evaluation (table/CSV/JSON unaffected)
//   events = run.ndjson  ; optional — write the flight-recorder journal
//                        ; (nsrel-events-v1; render with `nsrel events`)
//
// Configuration tokens are `<scheme>-ft<K>` with scheme none|raid5|raid6.
// Evaluation runs through engine::evaluate — the same parallel,
// solve-memoizing path the CLI and the figure benches use.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "engine/engine.hpp"
#include "report/table.hpp"
#include "scenario/ini.hpp"

namespace nsrel::scenario {

struct Sweep {
  std::string parameter;
  double from = 0.0;
  double to = 0.0;
  int steps = 2;
  bool log_scale = true;
};

struct Scenario {
  core::SystemConfig system;
  std::vector<core::Configuration> configurations;
  /// Sweep axes in declaration order ([sweep], [sweep.2], ...); empty =
  /// single evaluation point. Several axes form a cartesian grid.
  std::vector<Sweep> sweeps;
  report::OutputFormat format = report::OutputFormat::kTable;
  core::ReliabilityTarget target = core::ReliabilityTarget::paper();
  core::Method method = core::Method::kExactChain;
  int jobs = 1;  ///< engine worker threads; 0 = all cores
  /// Failed-cell policy ([output] on_error = skip|fail, default skip).
  engine::OnError on_error = engine::OnError::kSkip;
  /// Optional trace-file path ([output] trace = FILE): run_scenario
  /// records the evaluation and writes a Chrome/Perfetto trace_event
  /// JSON file there. Empty = no tracing. The CLI's --trace flag takes
  /// precedence over this key.
  std::string trace;
  /// Optional flight-recorder path ([output] events = FILE):
  /// run_scenario arms the journal and writes the drained events as an
  /// nsrel-events-v1 NDJSON file there (render with `nsrel events`).
  /// Empty = journal untouched. The CLI's --events flag takes
  /// precedence over this key.
  std::string events;
};

/// Parses a configuration token like "raid5-ft2".
[[nodiscard]] core::Configuration parse_configuration_token(
    const std::string& token);

/// Builds a Scenario from INI text; throws ContractViolation with context
/// on unknown keys, bad parameter names, or invalid ranges.
[[nodiscard]] Scenario parse_scenario(const std::string& text);

/// How a run went: cells evaluated vs cells failed. Under the default
/// on_error = skip a failing cell never aborts the run; the caller maps
/// a nonzero error_count to its own partial-results signal.
struct RunOutcome {
  std::size_t ok_count = 0;
  std::size_t error_count = 0;

  [[nodiscard]] bool all_ok() const { return error_count == 0; }
};

/// Runs the scenario, writing the result table/CSV to `out`. With
/// on_error = fail a failing cell throws ErrorException instead.
RunOutcome run_scenario(const Scenario& scenario, std::ostream& out);

/// Convenience: parse + run.
RunOutcome run_scenario_text(const std::string& text, std::ostream& out);

}  // namespace nsrel::scenario
