// The `nsrel` command-line tool's commands, separated from main() so the
// test suite can drive them against string streams.
//
// Commands:
//   analyze       MTTDL + events/PB-year for one configuration
//   compare       all 9 configurations (Figure 13 style)
//   rebuild       rebuild-rate decomposition (section 5.1)
//   sweep         one-parameter sensitivity sweep, table or CSV
//   availability  steady-state availability with a restore tier
//   simulate      parallel Monte-Carlo MTTDL estimate vs the analytic
//                 model (--trials --seed --jobs --ci-target --chunk)
//   help          usage
//
// Shared flags (every command): --n --r --d --node-mttf --drive-mttf
// --capacity-gb --her-exp --iops --xfer-mbps --rebuild-kb --restripe-kb
// --link-gbps --util --bw-frac. Configuration flags: --scheme
// none|raid5|raid6, --ft 1..; --method exact|closed.
#pragma once

#include <iosfwd>

#include "cli/args.hpp"
#include "core/analyzer.hpp"

namespace nsrel::cli {

/// Process exit codes. 1 and 2 are deliberately unused (shells and
/// harnesses overload them); anything nonzero below is stable API.
inline constexpr int kExitOk = 0;              ///< every cell evaluated
inline constexpr int kExitPartialResults = 3;  ///< some cells failed (skip)
inline constexpr int kExitUsage = 4;           ///< bad command line / input
inline constexpr int kExitInternal = 5;        ///< unexpected exception or
                                               ///< failure under on-error=fail

/// Builds a SystemConfig from the shared flags over the paper baseline.
[[nodiscard]] core::SystemConfig config_from_args(const Args& args);

/// Parses --scheme/--ft into a Configuration (default: raid5, ft 2).
[[nodiscard]] core::Configuration configuration_from_args(const Args& args);

/// Dispatches a parsed command line; writes results to `out`, problems to
/// `err`. Returns a process exit code.
int dispatch(const Args& args, std::ostream& out, std::ostream& err);

/// Convenience overload for main().
int dispatch(int argc, const char* const* argv, std::ostream& out,
             std::ostream& err);

}  // namespace nsrel::cli
