// Minimal command-line argument parser for the `nsrel` tool: one
// positional command followed by `--key value` flags. Typed accessors
// with defaults; unknown or malformed flags are reported, and every flag
// actually consumed is tracked so the tool can reject typos.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace nsrel::cli {

class Args {
 public:
  /// Parses {argv[1], ...}. The first non-flag token is the command;
  /// everything else must be `--key value` pairs, except for the
  /// whitelisted valueless flags (--version, --metrics, --progress,
  /// --cache-stats) which parse as present with value "1", and the
  /// commands that take positional operands (`diff`, `events`, and
  /// `report`, whose operands are file paths). Throws ContractViolation on a
  /// flag without a value or a stray positional token after any other
  /// command.
  Args(int argc, const char* const* argv);

  /// Convenience for tests.
  explicit Args(const std::vector<std::string>& tokens);

  [[nodiscard]] const std::string& command() const { return command_; }

  [[nodiscard]] bool has(const std::string& key) const;

  /// Typed accessors; throw ContractViolation when present but malformed.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] int get_int(const std::string& key, int fallback) const;

  /// Flags present on the command line but never read by any accessor —
  /// almost certainly typos. Call after all gets.
  [[nodiscard]] std::vector<std::string> unused() const;

  /// Positional operands after the command, in order (only the commands
  /// whitelisted in the parser may have any).
  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positionals_;
  }

 private:
  std::string command_;
  std::vector<std::string> positionals_;
  std::map<std::string, std::string> flags_;
  mutable std::set<std::string> consumed_;
};

}  // namespace nsrel::cli
