#include "cli/args.hpp"

#include <cstddef>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace nsrel::cli {

namespace {

std::vector<std::string> to_tokens(int argc, const char* const* argv) {
  std::vector<std::string> tokens;
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  return tokens;
}

/// The few flags that take no value; everything else is `--key value`.
bool is_bare_flag(const std::string& key) {
  return key == "version" || key == "metrics" || key == "progress" ||
         key == "cache-stats";
}

}  // namespace

Args::Args(int argc, const char* const* argv) : Args(to_tokens(argc, argv)) {}

Args::Args(const std::vector<std::string>& tokens) {
  std::size_t i = 0;
  if (i < tokens.size() && tokens[i].rfind("--", 0) != 0) {
    command_ = tokens[i];
    ++i;
  }
  for (; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (token.rfind("--", 0) != 0) {
      // Positional operands exist only for the file-reading commands
      // (diff's two documents, events' journal, report's inputs); after
      // any other command a bare token is a typo.
      NSREL_EXPECTS(command_ == "diff" || command_ == "events" ||
                    command_ == "report");  // stray positional argument
      positionals_.push_back(token);
      continue;
    }
    const std::string key = token.substr(2);
    if (is_bare_flag(key)) {
      flags_[key] = "1";
      continue;
    }
    NSREL_EXPECTS(i + 1 < tokens.size());  // flag without a value
    flags_[key] = tokens[++i];
  }
}

bool Args::has(const std::string& key) const {
  consumed_.insert(key);
  return flags_.contains(key);
}

std::string Args::get_string(const std::string& key,
                             const std::string& fallback) const {
  consumed_.insert(key);
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

double Args::get_double(const std::string& key, double fallback) const {
  consumed_.insert(key);
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  NSREL_EXPECTS(end != nullptr && *end == '\0' && !it->second.empty());
  return value;
}

int Args::get_int(const std::string& key, int fallback) const {
  const double value = get_double(key, static_cast<double>(fallback));
  const int as_int = static_cast<int>(value);
  NSREL_EXPECTS(static_cast<double>(as_int) == value);  // reject 3.5 etc.
  return as_int;
}

std::vector<std::string> Args::unused() const {
  std::vector<std::string> result;
  for (const auto& [key, value] : flags_) {
    if (!consumed_.contains(key)) result.push_back(key);
  }
  return result;
}

}  // namespace nsrel::cli
