#include "cli/commands.hpp"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <ostream>

#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "ctmc/dot.hpp"
#include "ctmc/solver_policy.hpp"
#include "engine/engine.hpp"
#include "engine/grid.hpp"
#include "engine/render.hpp"
#include "models/availability.hpp"
#include "obs/build_info.hpp"
#include "obs/journal.hpp"
#include "obs/progress.hpp"
#include "obs/session.hpp"
#include "obs/snapshot.hpp"
#include "placement/layout.hpp"
#include "report/diff.hpp"
#include "report/events_doc.hpp"
#include "report/footer.hpp"
#include "report/json.hpp"
#include "report/metrics_doc.hpp"
#include "report/resultset_doc.hpp"
#include "report/summary.hpp"
#include "report/table.hpp"
#include "sim/estimate.hpp"
#include "scenario/scenario.hpp"
#include "util/assert.hpp"
#include "util/format.hpp"

namespace nsrel::cli {

namespace {

constexpr const char* kUsage = R"(nsrel — reliability modeling for networked storage nodes
(Rao, Hafner, Golding: "Reliability for Networked Storage Nodes", DSN 2006)

usage: nsrel <command> [--flag value ...]

commands:
  analyze       MTTDL and data-loss events/PB-year for one configuration
  compare       all 9 configurations against the reliability target
  rebuild       rebuild-rate decomposition (disk vs network, re-stripe)
  sweep         sensitivity sweep over one parameter (--param, --from,
                --to, --steps)
  availability  steady-state availability given a restore tier
                (--restore-hours, default 168)
  scenario      run a declarative scenario file (--file path, optional
                --jobs); see scenarios/*.scenario for the format
  simulate      parallel Monte-Carlo MTTDL estimate vs the analytic model
                (--trials, --seed, --jobs, --ci-target, --chunk,
                --max-trials); use accelerated --node-mttf/--drive-mttf
                so trajectories stay short. With --param/--from/--to/
                --steps it becomes a Monte-Carlo sweep through the grid
                engine (same --format/--jobs/--on-error as sweep)
  diff          compare two written resultset JSON documents
                (nsrel diff A.json B.json [--abs-tol X] [--rel-tol Y]
                [--format table|csv|json]); exit 0 = no drift, 3 = drift,
                4 = unreadable or incomparable inputs
  events        render a flight-recorder journal written by --events
                (nsrel events RUN.ndjson [--view timeline|batches]
                [--format table|csv|json]); batches rolls a faulted
                repair run up into per-barrier fault/retry/read counts
  report        aggregate observability documents across runs
                (nsrel report A.json B.ndjson ...): counters and
                histograms merged with exact snapshot algebra, event
                counts per journal, one column per input plus a total
  chain         emit the configuration's Markov chain as Graphviz DOT
                (pipe into `dot -Tpdf` for a Figure-5-style diagram)
  provision     fail-in-place spare planning: utilization that survives
                the service life (--years, --confidence)
  version       build identity: semver, git SHA, compiler, build type
                (--version anywhere does the same)
  help          this text

configuration flags:
  --scheme none|raid5|raid6   internal redundancy        (default raid5)
  --ft K                      node fault tolerance       (default 2)
  --method exact|closed       solution path              (default exact)
  --solver auto|dense|sparse  CTMC solve backend         (default auto;
                              backends are bit-identical — auto switches
                              to sparse above 63 transient states)

evaluation flags (analyze | compare | sweep; all three run through the
parallel grid-evaluation engine — output never depends on --jobs):
  --format table|csv|json     rendering                  (default table)
  --jobs N                    worker threads, 0 = all cores (default 1)
  --on-error skip|fail        failed-cell policy         (default skip)
                              skip: evaluate the rest, mark failures with
                              their error code, exit 3; fail: stop at the
                              first failure and exit 5

system flags (defaults = the paper's section-6 baseline):
  --n 64          node set size         --r 8            redundancy set size
  --d 12          drives per node       --node-mttf 4e5  hours
  --drive-mttf 3e5 hours                --capacity-gb 300
  --her-exp 14    1 sector per 10^K bits read            --iops 150
  --xfer-mbps 40  sustained drive MB/s  --link-gbps 10
  --rebuild-kb 128                      --restripe-kb 1024
  --util 0.75     capacity utilization  --bw-frac 0.10   rebuild bandwidth
  --target 2e-3   events/PB-year

sweep parameters (--param): any canonical system parameter — n | r | d |
  node-mttf | drive-mttf | capacity-gb | her-exp | iops | xfer-mbps |
  link-gbps | rebuild-kb | restripe-kb | util | bw-frac
  (--csv 1 is kept as a deprecated alias for --format csv)

simulate flags:
  --trials 4000   Monte-Carlo trials   --seed 24141     RNG seed
  --jobs 1        worker threads (0 = all cores; never changes results)
  --ci-target 0   adaptive stop at this relative 95% CI half-width
                  (e.g. 0.05 = ±5%; 0 = run exactly --trials)
  --chunk 256     trials per RNG stream chunk
  --max-trials 1000000  adaptive-mode trial cap

observability flags (any command; stdout stays byte-identical with these
on or off, at any --jobs):
  --trace FILE    write a Chrome/Perfetto trace_event JSON recording of
                  the run (load in ui.perfetto.dev or chrome://tracing)
  --metrics       print the metrics-registry block to stderr at exit
  --progress      sweep/simulate: cells|chunks done/total + ETA on
                  stderr, throttled to <= 4 updates/s
  --cache-stats   opt into solve-cache counters in the output: a
                  "cache: N hits, ..." footer after tables/CSV, a
                  meta.cache object in --format json (counters are
                  schedule-dependent for --jobs > 1)
  --events FILE   write the flight-recorder journal as nsrel-events-v1
                  NDJSON (typed solve/cache/cell/sim/repair events on
                  deterministic clocks, byte-identical at any --jobs);
                  render it with `nsrel events`
  --metrics-out FILE  write the metrics registry as an nsrel-metrics-v1
                  JSON document (exact counters, log2 histograms with
                  p50/p90/p99); aggregate runs with `nsrel report`

exit codes:
  0  success — every cell evaluated
  3  partial results — at least one cell failed (failures are marked in
     the output and detailed on stderr with stable error codes)
  4  usage error — unknown command/flag, bad value, unreadable file
  5  internal or evaluation error — unexpected exception, or a cell
     failure under --on-error fail
)";

core::Method method_from_args(const Args& args) {
  return core::parse_method(args.get_string("method", "exact"));
}

ctmc::SolverPolicy solver_from_args(const Args& args) {
  return ctmc::parse_solver_policy(args.get_string("solver", "auto"));
}

/// Shared evaluation flags of analyze/compare/sweep. --csv 1 is the
/// pre-engine spelling of --format csv, kept as an alias.
struct EvalFlags {
  engine::EvalOptions options;
  report::OutputFormat format = report::OutputFormat::kTable;
  bool cache_stats = false;  ///< --cache-stats: opt into cache counters
};

EvalFlags eval_flags_from_args(const Args& args) {
  EvalFlags flags;
  flags.cache_stats = args.has("cache-stats");
  flags.options.jobs = args.get_int("jobs", 1);
  if (flags.options.jobs < 0) {
    throw ContractViolation("--jobs must be >= 0 (0 = all cores)");
  }
  // The CLI default is skip: report what evaluated, mark what failed.
  // "fail" maps to the engine's fail-fast, surfacing as exit 5.
  flags.options.on_error =
      engine::parse_on_error(args.get_string("on-error", "skip"));
  const bool legacy_csv = args.get_int("csv", 0) != 0;
  flags.format = report::parse_output_format(
      args.get_string("format", legacy_csv ? "csv" : "table"));
  return flags;
}

/// The one --cache-stats footer call per command. Routing every format
/// branch through report::print_cache_footer (a no-op for JSON) keeps
/// the footer bytes identical everywhere instead of each switch branch
/// carrying its own copy.
void maybe_cache_footer(const EvalFlags& flags,
                        const engine::ResultSet& results, std::ostream& out) {
  if (!flags.cache_stats) return;
  const core::SolveCache::Stats stats = results.cache_stats();
  report::print_cache_footer(stats.hits, stats.misses, flags.format, out);
}

/// Reads a whole file for the document commands (diff/events/report);
/// nullopt (with a message on `err`) when unreadable.
std::optional<std::string> read_file(const std::string& path,
                                     std::ostream& err) {
  std::ifstream in(path);
  if (!in) {
    err << "cannot open '" << path << "'\n";
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return std::move(text).str();
}

int check_unused(const Args& args, std::ostream& err) {
  const auto unused = args.unused();
  if (unused.empty()) return 0;
  err << "unknown flag(s):";
  for (const auto& key : unused) err << " --" << key;
  err << "\n";
  return kExitUsage;
}

/// Details every failed cell on stderr (row-major, so the lines are
/// jobs-invariant like the rendered output) and maps the run to its
/// exit code: 0 all cells ok, 3 partial results.
int report_failures(const engine::ResultSet& results, std::ostream& err) {
  const std::vector<engine::CellError> failures = results.errors();
  if (failures.empty()) return 0;
  const std::size_t total =
      results.point_count() * results.configuration_count();
  err << "warning: " << failures.size() << " of " << total
      << " cell(s) failed:\n";
  for (const engine::CellError& failure : failures) {
    err << "  " << results.grid().points[failure.point].label << " / "
        << core::name(results.grid().configurations[failure.configuration])
        << ": " << failure.error.message() << "\n";
  }
  return kExitPartialResults;
}

int run_analyze(const Args& args, std::ostream& out, std::ostream& err) {
  const core::SystemConfig system = config_from_args(args);
  const core::Configuration configuration = configuration_from_args(args);
  const core::Method method = method_from_args(args);
  const ctmc::SolverPolicy solver = solver_from_args(args);
  const core::ReliabilityTarget target{args.get_double("target", 2e-3)};
  const EvalFlags flags = eval_flags_from_args(args);
  if (const int rc = check_unused(args, err); rc != 0) return rc;

  engine::Grid grid = engine::single_point(system, {configuration}, method);
  grid.solver = solver;
  const engine::ResultSet results = engine::evaluate(grid, flags.options);
  if (flags.format == report::OutputFormat::kJson) {
    engine::write_json(results, out,
                       engine::JsonOptions{flags.cache_stats});
    return report_failures(results, err);
  }
  if (flags.format == report::OutputFormat::kCsv) {
    engine::compare_table(results, target).print_csv(out);
    maybe_cache_footer(flags, results, out);
    return report_failures(results, err);
  }
  if (!results.ok(0, 0)) {
    out << "configuration:     " << core::name(configuration) << "\n";
    return report_failures(results, err);
  }
  const core::AnalysisResult& result = results.at(0, 0);
  out << "configuration:     " << core::name(configuration) << "\n"
      << "MTTDL:             " << human_hours(result.mttdl.value()) << "\n"
      << "events/system-yr:  " << sci(result.events_per_system_year) << "\n"
      << "logical capacity:  " << human_bytes(result.logical_capacity.value())
      << "\n"
      << "events/PB-yr:      " << sci(result.events_per_pb_year) << "\n"
      << "target:            " << sci(target.events_per_pb_year) << " ("
      << (target.met_by(result) ? "met" : "MISSED") << ")\n"
      << "node rebuild:      "
      << fixed(to_hours(result.rebuild.node_rebuild_time).value(), 2)
      << " h ("
      << (result.rebuild.node_bottleneck == rebuild::Bottleneck::kDisk
              ? "disk"
              : "network")
      << "-bound)\n";
  if (configuration.internal != core::InternalScheme::kNone) {
    out << "array lambda_D:    " << sci(result.array_failure_rate.value())
        << " /h\narray lambda_S:    " << sci(result.sector_error_rate.value())
        << " /h\nre-stripe:         "
        << fixed(to_hours(result.rebuild.restripe_time).value(), 1) << " h\n";
  }
  maybe_cache_footer(flags, results, out);
  return kExitOk;
}

int run_compare(const Args& args, std::ostream& out, std::ostream& err) {
  const core::SystemConfig system = config_from_args(args);
  const core::Method method = method_from_args(args);
  const ctmc::SolverPolicy solver = solver_from_args(args);
  const core::ReliabilityTarget target{args.get_double("target", 2e-3)};
  const EvalFlags flags = eval_flags_from_args(args);
  if (const int rc = check_unused(args, err); rc != 0) return rc;

  engine::Grid grid =
      engine::single_point(system, core::all_configurations(), method);
  grid.solver = solver;
  const engine::ResultSet results = engine::evaluate(grid, flags.options);
  switch (flags.format) {
    case report::OutputFormat::kTable:
      engine::compare_table(results, target).print(out);
      break;
    case report::OutputFormat::kCsv:
      engine::compare_table(results, target).print_csv(out);
      break;
    case report::OutputFormat::kJson:
      engine::write_json(results, out,
                         engine::JsonOptions{flags.cache_stats});
      break;
  }
  maybe_cache_footer(flags, results, out);
  return report_failures(results, err);
}

int run_rebuild(const Args& args, std::ostream& out, std::ostream& err) {
  const core::Analyzer analyzer(config_from_args(args));
  const int ft = args.get_int("ft", 2);
  if (const int rc = check_unused(args, err); rc != 0) return rc;

  const rebuild::RebuildPlanner planner = analyzer.planner(ft);
  const auto flows = planner.flows();
  const auto rates = planner.rates();
  out << "node's worth of data: " << human_bytes(planner.node_data().value())
      << "\n"
      << "data in+out per node: " << fixed(flows.node_network_inout, 4)
      << " node's-worth; to/from disks: " << fixed(flows.node_disk_traffic, 4)
      << "\n"
      << "disk-side time:       "
      << fixed(to_hours(planner.node_disk_time()).value(), 2) << " h\n"
      << "network-side time:    "
      << fixed(to_hours(planner.node_network_time()).value(), 2) << " h\n"
      << "node rebuild:         "
      << fixed(to_hours(rates.node_rebuild_time).value(), 2) << " h ("
      << (rates.node_bottleneck == rebuild::Bottleneck::kDisk ? "disk"
                                                              : "network")
      << "-bound)\n"
      << "drive rebuild:        "
      << fixed(to_hours(rates.drive_rebuild_time).value(), 2) << " h\n"
      << "array re-stripe:      "
      << fixed(to_hours(rates.restripe_time).value(), 1) << " h\n"
      << "link crossover:       "
      << fixed(planner.link_speed_crossover().value() / 1e9, 2) << " Gb/s\n";
  return 0;
}

int run_sweep(const Args& args, std::ostream& out, std::ostream& err) {
  const std::string param = args.get_string("param", "drive-mttf");
  const double from = args.get_double("from", 100e3);
  const double to = args.get_double("to", 750e3);
  const int steps = args.get_int("steps", 5);
  const core::Configuration configuration = configuration_from_args(args);
  const core::Method method = method_from_args(args);
  const ctmc::SolverPolicy solver = solver_from_args(args);
  const core::SystemConfig base = config_from_args(args);
  EvalFlags flags = eval_flags_from_args(args);
  const bool progress = args.has("progress");
  if (const int rc = check_unused(args, err); rc != 0) return rc;
  NSREL_EXPECTS(steps >= 2);
  NSREL_EXPECTS(from > 0.0 && to > from);

  // Probe the name before evaluating so a typo is a usage error (exit
  // 2), not a ContractViolation from deep inside grid construction.
  core::SystemConfig probe = base;
  if (!core::set_parameter(probe, param, from)) {
    err << "unknown --param '" << param << "'\n";
    return kExitUsage;
  }

  // Log-spaced points: sensitivity plots in the paper span decades.
  engine::Grid grid = engine::parameter_sweep(
      base, param,
      engine::spaced_points(from, to, steps, /*log_scale=*/true),
      {configuration}, method);
  grid.solver = solver;
  std::optional<obs::ProgressMeter> meter;
  if (progress) {
    meter.emplace(err, "cells",
                  grid.points.size() * grid.configurations.size());
    flags.options.progress = &*meter;
  }
  const engine::ResultSet results = engine::evaluate(grid, flags.options);
  if (meter) meter->finish();
  switch (flags.format) {
    case report::OutputFormat::kTable:
      out << core::name(configuration) << ", sweeping " << param << ":\n";
      engine::sweep_table(results).print(out);
      break;
    case report::OutputFormat::kCsv:
      engine::sweep_table(results).print_csv(out);
      break;
    case report::OutputFormat::kJson:
      engine::write_json(results, out,
                         engine::JsonOptions{flags.cache_stats});
      break;
  }
  maybe_cache_footer(flags, results, out);
  return report_failures(results, err);
}

int run_availability(const Args& args, std::ostream& out, std::ostream& err) {
  const core::SystemConfig sys = config_from_args(args);
  const core::Configuration configuration = configuration_from_args(args);
  const double restore_hours = args.get_double("restore-hours", 168.0);
  if (const int rc = check_unused(args, err); rc != 0) return rc;

  const core::Analyzer analyzer(sys);
  // Availability needs the underlying chain; the analyzer rebuilds it
  // from the same parameters analyze() uses.
  const auto built = analyzer.build_chain(configuration);
  const auto result = models::AvailabilityModel::analyze(
      built.chain, built.healthy, Hours(restore_hours));
  out << "configuration:       " << core::name(configuration) << "\n"
      << "MTTDL:               " << human_hours(result.mttdl.value()) << "\n"
      << "restore time:        " << fixed(restore_hours, 1) << " h\n"
      << "availability:        " << fixed(result.availability * 100.0, 9)
      << " %\n"
      << "downtime:            " << sci(result.downtime_minutes_per_year)
      << " min/yr\n"
      << "degraded (rebuild):  " << fixed(result.degraded_fraction * 100.0, 3)
      << " % of time\n";
  return 0;
}

int run_chain(const Args& args, std::ostream& out, std::ostream& err) {
  const core::SystemConfig sys = config_from_args(args);
  const core::Configuration configuration = configuration_from_args(args);
  if (const int rc = check_unused(args, err); rc != 0) return rc;

  const core::Analyzer analyzer(sys);
  ctmc::DotOptions options;
  options.graph_name = core::name(configuration);
  ctmc::write_dot(analyzer.build_chain(configuration).chain, out, options);
  return 0;
}

/// `nsrel simulate --param ... --from ... --to ... --steps N`: a
/// Monte-Carlo parameter sweep, routed through the same grid engine,
/// renderers, and --on-error machinery as `nsrel sweep` — one sim cell
/// per (point, configuration), bit-identical at any --jobs.
int run_simulate_sweep(const Args& args, const core::SystemConfig& base,
                       const core::Configuration& configuration,
                       engine::SimSpec spec, std::ostream& out,
                       std::ostream& err) {
  const std::string param = args.get_string("param", "drive-mttf");
  const double from = args.get_double("from", 100e3);
  const double to = args.get_double("to", 750e3);
  const int steps = args.get_int("steps", 5);
  EvalFlags flags = eval_flags_from_args(args);
  const bool progress = args.has("progress");
  if (const int rc = check_unused(args, err); rc != 0) return rc;
  NSREL_EXPECTS(steps >= 2);
  NSREL_EXPECTS(from > 0.0 && to > from);

  core::SystemConfig probe = base;
  if (!core::set_parameter(probe, param, from)) {
    err << "unknown --param '" << param << "'\n";
    return kExitUsage;
  }

  // Cell-level parallelism comes from the engine (--jobs); each cell
  // runs its trials inline (the engine forces this for multi-cell sim
  // grids, so the flag never double-subscribes the machine).
  engine::Grid grid = engine::parameter_sweep(
      base, param, engine::spaced_points(from, to, steps, /*log_scale=*/true),
      {configuration});
  grid.simulation = std::move(spec);
  std::optional<obs::ProgressMeter> meter;
  if (progress) {
    meter.emplace(err, "cells",
                  grid.points.size() * grid.configurations.size());
    flags.options.progress = &*meter;
  }
  const engine::ResultSet results = engine::evaluate(grid, flags.options);
  if (meter) meter->finish();
  switch (flags.format) {
    case report::OutputFormat::kTable:
      out << core::name(configuration) << ", sweeping " << param << ":\n";
      engine::sim_sweep_table(results).print(out);
      break;
    case report::OutputFormat::kCsv:
      engine::sim_sweep_table(results).print_csv(out);
      break;
    case report::OutputFormat::kJson:
      engine::write_json(results, out, engine::JsonOptions{flags.cache_stats});
      break;
  }
  maybe_cache_footer(flags, results, out);
  return report_failures(results, err);
}

int run_simulate(const Args& args, std::ostream& out, std::ostream& err) {
  const core::SystemConfig system = config_from_args(args);
  const core::Configuration configuration = configuration_from_args(args);
  engine::SimSpec spec;
  spec.trials = args.get_int("trials", 4000);
  spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 24141));
  spec.options.jobs = args.get_int("jobs", 1);
  spec.options.ci_target = args.get_double("ci-target", 0.0);
  spec.options.chunk_trials = args.get_int("chunk", 256);
  spec.options.max_trials = args.get_int("max-trials", spec.options.max_trials);
  NSREL_EXPECTS(spec.trials >= 2);
  NSREL_EXPECTS(spec.options.jobs >= 0);

  // With --param the command becomes a Monte-Carlo sweep; --jobs then
  // parallelizes across cells instead of within the one estimate.
  if (args.has("param")) {
    return run_simulate_sweep(args, system, configuration, std::move(spec),
                              out, err);
  }

  const bool progress = args.has("progress");
  if (const int rc = check_unused(args, err); rc != 0) return rc;

  std::optional<obs::ProgressMeter> meter;
  if (progress) {
    // Total = whole chunks needed; in adaptive mode the trial cap is an
    // upper bound (the meter's final line reports actual chunks).
    const int per_chunk = spec.options.chunk_trials;
    const int bound =
        spec.options.ci_target > 0.0 ? spec.options.max_trials : spec.trials;
    meter.emplace(err, "chunks",
                  static_cast<std::uint64_t>((bound + per_chunk - 1) /
                                             per_chunk));
    spec.options.progress = &*meter;
  }
  const core::Analyzer analyzer(system);
  const double analytic = analyzer.mttdl(configuration).value();
  // Single-cell grid through the same engine as the sweeps: the cell's
  // seed is the base seed and the intra-cell jobs/progress are honored,
  // so the estimate is bit-identical to the historical direct call.
  const int jobs = spec.options.jobs;
  const int chunk = spec.options.chunk_trials;
  const std::uint64_t seed = spec.seed;
  engine::Grid grid = engine::single_point(system, {configuration});
  grid.simulation = std::move(spec);
  const engine::ResultSet results = engine::evaluate(grid, {});
  if (meter) meter->finish();
  const sim::MttdlEstimate& estimate = results.sim_at(0, 0).estimate;
  out << "configuration:     " << core::name(configuration) << "\n"
      << "trials:            " << estimate.trials << " (jobs " << jobs
      << ", chunk " << chunk << ", seed " << seed << ")\n"
      << "simulated MTTDL:   " << sci(estimate.mean_hours) << " h\n"
      << "95% CI:            [" << sci(estimate.ci95_low_hours) << ", "
      << sci(estimate.ci95_high_hours) << "] h (±"
      << fixed(estimate.relative_half_width() * 100.0, 2) << "%)\n"
      << "analytic MTTDL:    " << sci(analytic) << " h ("
      << (estimate.covers(analytic) ? "inside" : "OUTSIDE") << " the CI)\n"
      << "sim/analytic:      " << fixed(estimate.mean_hours / analytic, 3)
      << "\n";
  return 0;
}

/// `nsrel diff A.json B.json`: compare two written resultset documents.
int run_diff(const Args& args, std::ostream& out, std::ostream& err) {
  const std::vector<std::string>& paths = args.positionals();
  report::DiffOptions options;
  options.abs_tol = args.get_double("abs-tol", 0.0);
  options.rel_tol = args.get_double("rel-tol", 0.0);
  const report::OutputFormat format =
      report::parse_output_format(args.get_string("format", "table"));
  if (const int rc = check_unused(args, err); rc != 0) return rc;
  if (paths.size() != 2) {
    err << "diff requires exactly two files: nsrel diff A.json B.json\n";
    return kExitUsage;
  }
  if (options.abs_tol < 0.0 || options.rel_tol < 0.0) {
    throw ContractViolation("--abs-tol and --rel-tol must be >= 0");
  }

  // Unreadable or malformed inputs are usage-class failures (exit 4):
  // the caller named files that are not comparable v3 documents.
  std::vector<report::ResultSetDoc> docs;
  for (const std::string& path : paths) {
    const std::optional<std::string> text = read_file(path, err);
    if (!text.has_value()) return kExitUsage;
    Expected<report::ResultSetDoc> doc = report::read_resultset_json(*text);
    if (!doc.has_value()) {
      err << "error: " << path << ": " << doc.error().message() << "\n";
      return kExitUsage;
    }
    docs.push_back(std::move(doc.value()));
  }

  const Expected<report::DiffReport> compared =
      report::diff_resultsets(docs[0], docs[1], options);
  if (!compared.has_value()) {
    err << "error: " << compared.error().message() << "\n";
    return kExitUsage;
  }
  const report::DiffReport& drift = compared.value();
  switch (format) {
    case report::OutputFormat::kTable:
      if (drift.clean()) {
        out << "no drift: " << drift.cells << " cell(s) compared\n";
      } else {
        report::diff_table(drift).print(out);
        out << drift.rows.size() << " drifting field(s) across "
            << drift.cells << " cell(s)\n";
      }
      break;
    case report::OutputFormat::kCsv:
      report::diff_table(drift).print_csv(out);
      break;
    case report::OutputFormat::kJson:
      report::write_diff_json(drift, options, out);
      break;
  }
  return drift.clean() ? kExitOk : kExitPartialResults;
}

/// `nsrel events RUN.ndjson`: render a flight-recorder journal written
/// by --events (or a scenario's [output] events key) as a timeline or
/// the repair batches rollup.
int run_events(const Args& args, std::ostream& out, std::ostream& err) {
  const std::vector<std::string>& paths = args.positionals();
  const report::OutputFormat format =
      report::parse_output_format(args.get_string("format", "table"));
  const std::string view = args.get_string("view", "timeline");
  if (const int rc = check_unused(args, err); rc != 0) return rc;
  if (paths.size() != 1) {
    err << "events requires exactly one journal file: "
           "nsrel events RUN.ndjson\n";
    return kExitUsage;
  }
  if (view != "timeline" && view != "batches") {
    err << "unknown --view '" << view << "' (use timeline|batches)\n";
    return kExitUsage;
  }

  const std::optional<std::string> text = read_file(paths[0], err);
  if (!text.has_value()) return kExitUsage;
  Expected<report::EventsDoc> doc = report::read_events_ndjson(*text);
  if (!doc.has_value()) {
    err << "error: " << paths[0] << ": " << doc.error().message() << "\n";
    return kExitUsage;
  }
  if (format == report::OutputFormat::kJson) {
    report::write_events_json(doc.value(), out);
    return kExitOk;
  }
  const report::Table table = view == "batches"
                                  ? report::events_batches_table(doc.value())
                                  : report::events_timeline_table(doc.value());
  if (format == report::OutputFormat::kCsv) {
    table.print_csv(out);
  } else {
    table.print(out);
  }
  return kExitOk;
}

/// `nsrel report A.json B.ndjson ...`: aggregate metrics snapshots and
/// events journals across runs into one matrix with an exact total.
int run_report(const Args& args, std::ostream& out, std::ostream& err) {
  const std::vector<std::string>& paths = args.positionals();
  const report::OutputFormat format =
      report::parse_output_format(args.get_string("format", "table"));
  if (const int rc = check_unused(args, err); rc != 0) return rc;
  if (paths.empty()) {
    err << "report requires at least one metrics or events document: "
           "nsrel report A.json B.ndjson ...\n";
    return kExitUsage;
  }

  std::vector<report::RunDoc> runs;
  for (const std::string& path : paths) {
    const std::optional<std::string> text = read_file(path, err);
    if (!text.has_value()) return kExitUsage;
    Expected<report::RunDoc> doc = report::read_run_document(path, *text);
    if (!doc.has_value()) {
      err << "error: " << doc.error().message() << "\n";
      return kExitUsage;
    }
    runs.push_back(std::move(doc.value()));
  }
  switch (format) {
    case report::OutputFormat::kTable:
      report::report_table(runs).print(out);
      break;
    case report::OutputFormat::kCsv:
      report::report_table(runs).print_csv(out);
      break;
    case report::OutputFormat::kJson:
      report::write_report_json(runs, out);
      break;
  }
  return kExitOk;
}

int run_provision(const Args& args, std::ostream& out, std::ostream& err) {
  const core::SystemConfig sys = config_from_args(args);
  const double years = args.get_double("years", 5.0);
  const double confidence = args.get_double("confidence", 0.95);
  if (const int rc = check_unused(args, err); rc != 0) return rc;

  placement::ProvisioningPlanner::Params p;
  p.nodes = sys.node_set_size;
  p.drives_per_node = sys.drives_per_node;
  p.node_failures_per_hour = rate_of(sys.node_mttf).value();
  p.drive_failures_per_hour = rate_of(sys.drive.mttf).value();
  p.service_life_hours = years * kHoursPerYear;
  const placement::ProvisioningPlanner planner(p);

  const int spares = planner.spares_needed(confidence);
  out << "service life:          " << fixed(years, 1) << " years\n"
      << "expected loss:         "
      << fixed(planner.expected_node_equivalents_lost(), 1)
      << " node-equivalents\n"
      << "spares for " << fixed(confidence * 100.0, 0)
      << "% confidence: " << spares << " of " << sys.node_set_size
      << " nodes\n"
      << "max initial utilization: "
      << fixed(100.0 * planner.max_initial_utilization(confidence), 1)
      << "% (paper baseline: 75%)\n";
  return 0;
}

int run_scenario_command(const Args& args, std::ostream& out,
                         std::ostream& err) {
  const std::string path = args.get_string("file", "");
  const bool jobs_given = args.has("jobs");
  const int jobs = jobs_given ? args.get_int("jobs", 1) : 1;
  if (const int rc = check_unused(args, err); rc != 0) return rc;
  if (path.empty()) {
    err << "scenario requires --file <path>\n";
    return kExitUsage;
  }
  if (jobs_given && jobs < 0) {
    throw ContractViolation("--jobs must be >= 0 (0 = all cores)");
  }
  std::ifstream in(path);
  if (!in) {
    err << "cannot open scenario file '" << path << "'\n";
    return kExitUsage;
  }
  std::ostringstream text;
  text << in.rdbuf();
  scenario::Scenario scenario = scenario::parse_scenario(text.str());
  if (jobs_given) scenario.jobs = jobs;  // command line beats [output] jobs
  // With --trace/--events the dispatch-level Session owns recording and
  // writes the CLI path; drop the file's [output] key so the scenario
  // runner neither restarts the recorder nor writes a second file.
  if (args.has("trace")) scenario.trace.clear();
  if (args.has("events")) scenario.events.clear();
  const scenario::RunOutcome outcome = scenario::run_scenario(scenario, out);
  if (outcome.error_count != 0) {
    err << "warning: " << outcome.error_count << " of "
        << outcome.ok_count + outcome.error_count << " cell(s) failed\n";
    return kExitPartialResults;
  }
  return kExitOk;
}

}  // namespace

core::SystemConfig config_from_args(const Args& args) {
  core::SystemConfig config = core::SystemConfig::baseline();
  config.node_set_size = args.get_int("n", config.node_set_size);
  config.redundancy_set_size = args.get_int("r", config.redundancy_set_size);
  config.drives_per_node = args.get_int("d", config.drives_per_node);
  config.node_mttf = Hours(args.get_double("node-mttf", 400e3));
  config.drive.mttf = Hours(args.get_double("drive-mttf", 300e3));
  config.drive.capacity = gigabytes(args.get_double("capacity-gb", 300.0));
  // HER quoted as "1 sector in 10^K bits": per byte = 8 * 10^-K.
  config.drive.her_per_byte =
      8.0 * std::pow(10.0, -args.get_double("her-exp", 14.0));
  config.drive.max_iops = args.get_double("iops", 150.0);
  config.drive.sustained_rate =
      megabytes_per_second(args.get_double("xfer-mbps", 40.0));
  config.link.raw_speed =
      gigabits_per_second(args.get_double("link-gbps", 10.0));
  config.rebuild_command = kilobytes(args.get_double("rebuild-kb", 128.0));
  config.restripe_command = kilobytes(args.get_double("restripe-kb", 1024.0));
  config.capacity_utilization = args.get_double("util", 0.75);
  config.rebuild_bandwidth_fraction = args.get_double("bw-frac", 0.10);
  config.validate();
  return config;
}

core::Configuration configuration_from_args(const Args& args) {
  const std::string scheme = args.get_string("scheme", "raid5");
  core::Configuration configuration;
  if (scheme == "none") {
    configuration.internal = core::InternalScheme::kNone;
  } else if (scheme == "raid5") {
    configuration.internal = core::InternalScheme::kRaid5;
  } else if (scheme == "raid6") {
    configuration.internal = core::InternalScheme::kRaid6;
  } else {
    throw ContractViolation("unknown --scheme '" + scheme +
                            "' (use none|raid5|raid6)");
  }
  configuration.node_fault_tolerance = args.get_int("ft", 2);
  return configuration;
}

namespace {

/// Writes the drained journal as nsrel-events-v1 NDJSON (--events).
bool write_events_file(const std::string& path, std::ostream& err) {
  std::ofstream file(path);
  if (file) {
    report::write_events_ndjson(obs::Journal::instance().events(),
                                obs::Journal::instance().dropped(), file);
  }
  if (!file) {
    err << "cannot write events file '" << path << "'\n";
    return false;
  }
  return true;
}

/// Writes the settled registry as nsrel-metrics-v1 JSON (--metrics-out).
bool write_metrics_file(const std::string& path, std::ostream& err) {
  std::ofstream file(path);
  if (file) {
    report::write_metrics_json(obs::MetricsSnapshot::capture(), file);
  }
  if (!file) {
    err << "cannot write metrics file '" << path << "'\n";
    return false;
  }
  return true;
}

/// `nsrel version` / `--version` anywhere: build identity, exit 0.
int run_version(std::ostream& out) {
  const obs::BuildInfo& build = obs::build_info();
  out << obs::version_line() << "\n"
      << "  semver:     " << build.semver << "\n"
      << "  git SHA:    " << build.git_sha << "\n"
      << "  compiler:   " << build.compiler << "\n"
      << "  build type: " << build.build_type << "\n";
  return kExitOk;
}

int dispatch_command(const Args& args, std::ostream& out, std::ostream& err) {
  const std::string& command = args.command();
  if (command.empty() || command == "help") {
    out << kUsage;
    return command.empty() ? kExitUsage : kExitOk;
  }
  if (command == "analyze") return run_analyze(args, out, err);
  if (command == "compare") return run_compare(args, out, err);
  if (command == "rebuild") return run_rebuild(args, out, err);
  if (command == "sweep") return run_sweep(args, out, err);
  if (command == "availability") return run_availability(args, out, err);
  if (command == "scenario") return run_scenario_command(args, out, err);
  if (command == "simulate") return run_simulate(args, out, err);
  if (command == "diff") return run_diff(args, out, err);
  if (command == "events") return run_events(args, out, err);
  if (command == "report") return run_report(args, out, err);
  if (command == "chain") return run_chain(args, out, err);
  if (command == "provision") return run_provision(args, out, err);
  err << "unknown command '" << command << "' (try: nsrel help)\n";
  return kExitUsage;
}

}  // namespace

int dispatch(const Args& args, std::ostream& out, std::ostream& err) {
  // --version anywhere wins (GNU convention), before any other flag is
  // validated, so `nsrel sweep --version` still just prints and exits 0.
  if (args.command() == "version" || args.has("version")) {
    return run_version(out);
  }
  // One observability session per command: --trace/--metrics/--events/
  // --metrics-out are global flags, consumed here so every command
  // accepts them.
  const std::string events_path = args.get_string("events", "");
  const std::string metrics_path = args.get_string("metrics-out", "");
  obs::Session session({args.get_string("trace", ""), args.has("metrics"),
                        /*registry=*/!metrics_path.empty(),
                        /*journal=*/!events_path.empty()});
  int rc;
  try {
    rc = dispatch_command(args, out, err);
  } catch (const ContractViolation& violation) {
    err << "error: " << violation.what() << "\n";
    rc = kExitUsage;
  } catch (const ErrorException& failure) {
    err << "error: " << failure.what() << "\n";
    rc = kExitInternal;
  } catch (const std::exception& unexpected) {
    err << "internal error: " << unexpected.what() << "\n";
    rc = kExitInternal;
  }
  // The trace file and metrics block are written even when the command
  // failed — a trace of a failing run is the one you want to look at.
  if (!session.finish(err) && rc == kExitOk) rc = kExitUsage;
  // Document files go out after finish(): the journal is drained and
  // the registry settled, and both stay valid until the next begin().
  if (!events_path.empty() && !write_events_file(events_path, err) &&
      rc == kExitOk) {
    rc = kExitUsage;
  }
  if (!metrics_path.empty() && !write_metrics_file(metrics_path, err) &&
      rc == kExitOk) {
    rc = kExitUsage;
  }
  return rc;
}

int dispatch(int argc, const char* const* argv, std::ostream& out,
             std::ostream& err) {
  try {
    return dispatch(Args(argc, argv), out, err);
  } catch (const ContractViolation& violation) {
    err << "error: " << violation.what() << "\n";
    return kExitUsage;
  } catch (const std::exception& unexpected) {
    err << "internal error: " << unexpected.what() << "\n";
    return kExitInternal;
  }
}

}  // namespace nsrel::cli
