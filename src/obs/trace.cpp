#include "obs/trace.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/build_info.hpp"
#include "obs/metrics.hpp"
#include "util/sync.hpp"

namespace nsrel::obs {

namespace {

/// Minimal JSON string escaping (the obs layer sits below src/report, so
/// it cannot reuse report::json_escape without a dependency cycle).
std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Nanoseconds as trace_event microseconds with sub-us precision.
std::string as_us(std::uint64_t ns) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buffer;
}

}  // namespace

/// One thread's private event buffer plus its stable lane id.
struct TraceRecorder::Buffer {
  std::uint32_t tid = 0;
  std::vector<TraceEvent> events;
};

/// Namespace scope (not anonymous) so the TraceRecorder friend
/// declaration names this exact type.
struct BufferHolder {
  TraceRecorder::Buffer* buffer = nullptr;
  ~BufferHolder() {
    if (buffer != nullptr) TraceRecorder::instance().retire(buffer);
  }
};

namespace {
thread_local BufferHolder tls_buffer;
}  // namespace

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder* leaked = new TraceRecorder;
  return *leaked;
}

bool TraceRecorder::enabled() {
  return instance().enabled_.load(std::memory_order_relaxed);
}

void TraceRecorder::begin() {
  clear();
  epoch_ns_.store(now_ns(), std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void TraceRecorder::clear() {
  const util::MutexLock lock(mutex_);
  retired_events_.clear();
  for (Buffer* buffer : active_) buffer->events.clear();
  for (Buffer* buffer : free_) buffer->events.clear();
}

TraceRecorder::Buffer& TraceRecorder::local_buffer() {
  if (tls_buffer.buffer == nullptr) {
    const util::MutexLock lock(mutex_);
    if (!free_.empty()) {
      tls_buffer.buffer = free_.back();
      free_.pop_back();
    } else {
      owned_.push_back(std::make_unique<Buffer>());
      tls_buffer.buffer = owned_.back().get();
      tls_buffer.buffer->tid = next_tid_++;
    }
    active_.push_back(tls_buffer.buffer);
  }
  return *tls_buffer.buffer;
}

void TraceRecorder::retire(Buffer* buffer) {
  const util::MutexLock lock(mutex_);
  retired_events_.insert(retired_events_.end(),
                         std::make_move_iterator(buffer->events.begin()),
                         std::make_move_iterator(buffer->events.end()));
  buffer->events.clear();
  active_.erase(std::find(active_.begin(), active_.end(), buffer));
  free_.push_back(buffer);
}

void TraceRecorder::record(TraceEvent event) {
  if (!enabled()) return;
  Buffer& buffer = local_buffer();
  event.tid = buffer.tid;
  buffer.events.push_back(std::move(event));
}

void TraceRecorder::write(std::ostream& out) const {
  const util::MutexLock lock(mutex_);
  const std::uint64_t epoch = epoch_ns_.load(std::memory_order_relaxed);
  out << "{\n  \"traceEvents\": [";
  bool first = true;
  const auto emit = [&](const TraceEvent& event) {
    out << (first ? "\n" : ",\n");
    first = false;
    const std::uint64_t rel =
        event.start_ns >= epoch ? event.start_ns - epoch : 0;
    out << "    {\"name\": \"" << escape(event.name) << "\", \"cat\": \""
        << escape(event.category) << "\", \"ph\": \"X\", \"ts\": "
        << as_us(rel) << ", \"dur\": " << as_us(event.dur_ns)
        << ", \"pid\": 1, \"tid\": " << event.tid;
    if (!event.args.empty()) {
      out << ", \"args\": {";
      for (std::size_t i = 0; i < event.args.size(); ++i) {
        if (i != 0) out << ", ";
        out << "\"" << escape(event.args[i].key) << "\": ";
        if (event.args[i].quoted) {
          out << "\"" << escape(event.args[i].value) << "\"";
        } else {
          out << event.args[i].value;
        }
      }
      out << "}";
    }
    out << "}";
  };
  for (const TraceEvent& event : retired_events_) emit(event);
  for (const Buffer* buffer : active_) {
    for (const TraceEvent& event : buffer->events) emit(event);
  }
  const BuildInfo& build = build_info();
  out << "\n  ],\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {"
      << "\"semver\": \"" << escape(build.semver) << "\", \"git_sha\": \""
      << escape(build.git_sha) << "\", \"compiler\": \""
      << escape(build.compiler) << "\", \"build_type\": \""
      << escape(build.build_type) << "\"}\n}\n";
}

bool TraceRecorder::write_file(const std::string& path) {
  disable();
  std::ofstream out(path);
  if (!out) return false;
  write(out);
  out.flush();
  return static_cast<bool>(out);
}

Span::Span(const char* name, const char* category)
    : name_(name), category_(category) {
  if (TraceRecorder::enabled()) start_ns_ = now_ns();
}

Span::~Span() {
  if (!armed()) return;
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.start_ns = start_ns_;
  event.dur_ns = now_ns() - start_ns_;
  event.args = std::move(args_);
  TraceRecorder::instance().record(std::move(event));
}

void Span::arg(const char* key, std::string value) {
  if (!armed()) return;
  args_.push_back({key, std::move(value), /*quoted=*/true});
}

void Span::arg(const char* key, const char* value) {
  arg(key, std::string(value));
}

void Span::arg(const char* key, std::uint64_t value) {
  if (!armed()) return;
  args_.push_back({key, std::to_string(value), /*quoted=*/false});
}

}  // namespace nsrel::obs
