// Diffable metrics documents: a MetricsSnapshot is a value-type copy of
// the registry's merged state with exact delta/merge algebra.
//
// The algebra is what makes snapshots composable across runs and
// processes (the `nsrel report` aggregator, the future `nsreld`
// resident service): for snapshots a ⊆ b taken from the same registry
// epoch (b observed every sample a did, plus possibly more — which is
// what two snapshot() calls with all writers joined in between give
// you),
//
//   merge(a, delta(a, b)) == b        exactly, field for field.
//
// Counters, histogram counts, sums, and log2 buckets subtract and add
// exactly. Min/max are not subtractable, so delta carries the *after*
// extremes when any samples were added (a superset's min/max are the
// true extremes of the combined population, making the round-trip
// identity hold) and the empty convention (0/0) otherwise.
#pragma once

#include <vector>

#include "obs/metrics.hpp"

namespace nsrel::obs {

struct MetricsSnapshot {
  std::vector<Registry::CounterRow> counters;      ///< sorted by name
  std::vector<Registry::HistogramRow> histograms;  ///< sorted by name

  /// The registry's current merged state. Exact once all incrementing
  /// threads are joined (Registry::snapshot() semantics).
  [[nodiscard]] static MetricsSnapshot capture();

  /// Per-name subtraction `after - before`. Keeps every row of `after`
  /// (zero deltas included — the identity above needs them); names only
  /// in `before` are a contract violation (registrations never vanish).
  [[nodiscard]] static MetricsSnapshot delta(const MetricsSnapshot& before,
                                             const MetricsSnapshot& after);

  /// Per-name addition; rows unique to either side pass through. Min
  /// combines respecting the count==0 convention (an empty histogram's
  /// 0 min never wins), max combines as plain max.
  [[nodiscard]] static MetricsSnapshot merge(const MetricsSnapshot& a,
                                             const MetricsSnapshot& b);
};

[[nodiscard]] bool operator==(const MetricsSnapshot& a,
                              const MetricsSnapshot& b);
[[nodiscard]] bool operator!=(const MetricsSnapshot& a,
                              const MetricsSnapshot& b);

}  // namespace nsrel::obs
