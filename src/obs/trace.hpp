// Trace-span recorder emitting Chrome/Perfetto `trace_event` JSON.
//
// Spans are RAII: construction stamps the start time, destruction records
// one complete ("ph":"X") event into the calling thread's private buffer.
// Like the metrics registry, the recorder is compiled in everywhere and a
// disabled Span costs one relaxed atomic load — no clock read, no
// allocation. Buffers are merged only when the trace is written (after
// all parallel work has been joined), so recording never takes a lock on
// the hot path.
//
// The output loads directly into chrome://tracing and ui.perfetto.dev:
// a top-level {"traceEvents": [...]} object whose events carry name,
// category, microsecond timestamps relative to begin(), a stable
// per-thread lane id, and the span's key/value args. "otherData" embeds
// the build identity (semver, git SHA, compiler, build type) so every
// trace self-identifies the binary it came from.
//
// Span name/category must be string literals (events store the pointers);
// args copy their values and may be dynamic.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "util/sync.hpp"

namespace nsrel::obs {

struct TraceArg {
  std::string key;
  std::string value;  ///< pre-rendered; emitted quoted or raw per `quoted`
  bool quoted = true;
};

struct TraceEvent {
  const char* name = "";      ///< string literal
  const char* category = "";  ///< string literal
  std::uint64_t start_ns = 0;  ///< absolute steady-clock ns
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;
  std::vector<TraceArg> args;
};

class TraceRecorder {
 public:
  /// The process-wide recorder (leaked, like the metrics registry).
  static TraceRecorder& instance();

  /// The probe gate: one relaxed load.
  [[nodiscard]] static bool enabled();

  /// Clears every buffer, stamps the trace epoch, and starts recording.
  void begin();

  /// Stops recording (buffered events are kept until clear()).
  void disable();

  /// Writes the trace_event JSON document. Call only after parallel work
  /// has been joined — live buffers are read under the registration lock.
  void write(std::ostream& out) const;

  /// write() to `path`, then disable. Returns false when the file cannot
  /// be created or the stream fails.
  [[nodiscard]] bool write_file(const std::string& path);

  /// Drops all buffered events.
  void clear();

  /// Appends an event to the calling thread's buffer (no-op if disabled).
  void record(TraceEvent event);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

 private:
  TraceRecorder() = default;
  ~TraceRecorder() = default;

  struct Buffer;
  friend struct BufferHolder;

  Buffer& local_buffer();
  void retire(Buffer* buffer);

  // Relaxed probes (see tools/lint/atomics.tsv).
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> epoch_ns_{0};
  mutable util::Mutex mutex_;
  std::vector<std::unique_ptr<Buffer>> owned_ NSREL_GUARDED_BY(mutex_);
  std::vector<Buffer*> active_ NSREL_GUARDED_BY(mutex_);
  std::vector<Buffer*> free_ NSREL_GUARDED_BY(mutex_);
  std::vector<TraceEvent> retired_events_ NSREL_GUARDED_BY(mutex_);
  std::uint32_t next_tid_ NSREL_GUARDED_BY(mutex_) = 0;
};

/// RAII trace span. Costs one relaxed load when tracing is off. arg()
/// attaches a key/value pair (only stored while armed — guard expensive
/// value construction with armed()).
class Span {
 public:
  Span(const char* name, const char* category);
  ~Span();

  [[nodiscard]] bool armed() const { return start_ns_ != 0; }

  void arg(const char* key, std::string value);
  void arg(const char* key, const char* value);
  void arg(const char* key, std::uint64_t value);

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* category_;
  std::uint64_t start_ns_ = 0;  ///< 0 = disarmed
  std::vector<TraceArg> args_;
};

}  // namespace nsrel::obs
