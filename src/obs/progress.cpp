#include "obs/progress.hpp"

#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "util/sync.hpp"

namespace nsrel::obs {

namespace {
constexpr std::uint64_t kMinEmitGapNs = 250'000'000;  // <= 4 updates/s
}

ProgressMeter::ProgressMeter(std::ostream& out, std::string label,
                             std::uint64_t total)
    : out_(out),
      label_(std::move(label)),
      total_(total == 0 ? 1 : total),
      start_ns_(now_ns()) {}

ProgressMeter::~ProgressMeter() { finish(); }

void ProgressMeter::step(std::uint64_t n) {
  const std::uint64_t done =
      done_.fetch_add(n, std::memory_order_relaxed) + n;
  // Throttle: skip unless the gap elapsed, and never block a worker on
  // another thread's emission.
  if (!emit_mutex_.try_lock()) return;
  const util::MutexLock lock(emit_mutex_, std::adopt_lock);
  if (finished_) return;
  const std::uint64_t now = now_ns();
  if (last_emit_ns_ != 0 && now - last_emit_ns_ < kMinEmitGapNs) return;
  last_emit_ns_ = now;
  emit(done, /*final_line=*/false);
}

void ProgressMeter::finish() {
  const util::MutexLock lock(emit_mutex_);
  if (finished_) return;
  finished_ = true;
  emit(done_.load(std::memory_order_relaxed), /*final_line=*/true);
}

void ProgressMeter::emit(std::uint64_t done, bool final_line) {
  const double elapsed_s =
      static_cast<double>(now_ns() - start_ns_) / 1e9;
  char buffer[160];
  if (final_line) {
    std::snprintf(buffer, sizeof(buffer), "%s: %llu/%llu in %.1fs\n",
                  label_.c_str(), static_cast<unsigned long long>(done),
                  static_cast<unsigned long long>(total_), elapsed_s);
  } else {
    const double fraction =
        static_cast<double>(done) / static_cast<double>(total_);
    const double eta_s = done == 0 ? 0.0
                                   : elapsed_s *
                                         static_cast<double>(total_ - done) /
                                         static_cast<double>(done);
    std::snprintf(buffer, sizeof(buffer),
                  "%s: %llu/%llu (%.0f%%) eta %.1fs\n", label_.c_str(),
                  static_cast<unsigned long long>(done),
                  static_cast<unsigned long long>(total_), fraction * 100.0,
                  eta_s);
  }
  out_ << buffer;
  out_.flush();
}

}  // namespace nsrel::obs
