#include "obs/build_info.hpp"

#include <string>

// The CMake target supplies NSREL_VERSION / NSREL_GIT_SHA /
// NSREL_BUILD_TYPE; the fallbacks keep the file compiling standalone.
#ifndef NSREL_VERSION
#define NSREL_VERSION "0.0.0"
#endif
#ifndef NSREL_GIT_SHA
#define NSREL_GIT_SHA "unknown"
#endif
#ifndef NSREL_BUILD_TYPE
#define NSREL_BUILD_TYPE "unknown"
#endif

#if defined(__clang__)
#define NSREL_COMPILER "clang++ " __clang_version__
#elif defined(__GNUC__)
#define NSREL_COMPILER "g++ " __VERSION__
#else
#define NSREL_COMPILER "unknown"
#endif

namespace nsrel::obs {

const BuildInfo& build_info() {
  static const BuildInfo info{NSREL_VERSION, NSREL_GIT_SHA, NSREL_COMPILER,
                              NSREL_BUILD_TYPE};
  return info;
}

std::string version_line() {
  const BuildInfo& info = build_info();
  return std::string("nsrel ") + info.semver + " (git " + info.git_sha +
         ", " + info.compiler + ", " + info.build_type + ")";
}

}  // namespace nsrel::obs
