// Opt-in progress meter for long evaluations: cells-done / total with an
// ETA, written to stderr (never stdout — rendered results stay
// byte-identical with the meter on or off, at any jobs count).
//
// step() is called from worker threads; the done count is a relaxed
// atomic and the stderr write is throttled to at most one update per
// 250 ms (<= 4/s) behind a try_lock, so contended workers never block on
// the meter. finish() always emits a final "done/total in Xs" line.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "util/sync.hpp"

namespace nsrel::obs {

class ProgressMeter {
 public:
  /// `label` names the unit ("cells", "chunks"); `total` the expected
  /// step() count (an upper bound is fine — finish() reports actuals).
  ProgressMeter(std::ostream& out, std::string label, std::uint64_t total);

  /// Emits the final line (idempotent; called by the destructor too).
  ~ProgressMeter();

  /// Thread-safe; throttled emission.
  void step(std::uint64_t n = 1);

  void finish();

  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

 private:
  void emit(std::uint64_t done, bool final_line) NSREL_REQUIRES(emit_mutex_);

  std::ostream& out_;
  std::string label_;
  std::uint64_t total_;
  std::uint64_t start_ns_;
  // Relaxed probe (see tools/lint/atomics.tsv).
  std::atomic<std::uint64_t> done_{0};
  util::Mutex emit_mutex_;
  std::uint64_t last_emit_ns_ NSREL_GUARDED_BY(emit_mutex_) = 0;
  bool finished_ NSREL_GUARDED_BY(emit_mutex_) = false;
};

}  // namespace nsrel::obs
