// Build identity: semver, git SHA, compiler, and build type, embedded at
// build time so traces, bench JSON, and `nsrel version` can self-identify
// the binary they came from. The git SHA is captured at CMake configure
// time ("unknown" outside a git checkout).
#pragma once

#include <string>

namespace nsrel::obs {

struct BuildInfo {
  const char* semver;
  const char* git_sha;
  const char* compiler;
  const char* build_type;
};

[[nodiscard]] const BuildInfo& build_info();

/// One-line form: "nsrel 1.0.0 (git abc1234, g++ 13.2.0, RelWithDebInfo)".
[[nodiscard]] std::string version_line();

}  // namespace nsrel::obs
