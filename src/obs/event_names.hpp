// The single registry of flight-recorder event names: every structured
// event type the journal records lives here and nowhere else.
//
// Same contract as probe_names.hpp: event names are rendered into
// `nsrel-events-v1` documents that downstream tooling (`nsrel events`,
// `nsrel report`, future `nsreld` consumers) greps by exact name, so a
// silent rename or a collision corrupts analyses without failing a
// test. tools/nsrel-lint enforces this mechanically: the
// `event-registry` rule rejects string literals passed directly to
// obs::seq_event()/obs::sim_event() in src/, rejects duplicate
// constants here (including collisions with probe_names.hpp), and pins
// the names append-only against tools/lint/event_names.tsv — renaming
// or deleting a shipped event name is a lint failure, exactly like
// error codes.
#pragma once

namespace nsrel::obs::event {

/// Cache-keyed CTMC solve began (args: backend = auto|dense|sparse).
inline constexpr const char* kSolveStart = "solve.start";
/// ...and finished (args: backend, outcome = ok|<stable error code>).
inline constexpr const char* kSolveEnd = "solve.end";
/// Solve-cache lookup classified (no args; the enclosing scope says
/// which cell asked).
inline constexpr const char* kCacheHit = "cache.hit";
inline constexpr const char* kCacheMiss = "cache.miss";
/// Engine grid cell claimed by a worker (args: cell, point, config).
inline constexpr const char* kCellClaim = "cell.claim";
/// ...and failed with a typed error (args: cell, code).
inline constexpr const char* kCellFail = "cell.fail";
/// One Monte-Carlo chunk completed (args: stream, trials).
inline constexpr const char* kSimChunk = "sim.chunk";
/// Repair batch barrier reached (sim-time domain; args: batch,
/// committed).
inline constexpr const char* kRepairBarrier = "repair.barrier";
/// Fault-schedule entry fired (args: node, drive, applied = 0|1 —
/// no-op entries are recorded too, they still forced a barrier).
inline constexpr const char* kRepairFault = "repair.fault";
/// Re-plan after an applied fault (args: invalidated = pending stripes
/// sent back to planning; the run's replans counter sums these).
inline constexpr const char* kRepairReplan = "repair.replan";
/// A failed stripe re-queued (args: object, stripe, retries).
inline constexpr const char* kRepairRetry = "repair.retry";
/// Brick-store read served by decode instead of a direct shard read
/// (no args; during repair the enclosing barrier scope locates it).
inline constexpr const char* kBrickDegradedRead = "brick.degraded_read";
/// Foreground workload read that returned a typed error — during a
/// repair run this is a read that found too few live shards (no args;
/// scoped to the barrier that served it).
inline constexpr const char* kWorkloadReadFailed = "workload.read_failed";

}  // namespace nsrel::obs::event
