// The single registry of observability probe names: every counter,
// histogram, and trace-span name the library emits lives here and
// nowhere else.
//
// Why a registry instead of string literals at the call sites: probe
// names are rendered into `--metrics` blocks and Perfetto traces that
// downstream tooling greps by exact name, so a silent rename (or two
// subsystems colliding on one name) corrupts dashboards without failing
// a single test. tools/nsrel-lint enforces both halves mechanically:
// the `probe-registry` rule rejects string literals passed directly to
// Registry::counter()/histogram() or obs::Span in src/, and rejects
// duplicate name constants in this header. Tests are exempt (they mint
// throwaway "test.*" names for registry behavior itself).
//
// Span identity is (name, category); categories are the per-subsystem
// kSpanCategory* constants below, and a (name, category) pair appearing
// twice is fine only when it really is the same span emitted from the
// same code path (e.g. kSpanRender from each of the four renderers).
#pragma once

namespace nsrel::obs::probe {

// --- counters ---------------------------------------------------------
inline constexpr const char* kThreadPoolSubmitted = "thread_pool.submitted";
inline constexpr const char* kThreadPoolCompleted = "thread_pool.completed";
inline constexpr const char* kSolveCacheHits = "solve_cache.hits";
inline constexpr const char* kSolveCacheMisses = "solve_cache.misses";
inline constexpr const char* kSolveCacheInserts = "solve_cache.inserts";
inline constexpr const char* kEngineCellsOk = "engine.cells_ok";
inline constexpr const char* kEngineCellsFailed = "engine.cells_failed";
/// Chains compared by the differential-testing harness
/// (tests/test_diffharness.cpp; registered here so dashboards that grep
/// harness runs share the one name registry).
inline constexpr const char* kDiffHarnessChains = "diffharness.chains";
/// Brick-store degraded reads: read()/read_range() calls that had to
/// fetch k survivors and decode instead of reading the shard directly.
inline constexpr const char* kBrickDegradedReads = "brick.degraded_reads";
// Concurrent repair engine (src/repair).
inline constexpr const char* kRepairShardsRepaired = "repair.shards_repaired";
inline constexpr const char* kRepairReplans = "repair.replans";
inline constexpr const char* kRepairRetries = "repair.retries";
inline constexpr const char* kRepairInjectedFaults = "repair.injected_faults";
inline constexpr const char* kRepairStripesFailed = "repair.stripes_failed";
/// Per-worker busy-time counters are the one dynamic name family:
/// "<prefix><index><suffix>", e.g. "thread_pool.worker3.busy_ns".
inline constexpr const char* kThreadPoolWorkerPrefix = "thread_pool.worker";
inline constexpr const char* kThreadPoolWorkerBusySuffix = ".busy_ns";

// --- histograms -------------------------------------------------------
inline constexpr const char* kThreadPoolQueueDepth = "thread_pool.queue_depth";
inline constexpr const char* kThreadPoolQueueDelayNs =
    "thread_pool.queue_delay_ns";
inline constexpr const char* kThreadPoolTaskNs = "thread_pool.task_ns";
inline constexpr const char* kSolveCacheInsertNs = "solve_cache.insert_ns";
inline constexpr const char* kCoreSolveNs = "core.solve_ns";

// --- trace spans (name, category) -------------------------------------
inline constexpr const char* kSpanCategoryCore = "core";
inline constexpr const char* kSpanCategoryEngine = "engine";
inline constexpr const char* kSpanCategorySim = "sim";
inline constexpr const char* kSpanCategoryCtmc = "ctmc";
inline constexpr const char* kSpanCategoryReport = "report";
inline constexpr const char* kSpanCategoryRepair = "repair";

inline constexpr const char* kSpanSolve = "solve";
/// CTMC solver spans, each tagged with a "backend" arg (dense/sparse)
/// so traces show which path SolverPolicy::kAuto actually picked.
inline constexpr const char* kSpanEliminationSolve = "elimination_solve";
inline constexpr const char* kSpanAbsorbingSolve = "absorbing_solve";
inline constexpr const char* kSpanStationarySolve = "stationary_solve";
inline constexpr const char* kSpanEvaluate = "evaluate";
inline constexpr const char* kSpanCell = "cell";
/// A Monte-Carlo grid cell: wraps the sim::run_trials call for one
/// (point, configuration) slot when the grid carries a SimSpec.
inline constexpr const char* kSpanSimCell = "sim_cell";
inline constexpr const char* kSpanClaim = "claim";
inline constexpr const char* kSpanRender = "render";
inline constexpr const char* kSpanChunk = "chunk";
/// Strict nsrel-resultset-v3 document read (report::read_resultset_json).
inline constexpr const char* kSpanResultSetRead = "resultset_read";
/// ResultSet document comparison (report::diff_resultsets / nsrel diff).
inline constexpr const char* kSpanDiff = "diff";
/// One per-stripe repair task executed by repair::run_repair (args:
/// stripe, outcome, retries) and the enclosing run.
inline constexpr const char* kSpanRepairTask = "repair_task";
inline constexpr const char* kSpanRepairRun = "repair_run";

}  // namespace nsrel::obs::probe
