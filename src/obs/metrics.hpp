// Process-wide metrics registry: named monotonic counters and duration
// histograms shared by every subsystem (thread pool, solve cache, engine,
// Monte-Carlo runner) and rendered as the CLI's `--metrics` block.
//
// Hot-path design: probes are compiled in everywhere and cost a single
// relaxed atomic load when the registry is disabled (the default). When
// enabled, each thread increments its own shard — a fixed-size array of
// relaxed atomics it alone writes — so counters never contend. snapshot()
// merges the shards (plus the folded totals of threads that have exited)
// under the registry mutex; after all writers are joined the merged
// values are exact, which is what the TSan-covered merge tests assert.
//
// Handles (Counter/Histogram) are small indices resolved once by name;
// registration is idempotent and thread-safe. The registry deliberately
// never throws from a probe: registering more names than the fixed shard
// capacity routes the surplus into the reserved "obs.dropped" slot
// instead of failing the caller.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/sync.hpp"

namespace nsrel::obs {

/// Handle to a named monotonic counter. Value-type, trivially copyable;
/// obtain via Registry::counter().
struct Counter {
  std::uint32_t slot = 0;
};

/// Handle to a named histogram (count/sum/min/max plus log2 buckets).
struct Histogram {
  std::uint32_t slot = 0;
};

/// Log2 buckets per histogram: bucket i counts values with bit width i
/// (2^47 ns is ~3.3 days, plenty for any duration this process records).
inline constexpr std::size_t kHistogramBuckets = 48;

/// Monotonic (steady-clock) nanoseconds; the time base for every probe.
[[nodiscard]] std::uint64_t now_ns();

class Registry {
 public:
  /// The process-wide registry. Deliberately leaked: thread-local shard
  /// destructors may run during late thread teardown and must always
  /// find a live instance.
  static Registry& instance();

  /// The global probe gate: one relaxed load. All probes no-op when off.
  [[nodiscard]] static bool enabled() {
    return instance().enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on);

  /// Returns the handle for `name`, registering it on first use.
  /// Idempotent and thread-safe; past capacity the reserved overflow
  /// slot is returned instead of throwing.
  [[nodiscard]] Counter counter(std::string_view name);
  [[nodiscard]] Histogram histogram(std::string_view name);

  /// Adds `delta` to the counter (no-op while disabled).
  void add(Counter counter, std::uint64_t delta = 1);

  /// Records one sample into the histogram (no-op while disabled).
  void record(Histogram histogram, std::uint64_t value);

  struct CounterRow {
    std::string name;
    std::uint64_t value = 0;
  };
  struct HistogramRow {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;  ///< 0 when count == 0
    std::uint64_t max = 0;
    std::array<std::uint64_t, kHistogramBuckets> buckets{};

    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
    /// Upper bound (2^i) of the bucket holding quantile q in [0, 1] —
    /// an order-of-magnitude answer, which is all log2 buckets give.
    [[nodiscard]] std::uint64_t quantile_bound(double q) const;
  };
  struct Snapshot {
    std::vector<CounterRow> counters;      ///< sorted by name
    std::vector<HistogramRow> histograms;  ///< sorted by name
  };

  /// Merges every shard (live and retired). Exact once all incrementing
  /// threads have been joined; concurrent increments may or may not be
  /// included (each one atomically, never torn).
  [[nodiscard]] Snapshot snapshot() const;

  /// Zeroes every value (live shards and retired totals). Registered
  /// names and handles stay valid.
  void reset();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  Registry();
  ~Registry() = default;

  struct Shard;
  struct Retired;

  Shard& local_shard();
  void retire(Shard* shard);

  friend struct ShardHolder;

  // Relaxed probe gate (see tools/lint/atomics.tsv).
  std::atomic<bool> enabled_{false};
  mutable util::Mutex mutex_;
  std::vector<std::string> counter_names_ NSREL_GUARDED_BY(mutex_);
  std::vector<std::string> histogram_names_ NSREL_GUARDED_BY(mutex_);
  std::vector<std::unique_ptr<Shard>> owned_ NSREL_GUARDED_BY(mutex_);
  std::vector<Shard*> active_ NSREL_GUARDED_BY(mutex_);
  std::vector<Shard*> free_ NSREL_GUARDED_BY(mutex_);
  std::unique_ptr<Retired> retired_ NSREL_GUARDED_BY(mutex_);
};

/// RAII histogram timer: reads the clock only when the registry is
/// enabled at construction, records elapsed ns at destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram histogram)
      : histogram_(histogram), start_(Registry::enabled() ? now_ns() : 0) {}
  ~ScopedTimer() {
    if (start_ != 0) {
      Registry::instance().record(histogram_, now_ns() - start_);
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram histogram_;
  std::uint64_t start_;
};

/// Renders the snapshot as the CLI's `--metrics` stderr block: counters
/// then histogram summaries, both sorted by name.
void print_metrics_block(const Registry::Snapshot& snapshot,
                         std::ostream& out);

}  // namespace nsrel::obs
