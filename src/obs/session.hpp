// Per-command observability scope: the CLI's `--trace FILE` and
// `--metrics` flags map to one Session around the command body. The
// constructor resets + enables whatever was requested; finish() writes
// the trace file and prints the metrics block (to stderr — stdout stays
// byte-identical with observability on or off), then disables both.
#pragma once

#include <iosfwd>
#include <string>

namespace nsrel::obs {

class Session {
 public:
  struct Options {
    std::string trace_path;  ///< empty = no tracing
    bool metrics = false;    ///< print the registry block at finish()
  };

  explicit Session(Options options);

  /// Disables recording without writing anything if finish() was never
  /// called (exception escape path — the trace is lost, by design).
  ~Session();

  /// Writes the trace file (if requested) and the metrics block to
  /// `err`, then disables both subsystems. Returns false when the trace
  /// file cannot be written (a message is printed to `err`). Idempotent.
  bool finish(std::ostream& err);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

 private:
  Options options_;
  bool finished_ = false;
};

}  // namespace nsrel::obs
