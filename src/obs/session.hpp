// Per-command observability scope: the CLI's `--trace FILE`,
// `--metrics`, `--metrics-out FILE`, and `--events FILE` flags map to
// one Session around the command body. The constructor resets + enables
// whatever was requested; finish() writes the trace file, prints the
// metrics block (to stderr — stdout stays byte-identical with
// observability on or off), drains the journal, then disables
// everything. Document *files* (events NDJSON, metrics JSON) are
// written by the caller after finish() — serialization lives in
// src/report, which layers above obs — from Journal::events() and
// Registry::snapshot(), both of which stay valid until the next
// begin()/reset().
#pragma once

#include <iosfwd>
#include <string>

namespace nsrel::obs {

class Session {
 public:
  struct Options {
    std::string trace_path;  ///< empty = no tracing
    bool metrics = false;    ///< print the registry block at finish()
    bool registry = false;   ///< enable the registry without the block
                             ///< (--metrics-out without --metrics)
    bool journal = false;    ///< arm the flight recorder (--events)
  };

  explicit Session(Options options);

  /// Disables recording without writing anything if finish() was never
  /// called (exception escape path — the trace is lost, by design).
  ~Session();

  /// Writes the trace file (if requested) and the metrics block to
  /// `err`, drains the journal, then disables every subsystem. Returns
  /// false when the trace file cannot be written (a message is printed
  /// to `err`). Idempotent.
  bool finish(std::ostream& err);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

 private:
  Options options_;
  bool finished_ = false;
};

}  // namespace nsrel::obs
