#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <ostream>
#include <string_view>
#include <utility>
#include <vector>

#include "util/sync.hpp"

namespace nsrel::obs {

namespace {

// Fixed shard capacity: registrations beyond these land in the reserved
// overflow slot 0 ("obs.dropped*") instead of failing the caller.
constexpr std::size_t kMaxCounters = 192;
constexpr std::size_t kMaxHistograms = 64;

std::size_t bucket_of(std::uint64_t value) {
  const auto width = static_cast<std::size_t>(std::bit_width(value));
  return std::min(width, kHistogramBuckets - 1);
}

}  // namespace

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One thread's private cells. Only the owning thread writes (relaxed
/// fetch_add / CAS); snapshot() reads concurrently, also relaxed — every
/// cell is an atomic, so reads are never torn.
struct Registry::Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  struct HistogramCells {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{std::numeric_limits<std::uint64_t>::max()};
    std::atomic<std::uint64_t> max{0};
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  };
  std::array<HistogramCells, kMaxHistograms> histograms{};

  void clear() {
    for (auto& c : counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : histograms) {
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0, std::memory_order_relaxed);
      h.min.store(std::numeric_limits<std::uint64_t>::max(),
                  std::memory_order_relaxed);
      h.max.store(0, std::memory_order_relaxed);
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    }
  }
};

/// Folded totals of shards whose threads have exited, merged under the
/// registry mutex so exited workers keep contributing to snapshots.
struct Registry::Retired {
  std::array<std::uint64_t, kMaxCounters> counters{};
  struct HistogramCells {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t max = 0;
    std::array<std::uint64_t, kHistogramBuckets> buckets{};
  };
  std::array<HistogramCells, kMaxHistograms> histograms{};

  void clear() { *this = Retired{}; }
};

/// Thread-local shard ownership: acquired lazily on the first probe a
/// thread fires, returned to the registry's free list at thread exit so
/// short-lived pool workers do not grow memory without bound. At
/// namespace scope (not anonymous) so the Registry friend declaration
/// names this exact type.
struct ShardHolder {
  Registry::Shard* shard = nullptr;
  ~ShardHolder() {
    if (shard != nullptr) Registry::instance().retire(shard);
  }
};

namespace {
thread_local ShardHolder tls_shard;
}  // namespace

Registry::Registry() : retired_(new Retired) {
  // Slot 0 of both tables is the overflow sink for registrations past
  // capacity; real registrations start at slot 1.
  counter_names_.emplace_back("obs.dropped");
  histogram_names_.emplace_back("obs.dropped_ns");
}

Registry& Registry::instance() {
  static Registry* leaked = new Registry;  // never destroyed, see header
  return *leaked;
}

void Registry::set_enabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
}

Counter Registry::counter(std::string_view name) {
  const util::MutexLock lock(mutex_);
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    if (counter_names_[i] == name) return Counter{static_cast<std::uint32_t>(i)};
  }
  if (counter_names_.size() >= kMaxCounters) return Counter{0};
  counter_names_.emplace_back(name);
  return Counter{static_cast<std::uint32_t>(counter_names_.size() - 1)};
}

Histogram Registry::histogram(std::string_view name) {
  const util::MutexLock lock(mutex_);
  for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
    if (histogram_names_[i] == name) {
      return Histogram{static_cast<std::uint32_t>(i)};
    }
  }
  if (histogram_names_.size() >= kMaxHistograms) return Histogram{0};
  histogram_names_.emplace_back(name);
  return Histogram{static_cast<std::uint32_t>(histogram_names_.size() - 1)};
}

Registry::Shard& Registry::local_shard() {
  if (tls_shard.shard == nullptr) {
    const util::MutexLock lock(mutex_);
    if (!free_.empty()) {
      tls_shard.shard = free_.back();
      free_.pop_back();
    } else {
      owned_.push_back(std::make_unique<Shard>());
      tls_shard.shard = owned_.back().get();
    }
    active_.push_back(tls_shard.shard);
  }
  return *tls_shard.shard;
}

void Registry::retire(Shard* shard) {
  const util::MutexLock lock(mutex_);
  for (std::size_t i = 0; i < kMaxCounters; ++i) {
    retired_->counters[i] += shard->counters[i].load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kMaxHistograms; ++i) {
    const auto& from = shard->histograms[i];
    auto& to = retired_->histograms[i];
    to.count += from.count.load(std::memory_order_relaxed);
    to.sum += from.sum.load(std::memory_order_relaxed);
    to.min = std::min(to.min, from.min.load(std::memory_order_relaxed));
    to.max = std::max(to.max, from.max.load(std::memory_order_relaxed));
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      to.buckets[b] += from.buckets[b].load(std::memory_order_relaxed);
    }
  }
  shard->clear();
  active_.erase(std::find(active_.begin(), active_.end(), shard));
  free_.push_back(shard);
}

void Registry::add(Counter counter, std::uint64_t delta) {
  if (!enabled()) return;
  local_shard().counters[counter.slot].fetch_add(delta,
                                                 std::memory_order_relaxed);
}

void Registry::record(Histogram histogram, std::uint64_t value) {
  if (!enabled()) return;
  auto& cells = local_shard().histograms[histogram.slot];
  cells.count.fetch_add(1, std::memory_order_relaxed);
  cells.sum.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = cells.min.load(std::memory_order_relaxed);
  while (value < seen &&
         !cells.min.compare_exchange_weak(seen, value,
                                          std::memory_order_relaxed)) {
  }
  seen = cells.max.load(std::memory_order_relaxed);
  while (value > seen &&
         !cells.max.compare_exchange_weak(seen, value,
                                          std::memory_order_relaxed)) {
  }
  cells.buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
}

Registry::Snapshot Registry::snapshot() const {
  const util::MutexLock lock(mutex_);
  Snapshot snap;

  std::vector<std::uint64_t> counters(counter_names_.size(), 0);
  std::vector<Retired::HistogramCells> histograms(histogram_names_.size());
  for (std::size_t i = 0; i < counters.size(); ++i) {
    counters[i] = retired_->counters[i];
  }
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    histograms[i] = retired_->histograms[i];
  }
  for (const Shard* shard : active_) {
    for (std::size_t i = 0; i < counters.size(); ++i) {
      counters[i] += shard->counters[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < histograms.size(); ++i) {
      const auto& from = shard->histograms[i];
      auto& to = histograms[i];
      to.count += from.count.load(std::memory_order_relaxed);
      to.sum += from.sum.load(std::memory_order_relaxed);
      to.min = std::min(to.min, from.min.load(std::memory_order_relaxed));
      to.max = std::max(to.max, from.max.load(std::memory_order_relaxed));
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        to.buckets[b] += from.buckets[b].load(std::memory_order_relaxed);
      }
    }
  }

  for (std::size_t i = 0; i < counters.size(); ++i) {
    snap.counters.push_back({counter_names_[i], counters[i]});
  }
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    HistogramRow row;
    row.name = histogram_names_[i];
    row.count = histograms[i].count;
    row.sum = histograms[i].sum;
    row.min = histograms[i].count == 0 ? 0 : histograms[i].min;
    row.max = histograms[i].max;
    row.buckets = histograms[i].buckets;
    snap.histograms.push_back(std::move(row));
  }

  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void Registry::reset() {
  const util::MutexLock lock(mutex_);
  retired_->clear();
  for (const auto& shard : owned_) shard->clear();
}

std::uint64_t Registry::HistogramRow::quantile_bound(double q) const {
  if (count == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    seen += buckets[i];
    if (seen > rank) return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
  }
  return max;
}

void print_metrics_block(const Registry::Snapshot& snapshot,
                         std::ostream& out) {
  out << "== nsrel metrics ==\n";
  for (const auto& row : snapshot.counters) {
    if (row.value == 0 && row.name.rfind("obs.", 0) == 0) continue;
    out << "  " << row.name << " = " << row.value << "\n";
  }
  for (const auto& row : snapshot.histograms) {
    if (row.count == 0) continue;
    out << "  " << row.name << "  count=" << row.count
        << " sum=" << row.sum << " mean=" << static_cast<std::uint64_t>(row.mean())
        << " min=" << row.min << " max=" << row.max
        << " p50<" << row.quantile_bound(0.50)
        << " p90<" << row.quantile_bound(0.90)
        << " p99<" << row.quantile_bound(0.99) << "\n";
  }
  out << "== end metrics ==\n";
}

}  // namespace nsrel::obs
