#include "obs/session.hpp"

#include <ostream>
#include <utility>

#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nsrel::obs {

Session::Session(Options options) : options_(std::move(options)) {
  if (options_.metrics || options_.registry) {
    Registry::instance().reset();
    Registry::instance().set_enabled(true);
  }
  if (options_.journal) Journal::instance().begin();
  if (!options_.trace_path.empty()) TraceRecorder::instance().begin();
}

Session::~Session() {
  if (finished_) return;
  if (options_.metrics || options_.registry) {
    Registry::instance().set_enabled(false);
  }
  if (options_.journal) Journal::instance().disable();
  if (!options_.trace_path.empty()) TraceRecorder::instance().disable();
}

bool Session::finish(std::ostream& err) {
  if (finished_) return true;
  finished_ = true;
  bool ok = true;
  if (!options_.trace_path.empty()) {
    if (!TraceRecorder::instance().write_file(options_.trace_path)) {
      err << "cannot write trace file '" << options_.trace_path << "'\n";
      ok = false;
    }
  }
  if (options_.journal) {
    // Command bodies drain at their own joins/barriers; this final
    // drain catches events recorded on this thread since the last one.
    Journal::instance().drain();
    Journal::instance().disable();
  }
  if (options_.metrics || options_.registry) {
    Registry::instance().set_enabled(false);
    if (options_.metrics) {
      print_metrics_block(Registry::instance().snapshot(), err);
    }
  }
  return ok;
}

}  // namespace nsrel::obs
