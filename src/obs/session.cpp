#include "obs/session.hpp"

#include <ostream>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nsrel::obs {

Session::Session(Options options) : options_(std::move(options)) {
  if (options_.metrics) {
    Registry::instance().reset();
    Registry::instance().set_enabled(true);
  }
  if (!options_.trace_path.empty()) TraceRecorder::instance().begin();
}

Session::~Session() {
  if (finished_) return;
  if (options_.metrics) Registry::instance().set_enabled(false);
  if (!options_.trace_path.empty()) TraceRecorder::instance().disable();
}

bool Session::finish(std::ostream& err) {
  if (finished_) return true;
  finished_ = true;
  bool ok = true;
  if (!options_.trace_path.empty()) {
    if (!TraceRecorder::instance().write_file(options_.trace_path)) {
      err << "cannot write trace file '" << options_.trace_path << "'\n";
      ok = false;
    }
  }
  if (options_.metrics) {
    Registry::instance().set_enabled(false);
    print_metrics_block(Registry::instance().snapshot(), err);
  }
  return ok;
}

}  // namespace nsrel::obs
