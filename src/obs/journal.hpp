// Flight recorder: a bounded, lock-free per-thread ring journal of
// typed structured events — the machine-readable record of *what
// happened* during a run, complementing the registry's aggregate
// counters and the trace recorder's wall-clock spans.
//
// Hot-path design mirrors the metrics registry: recording is compiled
// in everywhere and costs a single relaxed atomic load when the journal
// is disabled (the default). When enabled, each thread appends to its
// own fixed-capacity ring that it alone touches — no locks, no
// allocation, no clock reads. A full ring overwrites its oldest events
// (flight-recorder semantics) and counts the overwrites.
//
// Determinism: events carry no wall-clock time. They are stamped with a
// deterministic 64-bit sequence scope — the engine derives it from the
// grid cell index, the Monte-Carlo runner from the chunk index, the
// repair engine from its serial event counter (plus sim-time for the
// sim-clock domain) — so the exported journal is byte-identical at any
// `--jobs` value. Events sharing a scope keep their single-thread
// emission order (export is one stable sort by seq; every scope is
// written by exactly one thread as one contiguous ring run).
//
// Drain contract: drain() flushes only the *calling* thread's ring;
// rings of exited threads were already folded in at thread exit (the
// same retire-on-exit pattern as the registry's shards). Callers drain
// at joins/barriers — after the engine's pool is destroyed, after the
// sim runner's waves are joined, at each repair barrier — which is
// exactly when every event is guaranteed to be in the caller's ring or
// a retired one. Live rings of other threads are never read.
//
// Event names must come from event_names.hpp (string literals — events
// store the pointers); tools/nsrel-lint enforces it.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/sync.hpp"

namespace nsrel::obs {

/// Which deterministic clock stamps the event: a monotonic sequence
/// scope (engine cells, sim chunks, cache/solve activity) or repair
/// simulated seconds (which additionally carries a serial sequence so
/// equal-time events keep a total order).
enum class ClockDomain : unsigned char { kSequence, kSimTime };

/// One typed key/value argument. Keys are string literals; values are
/// integers, doubles, or string literals — nothing owning, so an Event
/// is trivially copyable and ring slots never allocate.
struct EventArg {
  enum class Kind : unsigned char { kNone, kUint, kDouble, kLiteral };

  const char* key = "";
  Kind kind = Kind::kNone;
  std::uint64_t uint_value = 0;
  double double_value = 0.0;
  const char* literal_value = "";
};

/// Arguments per event; enough for the widest event (cell.claim).
inline constexpr std::size_t kMaxEventArgs = 4;

/// One journal event. Build with seq_event()/sim_event() and the
/// fluent arg() overloads:
///
///   Journal::instance().record(
///       seq_event(event::kCellClaim).arg("cell", index));
///
/// Args past kMaxEventArgs are dropped silently (a probe never throws).
struct Event {
  const char* name = "";  ///< from event_names.hpp (pointer is stored)
  ClockDomain domain = ClockDomain::kSequence;
  std::uint64_t seq = 0;
  double sim_seconds = 0.0;  ///< kSimTime domain only
  std::uint32_t arg_count = 0;
  std::array<EventArg, kMaxEventArgs> args{};

  Event& arg(const char* key, std::uint64_t value);
  Event& arg(const char* key, double value);
  Event& arg(const char* key, const char* literal);

 private:
  EventArg& next_arg();
};

/// The calling thread's current sequence scope (0 outside any scope).
/// Parallel subsystems set it before emitting events so every event a
/// worker records is stamped with a schedule-independent position.
[[nodiscard]] std::uint64_t current_scope();

/// RAII sequence scope: sets the calling thread's scope, restores the
/// previous one on destruction. Thread-local — a scope set on the
/// submitting thread is NOT visible inside pool workers; pass the value
/// explicitly into the task and re-establish it there.
class ScopeGuard {
 public:
  explicit ScopeGuard(std::uint64_t scope);
  ~ScopeGuard();

  ScopeGuard(const ScopeGuard&) = delete;
  ScopeGuard& operator=(const ScopeGuard&) = delete;

 private:
  std::uint64_t saved_;
};

/// Sequence-domain event stamped with the calling thread's scope.
[[nodiscard]] Event seq_event(const char* name);

/// Sim-time-domain event (repair engine): `seq` is the engine's serial
/// event counter, `sim_seconds` the simulated clock at emission.
[[nodiscard]] Event sim_event(const char* name, std::uint64_t seq,
                              double sim_seconds);

class Journal {
 public:
  /// Ring capacity per thread. Full rings overwrite their oldest
  /// events; dropped() reports how many were lost.
  static constexpr std::size_t kRingCapacity = 4096;

  /// The process-wide journal (leaked, like the metrics registry:
  /// thread-exit ring retirement must always find a live instance).
  static Journal& instance();

  /// The probe gate: one relaxed load. All recording no-ops when off.
  [[nodiscard]] static bool enabled() {
    return instance().enabled_.load(std::memory_order_relaxed);
  }

  /// Clears every ring and starts recording. Call before spawning
  /// parallel work (live rings are reset in place).
  void begin();

  /// Stops recording. Buffered and committed events survive until the
  /// next begin()/clear(), so a journal can be exported after disable.
  void disable();

  /// Drops all buffered and committed events and zeroes dropped().
  void clear();

  /// Appends to the calling thread's ring (no-op while disabled).
  void record(const Event& event);

  /// Flushes the calling thread's ring into the committed list. Call
  /// only at joins/barriers — after every other writer has exited (and
  /// thus retired its ring) or is idle between batches.
  void drain();

  /// All committed events, stable-sorted by sequence scope. Call after
  /// a final drain(); the result is deterministic at any --jobs.
  [[nodiscard]] std::vector<Event> events() const;

  /// Events lost to ring overwrites since begin().
  [[nodiscard]] std::uint64_t dropped() const;

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

 private:
  Journal() = default;
  ~Journal() = default;

  struct Ring;
  friend struct RingHolder;

  Ring& local_ring();
  void retire(Ring* ring);
  void flush_locked(Ring& ring) NSREL_REQUIRES(mutex_);

  // Relaxed probe gate (see tools/lint/atomics.tsv).
  std::atomic<bool> enabled_{false};
  mutable util::Mutex mutex_;
  std::vector<std::unique_ptr<Ring>> owned_ NSREL_GUARDED_BY(mutex_);
  std::vector<Ring*> active_ NSREL_GUARDED_BY(mutex_);
  std::vector<Ring*> free_ NSREL_GUARDED_BY(mutex_);
  std::vector<Event> committed_ NSREL_GUARDED_BY(mutex_);
  std::uint64_t dropped_ NSREL_GUARDED_BY(mutex_) = 0;
};

}  // namespace nsrel::obs
