#include "obs/journal.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/sync.hpp"

namespace nsrel::obs {

namespace {
thread_local std::uint64_t tls_scope = 0;
}  // namespace

EventArg& Event::next_arg() {
  // Past capacity, overwrite the last slot: a probe never throws, and a
  // clobbered trailing arg is more useful than a crashed run.
  const std::uint32_t slot =
      arg_count < kMaxEventArgs ? arg_count++ : kMaxEventArgs - 1;
  return args[slot];
}

Event& Event::arg(const char* key, std::uint64_t value) {
  EventArg& a = next_arg();
  a.key = key;
  a.kind = EventArg::Kind::kUint;
  a.uint_value = value;
  return *this;
}

Event& Event::arg(const char* key, double value) {
  EventArg& a = next_arg();
  a.key = key;
  a.kind = EventArg::Kind::kDouble;
  a.double_value = value;
  return *this;
}

Event& Event::arg(const char* key, const char* literal) {
  EventArg& a = next_arg();
  a.key = key;
  a.kind = EventArg::Kind::kLiteral;
  a.literal_value = literal;
  return *this;
}

std::uint64_t current_scope() { return tls_scope; }

ScopeGuard::ScopeGuard(std::uint64_t scope) : saved_(tls_scope) {
  tls_scope = scope;
}

ScopeGuard::~ScopeGuard() { tls_scope = saved_; }

Event seq_event(const char* name) {
  Event event;
  event.name = name;
  event.domain = ClockDomain::kSequence;
  event.seq = tls_scope;
  return event;
}

Event sim_event(const char* name, std::uint64_t seq, double sim_seconds) {
  Event event;
  event.name = name;
  event.domain = ClockDomain::kSimTime;
  event.seq = seq;
  event.sim_seconds = sim_seconds;
  return event;
}

/// One thread's private ring. Only the owning thread writes; the
/// contents are read either by that same thread (drain) or under the
/// journal mutex after the owner has exited (retire) — the thread join
/// provides the happens-before edge, so the slots need no atomics.
struct Journal::Ring {
  std::array<Event, kRingCapacity> slots;
  std::size_t next = 0;      ///< write cursor (wraps)
  std::size_t count = 0;     ///< live events, <= kRingCapacity
  std::uint64_t dropped = 0; ///< oldest events overwritten

  void push(const Event& event) {
    if (count == kRingCapacity) ++dropped;
    else ++count;
    slots[next] = event;
    next = (next + 1) % kRingCapacity;
  }

  void reset() {
    next = 0;
    count = 0;
    dropped = 0;
  }
};

/// Thread-local ring ownership, mirroring the registry's ShardHolder:
/// acquired lazily on the first event a thread records, folded into the
/// committed list and returned to the free list at thread exit. At
/// namespace scope so the Journal friend declaration names this type.
struct RingHolder {
  Journal::Ring* ring = nullptr;
  ~RingHolder() {
    if (ring != nullptr) Journal::instance().retire(ring);
  }
};

namespace {
thread_local RingHolder tls_ring;
}  // namespace

Journal& Journal::instance() {
  static Journal* leaked = new Journal;  // never destroyed, see header
  return *leaked;
}

void Journal::begin() {
  const util::MutexLock lock(mutex_);
  for (const auto& ring : owned_) ring->reset();
  committed_.clear();
  dropped_ = 0;
  enabled_.store(true, std::memory_order_relaxed);
}

void Journal::disable() { enabled_.store(false, std::memory_order_relaxed); }

void Journal::clear() {
  const util::MutexLock lock(mutex_);
  for (const auto& ring : owned_) ring->reset();
  committed_.clear();
  dropped_ = 0;
}

Journal::Ring& Journal::local_ring() {
  if (tls_ring.ring == nullptr) {
    const util::MutexLock lock(mutex_);
    if (!free_.empty()) {
      tls_ring.ring = free_.back();
      free_.pop_back();
    } else {
      owned_.push_back(std::make_unique<Ring>());
      tls_ring.ring = owned_.back().get();
    }
    active_.push_back(tls_ring.ring);
  }
  return *tls_ring.ring;
}

void Journal::retire(Ring* ring) {
  const util::MutexLock lock(mutex_);
  flush_locked(*ring);
  active_.erase(std::find(active_.begin(), active_.end(), ring));
  free_.push_back(ring);
}

/// Appends `ring`'s events to the committed list oldest-first and
/// resets it. Caller holds the mutex and owns the ring's contents
/// (it is the writing thread, or the writer has been joined).
void Journal::flush_locked(Ring& ring) {
  const std::size_t start =
      (ring.next + kRingCapacity - ring.count) % kRingCapacity;
  for (std::size_t i = 0; i < ring.count; ++i) {
    committed_.push_back(ring.slots[(start + i) % kRingCapacity]);
  }
  dropped_ += ring.dropped;
  ring.reset();
}

void Journal::record(const Event& event) {
  if (!enabled()) return;
  local_ring().push(event);
}

void Journal::drain() {
  if (tls_ring.ring == nullptr) return;
  const util::MutexLock lock(mutex_);
  flush_locked(*tls_ring.ring);
}

std::vector<Event> Journal::events() const {
  const util::MutexLock lock(mutex_);
  std::vector<Event> sorted = committed_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Event& a, const Event& b) { return a.seq < b.seq; });
  return sorted;
}

std::uint64_t Journal::dropped() const {
  const util::MutexLock lock(mutex_);
  return dropped_;
}

}  // namespace nsrel::obs
