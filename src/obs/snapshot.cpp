#include "obs/snapshot.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "util/assert.hpp"

namespace nsrel::obs {

namespace {

using CounterRow = Registry::CounterRow;
using HistogramRow = Registry::HistogramRow;

HistogramRow subtract(const HistogramRow& before, const HistogramRow& after) {
  NSREL_EXPECTS(after.count >= before.count);
  NSREL_EXPECTS(after.sum >= before.sum);
  HistogramRow d;
  d.name = after.name;
  d.count = after.count - before.count;
  d.sum = after.sum - before.sum;
  // Extremes are not subtractable; carry the after-side extremes when
  // the delta is non-empty (see header) and the empty convention else.
  d.min = d.count == 0 ? 0 : after.min;
  d.max = d.count == 0 ? 0 : after.max;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    NSREL_EXPECTS(after.buckets[b] >= before.buckets[b]);
    d.buckets[b] = after.buckets[b] - before.buckets[b];
  }
  return d;
}

HistogramRow combine(const HistogramRow& a, const HistogramRow& b) {
  HistogramRow m;
  m.name = a.name;
  m.count = a.count + b.count;
  m.sum = a.sum + b.sum;
  if (a.count == 0) {
    m.min = b.min;
  } else if (b.count == 0) {
    m.min = a.min;
  } else {
    m.min = std::min(a.min, b.min);
  }
  m.max = std::max(a.max, b.max);
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    m.buckets[i] = a.buckets[i] + b.buckets[i];
  }
  return m;
}

bool rows_equal(const HistogramRow& a, const HistogramRow& b) {
  return a.name == b.name && a.count == b.count && a.sum == b.sum &&
         a.min == b.min && a.max == b.max && a.buckets == b.buckets;
}

}  // namespace

MetricsSnapshot MetricsSnapshot::capture() {
  Registry::Snapshot snap = Registry::instance().snapshot();
  return MetricsSnapshot{std::move(snap.counters), std::move(snap.histograms)};
}

MetricsSnapshot MetricsSnapshot::delta(const MetricsSnapshot& before,
                                       const MetricsSnapshot& after) {
  // Both sides are name-sorted; index `before` for the subtraction.
  // std::map keeps iteration deterministic (never a hash map).
  std::map<std::string, const CounterRow*> counters_before;
  for (const CounterRow& row : before.counters) {
    counters_before.emplace(row.name, &row);
  }
  std::map<std::string, const HistogramRow*> histograms_before;
  for (const HistogramRow& row : before.histograms) {
    histograms_before.emplace(row.name, &row);
  }

  MetricsSnapshot d;
  for (const CounterRow& row : after.counters) {
    const auto it = counters_before.find(row.name);
    const std::uint64_t base = it == counters_before.end() ? 0 : it->second->value;
    NSREL_EXPECTS(row.value >= base);
    d.counters.push_back({row.name, row.value - base});
  }
  for (const HistogramRow& row : after.histograms) {
    const auto it = histograms_before.find(row.name);
    if (it == histograms_before.end()) {
      d.histograms.push_back(row);
    } else {
      d.histograms.push_back(subtract(*it->second, row));
    }
  }
  return d;
}

MetricsSnapshot MetricsSnapshot::merge(const MetricsSnapshot& a,
                                       const MetricsSnapshot& b) {
  std::map<std::string, std::uint64_t> counters;
  for (const CounterRow& row : a.counters) counters[row.name] += row.value;
  for (const CounterRow& row : b.counters) counters[row.name] += row.value;

  std::map<std::string, HistogramRow> histograms;
  for (const HistogramRow& row : a.histograms) histograms.emplace(row.name, row);
  for (const HistogramRow& row : b.histograms) {
    const auto [it, inserted] = histograms.emplace(row.name, row);
    if (!inserted) it->second = combine(it->second, row);
  }

  MetricsSnapshot m;
  for (const auto& [name, value] : counters) m.counters.push_back({name, value});
  for (auto& [name, row] : histograms) m.histograms.push_back(std::move(row));
  return m;
}

bool operator==(const MetricsSnapshot& a, const MetricsSnapshot& b) {
  if (a.counters.size() != b.counters.size()) return false;
  if (a.histograms.size() != b.histograms.size()) return false;
  for (std::size_t i = 0; i < a.counters.size(); ++i) {
    if (a.counters[i].name != b.counters[i].name) return false;
    if (a.counters[i].value != b.counters[i].value) return false;
  }
  for (std::size_t i = 0; i < a.histograms.size(); ++i) {
    if (!rows_equal(a.histograms[i], b.histograms[i])) return false;
  }
  return true;
}

bool operator!=(const MetricsSnapshot& a, const MetricsSnapshot& b) {
  return !(a == b);
}

}  // namespace nsrel::obs
