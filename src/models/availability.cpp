#include "models/availability.hpp"

#include <vector>

#include "ctmc/absorbing.hpp"
#include "ctmc/stationary.hpp"
#include "util/assert.hpp"

namespace nsrel::models {

ctmc::Chain AvailabilityModel::make_repairable(
    const ctmc::Chain& absorbing_chain, ctmc::StateId healthy,
    PerHour restore_rate) {
  NSREL_EXPECTS(absorbing_chain.validate().empty());
  NSREL_EXPECTS(healthy < absorbing_chain.state_count());
  NSREL_EXPECTS(absorbing_chain.state(healthy).kind ==
                ctmc::StateKind::kTransient);
  NSREL_EXPECTS(restore_rate.value() > 0.0);

  // Rebuild the chain with every state transient; former absorbing states
  // get a restore transition back to the healthy state.
  ctmc::Chain repairable;
  for (ctmc::StateId s = 0; s < absorbing_chain.state_count(); ++s) {
    repairable.add_state(absorbing_chain.state(s).label,
                         ctmc::StateKind::kTransient);
  }
  for (const auto& t : absorbing_chain.transitions()) {
    repairable.add_transition(t.from, t.to, t.rate);
  }
  for (const ctmc::StateId lost : absorbing_chain.absorbing_states()) {
    repairable.add_transition(lost, healthy, restore_rate.value());
  }
  return repairable;
}

AvailabilityResult AvailabilityModel::analyze(
    const ctmc::Chain& absorbing_chain, ctmc::StateId healthy,
    Hours restore_time) {
  NSREL_EXPECTS(restore_time.value() > 0.0);
  const ctmc::Chain repairable =
      make_repairable(absorbing_chain, healthy, rate_of(restore_time));
  const std::vector<double> pi =
      ctmc::StationarySolver::distribution(repairable);

  AvailabilityResult result;
  double lost_fraction = 0.0;
  for (const ctmc::StateId s : absorbing_chain.absorbing_states()) {
    lost_fraction += pi[s];
  }
  result.availability = 1.0 - lost_fraction;
  result.downtime_minutes_per_year =
      lost_fraction * kHoursPerYear * 60.0;
  result.degraded_fraction = 1.0 - lost_fraction - pi[healthy];
  result.mttdl = Hours(
      ctmc::AbsorbingSolver::mttdl_hours(absorbing_chain, healthy));
  return result;
}

}  // namespace nsrel::models
