#include "models/closed_forms.hpp"

#include "util/assert.hpp"

namespace nsrel::models {

namespace {
struct Unpacked {
  double n, r, d, lambda_n, lambda_d, mu_n, mu_d, c_her;
};

Unpacked unpack(const NoInternalRaidParams& p) {
  return Unpacked{static_cast<double>(p.node_set_size),
                  static_cast<double>(p.redundancy_set_size),
                  static_cast<double>(p.drives_per_node),
                  p.node_failure.value(),
                  p.drive_failure.value(),
                  p.node_rebuild.value(),
                  p.drive_rebuild.value(),
                  p.capacity.value() * p.her_per_byte};
}
}  // namespace

Hours nir_ft1_printed(const NoInternalRaidParams& p) {
  NSREL_EXPECTS(p.fault_tolerance == 1);
  const auto [n, r, d, lambda_n, lambda_d, mu_n, mu_d, c_her] = unpack(p);
  const double h = (r - 1.0) * c_her;
  const double numerator = mu_d * mu_n;
  const double denominator =
      n * (n - 1.0) * (lambda_n + d * lambda_d) *
          (mu_d * lambda_n + d * mu_n * lambda_d) +
      n * d * h * mu_d * mu_n * (lambda_d + lambda_n);
  return Hours(numerator / denominator);
}

Hours nir_ft2_printed(const NoInternalRaidParams& p) {
  NSREL_EXPECTS(p.fault_tolerance == 2);
  const auto [n, r, d, lambda_n, lambda_d, mu_n, mu_d, c_her] = unpack(p);
  const double mixed = mu_d * lambda_n + d * mu_n * lambda_d;
  const double mixed_unit = mu_d * lambda_n + mu_n * lambda_d;
  const double numerator = mu_d * mu_d * mu_n * mu_n;
  const double denominator =
      n * (n - 1.0) * (n - 2.0) * (lambda_n + d * lambda_d) * mixed * mixed +
      n * (r - 1.0) * (r - 2.0) * c_her * d * mu_d * mu_n *
          (lambda_d + lambda_n) * mixed_unit;
  return Hours(numerator / denominator);
}

Hours nir_ft3_printed(const NoInternalRaidParams& p) {
  NSREL_EXPECTS(p.fault_tolerance == 3);
  const auto [n, r, d, lambda_n, lambda_d, mu_n, mu_d, c_her] = unpack(p);
  const double mixed = mu_d * lambda_n + d * mu_n * lambda_d;
  const double mixed_unit = mu_d * lambda_n + mu_n * lambda_d;
  const double numerator = mu_d * mu_d * mu_d * mu_n * mu_n * mu_n;
  const double denominator =
      n * (n - 1.0) * (n - 2.0) * (n - 3.0) * (lambda_n + d * lambda_d) *
          mixed * mixed * mixed +
      n * (r - 1.0) * (r - 2.0) * (r - 3.0) * c_her * d * mu_d * mu_n *
          (lambda_d + lambda_n) * mixed_unit * mixed_unit;
  return Hours(numerator / denominator);
}

}  // namespace nsrel::models
