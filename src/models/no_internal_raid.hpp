// Node-level models for nodes WITHOUT internal RAID (paper section 4.3,
// Figures 8, 9, 10, and the appendix's recursive construction for
// arbitrary node fault tolerance k).
//
// Without internal RAID, drive failures and node failures are distinct
// degraded states, so the chain is a binary tree of failure words over
// {N, d}: the state "Nd0" means a node failure followed by a drive failure
// with one more failure tolerated. Each state at depth j < k fails further
// at rate (N-j)(lambda_N + d lambda_d) split by failure type; the last
// tolerated transition pre-samples whether the in-progress critical
// rebuild will encounter a hard error (the h_alpha parameters of section
// 5.2.2); full-depth states absorb at rate (N-k)(lambda_N + d lambda_d);
// repairs undo the most recent failure at mu_N or mu_d.
//
// Two independent constructions are provided: a labeled `ctmc::Chain`
// (transition-level, also consumed by the Monte-Carlo simulator) and the
// appendix's block-recursive absorption matrix R^(k). Tests assert they
// produce identical matrices.
#pragma once

#include <vector>

#include "combinat/critical_sets.hpp"
#include "ctmc/chain.hpp"
#include "ctmc/solver_policy.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse/sparse_matrix.hpp"
#include "models/internal_raid.hpp"  // RepairPolicy
#include "util/units.hpp"

namespace nsrel::models {

struct NoInternalRaidParams {
  int node_set_size = 64;       ///< N
  int redundancy_set_size = 8;  ///< R
  int fault_tolerance = 2;      ///< k across nodes
  int drives_per_node = 12;     ///< d
  PerHour node_failure{0.0};    ///< lambda_N
  PerHour drive_failure{0.0};   ///< lambda_d
  PerHour node_rebuild{0.0};    ///< mu_N
  PerHour drive_rebuild{0.0};   ///< mu_d (distributed drive rebuild)
  Bytes capacity = gigabytes(300.0);  ///< C per drive
  double her_per_byte = 8e-14;        ///< HER, errors per byte read
  /// kSingle repairs only the most recent failure (the paper's chains);
  /// kConcurrent repairs every outstanding failure at its own rate (the
  /// recursive matrix path and the closed forms assume kSingle).
  RepairPolicy repair_policy = RepairPolicy::kSingle;
};

class NoInternalRaidModel {
 public:
  /// Preconditions: k >= 1, k < R <= N, N > k, d >= 1, rates > 0,
  /// fault_tolerance <= 16. The absorption matrix has 2^(k+1)-1 states
  /// (131071 at the k=16 cap): the dense solvers handle k <= 11 (their
  /// 4096-state ceiling) and the sparse elimination path carries the
  /// rest, so the cap is real on the recursive-matrix route. The labeled
  /// chain() and mttdl_exact() remain practical to ~k=12 (chain assembly
  /// cost, not solve cost, dominates beyond that).
  explicit NoInternalRaidModel(const NoInternalRaidParams& params);

  [[nodiscard]] const NoInternalRaidParams& params() const { return params_; }

  /// h-parameter family for this configuration (section 5.2.2).
  [[nodiscard]] combinat::HParams h_params() const;

  /// The exact chain. State 0 is the absorbing data-loss state "A"; the
  /// fully-operational root follows at state 1 (see root_state()).
  [[nodiscard]] ctmc::Chain chain() const;

  /// Id of the fully-operational root state within chain().
  [[nodiscard]] static ctmc::StateId root_state() { return 1; }

  /// The appendix's absorption matrix R^(k), built by the block recursion
  /// (dimension 2^(k+1)-1), ordered root, N-subtree, d-subtree.
  [[nodiscard]] linalg::Matrix absorption_matrix_recursive() const;

  /// The same matrix in CSR form, assembled by the same recursion with
  /// the same per-entry arithmetic (tests assert entry-for-entry
  /// equality with the dense build) but O(n) storage — the form that
  /// takes the recursion to the k=16 cap.
  [[nodiscard]] linalg::sparse::CsrMatrix absorption_matrix_recursive_sparse()
      const;

  /// Exact per-state absorption rates in the same state order (nonzero
  /// only at the bottom two levels of the recursion) — supplied to the
  /// elimination solver so no row-sum subtraction is ever needed.
  [[nodiscard]] std::vector<double> absorption_rates_recursive() const;

  /// MTTDL by numerically solving the exact chain. The policy picks the
  /// elimination backend; both backends are bit-identical (see
  /// ctmc/elimination.hpp), so this only affects wall clock.
  [[nodiscard]] Hours mttdl_exact(
      ctmc::SolverPolicy policy = ctmc::SolverPolicy::kAuto) const;

  /// MTTDL = <1,0,...,0> R^{-1} <1,...,1>^t on the block-recursive matrix
  /// (appendix equation A.2) — an independent numerical path. Under the
  /// sparse backend the dense matrix is never materialized.
  [[nodiscard]] Hours mttdl_recursive_matrix(
      ctmc::SolverPolicy policy = ctmc::SolverPolicy::kAuto) const;

  /// The paper's closed-form approximation. For k = 1, 2, 3 this equals
  /// the printed formulas (section 4.3 and Figure 12); for larger k it is
  /// the appendix theorem's general form with the L_k recursion.
  [[nodiscard]] Hours mttdl_closed_form() const;

 private:
  NoInternalRaidParams params_;
};

/// The appendix's L_k recursion: L(x,y) = x*lambda_N + y*d*lambda_d,
/// L_1(H) = L(H[0], H[1]),
/// L_k(H) = L(mu_d * L_{k-1}(first half), mu_N * L_{k-1}(second half)).
/// `h_values` must have size 2^k, ordered as combinat::h_set.
[[nodiscard]] double l_recursion(int k, const std::vector<double>& h_values,
                                 double lambda_n, double d_lambda_d,
                                 double mu_n, double mu_d);

}  // namespace nsrel::models
