#include "models/no_internal_raid.hpp"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "ctmc/absorbing.hpp"
#include "ctmc/elimination.hpp"
#include "ctmc/solver_policy.hpp"
#include "linalg/sparse/sparse_matrix.hpp"
#include "util/assert.hpp"
#include "util/error.hpp"
#include "util/math.hpp"

namespace nsrel::models {

namespace {

using combinat::FailureKind;
using combinat::FailureWord;

std::string word_label(const FailureWord& word, int fault_tolerance) {
  std::string label;
  for (const FailureKind kind : word) {
    label += (kind == FailureKind::kNode) ? 'N' : 'd';
  }
  label.append(
      static_cast<std::size_t>(fault_tolerance) - word.size(), '0');
  return label.empty() ? "0" : label;
}

/// Recursive chain builder. Adds the subtree rooted at `prefix` (root
/// first, then the N-subtree, then the d-subtree — the appendix's block
/// order) and returns the subtree root id. Failure and absorbing edges
/// are added during the walk; repair edges are added afterwards by
/// `add_repairs`, because the concurrent policy connects states across
/// subtrees (removing a MIDDLE failure from the word).
class ChainBuilder {
 public:
  ChainBuilder(ctmc::Chain& chain, ctmc::StateId loss,
               const NoInternalRaidParams& p, const combinat::HParams& hp)
      : chain_(chain), loss_(loss), params_(p), h_params_(hp) {}

  void add_repairs() {
    const double mu_n = params_.node_rebuild.value();
    const double mu_d = params_.drive_rebuild.value();
    for (const auto& [word, id] : ids_) {
      if (word.empty()) continue;
      if (params_.repair_policy == RepairPolicy::kSingle) {
        FailureWord parent(word.begin(), word.end() - 1);
        chain_.add_transition(
            id, ids_.at(parent),
            word.back() == FailureKind::kNode ? mu_n : mu_d);
      } else {
        for (std::size_t i = 0; i < word.size(); ++i) {
          FailureWord reduced = word;
          reduced.erase(reduced.begin() + static_cast<long>(i));
          chain_.add_transition(
              id, ids_.at(reduced),
              word[i] == FailureKind::kNode ? mu_n : mu_d);
        }
      }
    }
  }

  ctmc::StateId build(FailureWord& prefix) {
    const int depth = static_cast<int>(prefix.size());
    const int k = params_.fault_tolerance;
    const double n_eff =
        static_cast<double>(params_.node_set_size - depth);
    const double lambda_n = params_.node_failure.value();
    const double d_lambda_d = static_cast<double>(params_.drives_per_node) *
                              params_.drive_failure.value();

    const ctmc::StateId root = chain_.add_state(word_label(prefix, k));
    ids_.emplace(prefix, root);

    if (depth == k) {
      // Fully degraded: any further failure in the node set loses data.
      chain_.add_transition(root, loss_, n_eff * (lambda_n + d_lambda_d));
      return root;
    }

    double rate_n = n_eff * lambda_n;
    double rate_d = n_eff * d_lambda_d;
    if (depth == k - 1) {
      // The next failure makes some redundancy sets critical: pre-sample
      // whether the ensuing rebuild will hit a hard error (h_alpha terms).
      // Saturate the paper's linear hard-error probabilities (h_N can
      // exceed 1 at fault tolerance 1 with baseline parameters).
      prefix.push_back(FailureKind::kNode);
      const double h_n =
          saturated_probability(combinat::h_for_word(h_params_, prefix));
      prefix.back() = FailureKind::kDrive;
      const double h_d =
          saturated_probability(combinat::h_for_word(h_params_, prefix));
      prefix.pop_back();
      const double loss_rate = n_eff * (lambda_n * h_n + d_lambda_d * h_d);
      if (loss_rate > 0.0) chain_.add_transition(root, loss_, loss_rate);
      rate_n *= 1.0 - h_n;
      rate_d *= 1.0 - h_d;
    }

    prefix.push_back(FailureKind::kNode);
    const ctmc::StateId child_n = build(prefix);
    prefix.pop_back();
    chain_.add_transition(root, child_n, rate_n);

    prefix.push_back(FailureKind::kDrive);
    const ctmc::StateId child_d = build(prefix);
    prefix.pop_back();
    chain_.add_transition(root, child_d, rate_d);
    return root;
  }

 private:
  ctmc::Chain& chain_;
  ctmc::StateId loss_;
  const NoInternalRaidParams& params_;
  const combinat::HParams& h_params_;
  std::map<FailureWord, ctmc::StateId> ids_;
};

/// Appendix block recursion for R^(k). `h` spans the 2^k h_alpha values
/// for this subtree, in combinat::h_set order.
linalg::Matrix build_absorption(int k, double n_eff,
                                const NoInternalRaidParams& p,
                                std::span<const double> h) {
  NSREL_ASSERT(h.size() == (std::size_t{1} << k));
  const double lambda_n = p.node_failure.value();
  const double d_lambda_d =
      static_cast<double>(p.drives_per_node) * p.drive_failure.value();
  const double mu_n = p.node_rebuild.value();
  const double mu_d = p.drive_rebuild.value();

  if (k == 1) {
    // Same saturation as ChainBuilder so the two constructions agree.
    const double h_n = saturated_probability(h[0]);
    const double h_d = saturated_probability(h[1]);
    const double exhausted = (n_eff - 1.0) * (lambda_n + d_lambda_d);
    return linalg::Matrix{
        {n_eff * (lambda_n + d_lambda_d), -n_eff * lambda_n * (1.0 - h_n),
         -n_eff * d_lambda_d * (1.0 - h_d)},
        {-mu_n, mu_n + exhausted, 0.0},
        {-mu_d, 0.0, mu_d + exhausted}};
  }

  const std::size_t half = h.size() / 2;
  // R_x^(k) = R^(k-1)(N-1, h_x . h^(k-1)) + mu_x * U  (appendix A.4).
  linalg::Matrix r_n = build_absorption(k - 1, n_eff - 1.0, p, h.first(half));
  r_n(0, 0) += mu_n;
  linalg::Matrix r_d = build_absorption(k - 1, n_eff - 1.0, p, h.last(half));
  r_d(0, 0) += mu_d;

  const std::size_t sub = r_n.rows();
  const std::size_t dim = 2 * sub + 1;
  linalg::Matrix r(dim, dim);
  r(0, 0) = n_eff * (lambda_n + d_lambda_d);  // r^(k): no direct absorption
  r(0, 1) = -n_eff * lambda_n;                // -r_N
  r(0, 1 + sub) = -n_eff * d_lambda_d;        // -r_d
  r(1, 0) = -mu_n;                            // -mu_N vector head
  r(1 + sub, 0) = -mu_d;                      // -mu_d vector head
  for (std::size_t i = 0; i < sub; ++i) {
    for (std::size_t j = 0; j < sub; ++j) {
      r(1 + i, 1 + j) = r_n(i, j);
      r(1 + sub + i, 1 + sub + j) = r_d(i, j);
    }
  }
  return r;
}

/// Triplet twin of build_absorption: same recursion, same per-entry
/// expressions, emitted at offset `base` into `out` instead of into an
/// n x n array. The parent's mu contribution to a sub-block root's
/// diagonal is pushed AFTER the sub-block's own entries, so
/// CsrMatrix::from_triplets (which accumulates duplicates in triplet
/// order) reproduces the dense build's `value += mu` bit-for-bit.
/// Returns the block's dimension.
std::size_t append_absorption_triplets(
    int k, double n_eff, const NoInternalRaidParams& p,
    std::span<const double> h, std::uint32_t base,
    std::vector<linalg::sparse::Triplet>& out) {
  NSREL_ASSERT(h.size() == (std::size_t{1} << k));
  const double lambda_n = p.node_failure.value();
  const double d_lambda_d =
      static_cast<double>(p.drives_per_node) * p.drive_failure.value();
  const double mu_n = p.node_rebuild.value();
  const double mu_d = p.drive_rebuild.value();

  if (k == 1) {
    const double h_n = saturated_probability(h[0]);
    const double h_d = saturated_probability(h[1]);
    const double exhausted = (n_eff - 1.0) * (lambda_n + d_lambda_d);
    out.push_back({base, base, n_eff * (lambda_n + d_lambda_d)});
    out.push_back({base, base + 1, -n_eff * lambda_n * (1.0 - h_n)});
    out.push_back({base, base + 2, -n_eff * d_lambda_d * (1.0 - h_d)});
    out.push_back({base + 1, base, -mu_n});
    out.push_back({base + 1, base + 1, mu_n + exhausted});
    out.push_back({base + 2, base, -mu_d});
    out.push_back({base + 2, base + 2, mu_d + exhausted});
    return 3;
  }

  const std::size_t half = h.size() / 2;
  const std::uint32_t sub =
      static_cast<std::uint32_t>((std::size_t{1} << k) - 1);
  out.push_back({base, base, n_eff * (lambda_n + d_lambda_d)});
  out.push_back({base, base + 1, -n_eff * lambda_n});
  out.push_back({base, base + 1 + sub, -n_eff * d_lambda_d});
  out.push_back({base + 1, base, -mu_n});
  out.push_back({base + 1 + sub, base, -mu_d});
  // R_x^(k) = R^(k-1)(N-1, h_x . h^(k-1)) + mu_x * U  (appendix A.4).
  const std::size_t sub_n = append_absorption_triplets(
      k - 1, n_eff - 1.0, p, h.first(half), base + 1, out);
  out.push_back({base + 1, base + 1, mu_n});
  const std::size_t sub_d = append_absorption_triplets(
      k - 1, n_eff - 1.0, p, h.last(half), base + 1 + sub, out);
  out.push_back({base + 1 + sub, base + 1 + sub, mu_d});
  NSREL_ASSERT(sub_n == sub && sub_d == sub);
  return 2 * std::size_t{sub} + 1;
}

/// Absorption rates per state, in the same recursive state order as
/// build_absorption. Only the bottom two levels absorb: depth k-1 states
/// via the pre-sampled hard-error flow, depth k states via any further
/// failure.
void append_absorption_rates(int k, double n_eff,
                             const NoInternalRaidParams& p,
                             std::span<const double> h,
                             std::vector<double>& out) {
  const double lambda_n = p.node_failure.value();
  const double d_lambda_d =
      static_cast<double>(p.drives_per_node) * p.drive_failure.value();
  if (k == 1) {
    const double h_n = saturated_probability(h[0]);
    const double h_d = saturated_probability(h[1]);
    out.push_back(n_eff * (lambda_n * h_n + d_lambda_d * h_d));
    out.push_back((n_eff - 1.0) * (lambda_n + d_lambda_d));
    out.push_back((n_eff - 1.0) * (lambda_n + d_lambda_d));
    return;
  }
  out.push_back(0.0);  // the root of a k>1 block never absorbs directly
  const std::size_t half = h.size() / 2;
  append_absorption_rates(k - 1, n_eff - 1.0, p, h.first(half), out);
  append_absorption_rates(k - 1, n_eff - 1.0, p, h.last(half), out);
}

}  // namespace

NoInternalRaidModel::NoInternalRaidModel(const NoInternalRaidParams& params)
    : params_(params) {
  NSREL_EXPECTS(params_.fault_tolerance >= 1);
  NSREL_EXPECTS(params_.fault_tolerance <= 16);
  NSREL_EXPECTS(params_.node_set_size > params_.fault_tolerance);
  NSREL_EXPECTS(params_.redundancy_set_size > params_.fault_tolerance);
  NSREL_EXPECTS(params_.redundancy_set_size <= params_.node_set_size);
  NSREL_EXPECTS(params_.drives_per_node >= 1);
  NSREL_EXPECTS(params_.node_failure.value() > 0.0);
  NSREL_EXPECTS(params_.drive_failure.value() > 0.0);
  NSREL_EXPECTS(params_.node_rebuild.value() > 0.0);
  NSREL_EXPECTS(params_.drive_rebuild.value() > 0.0);
  NSREL_EXPECTS(params_.capacity.value() > 0.0);
  NSREL_EXPECTS(params_.her_per_byte >= 0.0);
}

combinat::HParams NoInternalRaidModel::h_params() const {
  combinat::HParams hp;
  hp.node_set_size = params_.node_set_size;
  hp.redundancy_set_size = params_.redundancy_set_size;
  hp.drives_per_node = params_.drives_per_node;
  hp.fault_tolerance = params_.fault_tolerance;
  hp.capacity_bytes = params_.capacity.value();
  hp.her_per_byte = params_.her_per_byte;
  return hp;
}

ctmc::Chain NoInternalRaidModel::chain() const {
  ctmc::Chain c;
  const ctmc::StateId loss = c.add_state("A", ctmc::StateKind::kAbsorbing);
  const combinat::HParams hp = h_params();
  ChainBuilder builder(c, loss, params_, hp);
  FailureWord prefix;
  const ctmc::StateId root = builder.build(prefix);
  builder.add_repairs();
  NSREL_ENSURES(root == root_state());
  NSREL_ENSURES(c.state_count() ==
                (std::size_t{2} << params_.fault_tolerance));
  NSREL_ENSURES(c.validate().empty());
  return c;
}

linalg::Matrix NoInternalRaidModel::absorption_matrix_recursive() const {
  NSREL_EXPECTS(params_.repair_policy == RepairPolicy::kSingle);
  const std::vector<double> h = combinat::h_set(h_params());
  return build_absorption(params_.fault_tolerance,
                          static_cast<double>(params_.node_set_size), params_,
                          h);
}

Hours NoInternalRaidModel::mttdl_exact(ctmc::SolverPolicy policy) const {
  return Hours(
      ctmc::AbsorbingSolver::mttdl_hours(chain(), root_state(), policy));
}

linalg::sparse::CsrMatrix
NoInternalRaidModel::absorption_matrix_recursive_sparse() const {
  NSREL_EXPECTS(params_.repair_policy == RepairPolicy::kSingle);
  const std::vector<double> h = combinat::h_set(h_params());
  const std::size_t dim = (std::size_t{2} << params_.fault_tolerance) - 1;
  std::vector<linalg::sparse::Triplet> triplets;
  // Each state row holds at most 3 structural entries plus the parent's
  // mu contribution.
  triplets.reserve(4 * dim);
  const std::size_t built = append_absorption_triplets(
      params_.fault_tolerance, static_cast<double>(params_.node_set_size),
      params_, h, 0, triplets);
  NSREL_ENSURES(built == dim);
  return linalg::sparse::CsrMatrix::from_triplets(dim, dim, triplets);
}

Hours NoInternalRaidModel::mttdl_recursive_matrix(
    ctmc::SolverPolicy policy) const {
  // The appendix's block structure encodes single (LIFO) repair.
  NSREL_EXPECTS(params_.repair_policy == RepairPolicy::kSingle);
  // MTTDL = <1,0,...,0> R^{-1} <1,...,1>^t (appendix A.2), evaluated via
  // cancellation-free elimination: the naive LU evaluation loses all
  // precision (and can go negative) once MTTDL/mu exceeds ~1/epsilon,
  // which happens at fault tolerance ~6 with baseline rates.
  const std::size_t dim = (std::size_t{2} << params_.fault_tolerance) - 1;
  if (ctmc::use_sparse(policy, dim)) {
    return Hours(ctmc::EliminationSolver::mean_absorption_time_hours(
        absorption_matrix_recursive_sparse(), absorption_rates_recursive(),
        0));
  }
  if (policy == ctmc::SolverPolicy::kDense && ctmc::dense_refuses(dim)) {
    throw ErrorException(
        ctmc::dense_dimension_error("models.no_internal_raid", dim));
  }
  const linalg::Matrix r = absorption_matrix_recursive();
  return Hours(ctmc::EliminationSolver::mean_absorption_time_hours(
      r, absorption_rates_recursive(), 0));
}

std::vector<double> NoInternalRaidModel::absorption_rates_recursive() const {
  const std::vector<double> h = combinat::h_set(h_params());
  std::vector<double> rates;
  rates.reserve((std::size_t{2} << params_.fault_tolerance) - 1);
  append_absorption_rates(params_.fault_tolerance,
                          static_cast<double>(params_.node_set_size), params_,
                          h, rates);
  NSREL_ENSURES(rates.size() ==
                (std::size_t{2} << params_.fault_tolerance) - 1);
  return rates;
}

double l_recursion(int k, const std::vector<double>& h_values, double lambda_n,
                   double d_lambda_d, double mu_n, double mu_d) {
  NSREL_EXPECTS(k >= 1);
  NSREL_EXPECTS(h_values.size() == (std::size_t{1} << k));
  if (k == 1) return h_values[0] * lambda_n + h_values[1] * d_lambda_d;
  const std::size_t half = h_values.size() / 2;
  const std::vector<double> first(h_values.begin(),
                                  h_values.begin() + static_cast<long>(half));
  const std::vector<double> second(h_values.begin() + static_cast<long>(half),
                                   h_values.end());
  const double l_first =
      l_recursion(k - 1, first, lambda_n, d_lambda_d, mu_n, mu_d);
  const double l_second =
      l_recursion(k - 1, second, lambda_n, d_lambda_d, mu_n, mu_d);
  return mu_d * l_first * lambda_n + mu_n * l_second * d_lambda_d;
}

Hours NoInternalRaidModel::mttdl_closed_form() const {
  // Appendix Figure A1:
  //   MTTDL ~= (mu_N mu_d)^k /
  //     ( N(N-1)...(N-k+1) [ (N-k)(lambda_N + d lambda_d) L(mu_d, mu_N)^k
  //                          + (mu_N mu_d) L_k(h^(k)) ] )
  const int k = params_.fault_tolerance;
  const double n = params_.node_set_size;
  const double lambda_n = params_.node_failure.value();
  const double d_lambda_d = static_cast<double>(params_.drives_per_node) *
                            params_.drive_failure.value();
  const double mu_n = params_.node_rebuild.value();
  const double mu_d = params_.drive_rebuild.value();

  const std::vector<double> h = combinat::h_set(h_params());
  const double l_k = l_recursion(k, h, lambda_n, d_lambda_d, mu_n, mu_d);
  const double l_mu = mu_d * lambda_n + mu_n * d_lambda_d;  // L(mu_d, mu_N)
  const double bracket =
      (n - k) * (lambda_n + d_lambda_d) * std::pow(l_mu, k) + mu_n * mu_d * l_k;
  const double denominator =
      falling_factorial(params_.node_set_size, k) * bracket;
  NSREL_ASSERT(denominator > 0.0);
  return Hours(std::pow(mu_n * mu_d, k) / denominator);
}

}  // namespace nsrel::models
