#include "models/internal_raid.hpp"

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "combinat/critical_sets.hpp"
#include "ctmc/absorbing.hpp"
#include "util/assert.hpp"
#include "util/math.hpp"

namespace nsrel::models {

InternalRaidNodeModel::InternalRaidNodeModel(const InternalRaidParams& params)
    : params_(params) {
  NSREL_EXPECTS(params_.fault_tolerance >= 1);
  NSREL_EXPECTS(params_.node_set_size > params_.fault_tolerance);
  NSREL_EXPECTS(params_.redundancy_set_size > params_.fault_tolerance);
  NSREL_EXPECTS(params_.redundancy_set_size <= params_.node_set_size);
  NSREL_EXPECTS(params_.node_failure.value() > 0.0);
  NSREL_EXPECTS(params_.node_rebuild.value() > 0.0);
  NSREL_EXPECTS(params_.array_failure.value() >= 0.0);
  NSREL_EXPECTS(params_.sector_error.value() >= 0.0);
  NSREL_EXPECTS(params_.array_failure.value() + params_.node_failure.value() >
                0.0);
}

double InternalRaidNodeModel::critical_factor() const {
  if (params_.fault_tolerance == 1) return 1.0;
  return combinat::critical_fraction(params_.node_set_size,
                                     params_.redundancy_set_size,
                                     params_.fault_tolerance);
}

ctmc::Chain InternalRaidNodeModel::chain() const {
  const int n = params_.node_set_size;
  const int t = params_.fault_tolerance;
  const double lam = params_.node_failure.value() + params_.array_failure.value();
  const double mu = params_.node_rebuild.value();
  const double sector = critical_factor() * params_.sector_error.value();

  ctmc::Chain c;
  std::vector<ctmc::StateId> degraded(static_cast<std::size_t>(t) + 1);
  for (int i = 0; i <= t; ++i) {
    degraded[static_cast<std::size_t>(i)] =
        c.add_state(std::to_string(i) + "_nodes_lost");
  }
  const ctmc::StateId loss =
      c.add_state("data_loss", ctmc::StateKind::kAbsorbing);

  for (int i = 0; i < t; ++i) {
    c.add_transition(degraded[static_cast<std::size_t>(i)],
                     degraded[static_cast<std::size_t>(i) + 1],
                     static_cast<double>(n - i) * lam);
  }
  // Beyond tolerance: node/array failure, or a hard error striking one of
  // the critical redundancy sets during the in-progress rebuild.
  c.add_transition(degraded[static_cast<std::size_t>(t)], loss,
                   static_cast<double>(n - t) * (lam + sector));
  for (int i = 1; i <= t; ++i) {
    const double repair_rate =
        params_.repair_policy == RepairPolicy::kConcurrent
            ? static_cast<double>(i) * mu
            : mu;
    c.add_transition(degraded[static_cast<std::size_t>(i)],
                     degraded[static_cast<std::size_t>(i) - 1], repair_rate);
  }
  NSREL_ENSURES(c.validate().empty());
  return c;
}

Hours InternalRaidNodeModel::mttdl_exact(ctmc::SolverPolicy policy) const {
  return Hours(ctmc::AbsorbingSolver::mttdl_hours(chain(), 0, policy));
}

Hours InternalRaidNodeModel::mttdl_closed_form() const {
  const int n = params_.node_set_size;
  const int t = params_.fault_tolerance;
  const double lam =
      params_.node_failure.value() + params_.array_failure.value();
  const double mu = params_.node_rebuild.value();
  const double sector = critical_factor() * params_.sector_error.value();
  const double denominator =
      falling_factorial(n, t + 1) * std::pow(lam, t) * (lam + sector);
  NSREL_ASSERT(denominator > 0.0);
  return Hours(std::pow(mu, t) / denominator);
}

Hours internal_raid_ft1_full(const InternalRaidParams& params) {
  NSREL_EXPECTS(params.fault_tolerance == 1);
  const double n = params.node_set_size;
  const double lam = params.node_failure.value() + params.array_failure.value();
  const double mu = params.node_rebuild.value();
  const double sector = params.sector_error.value();
  const double numerator = mu + (2.0 * n - 1.0) * lam + (n - 1.0) * sector;
  const double denominator = n * (n - 1.0) * lam * (lam + sector);
  return Hours(numerator / denominator);
}

}  // namespace nsrel::models
