// Availability extension: what happens AFTER a data-loss event.
//
// The paper's models are absorbing — they stop at the first loss. A
// deployed system restores the lost data from a backup tier and continues,
// so the operational questions become: what fraction of time is data
// available (steady-state availability), how many minutes per year are
// lost, and how much time does the system spend rebuilding (degraded
// exposure)? This module turns any absorbing data-loss chain into its
// repairable counterpart by adding a "restoring" state that returns to
// full health at the restore rate, and answers those questions from the
// stationary distribution.
//
// Renewal-reward gives the exact identity the tests pin down:
//     A = MTTDL / (MTTDL + MTTR_restore).
#pragma once

#include "ctmc/chain.hpp"
#include "util/units.hpp"

namespace nsrel::models {

struct AvailabilityResult {
  double availability = 0.0;          ///< long-run P(data not lost)
  double downtime_minutes_per_year = 0.0;
  /// Long-run fraction of time spent in degraded (non-healthy, non-lost)
  /// states: rebuilds in progress.
  double degraded_fraction = 0.0;
  Hours mttdl{0.0};                   ///< of the underlying absorbing model
};

class AvailabilityModel {
 public:
  /// Wraps an absorbing chain: every absorbing state becomes a
  /// "restoring" state returning to `healthy` at `restore_rate`.
  /// Preconditions: chain.validate() passes; healthy is transient;
  /// restore_rate > 0.
  [[nodiscard]] static ctmc::Chain make_repairable(
      const ctmc::Chain& absorbing_chain, ctmc::StateId healthy,
      PerHour restore_rate);

  /// Full availability analysis of the absorbing model + restore process.
  [[nodiscard]] static AvailabilityResult analyze(
      const ctmc::Chain& absorbing_chain, ctmc::StateId healthy,
      Hours restore_time);
};

}  // namespace nsrel::models
