// Node-level models for nodes WITH internal RAID (paper section 4.2,
// Figures 5, 6, 7 — generalized to arbitrary node fault tolerance).
//
// The hierarchy: a RAID array model (raid::GeneralArrayModel) collapses the
// drives of one node into two rates, lambda_D (array failure) and lambda_S
// (hard error during a critical re-stripe). The node-level chain then
// counts failed nodes 0..t; each failure occurs at rate
// (N-i)(lambda_N + lambda_D), repairs run at mu_N, and the transition from
// the last tolerated state into data loss carries the extra
// k_t * lambda_S term for hard errors striking the critical fraction of
// redundancy sets (section 5.2.1: k_1 = 1, k_2 = (R-1)/(N-1),
// k_3 = (R-1)(R-2)/((N-1)(N-2))).
#pragma once

#include "ctmc/chain.hpp"
#include "ctmc/solver_policy.hpp"
#include "util/units.hpp"

namespace nsrel::models {

/// How rebuilds of multiple concurrent failures proceed. The paper's
/// figures repair one failure at a time (mu_N between consecutive
/// states); a system whose N-1 survivors have bandwidth to rebuild
/// several lost nodes simultaneously repairs each outstanding failure at
/// its own rate (i * mu_N from state i).
enum class RepairPolicy : unsigned char { kSingle, kConcurrent };

struct InternalRaidParams {
  int node_set_size = 64;       ///< N
  int redundancy_set_size = 8;  ///< R
  int fault_tolerance = 2;      ///< t, erasure code strength across nodes
  PerHour node_failure{0.0};    ///< lambda_N
  PerHour node_rebuild{0.0};    ///< mu_N
  PerHour array_failure{0.0};   ///< lambda_D from the internal array model
  PerHour sector_error{0.0};    ///< lambda_S from the internal array model
  RepairPolicy repair_policy = RepairPolicy::kSingle;  ///< paper: single
};

class InternalRaidNodeModel {
 public:
  /// Preconditions: N > t >= 1, t < R <= N, all rates > 0 except
  /// sector_error which may be 0.
  explicit InternalRaidNodeModel(const InternalRaidParams& params);

  [[nodiscard]] const InternalRaidParams& params() const { return params_; }

  /// Critical-set factor k_t applied to lambda_S (1 for t = 1).
  [[nodiscard]] double critical_factor() const;

  /// Exact chain: Figure 5 (t=1), Figure 6 (t=2), Figure 7 (t=3), and the
  /// natural generalization beyond.
  [[nodiscard]] ctmc::Chain chain() const;

  /// MTTDL by numerically solving the exact chain. Both elimination
  /// backends are bit-identical, so the policy only affects wall clock
  /// (and these birth-death chains are tiny anyway).
  [[nodiscard]] Hours mttdl_exact(
      ctmc::SolverPolicy policy = ctmc::SolverPolicy::kAuto) const;

  /// The paper's closed-form approximation:
  ///   mu_N^t / ( N(N-1)...(N-t) (lambda_N+lambda_D)^t
  ///              (lambda_N+lambda_D + k_t lambda_S) ).
  [[nodiscard]] Hours mttdl_closed_form() const;

 private:
  InternalRaidParams params_;
};

/// The paper's pre-approximation FT1 closed form (section 4.2):
///   (mu_N + (2N-1)(lambda_N+lambda_D) + (N-1) lambda_S)
///   / (N(N-1)(lambda_N+lambda_D)(lambda_N+lambda_D+lambda_S)).
[[nodiscard]] Hours internal_raid_ft1_full(const InternalRaidParams& params);

}  // namespace nsrel::models
