// The paper's printed closed-form MTTDL approximations for the
// no-internal-RAID configurations, exactly as they appear in section 4.3
// (fault tolerance 1) and Figure 12 (fault tolerances 2 and 3).
//
// These are intentionally transcribed literally — including their algebraic
// shape — so the test suite can verify that the appendix's general theorem
// (NoInternalRaidModel::mttdl_closed_form) reduces to them for k = 1, 2, 3,
// which is the consistency argument the paper itself makes.
#pragma once

#include "models/no_internal_raid.hpp"
#include "util/units.hpp"

namespace nsrel::models {

/// Section 4.3: MTTDL_{NIR,NFT1}. Requires fault_tolerance == 1.
[[nodiscard]] Hours nir_ft1_printed(const NoInternalRaidParams& p);

/// Figure 12, top: MTTDL_{NIR,NFT2}. Requires fault_tolerance == 2.
[[nodiscard]] Hours nir_ft2_printed(const NoInternalRaidParams& p);

/// Figure 12, bottom: MTTDL_{NIR,NFT3}. Requires fault_tolerance == 3.
[[nodiscard]] Hours nir_ft3_printed(const NoInternalRaidParams& p);

}  // namespace nsrel::models
