#include "repair/fault_schedule.hpp"

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace nsrel::repair {

namespace {

Error malformed(const std::string& detail) {
  return Error{ErrorCode::kInvalidParameter, "repair.fault_schedule",
               detail};
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : text) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t')) ++begin;
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t')) --end;
  return s.substr(begin, end - begin);
}

/// Parses a non-negative integer, requiring the whole string to be
/// digits (no sign, no trailing junk).
bool parse_uint(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = value;
  return true;
}

bool parse_double(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size() && out >= 0.0;
}

}  // namespace

[[nodiscard]] Expected<FaultSchedule> parse_fault_schedule(const std::string& text) {
  FaultSchedule schedule;
  for (const std::string& raw : split(text, ';')) {
    const std::string entry = trim(raw);
    if (entry.empty()) continue;  // allows trailing ';' and blank entries
    const std::size_t space = entry.find(' ');
    if (space == std::string::npos) {
      return malformed("event '" + entry + "' needs '<trigger> <fault>'");
    }
    const std::string trigger = trim(entry.substr(0, space));
    const std::string fault = trim(entry.substr(space + 1));

    FaultEvent event;
    const std::size_t tcolon = trigger.find(':');
    if (tcolon == std::string::npos) {
      return malformed("trigger '" + trigger + "' needs '<kind>:<value>'");
    }
    const std::string tkind = trigger.substr(0, tcolon);
    const std::string tvalue = trigger.substr(tcolon + 1);
    if (tkind == "before" || tkind == "after") {
      event.trigger = tkind == "before" ? TriggerKind::kBeforeTask
                                        : TriggerKind::kAfterTask;
      if (!parse_uint(tvalue, event.index)) {
        return malformed("bad task index '" + tvalue + "'");
      }
    } else if (tkind == "time") {
      event.trigger = TriggerKind::kAtTime;
      if (!parse_double(tvalue, event.time_seconds)) {
        return malformed("bad time '" + tvalue + "'");
      }
    } else {
      return malformed("unknown trigger '" + tkind + "'");
    }

    const std::size_t fcolon = fault.find(':');
    if (fcolon == std::string::npos) {
      return malformed("fault '" + fault + "' needs '<kind>:<id>'");
    }
    const std::string fkind = fault.substr(0, fcolon);
    const std::string fvalue = fault.substr(fcolon + 1);
    std::uint64_t id = 0;
    if (fkind == "node") {
      event.kind = FaultKind::kNode;
      if (!parse_uint(fvalue, id)) {
        return malformed("bad node id '" + fvalue + "'");
      }
      event.node = static_cast<int>(id);
    } else if (fkind == "drive") {
      event.kind = FaultKind::kDrive;
      const std::size_t dot = fvalue.find('.');
      std::uint64_t drive = 0;
      if (dot == std::string::npos || !parse_uint(fvalue.substr(0, dot), id) ||
          !parse_uint(fvalue.substr(dot + 1), drive)) {
        return malformed("bad drive id '" + fvalue +
                         "' (want '<node>.<drive>')");
      }
      event.node = static_cast<int>(id);
      event.drive = static_cast<int>(drive);
    } else {
      return malformed("unknown fault '" + fkind + "'");
    }
    schedule.events.push_back(event);
  }
  return schedule;
}

std::string format_fault_event(const FaultEvent& event) {
  std::ostringstream out;
  switch (event.trigger) {
    case TriggerKind::kBeforeTask:
      out << "before:" << event.index;
      break;
    case TriggerKind::kAfterTask:
      out << "after:" << event.index;
      break;
    case TriggerKind::kAtTime:
      out << "time:" << event.time_seconds;
      break;
  }
  out << ' ';
  if (event.kind == FaultKind::kNode) {
    out << "node:" << event.node;
  } else {
    out << "drive:" << event.node << '.' << event.drive;
  }
  return out.str();
}

}  // namespace nsrel::repair
