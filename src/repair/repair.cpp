#include "repair/repair.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "brick/object_store.hpp"
#include "obs/event_names.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/probe_names.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace nsrel::repair {

namespace {

using brick::Chunk;
using brick::ObjectStore;
using brick::ShardLocation;
using brick::StripeRef;
using brick::StripeStatus;

struct RepairProbes {
  obs::Counter shards_repaired;
  obs::Counter replans;
  obs::Counter retries;
  obs::Counter injected_faults;
  obs::Counter stripes_failed;
};

RepairProbes repair_probes() {
  auto& registry = obs::Registry::instance();
  return {registry.counter(obs::probe::kRepairShardsRepaired),
          registry.counter(obs::probe::kRepairReplans),
          registry.counter(obs::probe::kRepairRetries),
          registry.counter(obs::probe::kRepairInjectedFaults),
          registry.counter(obs::probe::kRepairStripesFailed)};
}

std::string stripe_label(const StripeRef& ref) {
  return "object " + std::to_string(ref.object) + " stripe " +
         std::to_string(ref.stripe);
}

/// The whole mutable state of one run. Everything here is read and
/// written only from the serial phases; the parallel decode phase sees
/// the store read-only and its own result slot.
class Run {
 public:
  Run(ObjectStore& store, const FaultSchedule& schedule,
      const RepairOptions& options)
      : store_(store), options_(options) {
    jobs_ = options.jobs == 0 ? ThreadPool::hardware_threads() : options.jobs;
    NSREL_EXPECTS(jobs_ >= 1);
    NSREL_EXPECTS(options.max_retries >= 0);
    NSREL_EXPECTS(options.retry_backoff_seconds >= 0.0);
    NSREL_EXPECTS(options.timing.bytes_per_second > 0.0);
    for (const FaultEvent& event : schedule.events) {
      events_.push_back({event, false});
    }
    if (jobs_ > 1) pool_.emplace(jobs_);
  }

  RepairReport execute() {
    obs::Span run_span(obs::probe::kSpanRepairRun,
                       obs::probe::kSpanCategoryRepair);
    enqueue_degraded();
    while (true) {
      if (fire_due_events()) {
        replan();
        barrier_callback();
        continue;
      }
      if (pending_.empty()) {
        if (const std::optional<double> next = next_time_event()) {
          // Idle with time-triggered faults still pending: let simulated
          // idle time pass to the next trigger instead of compressing
          // the rest of the schedule into one instant.
          sim_time_ = std::max(sim_time_, *next);
          if (fire_due_events()) {
            replan();
            barrier_callback();
            continue;
          }
        }
        if (fire_remaining_events()) {
          replan();
          barrier_callback();
          continue;
        }
        break;
      }
      const std::vector<RepairTask> batch = form_batch();
      if (batch.empty()) continue;
      const std::vector<Expected<std::vector<Chunk>>> decoded =
          decode_batch(batch);
      commit_batch(batch, decoded);
      barrier_callback();
    }
    report_.duration_seconds = sim_time_;
    // Final join: decode workers never journal, so every event is in
    // the serial thread's ring (or already committed at a barrier).
    if (obs::Journal::enabled()) obs::Journal::instance().drain();
    if (run_span.armed()) {
      run_span.arg("stripes",
                   static_cast<std::uint64_t>(report_.stripes_attempted));
      run_span.arg("shards",
                   static_cast<std::uint64_t>(report_.shards_repaired));
      run_span.arg("faults", report_.injected_faults);
    }
    return std::move(report_);
  }

 private:
  struct ScheduledEvent {
    FaultEvent event;
    bool fired = false;
  };

  [[nodiscard]] double chunk_bytes() const {
    return store_.params().chunk_size.value();
  }
  [[nodiscard]] int data_shards() const {
    return store_.params().redundancy_set_size -
           store_.params().fault_tolerance;
  }

  [[nodiscard]] double task_duration(std::size_t lost) const {
    const double bytes =
        (static_cast<double>(data_shards()) + static_cast<double>(lost)) *
        chunk_bytes();
    return bytes / options_.timing.bytes_per_second;
  }

  /// (Re)builds the pending queue from every currently degraded stripe,
  /// skipping stripes already reported as permanently lost. Carries the
  /// cumulative retry count so retries stay bounded across re-plans.
  void enqueue_degraded() {
    pending_.clear();
    for (const StripeRef& ref : store_.degraded_stripes()) {
      if (failed_stripes_.contains(ref)) continue;
      RepairTask task;
      task.stripe = ref;
      task.retries = cumulative_retries_[ref];
      pending_.push_back(std::move(task));
      attempted_stripes_.insert(ref);
    }
    report_.stripes_attempted = attempted_stripes_.size();
  }

  void replan() {
    const std::uint64_t invalidated =
        static_cast<std::uint64_t>(pending_.size());
    enqueue_degraded();
    report_.replans += invalidated;
    if (invalidated != 0 && obs::Registry::enabled()) {
      obs::Registry::instance().add(repair_probes().replans, invalidated);
    }
    if (invalidated != 0 && obs::Journal::enabled()) {
      obs::Journal::instance().record(
          obs::sim_event(obs::event::kRepairReplan, ++event_seq_, sim_time_)
              .arg("invalidated", invalidated));
    }
  }

  bool apply_fault(const FaultEvent& event) {
    const bool changed =
        event.kind == FaultKind::kNode
            ? store_.fail_node(event.node)
            : store_.fail_drive(event.node, event.drive);
    if (changed) {
      ++report_.injected_faults;
      if (obs::Registry::enabled()) {
        obs::Registry::instance().add(repair_probes().injected_faults);
      }
    }
    if (obs::Journal::enabled()) {
      obs::Event journal_event =
          obs::sim_event(obs::event::kRepairFault, ++event_seq_, sim_time_)
              .arg("node", static_cast<std::uint64_t>(event.node));
      if (event.kind == FaultKind::kDrive) {
        journal_event.arg("drive", static_cast<std::uint64_t>(event.drive));
      }
      journal_event.arg("applied", static_cast<std::uint64_t>(changed ? 1 : 0));
      obs::Journal::instance().record(journal_event);
    }
    return changed;
  }

  [[nodiscard]] bool event_due(const FaultEvent& event) const {
    switch (event.trigger) {
      case TriggerKind::kBeforeTask:
        return committed_ >= event.index;
      case TriggerKind::kAfterTask:
        return committed_ >= event.index + 1;
      case TriggerKind::kAtTime:
        return sim_time_ >= event.time_seconds;
    }
    return false;
  }

  /// Fires every schedule event whose trigger is satisfied at this
  /// barrier, in list order. Returns true when any event fired (the
  /// caller re-plans; even a no-op fault consumed its schedule slot).
  bool fire_due_events() {
    bool fired = false;
    for (ScheduledEvent& scheduled : events_) {
      if (scheduled.fired || !event_due(scheduled.event)) continue;
      scheduled.fired = true;
      fired = true;
      (void)apply_fault(scheduled.event);
    }
    return fired;
  }

  /// End-of-run barrier: events whose trigger never came due (a task
  /// index past the plan, a time past the last commit) still fire, so a
  /// compressed schedule never drops a failure.
  bool fire_remaining_events() {
    bool fired = false;
    for (ScheduledEvent& scheduled : events_) {
      if (scheduled.fired) continue;
      scheduled.fired = true;
      fired = true;
      (void)apply_fault(scheduled.event);
    }
    return fired;
  }

  /// Every batch boundary lands here, with the store consistent and
  /// the simulated clock advanced. The barrier's journal event carries
  /// the serial sequence that foreground work observes as its scope, so
  /// degraded-read/failed-read events emitted by the callback sort
  /// directly after the barrier that served them. The drain is safe:
  /// decode workers never journal, so the serial ring holds everything.
  void barrier_callback() {
    const std::uint64_t seq = ++event_seq_;
    if (obs::Journal::enabled()) {
      obs::Journal::instance().record(
          obs::sim_event(obs::event::kRepairBarrier, seq, sim_time_)
              .arg("batch", ++barrier_index_)
              .arg("committed", committed_));
    } else {
      ++barrier_index_;
    }
    {
      const obs::ScopeGuard journal_scope(seq);
      if (options_.on_barrier) options_.on_barrier(store_, sim_time_);
    }
    if (obs::Journal::enabled()) obs::Journal::instance().drain();
  }

  /// How many more commits until the earliest unfired task-count event
  /// is due (max() when none).
  [[nodiscard]] std::uint64_t tasks_until_task_event() const {
    std::uint64_t limit = ~0ULL;
    for (const ScheduledEvent& scheduled : events_) {
      if (scheduled.fired) continue;
      const FaultEvent& e = scheduled.event;
      if (e.trigger == TriggerKind::kBeforeTask) {
        limit = std::min(limit, e.index - committed_);
      } else if (e.trigger == TriggerKind::kAfterTask) {
        limit = std::min(limit, e.index + 1 - committed_);
      }
    }
    return limit;
  }

  [[nodiscard]] std::optional<double> next_time_event() const {
    std::optional<double> earliest;
    for (const ScheduledEvent& scheduled : events_) {
      if (scheduled.fired ||
          scheduled.event.trigger != TriggerKind::kAtTime) {
        continue;
      }
      if (!earliest || scheduled.event.time_seconds < *earliest) {
        earliest = scheduled.event.time_seconds;
      }
    }
    return earliest;
  }

  /// Pops tasks off the queue, refreshes their shard status, assigns
  /// rebuild targets against a fresh capacity ledger, and stops at the
  /// next fault barrier (task-count distance, or the simulated clock
  /// projecting past a time trigger). Tasks that cannot be planned are
  /// retried or finalized here; they never enter the batch.
  std::vector<RepairTask> form_batch() {
    std::vector<RepairTask> batch;
    const std::uint64_t task_limit = tasks_until_task_event();
    NSREL_ASSERT(task_limit > 0);  // due events fired before batching
    const std::optional<double> time_limit = next_time_event();
    std::vector<double> planned_free(
        static_cast<std::size_t>(store_.params().node_count), 0.0);
    for (int n = 0; n < store_.params().node_count; ++n) {
      planned_free[static_cast<std::size_t>(n)] =
          store_.node(n).free_bytes();
    }
    double projected = sim_time_;
    std::size_t poppable = pending_.size();  // re-enqueues wait a barrier
    while (!pending_.empty() && poppable > 0 &&
           batch.size() < task_limit) {
      --poppable;
      RepairTask task = std::move(pending_.front());
      pending_.erase(pending_.begin());

      const StripeStatus status = store_.stripe_status(task.stripe);
      task.lost_shards.clear();
      for (std::size_t i = 0; i < status.available.size(); ++i) {
        if (!status.available[i]) {
          task.lost_shards.push_back(static_cast<int>(i));
        }
      }
      if (task.lost_shards.empty()) {
        // Healed by earlier partial commits: finalize as success.
        finalize_success(task);
        continue;
      }
      if (status.missing() > store_.params().fault_tolerance) {
        finalize_failure(
            task, Error{ErrorCode::kDataLoss, "repair.run",
                        stripe_label(task.stripe) +
                            " lost more shards than the code tolerates"});
        continue;
      }
      if (!assign_targets(task, status, planned_free)) continue;

      const double duration = task_duration(task.lost_shards.size());
      if (time_limit && !batch.empty() &&
          projected + task.delay_seconds + duration > *time_limit) {
        // The time trigger lands before this task would finish; close
        // the batch here so the fault fires at the right barrier.
        pending_.insert(pending_.begin(), std::move(task));
        break;
      }
      projected += task.delay_seconds + duration;
      batch_status_.push_back(status);
      batch.push_back(std::move(task));
    }
    return batch;
  }

  /// Picks one live target node per lost shard: outside the stripe's
  /// surviving set, distinct from the task's other targets, with the
  /// most planned-free capacity (ties: lowest node id). Reserves the
  /// chunk in the ledger. On failure the task is retried or finalized
  /// with kCapacityExhausted; returns false in that case.
  bool assign_targets(RepairTask& task, const StripeStatus& status,
                      std::vector<double>& planned_free) {
    const int node_count = store_.params().node_count;
    std::vector<bool> occupied(static_cast<std::size_t>(node_count), false);
    for (std::size_t i = 0; i < status.shards.size(); ++i) {
      if (status.available[i]) {
        occupied[static_cast<std::size_t>(status.shards[i].node)] = true;
      }
    }
    task.targets.assign(task.lost_shards.size(), -1);
    for (std::size_t j = 0; j < task.lost_shards.size(); ++j) {
      int best = -1;
      double best_free = chunk_bytes() - 1.0;
      for (int n = 0; n < node_count; ++n) {
        if (!store_.node(n).alive() || occupied[static_cast<std::size_t>(n)]) {
          continue;
        }
        if (planned_free[static_cast<std::size_t>(n)] > best_free) {
          best = n;
          best_free = planned_free[static_cast<std::size_t>(n)];
        }
      }
      if (best < 0) {
        retry_or_finalize(
            task, Error{ErrorCode::kCapacityExhausted, "repair.run",
                        stripe_label(task.stripe) +
                            ": no live node with spare capacity outside "
                            "the stripe"});
        return false;
      }
      task.targets[j] = best;
      occupied[static_cast<std::size_t>(best)] = true;
      planned_free[static_cast<std::size_t>(best)] -= chunk_bytes();
    }
    return true;
  }

  /// Parallel phase: each task decodes its stripe into its own slot.
  /// Read-only against the store, so claim order cannot matter.
  std::vector<Expected<std::vector<Chunk>>> decode_batch(
      const std::vector<RepairTask>& batch) {
    std::vector<Expected<std::vector<Chunk>>> results(batch.size());
    if (jobs_ == 1 || batch.size() == 1) {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        results[i] = store_.try_reconstruct_stripe(batch[i].stripe);
      }
      return results;
    }
    std::atomic<std::size_t> next{0};
    const auto worker = [&] {
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= batch.size()) break;
        results[i] = store_.try_reconstruct_stripe(batch[i].stripe);
      }
    };
    std::vector<std::future<void>> done;
    const std::size_t lanes =
        std::min(static_cast<std::size_t>(jobs_), batch.size());
    done.reserve(lanes);
    for (std::size_t i = 0; i < lanes; ++i) {
      done.push_back(pool_->submit(worker));
    }
    for (std::future<void>& f : done) f.get();
    return results;
  }

  /// Serial phase: commits every task's shards in batch order. Target
  /// drive choice, chunk ids, accounting, and the simulated clock all
  /// advance here, single-threaded — this ordering is the determinism
  /// guarantee.
  void commit_batch(const std::vector<RepairTask>& batch,
                    const std::vector<Expected<std::vector<Chunk>>>& decoded) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      RepairTask task = batch[i];
      sim_time_ += task.delay_seconds;
      task.delay_seconds = 0.0;  // consumed; a retry adds only new backoff
      if (!decoded[i].has_value()) {
        // Decode can only fail with data_loss; it is permanent.
        finalize_failure(task, decoded[i].error());
        continue;
      }
      std::vector<Chunk> shards = decoded[i].value();
      bool all_committed = true;
      for (std::size_t j = 0; j < task.lost_shards.size(); ++j) {
        const int shard_index = task.lost_shards[j];
        Expected<ShardLocation> committed = store_.commit_repaired_shard(
            task.stripe, shard_index, task.targets[j],
            std::move(shards[static_cast<std::size_t>(shard_index)]));
        if (!committed.has_value()) {
          retry_or_finalize(task, committed.error());
          all_committed = false;
          break;
        }
        committed_shards_[task.stripe].push_back(
            ShardRepair{shard_index, committed.value()});
        report_.received_bytes[committed.value().node] += chunk_bytes();
        report_.bytes_reconstructed += chunk_bytes();
        ++report_.shards_repaired;
        if (obs::Registry::enabled()) {
          obs::Registry::instance().add(repair_probes().shards_repaired);
        }
      }
      if (!all_committed) continue;
      // Decode consumed the first k survivors in shard-index order
      // (matching ObjectStore::rebuild's accounting and §5.1's flows).
      const StripeStatus& status = batch_status_[i];
      int inputs = 0;
      for (std::size_t s = 0;
           s < status.available.size() && inputs < data_shards(); ++s) {
        if (!status.available[s]) continue;
        report_.sourced_bytes[status.shards[s].node] += chunk_bytes();
        ++inputs;
      }
      sim_time_ += task_duration(task.lost_shards.size());
      ++committed_;
      finalize_success(task);
    }
    batch_status_.clear();
  }

  void finalize_success(const RepairTask& task) {
    obs::Span span(obs::probe::kSpanRepairTask,
                   obs::probe::kSpanCategoryRepair);
    if (span.armed()) {
      span.arg("stripe", stripe_label(task.stripe));
      span.arg("outcome", "ok");
      span.arg("retries", static_cast<std::uint64_t>(task.retries));
    }
    StripeRepair repair;
    repair.retries = task.retries;
    const auto it = committed_shards_.find(task.stripe);
    if (it != committed_shards_.end()) {
      repair.shards = std::move(it->second);
      committed_shards_.erase(it);
    }
    report_.outcomes.push_back(
        RepairOutcome{task.stripe, std::move(repair)});
  }

  void finalize_failure(const RepairTask& task, Error error) {
    obs::Span span(obs::probe::kSpanRepairTask,
                   obs::probe::kSpanCategoryRepair);
    if (span.armed()) {
      span.arg("stripe", stripe_label(task.stripe));
      span.arg("outcome", error_code_name(error.code));
      span.arg("retries", static_cast<std::uint64_t>(task.retries));
    }
    failed_stripes_.insert(task.stripe);
    committed_shards_.erase(task.stripe);
    ++report_.stripes_failed;
    if (obs::Registry::enabled()) {
      obs::Registry::instance().add(repair_probes().stripes_failed);
    }
    report_.outcomes.push_back(RepairOutcome{task.stripe, std::move(error)});
  }

  /// An execution failure (dead target, fragmented node) consumes one
  /// bounded retry: the task re-enters the queue with exponential
  /// backoff on the simulated clock and is re-planned from scratch at
  /// its next attempt. Retries exhausted -> typed failure outcome.
  void retry_or_finalize(RepairTask& task, const Error& error) {
    if (task.retries >= options_.max_retries) {
      finalize_failure(task, error);
      return;
    }
    double backoff = options_.retry_backoff_seconds;
    for (int i = 0; i < task.retries; ++i) backoff *= 2.0;
    ++task.retries;
    cumulative_retries_[task.stripe] = task.retries;
    ++report_.retries;
    if (obs::Registry::enabled()) {
      obs::Registry::instance().add(repair_probes().retries);
    }
    if (obs::Journal::enabled()) {
      obs::Journal::instance().record(
          obs::sim_event(obs::event::kRepairRetry, ++event_seq_, sim_time_)
              .arg("object", static_cast<std::uint64_t>(task.stripe.object))
              .arg("stripe", static_cast<std::uint64_t>(task.stripe.stripe))
              .arg("retries", static_cast<std::uint64_t>(task.retries)));
    }
    RepairTask requeued;
    requeued.stripe = task.stripe;
    requeued.retries = task.retries;
    requeued.delay_seconds = task.delay_seconds + backoff;
    pending_.push_back(std::move(requeued));
  }

  ObjectStore& store_;
  const RepairOptions& options_;
  int jobs_ = 1;
  std::optional<ThreadPool> pool_;
  std::vector<ScheduledEvent> events_;
  std::vector<RepairTask> pending_;
  std::vector<StripeStatus> batch_status_;  ///< parallel to current batch
  std::set<StripeRef> failed_stripes_;
  std::set<StripeRef> attempted_stripes_;
  std::map<StripeRef, std::vector<ShardRepair>> committed_shards_;
  std::map<StripeRef, int> cumulative_retries_;
  std::uint64_t committed_ = 0;
  std::uint64_t event_seq_ = 0;      ///< serial journal sequence
  std::uint64_t barrier_index_ = 0;  ///< 1-based batch number
  double sim_time_ = 0.0;
  RepairReport report_;
};

}  // namespace

RepairPlan plan_repair(const brick::ObjectStore& store) {
  RepairPlan plan;
  for (const StripeRef& ref : store.degraded_stripes()) {
    const StripeStatus status = store.stripe_status(ref);
    RepairTask task;
    task.stripe = ref;
    for (std::size_t i = 0; i < status.available.size(); ++i) {
      if (!status.available[i]) task.lost_shards.push_back(static_cast<int>(i));
    }
    task.targets.assign(task.lost_shards.size(), -1);
    plan.tasks.push_back(std::move(task));
  }
  return plan;
}

RepairReport run_repair(brick::ObjectStore& store,
                        const FaultSchedule& schedule,
                        const RepairOptions& options) {
  Run run(store, schedule, options);
  return run.execute();
}

RepairReport run_repair(brick::ObjectStore& store) {
  return run_repair(store, FaultSchedule{}, RepairOptions{});
}

std::string render_repair_report(const RepairReport& report) {
  std::ostringstream out;
  out << "repair report\n"
      << "  stripes attempted:   " << report.stripes_attempted << "\n"
      << "  stripes failed:      " << report.stripes_failed << "\n"
      << "  shards repaired:     " << report.shards_repaired << "\n"
      << "  bytes reconstructed: " << report.bytes_reconstructed << "\n"
      << "  replans:             " << report.replans << "\n"
      << "  retries:             " << report.retries << "\n"
      << "  injected faults:     " << report.injected_faults << "\n"
      << "  simulated duration:  " << report.duration_seconds << " s\n";
  out << "  sourced bytes by node:\n";
  for (const auto& [node, bytes] : report.sourced_bytes) {
    out << "    node " << node << ": " << bytes << "\n";
  }
  out << "  received bytes by node:\n";
  for (const auto& [node, bytes] : report.received_bytes) {
    out << "    node " << node << ": " << bytes << "\n";
  }
  out << "  outcomes:\n";
  for (const RepairOutcome& outcome : report.outcomes) {
    out << "    " << stripe_label(outcome.stripe) << ": ";
    if (outcome.result.has_value()) {
      const StripeRepair& repair = outcome.result.value();
      out << "ok (" << repair.shards.size() << " shards, " << repair.retries
          << " retries)";
    } else {
      out << outcome.result.error().message();
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace nsrel::repair
