// Deterministic fault injection for the concurrent repair engine.
//
// A FaultSchedule is an ordered list of node/drive failures, each tied to
// a deterministic point of a repair run: before the Nth committed task,
// right after the Nth task commits, or at a simulated-time instant. The
// run fires events only at its serial barriers, so the same schedule
// produces the same store state and report at any --jobs count —
// including schedules that kill the sources or targets of repairs that
// are already planned or in flight.
//
// The textual format (parse_fault_schedule) keeps test matrices and docs
// readable. Events are ';'-separated; each event is a trigger followed by
// a fault:
//
//   trigger := "before:<task>" | "after:<task>" | "time:<seconds>"
//   fault   := "node:<id>" | "drive:<node>.<drive>"
//
// e.g. "before:0 node:3; after:2 drive:1.0; time:0.5 node:7". Ids are
// deliberately unvalidated against any store geometry: replaying a
// schedule against a smaller store must degrade to no-ops, not crash.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace nsrel::repair {

/// When an injected fault fires, relative to the run's committed-task
/// counter or to its simulated clock (see RepairTiming).
enum class TriggerKind : unsigned char {
  kBeforeTask,  ///< at the barrier where `index` tasks have committed
  kAfterTask,   ///< at the barrier right after task `index` commits
  kAtTime,      ///< at the first barrier whose clock reaches `time_seconds`
};

/// What fails: a whole node or a single drive inside one.
enum class FaultKind : unsigned char { kNode, kDrive };

struct FaultEvent {
  TriggerKind trigger = TriggerKind::kBeforeTask;
  std::uint64_t index = 0;    ///< task counter (kBeforeTask / kAfterTask)
  double time_seconds = 0.0;  ///< simulated seconds (kAtTime)
  FaultKind kind = FaultKind::kNode;
  int node = 0;
  int drive = 0;  ///< kDrive only

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// An ordered fault schedule. Events fire in list order when several are
/// due at the same barrier. Time-triggered events outliving the repair
/// work fire after simulated idle time advances to their instant;
/// task-count events whose index the run never reaches fire at the final
/// barrier — a compressed schedule never silently drops a failure.
struct FaultSchedule {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }
};

/// Parses the textual format above. kInvalidParameter on malformed
/// input (unknown trigger/fault word, missing field, bad number).
[[nodiscard]] Expected<FaultSchedule> parse_fault_schedule(
    const std::string& text);

/// Renders an event back into the textual format (exact inverse of the
/// parser for integer-second times; used by reports and tests).
[[nodiscard]] std::string format_fault_event(const FaultEvent& event);

}  // namespace nsrel::repair
