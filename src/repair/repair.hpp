// Concurrent, fault-tolerant repair engine for the brick store — the
// running counterpart of the paper's section-5.1 rebuild flow model, in
// the spirit of Motr's SNS repair: lost shards are reconstructed from
// survivors by parallel per-stripe tasks while the store keeps serving
// (degraded) reads, and the engine itself survives fresh node/drive
// failures injected mid-run.
//
// Determinism scheme (the repo-wide invariant: byte-identical results at
// any --jobs). A run alternates two phases:
//
//   1. a PARALLEL phase where a batch of tasks gathers survivors and
//      decodes — read-only against the store, results land in disjoint
//      slots, so claim order is irrelevant;
//   2. a SERIAL phase where decoded shards are committed in task order —
//      target drives, chunk ids, spare-capacity accounting, and the
//      simulated clock all advance single-threaded.
//
// Batch boundaries ("barriers") are derived from the fault schedule so
// every injected failure lands at a deterministic committed-task count.
// After a fault the engine re-plans: pending tasks are rebuilt against
// the remaining survivors (new targets, fresh capacity reservations),
// newly degraded stripes — including stripes whose already-repaired
// shards the fault just killed — are enqueued, and a stripe that is now
// beyond recovery becomes a typed per-stripe data_loss outcome instead
// of aborting the run. Execution failures (a target killed between
// planning and commit, a fragmented node refusing the shard) consume a
// bounded number of retries with exponential backoff measured on the
// simulated clock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "brick/object_store.hpp"
#include "repair/fault_schedule.hpp"
#include "util/error.hpp"

namespace nsrel::repair {

/// Simulated-time model: the run's clock advances by bytes-moved /
/// bytes_per_second as tasks commit (aggregate rebuild bandwidth — the
/// serial sum over tasks models a bandwidth-limited rebuild). The clock
/// orders retry backoff and time-triggered faults; it never reads a real
/// clock, so runs are reproducible.
struct RepairTiming {
  double bytes_per_second = 1.0e6;
};

struct RepairOptions {
  int jobs = 1;  ///< parallel decode workers; 0 = all hardware threads
  int max_retries = 3;  ///< execution retries per stripe (cumulative)
  double retry_backoff_seconds = 1e-3;  ///< base; doubles per retry used
  RepairTiming timing;
  /// Degraded-mode service hook: called at every barrier (after commits
  /// and fault application) with the store quiescent — the soak harness
  /// runs foreground workload reads here. Must be deterministic for the
  /// run to stay jobs-invariant.
  std::function<void(brick::ObjectStore&, double sim_seconds)> on_barrier;
};

/// One planned per-stripe task: which shards to rebuild and (once the
/// serial planner assigned them) where.
struct RepairTask {
  brick::StripeRef stripe;
  std::vector<int> lost_shards;  ///< shard indices to reconstruct
  std::vector<int> targets;      ///< parallel to lost_shards; -1 unassigned
  int retries = 0;               ///< execution retries consumed so far
  double delay_seconds = 0.0;    ///< accumulated backoff before it runs
};

/// The deterministic partition of all currently-lost shards into
/// per-stripe tasks, in (object id, stripe index) order. Targets are
/// assigned later, against the capacity ledger current at execution.
struct RepairPlan {
  std::vector<RepairTask> tasks;

  [[nodiscard]] std::size_t shard_count() const {
    std::size_t count = 0;
    for (const RepairTask& task : tasks) count += task.lost_shards.size();
    return count;
  }
};

[[nodiscard]] RepairPlan plan_repair(const brick::ObjectStore& store);

/// One successfully repaired shard.
struct ShardRepair {
  int shard_index = -1;
  brick::ShardLocation location;
};

/// A fully repaired stripe: every lost shard rebuilt and committed.
struct StripeRepair {
  std::vector<ShardRepair> shards;
  int retries = 0;  ///< retries this stripe consumed before succeeding
};

/// Typed per-stripe outcome, in commit/failure order (deterministic).
/// Failures carry data_loss (beyond recovery — permanent) or
/// capacity_exhausted / invalid_parameter (retries exhausted).
struct RepairOutcome {
  brick::StripeRef stripe;
  Expected<StripeRepair> result;
};

struct RepairReport {
  std::size_t stripes_attempted = 0;  ///< distinct stripes ever enqueued
  std::size_t stripes_failed = 0;     ///< typed-failure outcomes
  std::size_t shards_repaired = 0;
  double bytes_reconstructed = 0.0;
  /// Bytes each node contributed as decode input (by node id).
  std::map<int, double> sourced_bytes;
  /// Bytes each node received as rebuilt output (by node id).
  std::map<int, double> received_bytes;
  std::uint64_t replans = 0;   ///< tasks rebuilt at fault barriers
  std::uint64_t retries = 0;   ///< execution retries consumed
  std::uint64_t injected_faults = 0;  ///< schedule events that changed state
  double duration_seconds = 0.0;      ///< final simulated clock
  std::vector<RepairOutcome> outcomes;

  [[nodiscard]] bool fully_successful() const { return stripes_failed == 0; }
};

/// Deterministic human-readable rendering of a report (totals, per-node
/// flows, every outcome). Byte-identical at any --jobs for the same
/// store + schedule — the jobs-invariance tests compare these strings.
[[nodiscard]] std::string render_repair_report(const RepairReport& report);

/// Runs a full repair of every degraded stripe under the given fault
/// schedule. Injected failures never escape as exceptions: the report
/// carries typed per-stripe outcomes, and the store is left with every
/// stripe either fully repaired or recorded as failed (nothing is
/// silently dropped). Re-running on the repaired store is a no-op.
[[nodiscard]] RepairReport run_repair(brick::ObjectStore& store,
                                      const FaultSchedule& schedule,
                                      const RepairOptions& options);

/// Convenience overload: no faults, default options.
[[nodiscard]] RepairReport run_repair(brick::ObjectStore& store);

}  // namespace nsrel::repair
