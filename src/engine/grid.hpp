// Evaluation grids: the declarative input of the evaluation engine.
//
// A grid is a list of system-configuration points (rows — usually one
// swept parameter applied to a base SystemConfig via core::set_parameter)
// crossed with a list of redundancy configurations (columns) and a
// solution method. Every front-end — CLI sweep/compare/analyze, scenario
// runner, figure benches — describes its work as a Grid and hands it to
// engine::evaluate instead of looping over Analyzer itself.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "core/system_config.hpp"
#include "ctmc/solver_policy.hpp"

namespace nsrel::engine {

/// One row of the grid: a fully-built system plus the swept value it
/// came from and the label it renders under.
struct GridPoint {
  core::SystemConfig system;
  double x = 0.0;
  std::string label;
};

struct Grid {
  /// Header of the x column; empty for single-point (no-sweep) grids.
  std::string axis;
  std::vector<GridPoint> points;
  std::vector<core::Configuration> configurations;
  core::Method method = core::Method::kExactChain;
  /// CTMC solve backend for every cell (CLI --solver). The elimination
  /// backends are bit-identical, so rendered output is the same under
  /// any policy; only wall clock changes.
  ctmc::SolverPolicy solver = ctmc::SolverPolicy::kAuto;

  [[nodiscard]] bool has_axis() const { return !axis.empty(); }
};

/// Renders a swept value into its row label; defaults to sci(x, 4).
using AxisFormatter = std::function<std::string(double)>;

/// Builds one grid point per swept SystemConfig produced by the caller's
/// factory — the fully general form the benches use (several fields may
/// change together).
[[nodiscard]] Grid custom_sweep(
    const std::string& axis, const std::vector<double>& values,
    const std::function<core::SystemConfig(double)>& make_system,
    std::vector<core::Configuration> configurations,
    core::Method method = core::Method::kExactChain,
    const AxisFormatter& format_x = {});

/// Sweeps one canonical parameter (core::set_parameter names) over the
/// given values. Throws ContractViolation on an unknown parameter name
/// or a value the resulting SystemConfig rejects.
[[nodiscard]] Grid parameter_sweep(
    const core::SystemConfig& base, const std::string& parameter,
    const std::vector<double>& values,
    std::vector<core::Configuration> configurations,
    core::Method method = core::Method::kExactChain,
    const AxisFormatter& format_x = {});

/// A grid with exactly one point and no swept axis (compare/analyze).
[[nodiscard]] Grid single_point(
    const core::SystemConfig& system,
    std::vector<core::Configuration> configurations,
    core::Method method = core::Method::kExactChain,
    const std::string& label = "events/PB-yr");

/// `steps` points from `from` to `to` inclusive, log- or linearly
/// spaced. Preconditions: steps >= 2; log scale needs 0 < from < to.
[[nodiscard]] std::vector<double> spaced_points(double from, double to,
                                                int steps, bool log_scale);

}  // namespace nsrel::engine
