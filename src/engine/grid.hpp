// Evaluation grids: the declarative input of the evaluation engine.
//
// A grid is the cartesian product of N named parameter axes — flattened
// into a list of fully-built system-configuration points (rows; the last
// axis varies fastest) — crossed with a list of redundancy configurations
// (columns) and a solution method. N = 0 is a single evaluation point
// (compare/analyze), N = 1 the classic one-parameter sweep, N = 2 a
// drive-MTTF × link-Gbps heat map, and so on. Every front-end — CLI
// sweep/compare/analyze/simulate, scenario runner, figure benches —
// describes its work as a Grid and hands it to engine::evaluate instead
// of looping over Analyzer itself.
//
// Cells are analytic (core::AnalysisResult via the solve stack) by
// default; setting `simulation` turns every cell into a Monte-Carlo
// estimate (sim::SimEstimate) instead, evaluated through the same
// jobs-invariant fan-out with a deterministic per-cell seed stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "core/system_config.hpp"
#include "ctmc/solver_policy.hpp"
#include "sim/parallel.hpp"

namespace nsrel::engine {

/// One named sweep axis: the swept values and their rendered labels
/// (parallel vectors, one entry per value).
struct Axis {
  std::string name;
  std::vector<double> values;
  std::vector<std::string> labels;
};

/// One row of the grid: a fully-built system plus the swept coordinates
/// it came from (one per axis, same order; empty for 0-axis grids) and
/// the label it renders under.
struct GridPoint {
  core::SystemConfig system;
  std::vector<double> coords;
  std::string label;
};

/// Monte-Carlo cell specification: when set on a Grid, every cell runs
/// `trials` trials of the configuration's storage simulator instead of
/// the analytic solve. Cell (flat index i) draws from seed
/// `cell_seed(seed, i)` — a pure function of the grid, never of the
/// thread schedule — so results are bit-identical at any jobs count.
struct SimSpec {
  int trials = 4000;
  std::uint64_t seed = 0x5EEDULL;
  /// chunk_trials / ci_target / max_trials apply per cell. `jobs` is the
  /// *intra-cell* worker count and is honored only for single-cell grids
  /// (the classic `nsrel simulate` shape); multi-cell grids parallelize
  /// across cells instead and run each cell's trials inline. Either way
  /// the estimates are bit-identical (sim::run_trials is jobs-invariant).
  sim::ParallelOptions options;
};

/// The deterministic per-cell seed stream: cell 0 uses the base seed
/// itself (so a single-cell simulate is exactly the historical
/// single-estimate run), later cells draw independent splitmix-derived
/// streams.
[[nodiscard]] std::uint64_t cell_seed(std::uint64_t seed, std::size_t index);

struct Grid {
  /// The sweep axes, outermost first; empty for single-point grids.
  std::vector<Axis> axes;
  /// Flattened cartesian product of the axes (last axis fastest), or a
  /// single unlabeled point for 0-axis grids.
  std::vector<GridPoint> points;
  std::vector<core::Configuration> configurations;
  core::Method method = core::Method::kExactChain;
  /// CTMC solve backend for every cell (CLI --solver). The elimination
  /// backends are bit-identical, so rendered output is the same under
  /// any policy; only wall clock changes. Ignored for sim grids.
  ctmc::SolverPolicy solver = ctmc::SolverPolicy::kAuto;
  /// When set, cells are Monte-Carlo estimates instead of analytic
  /// solves (see SimSpec).
  std::optional<SimSpec> simulation;

  [[nodiscard]] bool has_axis() const { return !axes.empty(); }
  [[nodiscard]] bool is_simulation() const { return simulation.has_value(); }

  /// The header of the row-label column: the axis names joined with
  /// " x " ("drive-mttf x link-gbps"), or the single axis name — which
  /// keeps 1-axis output byte-identical to the historical single-axis
  /// grid. Empty for 0-axis grids.
  [[nodiscard]] std::string axis_header() const;
};

/// Renders a swept value into its row label; defaults to sci(x, 4).
using AxisFormatter = std::function<std::string(double)>;

/// One axis of a cartesian sweep over canonical parameter names.
struct AxisSpec {
  std::string parameter;
  std::vector<double> values;
  AxisFormatter format;  ///< optional; defaults to sci(x, 4)
};

/// The fully general N-axis builder: one grid point per element of the
/// cartesian product of the axes' values (last axis fastest), with the
/// caller's factory building each point's SystemConfig from its
/// coordinate vector (one value per axis, axis order). Point labels join
/// the per-axis labels with " x " (a single axis keeps its label as-is).
/// Preconditions: at least one axis, no axis empty, configurations
/// non-empty.
[[nodiscard]] Grid custom_cartesian(
    std::vector<Axis> axes,
    const std::function<core::SystemConfig(const std::vector<double>&)>&
        make_system,
    std::vector<core::Configuration> configurations,
    core::Method method = core::Method::kExactChain);

/// Cartesian sweep over canonical parameter names (core::set_parameter):
/// each point applies every axis's value to `base` in axis order. Throws
/// ContractViolation on an unknown parameter name or a value the
/// resulting SystemConfig rejects.
[[nodiscard]] Grid cartesian_sweep(
    const core::SystemConfig& base, const std::vector<AxisSpec>& axes,
    std::vector<core::Configuration> configurations,
    core::Method method = core::Method::kExactChain);

/// Builds one grid point per swept SystemConfig produced by the caller's
/// factory — the single-axis form the benches use (several fields may
/// change together). Thin wrapper over custom_cartesian.
[[nodiscard]] Grid custom_sweep(
    const std::string& axis, const std::vector<double>& values,
    const std::function<core::SystemConfig(double)>& make_system,
    std::vector<core::Configuration> configurations,
    core::Method method = core::Method::kExactChain,
    const AxisFormatter& format_x = {});

/// Sweeps one canonical parameter (core::set_parameter names) over the
/// given values. Thin wrapper over cartesian_sweep. Throws
/// ContractViolation on an unknown parameter name or a value the
/// resulting SystemConfig rejects.
[[nodiscard]] Grid parameter_sweep(
    const core::SystemConfig& base, const std::string& parameter,
    const std::vector<double>& values,
    std::vector<core::Configuration> configurations,
    core::Method method = core::Method::kExactChain,
    const AxisFormatter& format_x = {});

/// A grid with exactly one point and no swept axis (compare/analyze).
[[nodiscard]] Grid single_point(
    const core::SystemConfig& system,
    std::vector<core::Configuration> configurations,
    core::Method method = core::Method::kExactChain,
    const std::string& label = "events/PB-yr");

/// `steps` points from `from` to `to` inclusive, log- or linearly
/// spaced. Preconditions: steps >= 2; log scale needs 0 < from < to.
[[nodiscard]] std::vector<double> spaced_points(double from, double to,
                                                int steps, bool log_scale);

}  // namespace nsrel::engine
