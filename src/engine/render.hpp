// Presentation of evaluated grids, separated from evaluation: the same
// ResultSet renders as the scenario/bench events matrix, the CLI's sweep
// and compare tables, the simulate estimate table, or a machine-readable
// JSON document. None of the renderers include scheduling artifacts
// (jobs, cache counters) by default, so rendered bytes are identical at
// any --jobs value. Cache counters appear only behind the explicit
// opt-in switches below (JsonOptions::cache_meta / print_cache_footer —
// the CLI's --cache-stats flag), documented as schedule-dependent for
// jobs > 1.
//
// N-axis grids: every row-oriented renderer is axis-order agnostic — it
// walks the flattened points in grid order and uses the point's label
// (the per-axis labels joined with " x ") and Grid::axis_header() for
// the label column, so 1-axis output is byte-identical to the historical
// single-axis renderers and higher-axis grids need no renderer changes.
#pragma once

#include <iosfwd>

#include "core/analyzer.hpp"
#include "engine/engine.hpp"
#include "report/resultset_doc.hpp"
#include "report/table.hpp"

namespace nsrel::engine {

/// Rows = grid points, one column per configuration, cells =
/// events/PB-year. With a non-null `mark_target`, values meeting the
/// target get the " *" suffix (the scenario/bench table convention);
/// pass nullptr for CSV output. Failed cells render as "!" plus the
/// stable error code (e.g. "!singular_generator") in every table shape,
/// byte-identically at any jobs count. Precondition: analytic grid.
[[nodiscard]] report::Table events_table(
    const ResultSet& results, const core::ReliabilityTarget* mark_target);

/// Rows = grid points; per configuration an "MTTDL (h)" and an
/// "events/PB-yr" column (headers prefixed with the configuration name
/// when the grid has several). The CLI sweep shape. Precondition:
/// analytic grid.
[[nodiscard]] report::Table sweep_table(const ResultSet& results);

/// Rows = grid points; per configuration a "sim MTTDL (h)" and a
/// "95% CI" column (headers prefixed with the configuration name when
/// the grid has several). The CLI simulate-sweep shape. Precondition:
/// simulation grid.
[[nodiscard]] report::Table sim_sweep_table(const ResultSet& results);

/// Rows = configurations of the single grid point: configuration, MTTDL,
/// events/PB-yr, meets. The CLI compare shape. Precondition: exactly one
/// grid point (this renderer has no label column to distinguish points)
/// and an analytic grid.
[[nodiscard]] report::Table compare_table(const ResultSet& results,
                                          const core::ReliabilityTarget& target);

/// Opt-in extras for write_json. Defaults add nothing, keeping the
/// document jobs-invariant.
struct JsonOptions {
  /// Emit a "meta": {"cache": {hits, misses, lookups}} object (the
  /// ResultSet's cache_stats()). Off by default because the counters
  /// depend on the thread schedule for jobs > 1.
  bool cache_meta = false;
};

/// The ResultSet as a serializable document (schema nsrel-resultset-v3):
/// what write_json emits, exposed so tests and tools can round-trip
/// through report::write_resultset_json / read_resultset_json without
/// going through a stream.
[[nodiscard]] report::ResultSetDoc make_document(const ResultSet& results,
                                                 const JsonOptions& options);

/// Full structured dump (schema nsrel-resultset-v3): method, axes,
/// points (label + coordinate vector), configuration names, and one
/// record per cell. Every cell carries an "error" field — null on
/// success (a "kind"-tagged analytic or sim record follows), a
/// {code, layer, detail} object on failure. Numbers round-trip exactly
/// through strtod; report::read_resultset_json reads the document back
/// byte-reproducibly.
void write_json(const ResultSet& results, std::ostream& out);
void write_json(const ResultSet& results, std::ostream& out,
                const JsonOptions& options);

/// One-line solve-cache summary ("cache: N hits, M misses (L lookups)")
/// appended after tables when the CLI's --cache-stats flag asks for it.
void print_cache_footer(const ResultSet& results, std::ostream& out);

}  // namespace nsrel::engine
