// Presentation of evaluated grids, separated from evaluation: the same
// ResultSet renders as the scenario/bench events matrix, the CLI's sweep
// and compare tables, or a machine-readable JSON document. None of the
// renderers include scheduling artifacts (jobs, cache counters) by
// default, so rendered bytes are identical at any --jobs value. Cache
// counters appear only behind the explicit opt-in switches below
// (JsonOptions::cache_meta / print_cache_footer — the CLI's
// --cache-stats flag), documented as schedule-dependent for jobs > 1.
#pragma once

#include <iosfwd>

#include "core/analyzer.hpp"
#include "engine/engine.hpp"
#include "report/table.hpp"

namespace nsrel::engine {

/// Rows = grid points, one column per configuration, cells =
/// events/PB-year. With a non-null `mark_target`, values meeting the
/// target get the " *" suffix (the scenario/bench table convention);
/// pass nullptr for CSV output. Failed cells render as "!" plus the
/// stable error code (e.g. "!singular_generator") in every table shape,
/// byte-identically at any jobs count.
[[nodiscard]] report::Table events_table(
    const ResultSet& results, const core::ReliabilityTarget* mark_target);

/// Rows = grid points; per configuration an "MTTDL (h)" and an
/// "events/PB-yr" column (headers prefixed with the configuration name
/// when the grid has several). The CLI sweep shape.
[[nodiscard]] report::Table sweep_table(const ResultSet& results);

/// Rows = configurations of the first grid point: configuration, MTTDL,
/// events/PB-yr, meets. The CLI compare shape.
[[nodiscard]] report::Table compare_table(const ResultSet& results,
                                          const core::ReliabilityTarget& target);

/// Opt-in extras for write_json. Defaults add nothing, keeping the
/// document jobs-invariant.
struct JsonOptions {
  /// Emit a "meta": {"cache": {hits, misses, lookups}} object (the
  /// ResultSet's cache_stats()). Off by default because the counters
  /// depend on the thread schedule for jobs > 1.
  bool cache_meta = false;
};

/// Full structured dump (schema nsrel-resultset-v2): method, axis,
/// points (label + swept value), configuration names, and one record per
/// cell. Every cell carries an "error" field — null on success (the
/// AnalysisResult scalars follow), a {code, layer, detail} object on
/// failure (numeric fields omitted). Numbers round-trip exactly through
/// strtod.
void write_json(const ResultSet& results, std::ostream& out);
void write_json(const ResultSet& results, std::ostream& out,
                const JsonOptions& options);

/// One-line solve-cache summary ("cache: N hits, M misses (L lookups)")
/// appended after tables when the CLI's --cache-stats flag asks for it.
void print_cache_footer(const ResultSet& results, std::ostream& out);

}  // namespace nsrel::engine
