#include "engine/engine.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "engine/testing.hpp"
#include "obs/event_names.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/probe_names.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/sync.hpp"
#include "util/thread_pool.hpp"

namespace nsrel::engine {

namespace {

util::Mutex fault_mutex;
std::vector<testing::CellFault> registered_faults
    NSREL_GUARDED_BY(fault_mutex);

/// Raises the registered fault the way a real failure of that class
/// would surface from the model stack.
[[noreturn]] void raise_injected(ErrorCode code) {
  switch (code) {
    case ErrorCode::kContractViolation:
      throw ContractViolation("injected fault");
    case ErrorCode::kInternal:
      throw std::runtime_error("injected fault");
    default:
      throw ErrorException(
          Error{code, "engine.testing", "injected fault"});
  }
}

}  // namespace

namespace testing {

void inject_cell_fault(std::size_t point, std::size_t configuration,
                       ErrorCode code) {
  const util::MutexLock lock(fault_mutex);
  registered_faults.push_back({point, configuration, code});
}

void clear_cell_faults() {
  const util::MutexLock lock(fault_mutex);
  registered_faults.clear();
}

std::vector<CellFault> snapshot_cell_faults() {
  const util::MutexLock lock(fault_mutex);
  return registered_faults;
}

}  // namespace testing

OnError parse_on_error(const std::string& name) {
  if (name == "skip") return OnError::kSkip;
  if (name == "fail") return OnError::kFailFast;
  throw ContractViolation("unknown on-error policy '" + name +
                          "' (use skip|fail)");
}

ResultSet::ResultSet(Grid grid, std::vector<Cell> cells,
                     core::SolveCache::Stats cache_stats)
    : grid_(std::move(grid)),
      cells_(std::move(cells)),
      cache_stats_(cache_stats) {
  NSREL_EXPECTS(cells_.size() ==
                grid_.points.size() * grid_.configurations.size());
}

const ResultSet::Cell& ResultSet::cell(std::size_t point,
                                       std::size_t configuration) const {
  NSREL_EXPECTS(point < grid_.points.size());
  NSREL_EXPECTS(configuration < grid_.configurations.size());
  return cells_[point * grid_.configurations.size() + configuration];
}

bool ResultSet::ok(std::size_t point, std::size_t configuration) const {
  return cell(point, configuration).has_value();
}

bool ResultSet::is_sim(std::size_t point, std::size_t configuration) const {
  const Cell& c = cell(point, configuration);
  NSREL_EXPECTS(c.has_value());
  return std::holds_alternative<sim::SimEstimate>(c.value());
}

const core::AnalysisResult& ResultSet::at(std::size_t point,
                                          std::size_t configuration) const {
  const Cell& c = cell(point, configuration);
  NSREL_EXPECTS(c.has_value());
  NSREL_EXPECTS(std::holds_alternative<core::AnalysisResult>(c.value()));
  return std::get<core::AnalysisResult>(c.value());
}

const sim::SimEstimate& ResultSet::sim_at(std::size_t point,
                                          std::size_t configuration) const {
  const Cell& c = cell(point, configuration);
  NSREL_EXPECTS(c.has_value());
  NSREL_EXPECTS(std::holds_alternative<sim::SimEstimate>(c.value()));
  return std::get<sim::SimEstimate>(c.value());
}

std::size_t ResultSet::ok_count() const {
  std::size_t count = 0;
  for (const Cell& c : cells_) count += c.has_value() ? 1 : 0;
  return count;
}

std::vector<CellError> ResultSet::errors() const {
  std::vector<CellError> failed;
  const std::size_t columns = grid_.configurations.size();
  for (std::size_t index = 0; index < cells_.size(); ++index) {
    if (cells_[index].has_value()) continue;
    failed.push_back(
        {index / columns, index % columns, cells_[index].error()});
  }
  return failed;
}

ResultSet evaluate(const Grid& grid, const EvalOptions& options) {
  NSREL_EXPECTS(!grid.points.empty());
  NSREL_EXPECTS(!grid.configurations.empty());
  NSREL_EXPECTS(options.jobs >= 0);

  obs::Span eval_span(obs::probe::kSpanEvaluate,
                      obs::probe::kSpanCategoryEngine);
  eval_span.arg("points", static_cast<std::uint64_t>(grid.points.size()));
  eval_span.arg("configurations",
                static_cast<std::uint64_t>(grid.configurations.size()));
  eval_span.arg("jobs", static_cast<std::uint64_t>(
                            options.jobs < 0 ? 0 : options.jobs));

  const std::size_t columns = grid.configurations.size();
  const std::size_t cell_count = grid.points.size() * columns;
  std::vector<ResultSet::Cell> cells(cell_count);

  core::SolveCache local_cache;
  core::SolveCache* cache = options.cache ? options.cache : &local_cache;

  // One immutable snapshot of the fault registry, taken before any
  // worker starts: workers only read this local copy.
  const std::vector<testing::CellFault> faults =
      testing::snapshot_cell_faults();

  // Under fail-fast a recorded failure stops workers from CLAIMING new
  // cells; cells already claimed always run to completion and record
  // their outcome. Indices are claimed monotonically, so every cell
  // below the first failing index is evaluated at any jobs count —
  // which makes the lowest-indexed failure (the one reported) a pure
  // function of the grid.
  std::atomic<bool> stop{false};
  std::vector<unsigned char> evaluated(cell_count, 0);

  // Each cell writes only its own slot; the slot index is a pure
  // function of the grid, so the filled vector is schedule-independent.
  // Every failure mode — typed errors from the solve stack, violated
  // contracts from a degenerate swept value, any other exception — is
  // captured into the cell instead of escaping the worker.
  const auto evaluate_cell = [&](std::size_t index) {
    const std::size_t point = index / columns;
    const std::size_t configuration = index % columns;
    // Journal scope: cell index + 1 in the high 32 bits. A pure function
    // of the grid, so every event this cell emits (including solve/cache
    // events from the stack below) sorts identically at any --jobs; the
    // low bits are left for per-chunk sequencing inside sim cells.
    const obs::ScopeGuard journal_scope(
        static_cast<std::uint64_t>(index + 1) << 32);
    if (obs::Journal::enabled()) {
      obs::Journal::instance().record(
          obs::seq_event(obs::event::kCellClaim)
              .arg("cell", static_cast<std::uint64_t>(index))
              .arg("point", static_cast<std::uint64_t>(point))
              .arg("config", static_cast<std::uint64_t>(configuration)));
    }
    obs::Span cell_span(obs::probe::kSpanCell, obs::probe::kSpanCategoryEngine);
    if (cell_span.armed()) {
      cell_span.arg("cell", static_cast<std::uint64_t>(index));
      cell_span.arg("point", static_cast<std::uint64_t>(point));
      cell_span.arg("config", core::name(grid.configurations[configuration]));
    }
    ResultSet::Cell outcome = [&]() -> ResultSet::Cell {
      try {
        for (const testing::CellFault& fault : faults) {
          if (fault.point == point && fault.configuration == configuration) {
            raise_injected(fault.code);
          }
        }
        const core::Analyzer analyzer(grid.points[point].system);
        if (grid.simulation.has_value()) {
          // Monte-Carlo cell: bypasses the solve cache entirely (no chain
          // solve happens) and draws from a per-cell seed that is a pure
          // function of the grid. A single-cell grid keeps the caller's
          // intra-cell jobs/progress (the classic `nsrel simulate`
          // shape); multi-cell grids parallelize across cells instead,
          // so each cell runs its trials inline.
          const SimSpec& spec = *grid.simulation;
          sim::ParallelOptions sim_options = spec.options;
          if (cell_count > 1) {
            sim_options.jobs = 1;
            sim_options.progress = nullptr;
          }
          obs::Span sim_span(obs::probe::kSpanSimCell,
                             obs::probe::kSpanCategoryEngine);
          sim::SimEstimate estimate;
          estimate.seed = cell_seed(spec.seed, index);
          if (sim_span.armed()) {
            sim_span.arg("trials", static_cast<std::uint64_t>(spec.trials));
            sim_span.arg("seed", estimate.seed);
          }
          estimate.estimate = analyzer.simulate_mttdl(
              grid.configurations[configuration], spec.trials, estimate.seed,
              sim_options);
          return CellValue{std::move(estimate)};
        }
        Expected<core::AnalysisResult> analyzed =
            analyzer.try_analyze(grid.configurations[configuration],
                                 grid.method, cache, grid.solver);
        if (!analyzed.has_value()) return analyzed.error();
        return CellValue{std::move(analyzed.value())};
      } catch (const ErrorException& e) {
        return e.error();
      } catch (const ContractViolation& e) {
        return Error{ErrorCode::kContractViolation, "engine", e.what()};
      } catch (const std::exception& e) {
        return Error{ErrorCode::kInternal, "engine", e.what()};
      }
    }();
    const bool failed = !outcome.has_value();
    if (cell_span.armed()) {
      cell_span.arg("outcome", failed ? error_code_name(outcome.error().code)
                                      : "ok");
    }
    if (obs::Registry::enabled()) {
      auto& registry = obs::Registry::instance();
      registry.add(registry.counter(failed ? obs::probe::kEngineCellsFailed
                                           : obs::probe::kEngineCellsOk));
    }
    if (failed && obs::Journal::enabled()) {
      obs::Journal::instance().record(
          obs::seq_event(obs::event::kCellFail)
              .arg("cell", static_cast<std::uint64_t>(index))
              .arg("code", error_code_name(outcome.error().code)));
    }
    cells[index] = std::move(outcome);
    evaluated[index] = 1;
    if (failed && options.on_error == OnError::kFailFast) {
      stop.store(true, std::memory_order_relaxed);
    }
    if (options.progress != nullptr) options.progress->step();
  };

  const int jobs =
      options.jobs == 0 ? ThreadPool::hardware_threads() : options.jobs;
  if (jobs <= 1 || cell_count == 1) {
    for (std::size_t index = 0; index < cell_count; ++index) {
      if (stop.load(std::memory_order_relaxed)) break;
      evaluate_cell(index);
    }
  } else {
    std::atomic<std::size_t> next{0};
    const auto worker = [&] {
      obs::Span claim_span(obs::probe::kSpanClaim,
                           obs::probe::kSpanCategoryEngine);
      std::uint64_t claimed = 0;
      for (;;) {
        if (stop.load(std::memory_order_relaxed)) break;
        const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
        if (index >= cell_count) break;
        ++claimed;
        evaluate_cell(index);
      }
      claim_span.arg("claimed", claimed);
    };
    // Declared after everything the workers touch: the pool destructor
    // joins the workers while their inputs are still alive.
    ThreadPool pool(jobs);
    const std::size_t lanes = std::min<std::size_t>(
        static_cast<std::size_t>(pool.thread_count()), cell_count);
    std::vector<std::future<void>> done;
    done.reserve(lanes);
    for (std::size_t i = 0; i < lanes; ++i) done.push_back(pool.submit(worker));
    for (auto& future : done) future.get();
  }

  // Join point: pool workers (if any) have exited and retired their
  // journal rings; flush this thread's ring so the journal is complete
  // even when the fail-fast rethrow below unwinds past the caller.
  if (obs::Journal::enabled()) obs::Journal::instance().drain();

  if (options.on_error != OnError::kSkip) {
    // The lowest-indexed failure among evaluated cells. Fail-fast and
    // abort agree on it: no cell below it ever fails, and the claiming
    // discipline guarantees it is evaluated under both policies.
    for (std::size_t index = 0; index < cell_count; ++index) {
      if (!evaluated[index] || cells[index].has_value()) continue;
      Error e = cells[index].error();
      e.detail = "cell (point " + std::to_string(index / columns) +
                 ", configuration " + std::to_string(index % columns) +
                 "): " + e.detail;
      throw ErrorException(std::move(e));
    }
  }

  return ResultSet(grid, std::move(cells), cache->stats());
}

}  // namespace nsrel::engine
