#include "engine/engine.hpp"

#include <algorithm>
#include <atomic>
#include <future>
#include <optional>

#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace nsrel::engine {

ResultSet::ResultSet(Grid grid, std::vector<core::AnalysisResult> cells,
                     core::SolveCache::Stats cache_stats)
    : grid_(std::move(grid)),
      cells_(std::move(cells)),
      cache_stats_(cache_stats) {
  NSREL_EXPECTS(cells_.size() ==
                grid_.points.size() * grid_.configurations.size());
}

const core::AnalysisResult& ResultSet::at(std::size_t point,
                                          std::size_t configuration) const {
  NSREL_EXPECTS(point < grid_.points.size());
  NSREL_EXPECTS(configuration < grid_.configurations.size());
  return cells_[point * grid_.configurations.size() + configuration];
}

ResultSet evaluate(const Grid& grid, const EvalOptions& options) {
  NSREL_EXPECTS(!grid.points.empty());
  NSREL_EXPECTS(!grid.configurations.empty());
  NSREL_EXPECTS(options.jobs >= 0);

  const std::size_t columns = grid.configurations.size();
  const std::size_t cell_count = grid.points.size() * columns;
  std::vector<core::AnalysisResult> cells(cell_count);

  core::SolveCache local_cache;
  core::SolveCache* cache = options.cache ? options.cache : &local_cache;

  // Each cell writes only its own slot; the slot index is a pure
  // function of the grid, so the filled vector is schedule-independent.
  const auto evaluate_cell = [&](std::size_t index) {
    const std::size_t point = index / columns;
    const std::size_t configuration = index % columns;
    const core::Analyzer analyzer(grid.points[point].system);
    cells[index] = analyzer.analyze(grid.configurations[configuration],
                                    grid.method, cache);
  };

  const int jobs =
      options.jobs == 0 ? ThreadPool::hardware_threads() : options.jobs;
  if (jobs <= 1 || cell_count == 1) {
    for (std::size_t index = 0; index < cell_count; ++index) {
      evaluate_cell(index);
    }
  } else {
    std::atomic<std::size_t> next{0};
    const auto worker = [&] {
      for (;;) {
        const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
        if (index >= cell_count) return;
        evaluate_cell(index);
      }
    };
    // Declared after everything the workers touch: if a cell throws, the
    // pool destructor joins the remaining workers while their inputs are
    // still alive.
    ThreadPool pool(jobs);
    const std::size_t lanes = std::min<std::size_t>(
        static_cast<std::size_t>(pool.thread_count()), cell_count);
    std::vector<std::future<void>> done;
    done.reserve(lanes);
    for (std::size_t i = 0; i < lanes; ++i) done.push_back(pool.submit(worker));
    for (auto& future : done) future.get();
  }

  return ResultSet(grid, std::move(cells), cache->stats());
}

}  // namespace nsrel::engine
