#include "engine/render.hpp"

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/probe_names.hpp"
#include "obs/trace.hpp"
#include "report/footer.hpp"
#include "report/resultset_doc.hpp"
#include "util/assert.hpp"
#include "util/format.hpp"

namespace nsrel::engine {

namespace {

/// The table marker for a failed cell: "!" plus the stable error code
/// ("!singular_generator"). Distinct from any numeric rendering, stable
/// across runs, and identical at any jobs count.
std::string failure_marker(const ResultSet::Cell& cell) {
  return std::string("!") + error_code_name(cell.error().code);
}

/// The label-column header shared by the row-oriented renderers: the
/// joined axis names, or "metric" for single-point grids.
std::string label_header(const Grid& grid) {
  return grid.has_axis() ? grid.axis_header() : "metric";
}

}  // namespace

report::Table events_table(const ResultSet& results,
                           const core::ReliabilityTarget* mark_target) {
  obs::Span span(obs::probe::kSpanRender, obs::probe::kSpanCategoryEngine);
  span.arg("kind", "events_table");
  const Grid& grid = results.grid();
  NSREL_EXPECTS(!grid.is_simulation());
  std::vector<std::string> headers;
  headers.push_back(label_header(grid));
  for (const auto& configuration : grid.configurations) {
    headers.push_back(core::name(configuration));
  }
  report::Table table(std::move(headers));
  for (std::size_t p = 0; p < results.point_count(); ++p) {
    std::vector<std::string> row{grid.points[p].label};
    for (std::size_t c = 0; c < results.configuration_count(); ++c) {
      if (!results.ok(p, c)) {
        row.push_back(failure_marker(results.cell(p, c)));
        continue;
      }
      const double events = results.at(p, c).events_per_pb_year;
      row.push_back(sci(events) +
                    (mark_target != nullptr && mark_target->met_by(events)
                         ? " *"
                         : ""));
    }
    table.add_row(std::move(row));
  }
  return table;
}

report::Table sweep_table(const ResultSet& results) {
  obs::Span span(obs::probe::kSpanRender, obs::probe::kSpanCategoryEngine);
  span.arg("kind", "sweep_table");
  const Grid& grid = results.grid();
  NSREL_EXPECTS(!grid.is_simulation());
  const bool qualify = grid.configurations.size() > 1;
  std::vector<std::string> headers;
  headers.push_back(label_header(grid));
  for (const auto& configuration : grid.configurations) {
    const std::string prefix =
        qualify ? core::name(configuration) + " " : std::string();
    headers.push_back(prefix + "MTTDL (h)");
    headers.push_back(prefix + "events/PB-yr");
  }
  report::Table table(std::move(headers));
  for (std::size_t p = 0; p < results.point_count(); ++p) {
    std::vector<std::string> row{grid.points[p].label};
    for (std::size_t c = 0; c < results.configuration_count(); ++c) {
      if (!results.ok(p, c)) {
        const std::string marker = failure_marker(results.cell(p, c));
        row.push_back(marker);
        row.push_back(marker);
        continue;
      }
      const core::AnalysisResult& result = results.at(p, c);
      row.push_back(sci(result.mttdl.value()));
      row.push_back(sci(result.events_per_pb_year));
    }
    table.add_row(std::move(row));
  }
  return table;
}

report::Table sim_sweep_table(const ResultSet& results) {
  obs::Span span(obs::probe::kSpanRender, obs::probe::kSpanCategoryEngine);
  span.arg("kind", "sim_sweep_table");
  const Grid& grid = results.grid();
  NSREL_EXPECTS(grid.is_simulation());
  const bool qualify = grid.configurations.size() > 1;
  std::vector<std::string> headers;
  headers.push_back(label_header(grid));
  for (const auto& configuration : grid.configurations) {
    const std::string prefix =
        qualify ? core::name(configuration) + " " : std::string();
    headers.push_back(prefix + "sim MTTDL (h)");
    headers.push_back(prefix + "95% CI (h)");
  }
  report::Table table(std::move(headers));
  for (std::size_t p = 0; p < results.point_count(); ++p) {
    std::vector<std::string> row{grid.points[p].label};
    for (std::size_t c = 0; c < results.configuration_count(); ++c) {
      if (!results.ok(p, c)) {
        const std::string marker = failure_marker(results.cell(p, c));
        row.push_back(marker);
        row.push_back(marker);
        continue;
      }
      const sim::MttdlEstimate& estimate = results.sim_at(p, c).estimate;
      row.push_back(sci(estimate.mean_hours));
      row.push_back("[" + sci(estimate.ci95_low_hours) + ", " +
                    sci(estimate.ci95_high_hours) + "]");
    }
    table.add_row(std::move(row));
  }
  return table;
}

report::Table compare_table(const ResultSet& results,
                            const core::ReliabilityTarget& target) {
  obs::Span span(obs::probe::kSpanRender, obs::probe::kSpanCategoryEngine);
  span.arg("kind", "compare_table");
  // This shape has no point-label column: it only makes sense for a
  // single-point grid, and silently rendering point 0 of a larger grid
  // would misattribute the sweep (caught here rather than by callers).
  NSREL_EXPECTS(results.point_count() == 1);
  NSREL_EXPECTS(!results.grid().is_simulation());
  report::Table table({"configuration", "MTTDL", "events/PB-yr", "meets"});
  for (std::size_t c = 0; c < results.configuration_count(); ++c) {
    if (!results.ok(0, c)) {
      const std::string marker = failure_marker(results.cell(0, c));
      table.add_row({core::name(results.grid().configurations[c]), marker,
                     marker, "-"});
      continue;
    }
    const core::AnalysisResult& result = results.at(0, c);
    table.add_row({core::name(results.grid().configurations[c]),
                   human_hours(result.mttdl.value()),
                   sci(result.events_per_pb_year),
                   target.met_by(result) ? "yes" : "NO"});
  }
  return table;
}

report::ResultSetDoc make_document(const ResultSet& results,
                                   const JsonOptions& options) {
  const Grid& grid = results.grid();
  report::ResultSetDoc doc;
  doc.method = core::method_name(grid.method);
  if (options.cache_meta) {
    const core::SolveCache::Stats& stats = results.cache_stats();
    doc.cache = report::CacheMetaDoc{stats.hits, stats.misses,
                                     stats.lookups()};
  }
  doc.axes.reserve(grid.axes.size());
  for (const Axis& axis : grid.axes) doc.axes.push_back({axis.name});
  doc.points.reserve(grid.points.size());
  for (const GridPoint& point : grid.points) {
    doc.points.push_back({point.label, point.coords});
  }
  doc.configurations.reserve(grid.configurations.size());
  for (const auto& configuration : grid.configurations) {
    doc.configurations.push_back(core::name(configuration));
  }
  doc.cells.reserve(results.point_count() * results.configuration_count());
  for (std::size_t p = 0; p < results.point_count(); ++p) {
    for (std::size_t c = 0; c < results.configuration_count(); ++c) {
      report::CellDoc cell;
      cell.point = p;
      cell.configuration = c;
      if (!results.ok(p, c)) {
        const Error& error = results.cell(p, c).error();
        cell.data = report::ErrorCellDoc{error_code_name(error.code),
                                         error.layer, error.detail};
      } else if (results.is_sim(p, c)) {
        const sim::SimEstimate& sim = results.sim_at(p, c);
        cell.data = report::SimCellDoc{sim.estimate.mean_hours,
                                       sim.estimate.stddev_hours,
                                       sim.estimate.stderr_hours,
                                       sim.estimate.ci95_low_hours,
                                       sim.estimate.ci95_high_hours,
                                       sim.estimate.trials,
                                       sim.seed};
      } else {
        const core::AnalysisResult& result = results.at(p, c);
        report::AnalyticCellDoc analytic;
        analytic.mttdl_hours = result.mttdl.value();
        analytic.events_per_system_year = result.events_per_system_year;
        analytic.events_per_pb_year = result.events_per_pb_year;
        analytic.logical_capacity_bytes = result.logical_capacity.value();
        analytic.node_rebuild_hours =
            to_hours(result.rebuild.node_rebuild_time).value();
        analytic.node_rebuild_bottleneck =
            result.rebuild.node_bottleneck == rebuild::Bottleneck::kDisk
                ? "disk"
                : "network";
        if (grid.configurations[c].internal != core::InternalScheme::kNone) {
          analytic.has_internal_raid = true;
          analytic.array_failure_per_hour = result.array_failure_rate.value();
          analytic.sector_error_per_hour = result.sector_error_rate.value();
          analytic.restripe_hours = to_hours(result.rebuild.restripe_time).value();
        }
        cell.data = std::move(analytic);
      }
      doc.cells.push_back(std::move(cell));
    }
  }
  return doc;
}

void write_json(const ResultSet& results, std::ostream& out) {
  write_json(results, out, JsonOptions{});
}

void write_json(const ResultSet& results, std::ostream& out,
                const JsonOptions& options) {
  obs::Span span(obs::probe::kSpanRender, obs::probe::kSpanCategoryEngine);
  span.arg("kind", "json");
  report::write_resultset_json(make_document(results, options), out);
}

void print_cache_footer(const ResultSet& results, std::ostream& out) {
  const core::SolveCache::Stats& stats = results.cache_stats();
  report::print_cache_footer(stats.hits, stats.misses,
                             report::OutputFormat::kTable, out);
}

}  // namespace nsrel::engine
