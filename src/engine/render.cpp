#include "engine/render.hpp"

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/probe_names.hpp"
#include "obs/trace.hpp"
#include "report/json.hpp"
#include "util/format.hpp"

namespace nsrel::engine {

namespace {

/// The table marker for a failed cell: "!" plus the stable error code
/// ("!singular_generator"). Distinct from any numeric rendering, stable
/// across runs, and identical at any jobs count.
std::string failure_marker(const ResultSet::Cell& cell) {
  return std::string("!") + error_code_name(cell.error().code);
}

}  // namespace

report::Table events_table(const ResultSet& results,
                           const core::ReliabilityTarget* mark_target) {
  obs::Span span(obs::probe::kSpanRender, obs::probe::kSpanCategoryEngine);
  span.arg("kind", "events_table");
  const Grid& grid = results.grid();
  std::vector<std::string> headers;
  headers.push_back(grid.has_axis() ? grid.axis : "metric");
  for (const auto& configuration : grid.configurations) {
    headers.push_back(core::name(configuration));
  }
  report::Table table(std::move(headers));
  for (std::size_t p = 0; p < results.point_count(); ++p) {
    std::vector<std::string> row{grid.points[p].label};
    for (std::size_t c = 0; c < results.configuration_count(); ++c) {
      if (!results.ok(p, c)) {
        row.push_back(failure_marker(results.cell(p, c)));
        continue;
      }
      const double events = results.at(p, c).events_per_pb_year;
      row.push_back(sci(events) +
                    (mark_target != nullptr && mark_target->met_by(events)
                         ? " *"
                         : ""));
    }
    table.add_row(std::move(row));
  }
  return table;
}

report::Table sweep_table(const ResultSet& results) {
  obs::Span span(obs::probe::kSpanRender, obs::probe::kSpanCategoryEngine);
  span.arg("kind", "sweep_table");
  const Grid& grid = results.grid();
  const bool qualify = grid.configurations.size() > 1;
  std::vector<std::string> headers;
  headers.push_back(grid.has_axis() ? grid.axis : "metric");
  for (const auto& configuration : grid.configurations) {
    const std::string prefix =
        qualify ? core::name(configuration) + " " : std::string();
    headers.push_back(prefix + "MTTDL (h)");
    headers.push_back(prefix + "events/PB-yr");
  }
  report::Table table(std::move(headers));
  for (std::size_t p = 0; p < results.point_count(); ++p) {
    std::vector<std::string> row{grid.points[p].label};
    for (std::size_t c = 0; c < results.configuration_count(); ++c) {
      if (!results.ok(p, c)) {
        const std::string marker = failure_marker(results.cell(p, c));
        row.push_back(marker);
        row.push_back(marker);
        continue;
      }
      const core::AnalysisResult& result = results.at(p, c);
      row.push_back(sci(result.mttdl.value()));
      row.push_back(sci(result.events_per_pb_year));
    }
    table.add_row(std::move(row));
  }
  return table;
}

report::Table compare_table(const ResultSet& results,
                            const core::ReliabilityTarget& target) {
  obs::Span span(obs::probe::kSpanRender, obs::probe::kSpanCategoryEngine);
  span.arg("kind", "compare_table");
  report::Table table({"configuration", "MTTDL", "events/PB-yr", "meets"});
  for (std::size_t c = 0; c < results.configuration_count(); ++c) {
    if (!results.ok(0, c)) {
      const std::string marker = failure_marker(results.cell(0, c));
      table.add_row({core::name(results.grid().configurations[c]), marker,
                     marker, "-"});
      continue;
    }
    const core::AnalysisResult& result = results.at(0, c);
    table.add_row({core::name(results.grid().configurations[c]),
                   human_hours(result.mttdl.value()),
                   sci(result.events_per_pb_year),
                   target.met_by(result) ? "yes" : "NO"});
  }
  return table;
}

void write_json(const ResultSet& results, std::ostream& out) {
  write_json(results, out, JsonOptions{});
}

void write_json(const ResultSet& results, std::ostream& out,
                const JsonOptions& options) {
  obs::Span span(obs::probe::kSpanRender, obs::probe::kSpanCategoryEngine);
  span.arg("kind", "json");
  const Grid& grid = results.grid();
  report::JsonWriter json(out);
  json.begin_object();
  json.key("schema").value("nsrel-resultset-v2");
  json.key("method").value(core::method_name(grid.method));
  if (options.cache_meta) {
    const core::SolveCache::Stats& stats = results.cache_stats();
    json.key("meta").begin_object();
    json.key("cache").begin_object();
    json.key("hits").value(stats.hits);
    json.key("misses").value(stats.misses);
    json.key("lookups").value(stats.lookups());
    json.end_object();
    json.end_object();
  }
  if (grid.has_axis()) {
    json.key("axis").value(grid.axis);
  } else {
    json.key("axis").null();
  }

  json.key("points").begin_array();
  for (const GridPoint& point : grid.points) {
    json.begin_object();
    json.key("label").value(point.label);
    if (grid.has_axis()) json.key("x").value(point.x);
    json.end_object();
  }
  json.end_array();

  json.key("configurations").begin_array();
  for (const auto& configuration : grid.configurations) {
    json.value(core::name(configuration));
  }
  json.end_array();

  json.key("cells").begin_array();
  for (std::size_t p = 0; p < results.point_count(); ++p) {
    for (std::size_t c = 0; c < results.configuration_count(); ++c) {
      if (!results.ok(p, c)) {
        const Error& error = results.cell(p, c).error();
        json.begin_object();
        json.key("point").value(static_cast<std::uint64_t>(p));
        json.key("configuration").value(static_cast<std::uint64_t>(c));
        json.key("error").begin_object();
        json.key("code").value(error_code_name(error.code));
        json.key("layer").value(error.layer);
        json.key("detail").value(error.detail);
        json.end_object();
        json.end_object();
        continue;
      }
      const core::AnalysisResult& result = results.at(p, c);
      json.begin_object();
      json.key("point").value(static_cast<std::uint64_t>(p));
      json.key("configuration").value(static_cast<std::uint64_t>(c));
      json.key("error").null();
      json.key("mttdl_hours").value(result.mttdl.value());
      json.key("events_per_system_year").value(result.events_per_system_year);
      json.key("events_per_pb_year").value(result.events_per_pb_year);
      json.key("logical_capacity_bytes").value(result.logical_capacity.value());
      json.key("node_rebuild_hours")
          .value(to_hours(result.rebuild.node_rebuild_time).value());
      json.key("node_rebuild_bottleneck")
          .value(result.rebuild.node_bottleneck == rebuild::Bottleneck::kDisk
                     ? "disk"
                     : "network");
      if (grid.configurations[c].internal != core::InternalScheme::kNone) {
        json.key("array_failure_per_hour")
            .value(result.array_failure_rate.value());
        json.key("sector_error_per_hour")
            .value(result.sector_error_rate.value());
        json.key("restripe_hours")
            .value(to_hours(result.rebuild.restripe_time).value());
      }
      json.end_object();
    }
  }
  json.end_array();
  json.end_object();
}

void print_cache_footer(const ResultSet& results, std::ostream& out) {
  const core::SolveCache::Stats& stats = results.cache_stats();
  out << "cache: " << stats.hits << " hits, " << stats.misses << " misses ("
      << stats.lookups() << " lookups)\n";
}

}  // namespace nsrel::engine
