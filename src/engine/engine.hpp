// The unified evaluation engine: one parallel, memoizing grid-evaluation
// path shared by the CLI, the scenario runner, and every figure bench.
//
// evaluate() fans the grid's cells (points x configurations) out over a
// util::ThreadPool. Each cell is computed independently into its own
// preassigned slot, so the ResultSet's contents are identical at any
// jobs count — parallelism never changes output, only wall clock (the
// same discipline as sim::run_trials). Chain solves are memoized through
// core::SolveCache: cells whose swept parameter does not change the
// underlying Markov model — and repeated configurations across sweeps
// sharing a cache — skip the LU/elimination solve entirely, and a cache
// hit is bit-identical to a fresh solve by construction.
#pragma once

#include <cstddef>
#include <vector>

#include "core/analyzer.hpp"
#include "core/solve_cache.hpp"
#include "engine/grid.hpp"

namespace nsrel::engine {

struct EvalOptions {
  /// Worker threads. 1 evaluates inline on the caller (no pool);
  /// 0 means "all hardware threads". Never changes results.
  int jobs = 1;

  /// Optional externally-owned solve cache, shared across evaluate()
  /// calls (the benches reuse one per binary so repeated configurations
  /// across figures hit it). When null the engine uses a private cache
  /// scoped to the single call.
  core::SolveCache* cache = nullptr;
};

/// The evaluated grid: one AnalysisResult per (point, configuration)
/// cell in deterministic row-major order, plus the grid that produced
/// it and a snapshot of the solve-cache counters after the run.
class ResultSet {
 public:
  ResultSet(Grid grid, std::vector<core::AnalysisResult> cells,
            core::SolveCache::Stats cache_stats);

  [[nodiscard]] const Grid& grid() const { return grid_; }
  [[nodiscard]] std::size_t point_count() const { return grid_.points.size(); }
  [[nodiscard]] std::size_t configuration_count() const {
    return grid_.configurations.size();
  }

  [[nodiscard]] const core::AnalysisResult& at(std::size_t point,
                                               std::size_t configuration) const;

  /// Cache counters as of the end of this run. With a shared external
  /// cache the numbers are cumulative across runs; with the engine's
  /// private cache they cover exactly this grid. Counters depend on the
  /// thread schedule for jobs > 1 (two workers can race to first solve
  /// of a key) and are exact for jobs == 1. Never rendered into
  /// table/CSV/JSON output, which stays jobs-invariant.
  [[nodiscard]] const core::SolveCache::Stats& cache_stats() const {
    return cache_stats_;
  }

 private:
  Grid grid_;
  std::vector<core::AnalysisResult> cells_;  // row-major: point * C + config
  core::SolveCache::Stats cache_stats_;
};

/// Evaluates every cell of the grid. Throws what the underlying model
/// construction throws (e.g. a swept value producing an invalid
/// configuration); with jobs > 1 the first worker exception propagates.
[[nodiscard]] ResultSet evaluate(const Grid& grid,
                                 const EvalOptions& options = {});

}  // namespace nsrel::engine
