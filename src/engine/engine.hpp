// The unified evaluation engine: one parallel, memoizing grid-evaluation
// path shared by the CLI, the scenario runner, and every figure bench.
//
// evaluate() fans the grid's cells (points x configurations) out over a
// util::ThreadPool. Each cell is computed independently into its own
// preassigned slot, so the ResultSet's contents are identical at any
// jobs count — parallelism never changes output, only wall clock (the
// same discipline as sim::run_trials). Chain solves are memoized through
// core::SolveCache: cells whose swept parameter does not change the
// underlying Markov model — and repeated configurations across sweeps
// sharing a cache — skip the LU/elimination solve entirely, and a cache
// hit is bit-identical to a fresh solve by construction.
//
// Fault isolation: a failing cell (singular chain, non-finite result,
// invalid swept parameter, or any exception escaping the model stack)
// is captured as a typed Error in that cell's slot instead of tearing
// down the whole evaluation. Cell indices are claimed monotonically
// from an atomic counter and a claimed cell always completes and
// records its outcome, so the set of failures below the first failing
// index — and therefore the error evaluate() reports — is identical at
// any jobs count.
#pragma once

#include <cstddef>
#include <string>
#include <variant>
#include <vector>

#include "core/analyzer.hpp"
#include "core/solve_cache.hpp"
#include "engine/grid.hpp"
#include "sim/estimate.hpp"
#include "util/error.hpp"

namespace nsrel::obs {
class ProgressMeter;
}  // namespace nsrel::obs

namespace nsrel::engine {

/// What evaluate() does when a cell fails.
enum class OnError : unsigned char {
  /// Stop claiming new cells once a failure is recorded and throw
  /// ErrorException for the lowest-indexed failing cell. Cells already
  /// claimed still complete, so the thrown error is jobs-invariant.
  /// The engine's default: library callers that do not opt into
  /// partial results keep exception semantics.
  kFailFast,
  /// Evaluate every cell and return the ResultSet with failures
  /// recorded in their slots; never throws for cell failures. The CLI
  /// and scenario-runner default.
  kSkip,
  /// Evaluate every cell (so all failures are recorded), then throw
  /// ErrorException for the lowest-indexed failing cell.
  kAbort,
};

/// Parses the canonical policy names shared by the CLI's --on-error
/// flag and scenario files' [output] on_error key: "skip" | "fail".
/// Throws ContractViolation on anything else.
[[nodiscard]] OnError parse_on_error(const std::string& name);

struct EvalOptions {
  /// Worker threads. 1 evaluates inline on the caller (no pool);
  /// 0 means "all hardware threads". Never changes results.
  int jobs = 1;

  /// Optional externally-owned solve cache, shared across evaluate()
  /// calls (the benches reuse one per binary so repeated configurations
  /// across figures hit it). When null the engine uses a private cache
  /// scoped to the single call.
  core::SolveCache* cache = nullptr;

  /// Failure policy; identical observable behavior at any `jobs`.
  OnError on_error = OnError::kFailFast;

  /// Optional progress meter stepped once per completed cell (stderr
  /// only — rendered results are unaffected). Not owned.
  obs::ProgressMeter* progress = nullptr;
};

/// One failed cell: its grid coordinates plus the typed error.
struct CellError {
  std::size_t point = 0;
  std::size_t configuration = 0;
  Error error;
};

/// What a successful cell holds: an analytic solve result, or — when the
/// grid carries a SimSpec — a Monte-Carlo estimate. One variant (rather
/// than two ResultSet types) so renderers, the solve-cache bypass, the
/// JSON writer/reader, and the --on-error machinery are shared verbatim
/// between `nsrel sweep` and `nsrel simulate` sweeps.
using CellValue = std::variant<core::AnalysisResult, sim::SimEstimate>;

/// The evaluated grid: one Expected<CellValue> per
/// (point, configuration) cell in deterministic row-major order, plus
/// the grid that produced it and a snapshot of the solve-cache counters
/// after the run.
class ResultSet {
 public:
  using Cell = Expected<CellValue>;

  ResultSet(Grid grid, std::vector<Cell> cells,
            core::SolveCache::Stats cache_stats);

  [[nodiscard]] const Grid& grid() const { return grid_; }
  [[nodiscard]] std::size_t point_count() const { return grid_.points.size(); }
  [[nodiscard]] std::size_t configuration_count() const {
    return grid_.configurations.size();
  }

  /// The full cell outcome: a result or a typed error.
  [[nodiscard]] const Cell& cell(std::size_t point,
                                 std::size_t configuration) const;

  /// True when the cell holds a result.
  [[nodiscard]] bool ok(std::size_t point, std::size_t configuration) const;

  /// True when the cell holds a Monte-Carlo estimate. Precondition:
  /// ok(point, configuration). A grid's cells are homogeneous — this is
  /// `grid().is_simulation()` restated per cell for renderer symmetry.
  [[nodiscard]] bool is_sim(std::size_t point, std::size_t configuration) const;

  /// The cell's analytic result. Precondition: ok(point, configuration)
  /// and the cell is analytic — the benches and renderers that index
  /// unconditionally run under fail-fast on analytic grids, where every
  /// returned cell is a success.
  [[nodiscard]] const core::AnalysisResult& at(std::size_t point,
                                               std::size_t configuration) const;

  /// The cell's Monte-Carlo estimate. Precondition:
  /// ok(point, configuration) and the cell is a sim cell.
  [[nodiscard]] const sim::SimEstimate& sim_at(std::size_t point,
                                               std::size_t configuration) const;

  /// Number of cells holding results.
  [[nodiscard]] std::size_t ok_count() const;

  /// All failed cells in row-major (point-major) order.
  [[nodiscard]] std::vector<CellError> errors() const;

  /// Cache counters as of the end of this run. With a shared external
  /// cache the numbers are cumulative across runs; with the engine's
  /// private cache they cover exactly this grid. Counters depend on the
  /// thread schedule for jobs > 1 (two workers can race to first solve
  /// of a key) and are exact for jobs == 1. Never rendered into
  /// table/CSV/JSON output, which stays jobs-invariant.
  [[nodiscard]] const core::SolveCache::Stats& cache_stats() const {
    return cache_stats_;
  }

 private:
  Grid grid_;
  std::vector<Cell> cells_;  // row-major: point * C + config
  core::SolveCache::Stats cache_stats_;
};

/// Evaluates every cell of the grid, isolating failures per cell (see
/// OnError). Under kFailFast and kAbort a failing cell surfaces as an
/// ErrorException for the lowest-indexed failure — jobs-invariant by
/// the claiming discipline above; under kSkip failures are returned in
/// their slots and evaluate() only throws for violated preconditions
/// (empty grid, negative jobs).
[[nodiscard]] ResultSet evaluate(const Grid& grid,
                                 const EvalOptions& options = {});

}  // namespace nsrel::engine
