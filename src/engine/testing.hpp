// Fault injection for the evaluation engine — test-only.
//
// Registered faults make evaluate() throw from inside the named cell's
// evaluation, exercising the engine's per-cell capture paths exactly as
// a real failure of that class would: the tests prove that a worker's
// exception lands in its own cell (never lost, never torn across
// cells) under TSan at any jobs count.
#pragma once

#include <cstddef>
#include <vector>

#include "util/error.hpp"

namespace nsrel::engine::testing {

/// A fault registered for injection into evaluate().
struct CellFault {
  std::size_t point = 0;
  std::size_t configuration = 0;
  ErrorCode code = ErrorCode::kInternal;
};

/// Registers a fault: subsequent evaluate() calls throw from inside the
/// named cell's evaluation — a ContractViolation for kContractViolation,
/// a plain std::runtime_error for kInternal, an ErrorException carrying
/// the code otherwise. Thread-safe; evaluate() reads one snapshot taken
/// before its workers start, so a mid-run registration affects only
/// later calls.
void inject_cell_fault(std::size_t point, std::size_t configuration,
                       ErrorCode code);

/// Drops every registered fault.
void clear_cell_faults();

/// The currently registered faults (snapshot under the registry lock).
[[nodiscard]] std::vector<CellFault> snapshot_cell_faults();

}  // namespace nsrel::engine::testing
