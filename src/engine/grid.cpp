#include "engine/grid.hpp"

#include <cmath>
#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/format.hpp"

namespace nsrel::engine {

namespace {

std::string default_label(double x) { return sci(x, 4); }

}  // namespace

Grid custom_sweep(const std::string& axis, const std::vector<double>& values,
                  const std::function<core::SystemConfig(double)>& make_system,
                  std::vector<core::Configuration> configurations,
                  core::Method method, const AxisFormatter& format_x) {
  NSREL_EXPECTS(!axis.empty());
  NSREL_EXPECTS(!values.empty());
  NSREL_EXPECTS(!configurations.empty());
  Grid grid;
  grid.axis = axis;
  grid.configurations = std::move(configurations);
  grid.method = method;
  grid.points.reserve(values.size());
  for (const double x : values) {
    GridPoint point;
    point.system = make_system(x);
    point.system.validate();
    point.x = x;
    point.label = format_x ? format_x(x) : default_label(x);
    grid.points.push_back(std::move(point));
  }
  return grid;
}

Grid parameter_sweep(const core::SystemConfig& base,
                     const std::string& parameter,
                     const std::vector<double>& values,
                     std::vector<core::Configuration> configurations,
                     core::Method method, const AxisFormatter& format_x) {
  return custom_sweep(
      parameter, values,
      [&](double x) {
        core::SystemConfig system = base;
        if (!core::set_parameter(system, parameter, x)) {
          throw ContractViolation("unknown sweep parameter '" + parameter +
                                  "'");
        }
        return system;
      },
      std::move(configurations), method, format_x);
}

Grid single_point(const core::SystemConfig& system,
                  std::vector<core::Configuration> configurations,
                  core::Method method, const std::string& label) {
  NSREL_EXPECTS(!configurations.empty());
  Grid grid;
  grid.configurations = std::move(configurations);
  grid.method = method;
  GridPoint point;
  point.system = system;
  point.system.validate();
  point.label = label;
  grid.points.push_back(std::move(point));
  return grid;
}

std::vector<double> spaced_points(double from, double to, int steps,
                                  bool log_scale) {
  NSREL_EXPECTS(steps >= 2);
  NSREL_EXPECTS(log_scale ? (from > 0.0 && to > from) : to > from);
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(steps));
  for (int i = 0; i < steps; ++i) {
    const double fraction =
        static_cast<double>(i) / static_cast<double>(steps - 1);
    values.push_back(log_scale ? from * std::pow(to / from, fraction)
                               : from + (to - from) * fraction);
  }
  return values;
}

}  // namespace nsrel::engine
