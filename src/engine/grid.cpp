#include "engine/grid.hpp"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

namespace nsrel::engine {

namespace {

std::string default_label(double x) { return sci(x, 4); }

/// Joins per-axis labels with " x "; a single label passes through
/// unchanged, keeping 1-axis output byte-identical to the historical
/// single-axis grid.
std::string join_labels(const std::vector<std::string>& parts) {
  std::string joined;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) joined += " x ";
    joined += parts[i];
  }
  return joined;
}

}  // namespace

std::uint64_t cell_seed(std::uint64_t seed, std::size_t index) {
  if (index == 0) return seed;
  return stream_seed(seed, static_cast<std::uint64_t>(index));
}

std::string Grid::axis_header() const {
  std::vector<std::string> names;
  names.reserve(axes.size());
  for (const Axis& axis : axes) names.push_back(axis.name);
  return join_labels(names);
}

Grid custom_cartesian(
    std::vector<Axis> axes,
    const std::function<core::SystemConfig(const std::vector<double>&)>&
        make_system,
    std::vector<core::Configuration> configurations, core::Method method) {
  NSREL_EXPECTS(!axes.empty());
  NSREL_EXPECTS(!configurations.empty());
  std::size_t total = 1;
  for (const Axis& axis : axes) {
    NSREL_EXPECTS(!axis.name.empty());
    NSREL_EXPECTS(!axis.values.empty());
    NSREL_EXPECTS(axis.labels.size() == axis.values.size());
    total *= axis.values.size();
  }
  Grid grid;
  grid.axes = std::move(axes);
  grid.configurations = std::move(configurations);
  grid.method = method;
  grid.points.reserve(total);
  // Odometer over the axes, last axis fastest (row-major).
  std::vector<std::size_t> index(grid.axes.size(), 0);
  for (std::size_t flat = 0; flat < total; ++flat) {
    GridPoint point;
    point.coords.reserve(grid.axes.size());
    std::vector<std::string> labels;
    labels.reserve(grid.axes.size());
    for (std::size_t a = 0; a < grid.axes.size(); ++a) {
      point.coords.push_back(grid.axes[a].values[index[a]]);
      labels.push_back(grid.axes[a].labels[index[a]]);
    }
    point.system = make_system(point.coords);
    point.system.validate();
    point.label = join_labels(labels);
    grid.points.push_back(std::move(point));
    for (std::size_t a = grid.axes.size(); a-- > 0;) {
      if (++index[a] < grid.axes[a].values.size()) break;
      index[a] = 0;
    }
  }
  return grid;
}

Grid cartesian_sweep(const core::SystemConfig& base,
                     const std::vector<AxisSpec>& axes,
                     std::vector<core::Configuration> configurations,
                     core::Method method) {
  NSREL_EXPECTS(!axes.empty());
  std::vector<Axis> built;
  built.reserve(axes.size());
  for (const AxisSpec& spec : axes) {
    Axis axis;
    axis.name = spec.parameter;
    axis.values = spec.values;
    axis.labels.reserve(spec.values.size());
    for (const double x : spec.values) {
      axis.labels.push_back(spec.format ? spec.format(x) : default_label(x));
    }
    built.push_back(std::move(axis));
  }
  return custom_cartesian(
      std::move(built),
      [&](const std::vector<double>& coords) {
        core::SystemConfig system = base;
        for (std::size_t a = 0; a < axes.size(); ++a) {
          if (!core::set_parameter(system, axes[a].parameter, coords[a])) {
            throw ContractViolation("unknown sweep parameter '" +
                                    axes[a].parameter + "'");
          }
        }
        return system;
      },
      std::move(configurations), method);
}

Grid custom_sweep(const std::string& axis, const std::vector<double>& values,
                  const std::function<core::SystemConfig(double)>& make_system,
                  std::vector<core::Configuration> configurations,
                  core::Method method, const AxisFormatter& format_x) {
  NSREL_EXPECTS(!axis.empty());
  NSREL_EXPECTS(!values.empty());
  Axis built;
  built.name = axis;
  built.values = values;
  built.labels.reserve(values.size());
  for (const double x : values) {
    built.labels.push_back(format_x ? format_x(x) : default_label(x));
  }
  std::vector<Axis> axes;
  axes.push_back(std::move(built));
  return custom_cartesian(
      std::move(axes),
      [&](const std::vector<double>& coords) { return make_system(coords[0]); },
      std::move(configurations), method);
}

Grid parameter_sweep(const core::SystemConfig& base,
                     const std::string& parameter,
                     const std::vector<double>& values,
                     std::vector<core::Configuration> configurations,
                     core::Method method, const AxisFormatter& format_x) {
  AxisSpec spec;
  spec.parameter = parameter;
  spec.values = values;
  spec.format = format_x;
  return cartesian_sweep(base, {spec}, std::move(configurations), method);
}

Grid single_point(const core::SystemConfig& system,
                  std::vector<core::Configuration> configurations,
                  core::Method method, const std::string& label) {
  NSREL_EXPECTS(!configurations.empty());
  Grid grid;
  grid.configurations = std::move(configurations);
  grid.method = method;
  GridPoint point;
  point.system = system;
  point.system.validate();
  point.label = label;
  grid.points.push_back(std::move(point));
  return grid;
}

std::vector<double> spaced_points(double from, double to, int steps,
                                  bool log_scale) {
  NSREL_EXPECTS(steps >= 2);
  NSREL_EXPECTS(log_scale ? (from > 0.0 && to > from) : to > from);
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(steps));
  for (int i = 0; i < steps; ++i) {
    const double fraction =
        static_cast<double>(i) / static_cast<double>(steps - 1);
    values.push_back(log_scale ? from * std::pow(to / from, fraction)
                               : from + (to - from) * fraction);
  }
  return values;
}

}  // namespace nsrel::engine
