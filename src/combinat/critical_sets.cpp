#include "combinat/critical_sets.hpp"

#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace nsrel::combinat {

double redundancy_set_count(int node_set_size, int redundancy_set_size) {
  NSREL_EXPECTS(redundancy_set_size >= 1 &&
                redundancy_set_size <= node_set_size);
  return binomial(node_set_size, redundancy_set_size);
}

double sets_per_node(int node_set_size, int redundancy_set_size) {
  NSREL_EXPECTS(redundancy_set_size >= 1 &&
                redundancy_set_size <= node_set_size);
  return binomial(node_set_size - 1, redundancy_set_size - 1);
}

double critical_fraction(int node_set_size, int redundancy_set_size,
                         int failures) {
  NSREL_EXPECTS(failures >= 2);
  NSREL_EXPECTS(redundancy_set_size >= failures);
  NSREL_EXPECTS(node_set_size >= redundancy_set_size);
  // C(N-j, R-j) / C(N-1, R-1) telescopes to a falling-factorial ratio:
  // (R-1)...(R-j+1) / (N-1)...(N-j+1).
  return falling_factorial(redundancy_set_size - 1, failures - 1) /
         falling_factorial(node_set_size - 1, failures - 1);
}

double k2(int node_set_size, int redundancy_set_size) {
  return critical_fraction(node_set_size, redundancy_set_size, 2);
}

double k3(int node_set_size, int redundancy_set_size) {
  return critical_fraction(node_set_size, redundancy_set_size, 3);
}

double h_base(const HParams& p) {
  NSREL_EXPECTS(p.fault_tolerance >= 1);
  NSREL_EXPECTS(p.redundancy_set_size > p.fault_tolerance);
  NSREL_EXPECTS(p.node_set_size >= p.redundancy_set_size);
  NSREL_EXPECTS(p.capacity_bytes > 0.0 && p.her_per_byte >= 0.0);
  const double numerator =
      falling_factorial(p.redundancy_set_size - 1, p.fault_tolerance);
  const double denominator =
      falling_factorial(p.node_set_size - 1, p.fault_tolerance - 1);
  return numerator / denominator * p.capacity_bytes * p.her_per_byte;
}

double h_for_word(const HParams& p, const FailureWord& word) {
  NSREL_EXPECTS(static_cast<int>(word.size()) == p.fault_tolerance);
  NSREL_EXPECTS(p.drives_per_node >= 1);
  int drive_failures = 0;
  for (const FailureKind kind : word) {
    if (kind == FailureKind::kDrive) ++drive_failures;
  }
  const double h = h_base(p);
  // h_alpha = h * d^(1 - #drives): all-node words read a full node's worth
  // of critical data (d drives), each drive failure in the word divides the
  // critical fraction by d (section 5.2.2).
  return h * std::pow(static_cast<double>(p.drives_per_node),
                      1.0 - static_cast<double>(drive_failures));
}

std::vector<FailureWord> enumerate_words(int length) {
  NSREL_EXPECTS(length >= 0 && length < 30);
  const std::size_t count = std::size_t{1} << length;
  std::vector<FailureWord> words;
  words.reserve(count);
  for (std::size_t bits = 0; bits < count; ++bits) {
    FailureWord word(static_cast<std::size_t>(length));
    // Most significant bit = first letter, so all N-prefixed words
    // (bit 0) precede all d-prefixed words (bit 1), recursively.
    for (int pos = 0; pos < length; ++pos) {
      const bool is_drive = (bits >> (length - 1 - pos)) & 1U;
      word[static_cast<std::size_t>(pos)] =
          is_drive ? FailureKind::kDrive : FailureKind::kNode;
    }
    words.push_back(std::move(word));
  }
  return words;
}

std::vector<double> h_set(const HParams& p) {
  const auto words = enumerate_words(p.fault_tolerance);
  std::vector<double> values;
  values.reserve(words.size());
  for (const auto& word : words) values.push_back(h_for_word(p, word));
  return values;
}

}  // namespace nsrel::combinat
