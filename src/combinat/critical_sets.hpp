// Critical-redundancy-set combinatorics (paper section 5.2).
//
// With data evenly distributed over the node set, a redundancy set is
// "critical" only when it has already absorbed as many failures as the
// erasure code tolerates. These helpers compute the fraction of a node's
// (or drive's) redundancy sets that are critical after j failures, the k2
// and k3 factors appearing in the internal-RAID MTTDL expressions, and the
// h-parameter families (h_NN, h_Nd, ... and in general h_alpha for words
// alpha over {N, d}) used by the no-internal-RAID models and the appendix's
// recursive construction.
#pragma once

#include <cstdint>
#include <vector>

namespace nsrel::combinat {

/// Total number of redundancy sets of size R over a node set of size N:
/// C(N, R).
[[nodiscard]] double redundancy_set_count(int node_set_size,
                                          int redundancy_set_size);

/// Number of redundancy sets a single node participates in: C(N-1, R-1).
[[nodiscard]] double sets_per_node(int node_set_size, int redundancy_set_size);

/// Fraction of a surviving node's redundancy sets that involve all of j
/// specific failed nodes: C(N-j, R-j) / C(N-1, R-1).
///
/// j = 2 gives the paper's k2 = (R-1)/(N-1); j = 3 gives
/// k3 = (R-1)(R-2)/((N-1)(N-2)). Requires 2 <= j <= R <= N.
[[nodiscard]] double critical_fraction(int node_set_size,
                                       int redundancy_set_size, int failures);

/// k2 factor for internal-RAID fault-tolerance-2 (section 5.2.1).
[[nodiscard]] double k2(int node_set_size, int redundancy_set_size);

/// k3 factor for internal-RAID fault-tolerance-3 (section 5.2.1).
[[nodiscard]] double k3(int node_set_size, int redundancy_set_size);

/// A failure word: the sequence of failure types (node or drive) that put a
/// no-internal-RAID system into its current degraded state.
enum class FailureKind : std::uint8_t { kNode, kDrive };
using FailureWord = std::vector<FailureKind>;

/// Parameters of the h family for the no-internal-RAID model at node fault
/// tolerance k (section 5.2.2 for k = 1, 2, 3; appendix in general).
struct HParams {
  int node_set_size = 0;        ///< N
  int redundancy_set_size = 0;  ///< R
  int drives_per_node = 0;      ///< d
  int fault_tolerance = 0;      ///< k
  double capacity_bytes = 0.0;  ///< C
  double her_per_byte = 0.0;    ///< HER as errors per byte read
};

/// The base value h for fault tolerance k:
///   h = [(R-1)(R-2)...(R-k)] / [(N-1)...(N-k+1)] * C * HER.
/// k = 1 reduces to (R-1)*C*HER, k = 2 to (R-1)(R-2)/(N-1)*C*HER, and
/// k = 3 to (R-1)(R-2)(R-3)/((N-1)(N-2))*C*HER, as in the paper.
[[nodiscard]] double h_base(const HParams& p);

/// h_alpha for a failure word alpha of length k: h * d^(1 - #drives(alpha)),
/// reproducing the paper's table (h_NN = d*h, h_Nd = h_dN = h, h_dd = h/d,
/// and the analogous k = 3 values). Requires word.size() == fault_tolerance.
[[nodiscard]] double h_for_word(const HParams& p, const FailureWord& word);

/// The ordered set h^(k): all 2^k values h_alpha with alpha enumerated so
/// that all N-prefixed words come before all d-prefixed words, recursively
/// (the order the appendix's L_k recursion consumes: h^(k) =
/// h_N . h^(k-1) ++ h_d . h^(k-1)).
[[nodiscard]] std::vector<double> h_set(const HParams& p);

/// Enumerates all failure words of the given length in the same order as
/// h_set (N-major order: NN..N, N..Nd, ..., dd..d).
[[nodiscard]] std::vector<FailureWord> enumerate_words(int length);

}  // namespace nsrel::combinat
