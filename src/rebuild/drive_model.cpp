#include "rebuild/drive_model.hpp"

#include "util/assert.hpp"

namespace nsrel::rebuild {

DriveModel::DriveModel(const DriveParams& params) : params_(params) {
  NSREL_EXPECTS(params_.max_iops > 0.0);
  NSREL_EXPECTS(params_.sustained_rate.value() > 0.0);
  NSREL_EXPECTS(params_.capacity.value() > 0.0);
  NSREL_EXPECTS(params_.mttf.value() > 0.0);
  NSREL_EXPECTS(params_.her_per_byte >= 0.0);
}

Seconds DriveModel::command_time(Bytes command_size) const {
  NSREL_EXPECTS(command_size.value() > 0.0);
  const double seek_s = 1.0 / params_.max_iops;
  const double transfer_s =
      command_size.value() / params_.sustained_rate.value();
  return Seconds(seek_s + transfer_s);
}

BytesPerSecond DriveModel::effective_rate(Bytes command_size) const {
  return BytesPerSecond(command_size.value() /
                        command_time(command_size).value());
}

double DriveModel::efficiency(Bytes command_size) const {
  return effective_rate(command_size).value() / params_.sustained_rate.value();
}

PerHour DriveModel::failure_rate() const { return rate_of(params_.mttf); }

double DriveModel::hard_error_probability(Bytes amount) const {
  NSREL_EXPECTS(amount.value() >= 0.0);
  return amount.value() * params_.her_per_byte;
}

}  // namespace nsrel::rebuild
