// Node interconnect model.
//
// The paper's bricks are cubes wired to neighbors on all six faces; what
// the reliability model needs is the aggregate sustained rate at which
// data can move in and out of one node. The paper quotes "10 Gbps
// (800 MB/s sustained)", i.e. a protocol efficiency of 64% over the raw
// signalling rate; we keep that efficiency as a parameter so link-speed
// sweeps (Figure 17) scale the same way the paper's do.
#pragma once

#include "util/units.hpp"

namespace nsrel::rebuild {

struct LinkParams {
  BitsPerSecond raw_speed = gigabits_per_second(10.0);  ///< paper baseline
  /// Sustained-bytes-per-raw-bit efficiency; 0.64 reproduces the paper's
  /// 10 Gb/s -> 800 MB/s.
  double efficiency = 0.64;
};

class LinkModel {
 public:
  /// Preconditions: raw_speed > 0, 0 < efficiency <= 1.
  explicit LinkModel(const LinkParams& params);

  [[nodiscard]] const LinkParams& params() const { return params_; }

  /// Aggregate sustained node bandwidth in bytes/second.
  [[nodiscard]] BytesPerSecond sustained() const;

 private:
  LinkParams params_;
};

}  // namespace nsrel::rebuild
