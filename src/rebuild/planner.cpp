#include "rebuild/planner.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace nsrel::rebuild {

RebuildPlanner::RebuildPlanner(const RebuildParams& params)
    : params_(params), drive_(params.drive), link_(params.link) {
  NSREL_EXPECTS(params_.node_set_size >= 2);
  NSREL_EXPECTS(params_.fault_tolerance >= 1);
  NSREL_EXPECTS(params_.redundancy_set_size > params_.fault_tolerance);
  NSREL_EXPECTS(params_.redundancy_set_size <= params_.node_set_size);
  NSREL_EXPECTS(params_.drives_per_node >= 1);
  NSREL_EXPECTS(params_.capacity_utilization > 0.0 &&
                params_.capacity_utilization <= 1.0);
  NSREL_EXPECTS(params_.rebuild_bandwidth_fraction > 0.0 &&
                params_.rebuild_bandwidth_fraction <= 1.0);
  NSREL_EXPECTS(params_.rebuild_command.value() > 0.0);
  NSREL_EXPECTS(params_.restripe_command.value() > 0.0);
}

Bytes RebuildPlanner::node_data() const {
  return Bytes(static_cast<double>(params_.drives_per_node) *
               params_.drive.capacity.value() * params_.capacity_utilization);
}

Bytes RebuildPlanner::drive_data() const {
  return Bytes(params_.drive.capacity.value() * params_.capacity_utilization);
}

DataFlows RebuildPlanner::flows() const {
  const double survivors = static_cast<double>(params_.node_set_size - 1);
  const double inputs =
      static_cast<double>(params_.redundancy_set_size - params_.fault_tolerance);
  DataFlows f;
  f.rebuilt_per_node = 1.0 / survivors;
  f.received_per_node = inputs / survivors;
  f.sourced_per_node = inputs / survivors;
  f.node_network_inout = 2.0 * inputs / survivors;
  f.node_disk_traffic = (inputs + 1.0) / survivors;
  f.interconnect_total = inputs;
  return f;
}

Seconds RebuildPlanner::node_disk_time() const {
  const DataFlows f = flows();
  const Bytes traffic(f.node_disk_traffic * node_data().value());
  const BytesPerSecond node_disk_bw(
      static_cast<double>(params_.drives_per_node) *
      drive_.effective_rate(params_.rebuild_command).value() *
      params_.rebuild_bandwidth_fraction);
  return transfer_time(traffic, node_disk_bw);
}

Seconds RebuildPlanner::node_network_time() const {
  const DataFlows f = flows();
  const Bytes traffic(f.node_network_inout * node_data().value());
  const BytesPerSecond rebuild_bw(link_.sustained().value() *
                                  params_.rebuild_bandwidth_fraction);
  return transfer_time(traffic, rebuild_bw);
}

RebuildRates RebuildPlanner::rates() const {
  RebuildRates r;
  const Seconds disk = node_disk_time();
  const Seconds net = node_network_time();
  r.node_bottleneck = disk >= net ? Bottleneck::kDisk : Bottleneck::kNetwork;
  r.node_rebuild_time = std::max(disk, net);
  r.node_rebuild_rate = rate_of(to_hours(r.node_rebuild_time));

  // Distributed drive rebuild: identical flow pattern over the same
  // aggregate resources, but only one drive's worth of data (1/d of a
  // node's), so it completes d times faster.
  r.drive_rebuild_time =
      r.node_rebuild_time / static_cast<double>(params_.drives_per_node);
  r.drive_rebuild_rate = rate_of(to_hours(r.drive_rebuild_time));

  // Internal-RAID re-stripe: each surviving drive concurrently reads its
  // live data and writes it re-striped (2 * C * u per drive) at the
  // re-stripe command size; no network involvement.
  const Bytes per_drive_traffic(2.0 * drive_data().value());
  const BytesPerSecond restripe_bw(
      drive_.effective_rate(params_.restripe_command).value() *
      params_.rebuild_bandwidth_fraction);
  r.restripe_time = transfer_time(per_drive_traffic, restripe_bw);
  r.restripe_rate = rate_of(to_hours(r.restripe_time));
  return r;
}

BitsPerSecond RebuildPlanner::link_speed_crossover() const {
  // Network time equals disk time when
  //   2(R-t) / (eff * link_raw/8) = (R-t+1) / (d * eff_rate(B))
  // (the bandwidth-utilization fraction cancels). Solve for link_raw.
  const DataFlows f = flows();
  const double disk_bw = static_cast<double>(params_.drives_per_node) *
                         drive_.effective_rate(params_.rebuild_command).value();
  const double sustained_needed =
      f.node_network_inout / f.node_disk_traffic * disk_bw;
  return BitsPerSecond(sustained_needed * 8.0 / params_.link.efficiency);
}

}  // namespace nsrel::rebuild
