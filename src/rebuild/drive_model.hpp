// Disk drive service model.
//
// The paper characterizes a drive by its maximum I/O operation rate
// (seek/rotation bound) and its sustained transfer rate. For a rebuild or
// re-stripe issuing commands of size B, each command costs
// 1/IOPS + B/transfer_rate, so the effective streaming rate is
//     eff(B) = B / (1/IOPS + B / transfer_rate),
// which saturates toward the sustained rate as B grows. This is the
// mechanism behind Figure 16's strong sensitivity to rebuild block size.
#pragma once

#include "util/units.hpp"

namespace nsrel::rebuild {

struct DriveParams {
  double max_iops = 150.0;  ///< I/O operations per second (paper: 150)
  BytesPerSecond sustained_rate =
      megabytes_per_second(40.0);             ///< paper: 40 MB/s average
  Bytes capacity = gigabytes(300.0);          ///< paper: 300 GB
  Hours mttf = Hours(300'000.0);              ///< paper: 300,000 h
  double her_per_byte = 8e-14;                ///< 1 sector per 1e14 bits read
};

class DriveModel {
 public:
  /// Preconditions: max_iops > 0, sustained_rate > 0, capacity > 0,
  /// mttf > 0, her_per_byte >= 0.
  explicit DriveModel(const DriveParams& params);

  [[nodiscard]] const DriveParams& params() const { return params_; }

  /// Effective throughput when streaming commands of the given size.
  [[nodiscard]] BytesPerSecond effective_rate(Bytes command_size) const;

  /// Per-command service time: seek/rotation cost plus transfer.
  [[nodiscard]] Seconds command_time(Bytes command_size) const;

  /// Fraction of the sustained rate achieved at this command size, in
  /// (0, 1); ~0.33 at 128 KiB with the baseline drive.
  [[nodiscard]] double efficiency(Bytes command_size) const;

  /// Drive failure rate (1 / MTTF).
  [[nodiscard]] PerHour failure_rate() const;

  /// Probability of at least one uncorrectable (hard) error when reading
  /// the given amount of data: amount * HER (the paper's linear model;
  /// valid while amount * HER << 1).
  [[nodiscard]] double hard_error_probability(Bytes amount) const;

 private:
  DriveParams params_;
};

}  // namespace nsrel::rebuild
