#include "rebuild/link_model.hpp"

#include "util/assert.hpp"

namespace nsrel::rebuild {

LinkModel::LinkModel(const LinkParams& params) : params_(params) {
  NSREL_EXPECTS(params_.raw_speed.value() > 0.0);
  NSREL_EXPECTS(params_.efficiency > 0.0 && params_.efficiency <= 1.0);
}

BytesPerSecond LinkModel::sustained() const {
  return BytesPerSecond(to_bytes_per_second(params_.raw_speed).value() *
                        params_.efficiency);
}

}  // namespace nsrel::rebuild
