#include "rebuild/degraded.hpp"

#include "util/assert.hpp"

namespace nsrel::rebuild {

DegradedModel::DegradedModel(const DegradedParams& params) : params_(params) {
  NSREL_EXPECTS(params_.node_mttf.value() > 0.0);
}

DegradedImpact DegradedModel::impact() const {
  const RebuildParams& r = params_.rebuild;
  const RebuildPlanner planner(r);
  const RebuildRates rates = planner.rates();

  DegradedImpact result;
  result.foreground_share = 1.0 - r.rebuild_bandwidth_fraction;

  // With one node of N down, 1/N of logical reads hit a lost shard and
  // cost R-t survivor reads instead of 1.
  const double n = static_cast<double>(r.node_set_size);
  const double inputs =
      static_cast<double>(r.redundancy_set_size - r.fault_tolerance);
  result.read_amplification = 1.0 + (inputs - 1.0) / n;

  // Long-run rebuilding fraction: N node-failure streams each binding a
  // node-rebuild window, plus N*d drive streams binding drive-rebuild
  // windows (both << 1, so the independent-window sum is accurate).
  const double node_rate = n / params_.node_mttf.value();
  const double drive_rate =
      n * static_cast<double>(r.drives_per_node) / r.drive.mttf.value();
  result.rebuilding_fraction =
      node_rate * to_hours(rates.node_rebuild_time).value() +
      drive_rate * to_hours(rates.drive_rebuild_time).value();
  NSREL_ASSERT(result.rebuilding_fraction < 1.0);

  const double degraded_throughput =
      result.foreground_share / result.read_amplification;
  result.throughput_efficiency =
      1.0 - result.rebuilding_fraction * (1.0 - degraded_throughput);
  return result;
}

}  // namespace nsrel::rebuild
