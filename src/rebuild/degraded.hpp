// Degraded-mode performance: what rebuilds cost the foreground workload.
//
// The paper reserves a fixed fraction of drive and link bandwidth for
// rebuild (10% at baseline) and asks only how fast the rebuild finishes.
// Operators also ask the complementary questions this module answers:
//
//  * How much foreground throughput remains while a rebuild runs
//    (1 - bandwidth fraction, plus the read amplification of degraded
//    reads: a read hitting a lost shard must fetch R-t survivor shards
//    and decode instead of one direct read)?
//  * What fraction of calendar time is the system rebuilding at all
//    (failure rates x rebuild durations)?
//  * Combining both: the expected long-run throughput efficiency, the
//    number the capacity planner should de-rate by.
#pragma once

#include "rebuild/planner.hpp"
#include "util/units.hpp"

namespace nsrel::rebuild {

struct DegradedParams {
  RebuildParams rebuild;       ///< geometry + hardware (section 6)
  Hours node_mttf{400'000.0};  ///< lambda_N^-1
  /// Fraction of reads that touch a lost shard while one node of N is
  /// down: 1/N of the data was on it (even distribution).
  /// Reads to lost shards cost (R-t) survivor reads plus decode.
};

struct DegradedImpact {
  /// Foreground bandwidth share while a rebuild runs.
  double foreground_share = 0.0;
  /// Mean I/O amplification of reads during a single-node-down window:
  /// 1 + (R-t-1)/N extra reads per logical read.
  double read_amplification = 0.0;
  /// Long-run fraction of time at least one rebuild is in flight
  /// (node + drive failure streams x their rebuild durations; <<1).
  double rebuilding_fraction = 0.0;
  /// Long-run expected throughput relative to a failure-free system:
  /// 1 - rebuilding_fraction * (1 - foreground_share/read_amplification).
  double throughput_efficiency = 0.0;
};

class DegradedModel {
 public:
  explicit DegradedModel(const DegradedParams& params);

  [[nodiscard]] DegradedImpact impact() const;

 private:
  DegradedParams params_;
};

}  // namespace nsrel::rebuild
