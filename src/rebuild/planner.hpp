// Rebuild-rate model (paper section 5.1 plus the section-6 parameters).
//
// Fail-in-place with evenly distributed data means a failed node's data is
// reconstructed cooperatively by the N-1 survivors into their spare
// capacity. In units of one node's worth of data, the flows are:
//
//   rebuilt per surviving node                 1/(N-1)
//   received per node (R-t inputs per stripe)  (R-t)/(N-1)
//   sourced per node                           (R-t)/(N-1)
//   in+out of each node over the network       2(R-t)/(N-1)
//   to/from the disks of each node             (R-t+1)/(N-1)
//   total on the interconnect                  R-t
//
// The rebuild time is the larger of the disk-side and network-side
// transfer times, with only `rebuild_bandwidth_fraction` of each resource
// devoted to rebuild (the paper's 10%). The same machinery gives the
// internal-RAID re-stripe rate and the distributed drive rebuild rate for
// the no-internal-RAID configurations.
#pragma once

#include "rebuild/drive_model.hpp"
#include "rebuild/link_model.hpp"

namespace nsrel::rebuild {

struct RebuildParams {
  int node_set_size = 64;        ///< N
  int redundancy_set_size = 8;   ///< R
  int fault_tolerance = 2;       ///< t (erasure code strength across nodes)
  int drives_per_node = 12;      ///< d
  DriveParams drive;
  LinkParams link;
  Bytes rebuild_command = kilobytes(128.0);   ///< paper: 128 KB
  Bytes restripe_command = megabytes(1.0);    ///< paper: 1 MB
  double capacity_utilization = 0.75;         ///< paper: 75%
  double rebuild_bandwidth_fraction = 0.10;   ///< paper: 10%
};

/// Section 5.1's flow accounting, in units of one node's worth of data.
struct DataFlows {
  double rebuilt_per_node = 0.0;
  double received_per_node = 0.0;
  double sourced_per_node = 0.0;
  double node_network_inout = 0.0;
  double node_disk_traffic = 0.0;
  double interconnect_total = 0.0;
};

enum class Bottleneck { kDisk, kNetwork };

struct RebuildRates {
  Seconds node_rebuild_time;   ///< time to reconstruct one failed node
  Seconds drive_rebuild_time;  ///< distributed rebuild of one failed drive
  Seconds restripe_time;       ///< internal-RAID array re-stripe
  PerHour node_rebuild_rate;   ///< mu_N
  PerHour drive_rebuild_rate;  ///< mu_d, no-internal-RAID configurations
  PerHour restripe_rate;       ///< mu_d term of the array models (Figs 1, 4)
  Bottleneck node_bottleneck = Bottleneck::kDisk;
};

class RebuildPlanner {
 public:
  /// Preconditions: N >= 2, 1 <= t < R <= N, d >= 1, fractions in (0, 1].
  explicit RebuildPlanner(const RebuildParams& params);

  [[nodiscard]] const RebuildParams& params() const { return params_; }

  /// One node's worth of stored data: d * C * capacity_utilization.
  [[nodiscard]] Bytes node_data() const;

  /// One drive's worth of stored data: C * capacity_utilization.
  [[nodiscard]] Bytes drive_data() const;

  [[nodiscard]] DataFlows flows() const;

  /// Disk-side time component of a node rebuild.
  [[nodiscard]] Seconds node_disk_time() const;

  /// Network-side time component of a node rebuild.
  [[nodiscard]] Seconds node_network_time() const;

  /// All effective rates (the quantities the Markov models consume).
  [[nodiscard]] RebuildRates rates() const;

  /// Raw link speed at which the node rebuild transitions from
  /// network-bound to disk-bound (the paper observes ~3 Gb/s with baseline
  /// parameters; Figure 17 is flat above this point).
  [[nodiscard]] BitsPerSecond link_speed_crossover() const;

 private:
  RebuildParams params_;
  DriveModel drive_;
  LinkModel link_;
};

}  // namespace nsrel::rebuild
