// Number formatting for reports: engineering/scientific notation helpers
// matching the magnitudes the paper plots (events per PB-year span ~1e-12
// to ~1e+2 across figures).
#pragma once

#include <string>

namespace nsrel {

/// "1.23e-05" style scientific with the given significant digits (>= 1).
[[nodiscard]] std::string sci(double v, int significant_digits = 3);

/// Fixed-point with the given decimals.
[[nodiscard]] std::string fixed(double v, int decimals = 2);

/// Human-readable byte size: "300 GB", "128 KiB" (binary for sub-MB command
/// sizes, decimal for drive capacities -- the paper mixes both).
[[nodiscard]] std::string human_bytes(double bytes);

/// Hours rendered with an adaptive unit: "39.5 h", "4.2e+07 h (4.8e+03 yr)".
[[nodiscard]] std::string human_hours(double hours);

}  // namespace nsrel
