// Strong unit types used at the public API boundary.
//
// Reliability formulas mix rates, probabilities and times whose units are
// easy to confuse (the paper itself carries HER "per bits read" in one
// section and "per bytes read" in another). All `nsrel` public interfaces
// take these wrappers; internal formula code unwraps them into clearly
// named locals.
#pragma once

#include <compare>

#include "util/assert.hpp"

namespace nsrel {

namespace detail {

/// CRTP-free strong double: units with the same Tag compare and add;
/// cross-unit arithmetic requires explicit conversion.
template <class Tag>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : value_(v) {}

  [[nodiscard]] constexpr double value() const { return value_; }

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity(a.value_ + b.value_);
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity(a.value_ - b.value_);
  }
  friend constexpr Quantity operator*(double s, Quantity q) {
    return Quantity(s * q.value_);
  }
  friend constexpr Quantity operator*(Quantity q, double s) {
    return Quantity(s * q.value_);
  }
  friend constexpr Quantity operator/(Quantity q, double s) {
    return Quantity(q.value_ / s);
  }
  friend constexpr double operator/(Quantity a, Quantity b) {
    return a.value_ / b.value_;
  }
  friend constexpr auto operator<=>(Quantity, Quantity) = default;

 private:
  double value_ = 0.0;
};

}  // namespace detail

/// Elapsed or mean time in hours (the paper's native unit for MTTF/MTTR).
using Hours = detail::Quantity<struct HoursTag>;
/// Elapsed time in seconds (native unit of the rebuild data-flow model).
using Seconds = detail::Quantity<struct SecondsTag>;
/// Event rate in events per hour (failure and repair rates).
using PerHour = detail::Quantity<struct PerHourTag>;
/// Data size in bytes.
using Bytes = detail::Quantity<struct BytesTag>;
/// Throughput in bytes per second.
using BytesPerSecond = detail::Quantity<struct BytesPerSecondTag>;
/// Throughput in bits per second (how the paper quotes link speeds).
using BitsPerSecond = detail::Quantity<struct BitsPerSecondTag>;

inline constexpr double kSecondsPerHour = 3600.0;
inline constexpr double kHoursPerYear = 24.0 * 365.25;

[[nodiscard]] constexpr Seconds to_seconds(Hours h) {
  return Seconds(h.value() * kSecondsPerHour);
}
[[nodiscard]] constexpr Hours to_hours(Seconds s) {
  return Hours(s.value() / kSecondsPerHour);
}
[[nodiscard]] constexpr double to_years(Hours h) {
  return h.value() / kHoursPerYear;
}

/// Rate corresponding to a mean time between events. Requires t > 0.
[[nodiscard]] inline PerHour rate_of(Hours t) {
  NSREL_EXPECTS(t.value() > 0.0);
  return PerHour(1.0 / t.value());
}
/// Mean time between events for a rate. Requires r > 0.
[[nodiscard]] inline Hours mean_time_of(PerHour r) {
  NSREL_EXPECTS(r.value() > 0.0);
  return Hours(1.0 / r.value());
}

/// Time to move `amount` at `rate`. Requires rate > 0.
[[nodiscard]] inline Seconds transfer_time(Bytes amount, BytesPerSecond rate) {
  NSREL_EXPECTS(rate.value() > 0.0);
  NSREL_EXPECTS(amount.value() >= 0.0);
  return Seconds(amount.value() / rate.value());
}

[[nodiscard]] constexpr BytesPerSecond to_bytes_per_second(BitsPerSecond b) {
  return BytesPerSecond(b.value() / 8.0);
}

// Convenience literal-style factories (the paper quotes GB, Gb/s, KB...).
[[nodiscard]] constexpr Bytes kilobytes(double v) { return Bytes(v * 1024.0); }
[[nodiscard]] constexpr Bytes megabytes(double v) {
  return Bytes(v * 1024.0 * 1024.0);
}
[[nodiscard]] constexpr Bytes gigabytes(double v) {
  return Bytes(v * 1e9);  // drive vendors (and the paper) use decimal GB
}
[[nodiscard]] constexpr Bytes terabytes(double v) { return Bytes(v * 1e12); }
[[nodiscard]] constexpr Bytes petabytes(double v) { return Bytes(v * 1e15); }
[[nodiscard]] constexpr BitsPerSecond gigabits_per_second(double v) {
  return BitsPerSecond(v * 1e9);
}
[[nodiscard]] constexpr BytesPerSecond megabytes_per_second(double v) {
  return BytesPerSecond(v * 1e6);
}

}  // namespace nsrel
