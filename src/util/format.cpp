#include "util/format.hpp"

#include <cmath>
#include <cstdio>
#include <string>

#include "util/assert.hpp"
#include "util/units.hpp"

namespace nsrel {

namespace {
std::string printf_to_string(const char* fmt, double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, precision, v);
  return buf;
}
}  // namespace

std::string sci(double v, int significant_digits) {
  NSREL_EXPECTS(significant_digits >= 1);
  return printf_to_string("%.*e", v, significant_digits - 1);
}

std::string fixed(double v, int decimals) {
  NSREL_EXPECTS(decimals >= 0);
  return printf_to_string("%.*f", v, decimals);
}

std::string human_bytes(double bytes) {
  if (bytes < 0) return "-" + human_bytes(-bytes);
  if (bytes < 1024.0 * 1024.0) {
    if (bytes >= 1024.0) return fixed(bytes / 1024.0, 0) + " KiB";
    return fixed(bytes, 0) + " B";
  }
  if (bytes < 1e9) return fixed(bytes / (1024.0 * 1024.0), 0) + " MiB";
  if (bytes < 1e12) return fixed(bytes / 1e9, 0) + " GB";
  if (bytes < 1e15) return fixed(bytes / 1e12, 1) + " TB";
  return fixed(bytes / 1e15, 2) + " PB";
}

std::string human_hours(double hours) {
  if (hours < 1e4) return fixed(hours, 1) + " h";
  return sci(hours, 3) + " h (" + sci(hours / kHoursPerYear, 3) + " yr)";
}

}  // namespace nsrel
