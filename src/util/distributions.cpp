#include "util/distributions.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace nsrel {

WeibullLifetime::WeibullLifetime(double shape, double mttf_hours)
    : shape_(shape) {
  NSREL_EXPECTS(shape > 0.0);
  NSREL_EXPECTS(mttf_hours > 0.0);
  scale_ = mttf_hours / std::tgamma(1.0 + 1.0 / shape);
}

double WeibullLifetime::mean_hours() const {
  return scale_ * std::tgamma(1.0 + 1.0 / shape_);
}

double WeibullLifetime::sample(Xoshiro256& rng) const {
  // Inverse CDF: t = scale * (-ln(1-u))^(1/shape).
  const double u = rng.uniform();
  return scale_ * std::pow(-std::log1p(-u), 1.0 / shape_);
}

double WeibullLifetime::hazard(double age_hours) const {
  NSREL_EXPECTS(age_hours >= 0.0);
  NSREL_EXPECTS(age_hours > 0.0 || shape_ >= 1.0);
  return shape_ / scale_ * std::pow(age_hours / scale_, shape_ - 1.0);
}

}  // namespace nsrel
