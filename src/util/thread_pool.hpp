// Small reusable fixed-size thread pool for CPU-bound fan-out work
// (the parallel Monte-Carlo engine is the first client).
//
// Deliberately minimal: a fixed set of workers drains a FIFO queue of
// type-erased jobs; submit() hands back a future so callers can join on
// completion (and observe exceptions). No work stealing, no priorities —
// clients that need deterministic results must make the *jobs* order-
// independent (e.g. write to disjoint slots) rather than rely on any
// scheduling property of this pool.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/sync.hpp"

namespace nsrel {

class ThreadPool {
 public:
  /// Starts `threads` workers. Precondition: threads >= 1.
  explicit ThreadPool(int threads);

  /// Drains outstanding jobs, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job; the future resolves when it finishes (or rethrows
  /// what the job threw). When the obs metrics registry is enabled the
  /// pool records queue depth at submit, submit-to-start latency, and
  /// per-worker busy time; disabled, the probes cost one relaxed load.
  std::future<void> submit(std::function<void()> job);

  [[nodiscard]] int thread_count() const {
    return static_cast<int>(workers_.size());
  }

  /// std::thread::hardware_concurrency() clamped to >= 1 (the standard
  /// allows it to report 0 when unknown).
  [[nodiscard]] static int hardware_threads();

 private:
  /// One queued job plus its submit timestamp (0 = metrics disabled at
  /// submit time, so the worker skips the latency probe).
  struct Job {
    std::packaged_task<void()> task;
    std::uint64_t submit_ns = 0;
  };

  void worker_loop(int index);

  std::vector<std::thread> workers_;
  util::Mutex mutex_;
  util::CondVar work_available_;
  std::deque<Job> queue_ NSREL_GUARDED_BY(mutex_);
  bool stopping_ NSREL_GUARDED_BY(mutex_) = false;
};

}  // namespace nsrel
