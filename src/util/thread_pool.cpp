#include "util/thread_pool.hpp"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/probe_names.hpp"
#include "util/assert.hpp"
#include "util/sync.hpp"

namespace nsrel {

namespace {

/// Registered lazily the first time a pool runs with metrics enabled; the
/// registry hands back the same slots on every call, so repeated lookup
/// is cheap and idempotent.
struct PoolProbes {
  obs::Counter submitted;
  obs::Counter completed;
  obs::Histogram queue_depth;
  obs::Histogram queue_delay_ns;
  obs::Histogram task_ns;
};

PoolProbes pool_probes() {
  auto& registry = obs::Registry::instance();
  return {registry.counter(obs::probe::kThreadPoolSubmitted),
          registry.counter(obs::probe::kThreadPoolCompleted),
          registry.histogram(obs::probe::kThreadPoolQueueDepth),
          registry.histogram(obs::probe::kThreadPoolQueueDelayNs),
          registry.histogram(obs::probe::kThreadPoolTaskNs)};
}

}  // namespace

ThreadPool::ThreadPool(int threads) {
  NSREL_EXPECTS(threads >= 1);
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const util::MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> job) {
  Job entry;
  entry.task = std::packaged_task<void()>(std::move(job));
  std::future<void> result = entry.task.get_future();
  const bool instrumented = obs::Registry::enabled();
  if (instrumented) entry.submit_ns = obs::now_ns();
  std::size_t depth = 0;
  {
    const util::MutexLock lock(mutex_);
    NSREL_EXPECTS(!stopping_);
    queue_.push_back(std::move(entry));
    depth = queue_.size();
  }
  if (instrumented) {
    auto& registry = obs::Registry::instance();
    const PoolProbes probes = pool_probes();
    registry.add(probes.submitted);
    registry.record(probes.queue_depth, depth);
  }
  work_available_.notify_one();
  return result;
}

int ThreadPool::hardware_threads() {
  const unsigned reported = std::thread::hardware_concurrency();
  return reported == 0 ? 1 : static_cast<int>(reported);
}

void ThreadPool::worker_loop(int index) {
  for (;;) {
    Job job;
    {
      const util::MutexLock lock(mutex_);
      // Explicit wait loop (no predicate lambda) so the analyser sees
      // every guarded read happen with mutex_ held.
      while (!stopping_ && queue_.empty()) work_available_.wait(mutex_);
      if (queue_.empty()) return;  // stopping_ and nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    // Probe only jobs stamped at submit time, so a job enqueued before
    // metrics were enabled never contributes a bogus latency sample.
    if (job.submit_ns != 0 && obs::Registry::enabled()) {
      auto& registry = obs::Registry::instance();
      const PoolProbes probes = pool_probes();
      const obs::Counter busy = registry.counter(
          obs::probe::kThreadPoolWorkerPrefix + std::to_string(index) +
          obs::probe::kThreadPoolWorkerBusySuffix);
      const std::uint64_t start = obs::now_ns();
      registry.record(probes.queue_delay_ns, start - job.submit_ns);
      job.task();  // exceptions land in the associated future
      const std::uint64_t elapsed = obs::now_ns() - start;
      registry.record(probes.task_ns, elapsed);
      registry.add(busy, elapsed);
      registry.add(probes.completed);
    } else {
      job.task();  // exceptions land in the associated future
    }
  }
}

}  // namespace nsrel
