#include "util/thread_pool.hpp"

#include "util/assert.hpp"

namespace nsrel {

ThreadPool::ThreadPool(int threads) {
  NSREL_EXPECTS(threads >= 1);
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> job) {
  std::packaged_task<void()> task(std::move(job));
  std::future<void> result = task.get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    NSREL_EXPECTS(!stopping_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
  return result;
}

int ThreadPool::hardware_threads() {
  const unsigned reported = std::thread::hardware_concurrency();
  return reported == 0 ? 1 : static_cast<int>(reported);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the associated future
  }
}

}  // namespace nsrel
