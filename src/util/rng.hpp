// Deterministic, fast PRNG for the Monte-Carlo simulator and property tests.
//
// xoshiro256++ (Blackman & Vigna): excellent statistical quality, trivially
// seedable, and — unlike std::mt19937 — identical output across standard
// library implementations, which keeps simulation tests reproducible.
#pragma once

#include <cstdint>

namespace nsrel {

/// One step of the splitmix64 generator: advances `state` by the golden
/// gamma and returns a fully mixed 64-bit output. Exposed (rather than
/// kept private to Xoshiro256 seeding) so seed-stream derivation and the
/// property tests share the exact same mixer.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// Derives the seed of an independent RNG stream from a base seed and a
/// stream index, via two splitmix64 mixes. For a fixed base seed the map
/// `stream -> stream_seed(seed, stream)` is injective (the final mix is a
/// bijection applied to values that differ per stream), so distinct
/// chunks of a Monte-Carlo run can never collide onto the same stream.
[[nodiscard]] std::uint64_t stream_seed(std::uint64_t seed,
                                        std::uint64_t stream);

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from a single 64-bit seed via splitmix64.
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() { return ~0ULL; }

  result_type operator()();

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform();

  /// Uniform double in [0, 1) that is never exactly 0 (safe for log()).
  [[nodiscard]] double uniform_positive();

  /// Exponential variate with the given rate (> 0).
  [[nodiscard]] double exponential(double rate);

  /// Uniform integer in [0, n).
  [[nodiscard]] std::uint64_t below(std::uint64_t n);

  /// Bernoulli trial with success probability p in [0, 1].
  [[nodiscard]] bool bernoulli(double p);

 private:
  std::uint64_t state_[4];
};

}  // namespace nsrel
