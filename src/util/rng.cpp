#include "util/rng.hpp"

#include <cmath>
#include <cstdint>

#include "util/assert.hpp"

namespace nsrel {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t stream) {
  // First decorrelate the base seed (users pass small integers), then
  // fold the stream index in and mix again. The second splitmix64 call
  // is a bijection of its pre-incremented state, so distinct streams map
  // to distinct seeds for any fixed base seed.
  std::uint64_t state = seed;
  state = splitmix64(state) ^ stream;
  return splitmix64(state);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Xoshiro256::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform_positive() {
  double u = uniform();
  while (u == 0.0) u = uniform();
  return u;
}

double Xoshiro256::exponential(double rate) {
  NSREL_EXPECTS(rate > 0.0);
  return -std::log1p(-uniform()) / rate;
}

std::uint64_t Xoshiro256::below(std::uint64_t n) {
  NSREL_EXPECTS(n > 0);
  // Rejection sampling for an unbiased result.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

bool Xoshiro256::bernoulli(double p) {
  NSREL_EXPECTS(p >= 0.0 && p <= 1.0);
  return uniform() < p;
}

}  // namespace nsrel
