#include "util/error.hpp"

#include <string>

namespace nsrel {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kSingularGenerator:
      return "singular_generator";
    case ErrorCode::kIllConditioned:
      return "ill_conditioned";
    case ErrorCode::kNonFiniteResult:
      return "non_finite_result";
    case ErrorCode::kInvalidParameter:
      return "invalid_parameter";
    case ErrorCode::kContractViolation:
      return "contract_violation";
    case ErrorCode::kInternal:
      return "internal";
    case ErrorCode::kMalformedDocument:
      return "malformed_document";
    case ErrorCode::kDataLoss:
      return "data_loss";
    case ErrorCode::kCapacityExhausted:
      return "capacity_exhausted";
  }
  return "internal";
}

std::string Error::message() const {
  return layer + ": " + error_code_name(code) + ": " + detail;
}

}  // namespace nsrel
