// Small numeric helpers shared across modules.
#pragma once

#include <cstdint>

namespace nsrel {

/// Exact binomial coefficient C(n, k) as a double. Uses the multiplicative
/// formula, stable for the magnitudes this library needs (n up to a few
/// thousand). Returns 0 for k < 0 or k > n.
[[nodiscard]] double binomial(std::int64_t n, std::int64_t k);

/// Natural log of C(n, k) via lgamma; defined for 0 <= k <= n.
[[nodiscard]] double log_binomial(std::int64_t n, std::int64_t k);

/// Falling factorial n * (n-1) * ... * (n-k+1). Returns 1 for k == 0.
[[nodiscard]] double falling_factorial(std::int64_t n, std::int64_t k);

/// True if |a - b| <= tol * max(|a|, |b|) (or both within tol of zero).
[[nodiscard]] bool approx_equal(double a, double b, double rel_tol);

/// Probability of at least one event when the expected event count is
/// `expected_events` (Poisson): 1 - exp(-x). Equals x to first order, which
/// is the paper's linear hard-error model; the saturated form keeps the
/// exact Markov chains well-defined where the linear model exceeds 1
/// (e.g. h_N ~ 2 at baseline fault tolerance 1). Requires x >= 0.
[[nodiscard]] double saturated_probability(double expected_events);

/// Kahan-compensated accumulator for long sums of similar-magnitude terms.
class KahanSum {
 public:
  void add(double x);
  [[nodiscard]] double value() const { return sum_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

}  // namespace nsrel
