#include "util/math.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/assert.hpp"

namespace nsrel {

double binomial(std::int64_t n, std::int64_t k) {
  if (k < 0 || k > n || n < 0) return 0.0;
  k = std::min(k, n - k);
  double result = 1.0;
  for (std::int64_t i = 1; i <= k; ++i) {
    result *= static_cast<double>(n - k + i);
    result /= static_cast<double>(i);
  }
  return result;
}

double log_binomial(std::int64_t n, std::int64_t k) {
  NSREL_EXPECTS(n >= 0 && k >= 0 && k <= n);
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double falling_factorial(std::int64_t n, std::int64_t k) {
  NSREL_EXPECTS(k >= 0);
  double result = 1.0;
  for (std::int64_t i = 0; i < k; ++i) result *= static_cast<double>(n - i);
  return result;
}

bool approx_equal(double a, double b, double rel_tol) {
  const double diff = std::abs(a - b);
  const double scale = std::max(std::abs(a), std::abs(b));
  return diff <= rel_tol * std::max(scale, 1e-300);
}

double saturated_probability(double expected_events) {
  NSREL_EXPECTS(expected_events >= 0.0);
  return -std::expm1(-expected_events);
}

void KahanSum::add(double x) {
  const double y = x - compensation_;
  const double t = sum_ + y;
  compensation_ = (t - sum_) - y;
  sum_ = t;
}

}  // namespace nsrel
