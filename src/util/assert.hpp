// Contract-checking macros in the style of the C++ Core Guidelines' GSL
// Expects/Ensures. Violations throw `nsrel::ContractViolation` so that both
// library users and the test suite can observe them deterministically
// (EXPECT_THROW) instead of aborting the process.
#pragma once

#include <stdexcept>
#include <string>

namespace nsrel {

/// Thrown when a precondition, postcondition or internal invariant fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace nsrel

/// Precondition check: argument validation at public API boundaries.
#define NSREL_EXPECTS(cond)                                              \
  do {                                                                   \
    if (!(cond))                                                         \
      ::nsrel::detail::contract_fail("precondition", #cond, __FILE__,    \
                                     __LINE__);                          \
  } while (false)

/// Postcondition / invariant check.
#define NSREL_ENSURES(cond)                                              \
  do {                                                                   \
    if (!(cond))                                                         \
      ::nsrel::detail::contract_fail("postcondition", #cond, __FILE__,   \
                                     __LINE__);                          \
  } while (false)

/// Internal invariant that indicates a library bug if violated.
#define NSREL_ASSERT(cond)                                               \
  do {                                                                   \
    if (!(cond))                                                         \
      ::nsrel::detail::contract_fail("invariant", #cond, __FILE__,       \
                                     __LINE__);                          \
  } while (false)
