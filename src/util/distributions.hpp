// Lifetime distributions for the non-Markovian simulator.
//
// The paper's Markov models assume exponentially distributed lifetimes
// (constant hazard). Real drives show infant mortality (decreasing
// hazard, Weibull shape < 1) and wearout (increasing hazard, shape > 1).
// This module provides Weibull sampling parameterized by MTTF so the
// simulator can hold the mean fixed while varying the hazard shape —
// isolating exactly what the exponential assumption buys.
#pragma once

#include "util/rng.hpp"

namespace nsrel {

class WeibullLifetime {
 public:
  /// Weibull with the given shape whose MEAN equals mttf_hours:
  /// scale = mttf / Gamma(1 + 1/shape). shape = 1 is the exponential.
  /// Preconditions: shape > 0, mttf_hours > 0.
  WeibullLifetime(double shape, double mttf_hours);

  [[nodiscard]] double shape() const { return shape_; }
  [[nodiscard]] double scale_hours() const { return scale_; }
  [[nodiscard]] double mean_hours() const;

  /// One sampled lifetime (hours), by inverse-CDF.
  [[nodiscard]] double sample(Xoshiro256& rng) const;

  /// Hazard rate at age t (hours): (shape/scale) * (t/scale)^(shape-1).
  /// Requires t > 0 when shape < 1 (hazard diverges at 0).
  [[nodiscard]] double hazard(double age_hours) const;

 private:
  double shape_;
  double scale_;
};

}  // namespace nsrel
