// Annotated synchronisation primitives: the only mutex/condvar types
// allowed in src/ (nsrel-lint rule sync-wrapper bans the raw std::
// types everywhere else). The wrappers carry Clang Thread Safety
// Analysis attributes so that "which lock guards which field" is a
// compile-time contract: a `-Wthread-safety -Werror` build (see
// tools/thread_safety.sh) rejects any access to a NSREL_GUARDED_BY
// field without its Mutex held. Under non-Clang compilers every macro
// expands to nothing and Mutex/MutexLock/CondVar inline to the plain
// std primitives — zero cost, identical codegen (the bench
// counter-drift gate holds this to account).
//
// The lock hierarchy itself is documented in DESIGN.md §15. It is
// deliberately flat: no code path acquires two nsrel mutexes at once,
// so there are no NSREL_ACQUIRED_BEFORE edges to declare.
#pragma once

#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Attribute macros (LLVM Thread Safety Analysis spelling, NSREL_ prefix).
// Gated on __clang__: GCC parses but does not implement the analysis,
// and warns about the unknown attributes, so they must vanish there.
// ---------------------------------------------------------------------------
#if defined(__clang__) && (!defined(SWIG))
#define NSREL_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define NSREL_THREAD_ANNOTATION__(x)  // no-op outside Clang
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define NSREL_CAPABILITY(x) NSREL_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII type whose lifetime holds a capability.
#define NSREL_SCOPED_CAPABILITY NSREL_THREAD_ANNOTATION__(scoped_lockable)

/// Declares that a data member may only be accessed with `x` held.
#define NSREL_GUARDED_BY(x) NSREL_THREAD_ANNOTATION__(guarded_by(x))

/// Declares that the pointee may only be accessed with `x` held.
#define NSREL_PT_GUARDED_BY(x) NSREL_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function precondition: caller must hold `...` (and it stays held).
#define NSREL_REQUIRES(...) \
  NSREL_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function acquires `...` and returns with it held.
#define NSREL_ACQUIRE(...) \
  NSREL_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function releases `...` (which must be held on entry).
#define NSREL_RELEASE(...) \
  NSREL_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function acquires `...` iff it returns the given boolean.
#define NSREL_TRY_ACQUIRE(...) \
  NSREL_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Function precondition: caller must NOT hold `...` (deadlock guard).
#define NSREL_EXCLUDES(...) \
  NSREL_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Declares a static acquisition order between two mutexes.
#define NSREL_ACQUIRED_BEFORE(...) \
  NSREL_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define NSREL_ACQUIRED_AFTER(...) \
  NSREL_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Runtime assertion to the analyser that `...` is held here.
#define NSREL_ASSERT_CAPABILITY(x) \
  NSREL_THREAD_ANNOTATION__(assert_capability(x))

/// Return value is the capability itself (for accessor functions).
#define NSREL_RETURN_CAPABILITY(x) \
  NSREL_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: function body is not analysed. Only permitted inside
/// this header's own implementation (the gate's "annotated-primitive
/// headers" carve-out); using it elsewhere defeats the contract.
#define NSREL_NO_THREAD_SAFETY_ANALYSIS \
  NSREL_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace nsrel::util {

class CondVar;

/// Annotated exclusive mutex. Same storage and codegen as std::mutex;
/// the NSREL_CAPABILITY attribute lets the analyser name it in
/// diagnostics and track which fields it guards.
class NSREL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() NSREL_ACQUIRE() { inner_.lock(); }
  void unlock() NSREL_RELEASE() { inner_.unlock(); }
  [[nodiscard]] bool try_lock() NSREL_TRY_ACQUIRE(true) {
    return inner_.try_lock();
  }

 private:
  friend class CondVar;  // CondVar::wait needs the raw handle.
  std::mutex& native() { return inner_; }

  std::mutex inner_;
};

/// RAII lock over Mutex — the only sanctioned way to hold one. The
/// adopting constructor takes a mutex already held (e.g. after a
/// successful try_lock) and assumes responsibility for releasing it.
class NSREL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) NSREL_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  MutexLock(Mutex& mutex, std::adopt_lock_t) NSREL_REQUIRES(mutex)
      : mutex_(mutex) {}
  ~MutexLock() NSREL_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable bound to Mutex. There is deliberately no
/// predicate overload: the analyser cannot see through a predicate
/// lambda to the GUARDED_BY fields it reads, so callers write the
/// canonical explicit loop instead —
///
///   MutexLock lock(mutex_);
///   while (!ready_) cv_.wait(mutex_);
///
/// which keeps every guarded read inside the analysed locked scope.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex`, blocks, and re-acquires before
  /// returning. The caller must hold `mutex` (via MutexLock).
  void wait(Mutex& mutex) NSREL_REQUIRES(mutex) {
    // Adopt the held mutex into a temporary unique_lock for the wait,
    // then release() it so ownership stays with the caller's
    // MutexLock. The mutex is locked again when wait() returns, so
    // the caller's scoped release stays balanced.
    std::unique_lock<std::mutex> relock(mutex.native(), std::adopt_lock);
    inner_.wait(relock);
    relock.release();
  }

  void notify_one() { inner_.notify_one(); }
  void notify_all() { inner_.notify_all(); }

 private:
  std::condition_variable inner_;
};

}  // namespace nsrel::util
