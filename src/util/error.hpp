// Typed error taxonomy for the solve stack, plus a lightweight
// Expected<T> result type.
//
// The paper's whole subject is graceful degradation under component
// faults, and the evaluation pipeline holds itself to the same bar: a
// degenerate cell in a sweep (singular generator, non-finite rate,
// contract violation inside model construction) must not abort the run —
// it becomes a typed `Error` with a *stable* machine-readable code that
// renders identically at any --jobs count. Numerical layers return
// `Expected<T>` from their `try_*` entry points; the throwing wrappers
// raise `ErrorException`, which the engine catches per cell.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

#include "util/assert.hpp"

namespace nsrel {

/// Stable error codes. The names rendered into tables/CSV/JSON (and
/// matched by downstream tooling) come from error_code_name() and never
/// change meaning:
///   singular_generator  - the chain's absorption/generator matrix is
///                         numerically singular (no solve exists)
///   ill_conditioned     - the solve exists but rcond is below the
///                         configured threshold; results would be noise
///   non_finite_result   - a produced value (MTTDL, rate, probability)
///                         is NaN/inf or out of its domain
///   invalid_parameter   - an input parameter is out of domain (zero or
///                         negative rate, non-finite value, bad range)
///   contract_violation  - an NSREL_EXPECTS/ENSURES/ASSERT fired inside
///                         the cell's model construction or solve
///   internal            - any other std::exception escaped the cell
///   malformed_document  - a serialized document (nsrel-resultset-v3
///                         JSON) failed strict validation: wrong schema
///                         tag, missing/unknown keys, type mismatches,
///                         or indices out of range
///   data_loss           - stored data is genuinely gone: a stripe lost
///                         more shards than its erasure code tolerates
///                         (the brick store / repair engine's absorbing
///                         state)
///   capacity_exhausted  - the surviving nodes lack the spare capacity
///                         to place or rebuild a shard (fail-in-place
///                         over-provisioning ran out)
enum class ErrorCode : unsigned char {
  kSingularGenerator,
  kIllConditioned,
  kNonFiniteResult,
  kInvalidParameter,
  kContractViolation,
  kInternal,
  kMalformedDocument,
  kDataLoss,
  kCapacityExhausted,
};

/// The stable snake_case name of a code (e.g. "singular_generator").
[[nodiscard]] const char* error_code_name(ErrorCode code);

/// A typed failure: what went wrong (code), which layer detected it
/// (e.g. "ctmc.absorbing"), and a human-readable detail string.
struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string layer;
  std::string detail;

  /// "<layer>: <code name>: <detail>".
  [[nodiscard]] std::string message() const;
};

/// Thrown by the throwing wrappers around `try_*` entry points (and by
/// anything that wants to signal a typed error through exception-shaped
/// code). Distinct from ContractViolation: an ErrorException is a
/// runtime/numerical failure of the inputs, not a caller bug.
class ErrorException : public std::runtime_error {
 public:
  explicit ErrorException(Error error)
      : std::runtime_error(error.message()), error_(std::move(error)) {}

  [[nodiscard]] const Error& error() const { return error_; }

 private:
  Error error_;
};

/// Minimal expected/either type: holds a T or an Error. Deliberately
/// tiny (no monadic combinators) — the solve stack only ever constructs,
/// tests, and unwraps. Class-level [[nodiscard]]: ignoring a returned
/// Expected silently drops a typed error, so the compiler rejects it
/// (nsrel-lint rule expected-nodiscard additionally requires the
/// attribute on every returning function for readers and older TUs).
template <typename T>
class [[nodiscard]] Expected {
 public:
  /// Default state is an error, so containers of not-yet-evaluated cells
  /// read as failures rather than junk values.
  Expected() : data_(Error{ErrorCode::kInternal, "expected", "empty"}) {}
  Expected(T value) : data_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Expected(Error error) : data_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool has_value() const {
    return std::holds_alternative<T>(data_);
  }
  explicit operator bool() const { return has_value(); }

  /// Requires has_value().
  [[nodiscard]] const T& value() const& {
    NSREL_EXPECTS(has_value());
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    NSREL_EXPECTS(has_value());
    return std::get<T>(data_);
  }

  /// Requires !has_value().
  [[nodiscard]] const Error& error() const {
    NSREL_EXPECTS(!has_value());
    return std::get<Error>(data_);
  }

  /// Unwraps, raising ErrorException on failure (the bridge from the
  /// Expected world back into the throwing public APIs).
  [[nodiscard]] const T& value_or_throw() const& {
    if (!has_value()) throw ErrorException(std::get<Error>(data_));
    return std::get<T>(data_);
  }

 private:
  std::variant<T, Error> data_;
};

/// Numerical-health thresholds shared by the solvers' try_* entry
/// points. min_rcond rejects solves whose estimated reciprocal condition
/// number says every double digit is noise; the default sits below the
/// legitimately stiff chains the models produce (rcond ~1e-16 at FT3)
/// and above outright garbage.
struct NumericalGuards {
  double min_rcond = 1e-18;
};

}  // namespace nsrel
