// Figure 18: sensitivity to node set size N.
//
// Paper shape: FT2-NIR shows some sensitivity; FT2-IR5 and FT3-NIR are
// relatively insensitive — the failure domain grows with N but the
// critical fraction of redundancy sets shrinks, and the per-PB
// normalization cancels most of the rest.
#include "bench_common.hpp"

#include <vector>

int main(int argc, char** argv) {
  using namespace nsrel;
  bench::init(argc, argv, "fig18_node_set_size");
  bench::preamble("Figure 18", "sensitivity to node set size");

  const std::vector<double> sizes{16, 32, 64, 128, 256};
  bench::print_sweep(
      "node set size", sizes,
      [](double x) { return fixed(x, 0); },
      [](double x) {
        core::SystemConfig c = core::SystemConfig::baseline();
        c.node_set_size = static_cast<int>(x);
        return c;
      },
      core::sensitivity_configurations());

  // The compensating mechanism: k2/k3 critical fractions fall with N.
  std::cout << "\ncritical fractions (R=8):\n";
  report::Table fractions({"N", "k2=(R-1)/(N-1)", "k3"});
  for (const double x : sizes) {
    const int n = static_cast<int>(x);
    fractions.add_row({fixed(x, 0), fixed(7.0 / (n - 1.0), 4),
                       fixed(42.0 / ((n - 1.0) * (n - 2.0)), 5)});
  }
  fractions.print(std::cout);
  return bench::finish();
}
