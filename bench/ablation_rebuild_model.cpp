// Ablation (section 5.1): decomposition of the rebuild-rate model, and a
// sensitivity check on the distributed-drive-rebuild assumption
// (mu_d = d * mu_N) that the no-internal-RAID configurations depend on.
#include "bench_common.hpp"

#include <cstddef>

#include "models/no_internal_raid.hpp"
#include "rebuild/planner.hpp"

int main(int argc, char** argv) {
  using namespace nsrel;
  bench::init(argc, argv, "ablation_rebuild_model");
  bench::preamble("Ablation", "rebuild-rate model decomposition");

  // Flow accounting across fault tolerances.
  report::Table flows_table({"t", "rebuilt/node", "in+out/node", "disk/node",
                             "interconnect", "node rebuild", "bottleneck"});
  for (int t = 1; t <= 3; ++t) {
    rebuild::RebuildParams p;
    p.fault_tolerance = t;
    const rebuild::RebuildPlanner planner(p);
    const auto f = planner.flows();
    const auto r = planner.rates();
    flows_table.add_row(
        {std::to_string(t), fixed(f.rebuilt_per_node, 4),
         fixed(f.node_network_inout, 4), fixed(f.node_disk_traffic, 4),
         fixed(f.interconnect_total, 1),
         fixed(to_hours(r.node_rebuild_time).value(), 2) + " h",
         r.node_bottleneck == rebuild::Bottleneck::kDisk ? "disk" : "network"});
  }
  flows_table.print(std::cout);

  // How much does the mu_d = d * mu_N assumption matter? Sweep the drive
  // rebuild rate by +/- 4x around the model's value and watch FT2-NIR.
  std::cout << "\nsensitivity of FT2-NIR MTTDL to the drive-rebuild-rate "
               "assumption:\n";
  const core::SystemConfig sys = core::SystemConfig::baseline();
  const core::Analyzer analyzer(sys);
  const auto rates = analyzer.planner(2).rates();
  report::Table sens({"mu_d multiplier", "mu_d (/h)", "MTTDL (h)",
                      "vs model assumption"});
  double reference = 0.0;
  for (const double multiplier : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    models::NoInternalRaidParams p;
    p.node_set_size = sys.node_set_size;
    p.redundancy_set_size = sys.redundancy_set_size;
    p.fault_tolerance = 2;
    p.drives_per_node = sys.drives_per_node;
    p.node_failure = rate_of(sys.node_mttf);
    p.drive_failure = rate_of(sys.drive.mttf);
    p.node_rebuild = rates.node_rebuild_rate;
    p.drive_rebuild =
        PerHour(rates.drive_rebuild_rate.value() * multiplier);
    p.capacity = sys.drive.capacity;
    p.her_per_byte = sys.drive.her_per_byte;
    const double mttdl =
        models::NoInternalRaidModel(p).mttdl_exact().value();
    if (multiplier == 1.0) reference = mttdl;
    sens.add_row({fixed(multiplier, 2), fixed(p.drive_rebuild.value(), 2),
                  sci(mttdl),
                  reference > 0.0 ? fixed(mttdl / reference, 2) + "x" : "-"});
  }
  sens.print(std::cout);
  std::cout << "(MTTDL scales roughly linearly in mu_d here: the FT2 "
               "denominator is dominated by the drive-failure path)\n";

  // Re-stripe command size effect on the internal-RAID rates.
  std::cout << "\nre-stripe command size -> array rates (RAID 5):\n";
  const engine::ResultSet swept = engine::evaluate(
      engine::parameter_sweep(sys, "restripe-kb", {64.0, 256.0, 1024.0, 4096.0},
                              {{core::InternalScheme::kRaid5, 2}},
                              core::Method::kExactChain,
                              [](double x) { return fixed(x, 0) + " KiB"; }),
      bench::eval_options());
  report::Table restripe({"command", "re-stripe time", "lambda_D", "lambda_S"});
  for (std::size_t i = 0; i < swept.point_count(); ++i) {
    const auto& result = swept.at(i, 0);
    restripe.add_row(
        {swept.grid().points[i].label,
         fixed(to_hours(result.rebuild.restripe_time).value(), 1) + " h",
         sci(result.array_failure_rate.value()),
         sci(result.sector_error_rate.value())});
  }
  restripe.print(std::cout);
  return bench::finish();
}
