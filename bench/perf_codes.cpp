// Microbenchmarks comparing the three erasure codes: GF(256)
// Reed-Solomon vs the XOR-only EVENODD and RDP — the encode/decode cost
// trade behind the era's preference for XOR codes inside controllers.
#include <benchmark/benchmark.h>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "perf_json.hpp"

#include "erasure/evenodd.hpp"
#include "erasure/rdp.hpp"
#include "erasure/reed_solomon.hpp"
#include "util/rng.hpp"

namespace {

using namespace nsrel;
using erasure::Shard;

std::vector<Shard> random_shards(int count, std::size_t size,
                                 std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Shard> shards(static_cast<std::size_t>(count), Shard(size));
  for (auto& shard : shards) {
    for (auto& byte : shard) byte = static_cast<std::uint8_t>(rng.below(256));
  }
  return shards;
}

void BM_RsEncode(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const erasure::ReedSolomonCode code(10, 2);  // RAID-6-like geometry
  const auto data = random_shards(10, size, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(10 * size));
}
BENCHMARK(BM_RsEncode)->Arg(4096)->Arg(65536);

void BM_EvenOddEncode(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const erasure::EvenOddCode code(11);  // 11 data columns
  const std::size_t column = size - size % 10;
  const auto data = random_shards(11, column, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(11 * column));
}
BENCHMARK(BM_EvenOddEncode)->Arg(4100)->Arg(65540);

void BM_RdpEncode(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const erasure::RdpCode code(11);  // 10 data columns
  const std::size_t column = size - size % 10;
  const auto data = random_shards(10, column, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(10 * column));
}
BENCHMARK(BM_RdpEncode)->Arg(4100)->Arg(65540);

void BM_RsDecodeTwoErasures(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const erasure::ReedSolomonCode code(10, 2);
  auto shards = random_shards(10, size, 4);
  auto parity = code.encode(shards);
  shards.insert(shards.end(), parity.begin(), parity.end());
  std::vector<bool> present(12, true);
  present[2] = present[7] = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.reconstruct(shards, present));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(10 * size));
}
BENCHMARK(BM_RsDecodeTwoErasures)->Arg(4096)->Arg(65536);

void BM_RdpDecodeTwoErasures(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const erasure::RdpCode code(11);
  const std::size_t column = size - size % 10;
  auto columns = random_shards(10, column, 5);
  auto parity = code.encode(columns);
  columns.insert(columns.end(), parity.begin(), parity.end());
  std::vector<bool> present(12, true);
  present[2] = present[7] = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.reconstruct(columns, present));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(10 * column));
}
BENCHMARK(BM_RdpDecodeTwoErasures)->Arg(4100)->Arg(65540);

void BM_EvenOddDecodeTwoErasures(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const erasure::EvenOddCode code(11);
  const std::size_t column = size - size % 10;
  auto columns = random_shards(11, column, 6);
  auto parity = code.encode(columns);
  columns.insert(columns.end(), parity.begin(), parity.end());
  std::vector<bool> present(13, true);
  present[2] = present[7] = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.reconstruct(columns, present));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(11 * column));
}
BENCHMARK(BM_EvenOddDecodeTwoErasures)->Arg(4100)->Arg(65540);

}  // namespace

int main(int argc, char** argv) {
  return nsrel::bench::perf_main(argc, argv, "perf_codes");
}
