// Ablation (section 8): WHY does internal RAID 6 add nothing over RAID 5?
//
// At the array level RAID 6 is orders of magnitude more reliable. But the
// node-level failure stream is lambda_N + lambda_D, and with RAID 5 the
// array contribution lambda_D is already far below lambda_N — so further
// shrinking it cannot move the sum. The bench quantifies each stage.
#include "bench_common.hpp"

#include "raid/array_model.hpp"
#include "rebuild/planner.hpp"

int main(int argc, char** argv) {
  using namespace nsrel;
  bench::init(argc, argv, "ablation_raid6_vs_raid5");
  bench::preamble("Ablation", "internal RAID 6 vs RAID 5 (section 8)");

  const core::SystemConfig sys = core::SystemConfig::baseline();
  const core::Analyzer analyzer(sys);
  const auto rates = analyzer.planner(2).rates();

  raid::ArrayParams array;
  array.drives = sys.drives_per_node;
  array.drive_mttf = sys.drive.mttf;
  array.restripe_rate = rates.restripe_rate;
  array.capacity = sys.drive.capacity;
  array.her_per_byte = sys.drive.her_per_byte;

  // Stage 1: array-level comparison.
  const auto r5 = raid::raid5(array);
  const auto r6 = raid::raid6(array);
  report::Table arrays({"scheme", "array MTTDL", "lambda_D (/h)",
                        "lambda_S (/h)", "lambda_D+S vs lambda_N"});
  const double lambda_n = 1.0 / sys.node_mttf.value();
  for (const auto* model : {&r5, &r6}) {
    const auto ar = model->rates();
    const double combined = ar.array_failure.value() + ar.sector_error.value();
    arrays.add_row({model->fault_tolerance() == 1 ? "RAID 5" : "RAID 6",
                    human_hours(model->mttdl_exact().value()),
                    sci(ar.array_failure.value()),
                    sci(ar.sector_error.value()),
                    fixed(100.0 * combined / lambda_n, 3) + "% of lambda_N"});
  }
  arrays.print(std::cout);

  // Stage 2: node-level consequence across fault tolerances.
  std::cout << "\nnode-level events/PB-yr:\n";
  report::Table node({"node FT", "RAID 5", "RAID 6", "RAID6/RAID5"});
  for (int ft = 1; ft <= 3; ++ft) {
    const double e5 =
        analyzer.events_per_pb_year({core::InternalScheme::kRaid5, ft});
    const double e6 =
        analyzer.events_per_pb_year({core::InternalScheme::kRaid6, ft});
    node.add_row({std::to_string(ft), sci(e5), sci(e6), fixed(e6 / e5, 3)});
  }
  node.print(std::cout);

  // Stage 3: the counterfactual — if nodes never failed (lambda_N -> 0),
  // RAID 6 WOULD matter. This isolates the balance argument.
  std::cout << "\ncounterfactual with near-immortal nodes "
               "(node MTTF x1000):\n";
  core::SystemConfig immortal = sys;
  immortal.node_mttf = Hours(sys.node_mttf.value() * 1000.0);
  const core::Analyzer counterfactual(immortal);
  report::Table cf({"node FT", "RAID 5", "RAID 6", "RAID6/RAID5"});
  for (int ft = 1; ft <= 2; ++ft) {
    const double e5 = counterfactual.events_per_pb_year(
        {core::InternalScheme::kRaid5, ft});
    const double e6 = counterfactual.events_per_pb_year(
        {core::InternalScheme::kRaid6, ft});
    cf.add_row({std::to_string(ft), sci(e5), sci(e6), sci(e6 / e5)});
  }
  cf.print(std::cout);
  std::cout << "(balance of protection: strengthening the drive tier only "
               "helps once the node tier is no longer the bottleneck)\n";
  return bench::finish();
}
