// Microbenchmarks (google-benchmark) for the numeric machinery: LU solves,
// chain construction, the recursive no-internal-RAID solve as k grows, the
// closed forms — quantifying the cost of exact vs approximate paths — and
// the parallel Monte-Carlo engine's scaling across worker counts.
#include <benchmark/benchmark.h>
#include <cstddef>
#include <cstdint>

#include "perf_json.hpp"

#include "ctmc/absorbing.hpp"
#include "linalg/lu.hpp"
#include "models/no_internal_raid.hpp"
#include "sim/storage_simulator.hpp"
#include "util/rng.hpp"

namespace {

using namespace nsrel;

linalg::Matrix random_dd_matrix(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  linalg::Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) m(i, j) = rng.uniform() - 0.5;
    m(i, i) += static_cast<double>(n);
  }
  return m;
}

void BM_LuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = random_dd_matrix(n, 1);
  const linalg::Vector b(n, 1.0);
  for (auto _ : state) {
    const linalg::LuDecomposition lu(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LuSolve)->RangeMultiplier(2)->Range(8, 256)->Complexity();

models::NoInternalRaidParams nir_params(int k) {
  models::NoInternalRaidParams p;
  p.node_set_size = 64;
  p.redundancy_set_size = 12;
  p.fault_tolerance = k;
  p.drives_per_node = 12;
  p.node_failure = PerHour(1.0 / 400'000.0);
  p.drive_failure = PerHour(1.0 / 300'000.0);
  p.node_rebuild = PerHour(0.19);
  p.drive_rebuild = PerHour(2.28);
  p.capacity = gigabytes(300.0);
  p.her_per_byte = 8e-14;
  return p;
}

void BM_NirChainBuild(benchmark::State& state) {
  const models::NoInternalRaidModel model(
      nir_params(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.chain());
  }
}
BENCHMARK(BM_NirChainBuild)->DenseRange(1, 7);

void BM_NirExactSolve(benchmark::State& state) {
  const models::NoInternalRaidModel model(
      nir_params(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.mttdl_exact().value());
  }
}
BENCHMARK(BM_NirExactSolve)->DenseRange(1, 7);

void BM_NirClosedForm(benchmark::State& state) {
  const models::NoInternalRaidModel model(
      nir_params(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.mttdl_closed_form().value());
  }
}
BENCHMARK(BM_NirClosedForm)->DenseRange(1, 7);

// Dense vs sparse elimination on the block-recursive absorption matrix —
// the ablation behind SolverPolicy's auto threshold. A wider redundancy
// set lifts the R > k precondition out of the way so k can sweep past
// the dense 4096-state ceiling on the sparse side.
models::NoInternalRaidParams crossover_params(int k) {
  models::NoInternalRaidParams p = nir_params(2);
  p.redundancy_set_size = 32;
  p.fault_tolerance = k;
  return p;
}

void BM_NirRecursiveSolveDense(benchmark::State& state) {
  const models::NoInternalRaidModel model(
      crossover_params(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.mttdl_recursive_matrix(ctmc::SolverPolicy::kDense).value());
  }
  state.counters["states"] =
      static_cast<double>((std::size_t{2} << state.range(0)) - 1);
}
// Dense GTH is O(n^3): k = 9 (1023 states) is already ~a second per
// solve, so the dense side stops there.
BENCHMARK(BM_NirRecursiveSolveDense)->DenseRange(4, 9);

void BM_NirRecursiveSolveSparse(benchmark::State& state) {
  const models::NoInternalRaidModel model(
      crossover_params(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.mttdl_recursive_matrix(ctmc::SolverPolicy::kSparse).value());
  }
  state.counters["states"] =
      static_cast<double>((std::size_t{2} << state.range(0)) - 1);
}
// The sparse path carries the recursion to the k = 16 cap (131071
// states, ~0.1 s); both backends return bit-identical results, so these
// two benches measure the exact same computation.
BENCHMARK(BM_NirRecursiveSolveSparse)->DenseRange(4, 16);

void BM_AbsorbingFullAnalysis(benchmark::State& state) {
  const models::NoInternalRaidModel model(
      nir_params(static_cast<int>(state.range(0))));
  const auto chain = model.chain();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctmc::AbsorbingSolver::analyze(
        chain, models::NoInternalRaidModel::root_state()));
  }
}
// Beyond k = 4 the realistic-rate chain's absorption matrix drops below
// the solver's rcond guard (the MTTDL overflows what LU can resolve),
// so the full-analysis bench stops there; BM_NirRecursiveSolve* covers
// larger state spaces through the guard-free elimination path.
BENCHMARK(BM_AbsorbingFullAnalysis)->DenseRange(1, 4);

// Accelerated rates (as in tests/test_sim.cpp): trajectories absorb after
// ~1e2-1e4 events so a trial batch is a realistic validation workload.
models::NoInternalRaidParams accelerated_nir(int k) {
  models::NoInternalRaidParams p;
  p.node_set_size = 8;
  p.redundancy_set_size = 4;
  p.fault_tolerance = k;
  p.drives_per_node = 3;
  p.node_failure = PerHour(0.002);
  p.drive_failure = PerHour(0.003);
  p.node_rebuild = PerHour(1.0);
  p.drive_rebuild = PerHour(3.0);
  p.capacity = gigabytes(300.0);
  p.her_per_byte = 8e-14;
  return p;
}

// Wall-clock scaling of the parallel Monte-Carlo engine with the worker
// count (results are bit-identical across the arg range by construction).
void BM_NirSimEstimateJobs(benchmark::State& state) {
  const sim::NirStorageSimulator simulator(accelerated_nir(2), 1);
  sim::ParallelOptions options;
  options.jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.estimate(4000, options).mean_hours);
  }
}
BENCHMARK(BM_NirSimEstimateJobs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Adaptive stopping: how much work a ±5% CI actually needs.
void BM_NirSimAdaptiveCi(benchmark::State& state) {
  const sim::NirStorageSimulator simulator(accelerated_nir(2), 1);
  sim::ParallelOptions options;
  options.jobs = static_cast<int>(state.range(0));
  options.ci_target = 0.05;
  options.max_trials = 100000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.estimate(1024, options).trials);
  }
}
BENCHMARK(BM_NirSimAdaptiveCi)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return nsrel::bench::perf_main(argc, argv, "perf_solvers");
}
