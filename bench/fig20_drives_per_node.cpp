// Figure 20: sensitivity to drives per node d.
//
// Paper shape: very little sensitivity — more drives per node hurt
// per-node reliability, but fewer such nodes are needed per petabyte, and
// the normalized metric (events per PB-year) mostly cancels.
#include "bench_common.hpp"

#include <cstddef>
#include <vector>

int main(int argc, char** argv) {
  using namespace nsrel;
  bench::init(argc, argv, "fig20_drives_per_node");
  bench::preamble("Figure 20", "sensitivity to drives per node");

  const std::vector<double> drives{4, 6, 8, 12, 16, 24};
  bench::print_sweep(
      "drives per node", drives,
      [](double x) { return fixed(x, 0); },
      [](double x) {
        core::SystemConfig c = core::SystemConfig::baseline();
        c.drives_per_node = static_cast<int>(x);
        return c;
      },
      core::sensitivity_configurations());

  // The cancellation, made explicit for FT2-NIR: per-system events rise
  // with d while capacity rises too. Same cells the sweep solved above.
  const engine::ResultSet cancellation = engine::evaluate(
      engine::parameter_sweep(core::SystemConfig::baseline(), "d", drives,
                              {{core::InternalScheme::kNone, 2}},
                              core::Method::kExactChain,
                              [](double x) { return fixed(x, 0); }),
      bench::eval_options());
  std::cout << "\ncancellation detail (FT2, no internal RAID):\n";
  report::Table detail({"d", "events/system-yr", "logical PB", "events/PB-yr"});
  for (std::size_t i = 0; i < cancellation.point_count(); ++i) {
    const auto& result = cancellation.at(i, 0);
    detail.add_row({cancellation.grid().points[i].label,
                    sci(result.events_per_system_year),
                    fixed(result.logical_capacity.value() / 1e15, 4),
                    sci(result.events_per_pb_year)});
  }
  detail.print(std::cout);
  return bench::finish();
}
