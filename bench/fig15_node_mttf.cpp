// Figure 15: sensitivity to node MTTF (100k..1M hours) at both drive-MTTF
// endpoints (100k and 750k hours).
//
// Paper shape: FT2-IR5 shows the most sensitivity to node MTTF; all three
// configurations are more sensitive when drive MTTF is high (drive
// failures no longer mask node failures); FT2-NIR misses the target for
// most of the range.
#include "bench_common.hpp"

#include <cstddef>
#include <vector>

int main(int argc, char** argv) {
  using namespace nsrel;
  bench::init(argc, argv, "fig15_node_mttf");
  bench::preamble("Figure 15", "sensitivity to node MTTF");

  const std::vector<double> node_mttf_hours{100e3, 200e3, 400e3,
                                            700e3, 1000e3};
  for (const double drive_mttf : {100e3, 750e3}) {
    std::cout << "\ndrive MTTF = " << fixed(drive_mttf / 1e3, 0)
              << "k hours:\n";
    bench::print_sweep(
        "node MTTF (h)", node_mttf_hours,
        [](double x) { return fixed(x / 1e3, 0) + "k"; },
        [drive_mttf](double x) {
          core::SystemConfig c = core::SystemConfig::baseline();
          c.drive.mttf = Hours(drive_mttf);
          c.node_mttf = Hours(x);
          return c;
        },
        core::sensitivity_configurations());
  }

  // Sensitivity spans, quantifying "most sensitive". A 2-point grid over
  // the same cells the sweep above already solved — all cache hits.
  const engine::ResultSet span = engine::evaluate(
      engine::custom_sweep(
          "node MTTF (h)", {100e3, 1000e3},
          [](double x) {
            core::SystemConfig c = core::SystemConfig::baseline();
            c.drive.mttf = Hours(750e3);
            c.node_mttf = Hours(x);
            return c;
          },
          core::sensitivity_configurations()),
      bench::eval_options());
  std::cout << "\nevents ratio (node MTTF 100k vs 1M, drive MTTF 750k):\n";
  for (std::size_t i = 0; i < span.configuration_count(); ++i) {
    const double ratio = span.at(0, i).events_per_pb_year /
                         span.at(1, i).events_per_pb_year;
    std::cout << "  " << core::name(span.grid().configurations[i]) << ": "
              << sci(ratio) << "x\n";
  }
  return bench::finish();
}
