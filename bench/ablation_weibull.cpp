// Ablation (modeling assumption): how much does the exponential-lifetime
// assumption behind every Markov model in the paper matter?
//
// The non-Markovian simulator holds MTTF fixed and varies the Weibull
// hazard shape: < 1 is infant mortality (clustered early failures —
// exponential is OPTIMISTIC), > 1 is wearout (renewed components rarely
// fail right away — exponential is CONSERVATIVE).
#include "bench_common.hpp"

#include <cstdint>

#include "models/no_internal_raid.hpp"
#include "sim/weibull_simulator.hpp"

int main(int argc, char** argv) {
  using namespace nsrel;
  bench::init(argc, argv, "ablation_weibull");
  bench::preamble("Ablation", "Weibull lifetimes vs the exponential assumption");

  models::NoInternalRaidParams p;
  p.node_set_size = 8;
  p.redundancy_set_size = 4;
  p.fault_tolerance = 2;
  p.drives_per_node = 3;
  p.node_failure = PerHour(0.002);
  p.drive_failure = PerHour(0.003);
  p.node_rebuild = PerHour(1.0);
  p.drive_rebuild = PerHour(3.0);
  p.capacity = gigabytes(300.0);
  p.her_per_byte = 8e-14;

  const models::NoInternalRaidModel model(p);
  const double markov = model.mttdl_exact().value();
  std::cout << "accelerated FT2 no-internal-RAID system; Markov MTTDL = "
            << sci(markov) << " h\n\n";

  report::Table table({"Weibull shape", "regime", "simulated MTTDL (h)",
                       "vs Markov", "95% CI half-width"});
  const int trials = 4000;
  std::uint64_t seed = 7100;
  for (const double shape : {0.5, 0.7, 1.0, 1.5, 2.0, 3.0}) {
    sim::WeibullStorageSimulator simulator(
        p, sim::WeibullShapes{shape, shape}, seed++);
    const sim::MttdlEstimate e = simulator.estimate(trials);
    const char* regime = shape < 1.0   ? "infant mortality"
                         : shape == 1.0 ? "exponential"
                                        : "wearout";
    table.add_row({fixed(shape, 1), regime, sci(e.mean_hours),
                   fixed(e.mean_hours / markov, 3) + "x",
                   sci(1.96 * e.stderr_hours)});
  }
  table.print(std::cout);
  std::cout << "\n(MTTF held fixed across shapes; repairs renew components.\n"
            << " The Markov assumption is conservative under wearout and\n"
            << " optimistic under infant mortality.)\n";
  return bench::finish();
}
