// Figure 17: sensitivity to link speed (1, 5, 10 Gb/s in the paper; a
// denser sweep here to expose the crossover).
//
// Paper shape: the rebuild is link-bound below ~3 Gb/s and disk-bound
// above, so reliability is flat between 5 and 10 Gb/s.
#include "bench_common.hpp"

#include <vector>

#include "rebuild/planner.hpp"

int main(int argc, char** argv) {
  using namespace nsrel;
  bench::init(argc, argv, "fig17_link_speed");
  bench::preamble("Figure 17", "sensitivity to link speed");

  const std::vector<double> gbps{1, 2, 3, 4, 5, 10};
  bench::print_sweep(
      "link speed", gbps, [](double x) { return fixed(x, 0) + " Gb/s"; },
      [](double x) {
        core::SystemConfig c = core::SystemConfig::baseline();
        c.link.raw_speed = gigabits_per_second(x);
        return c;
      },
      core::sensitivity_configurations());

  // Bottleneck decomposition at each point.
  std::cout << "\nnode rebuild decomposition (FT2 flows):\n";
  report::Table decomposition(
      {"link speed", "disk time", "network time", "bottleneck"});
  for (const double x : gbps) {
    rebuild::RebuildParams p;
    p.link.raw_speed = gigabits_per_second(x);
    const rebuild::RebuildPlanner planner(p);
    decomposition.add_row(
        {fixed(x, 0) + " Gb/s",
         fixed(to_hours(planner.node_disk_time()).value(), 2) + " h",
         fixed(to_hours(planner.node_network_time()).value(), 2) + " h",
         planner.rates().node_bottleneck == rebuild::Bottleneck::kDisk
             ? "disk"
             : "network"});
  }
  decomposition.print(std::cout);

  const rebuild::RebuildPlanner baseline{rebuild::RebuildParams{}};
  std::cout << "crossover (network-bound -> disk-bound) at "
            << fixed(baseline.link_speed_crossover().value() / 1e9, 2)
            << " Gb/s raw (paper: ~3 Gb/s)\n";
  return bench::finish();
}
