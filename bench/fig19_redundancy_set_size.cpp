// Figure 19: sensitivity to redundancy set size R.
//
// Paper shape: all configurations become less reliable as R grows, with
// about an order of magnitude between the extremes. Two forces combine:
// larger R means less redundancy overhead (so more logical PB per node
// set) but a larger fraction of critical redundancy sets and more data
// read per rebuild.
#include "bench_common.hpp"

#include <cstddef>
#include <vector>

int main(int argc, char** argv) {
  using namespace nsrel;
  bench::init(argc, argv, "fig19_redundancy_set_size");
  bench::preamble("Figure 19", "sensitivity to redundancy set size");

  const std::vector<double> sizes{4, 6, 8, 10, 12, 16};
  bench::print_sweep(
      "redundancy set size", sizes,
      [](double x) { return fixed(x, 0); },
      [](double x) {
        core::SystemConfig c = core::SystemConfig::baseline();
        c.redundancy_set_size = static_cast<int>(x);
        return c;
      },
      core::sensitivity_configurations());

  // Span between extremes (the paper quotes ~1 order of magnitude). The
  // endpoints were already solved by the sweep above, so this grid is
  // pure cache hits.
  const engine::ResultSet span = engine::evaluate(
      engine::parameter_sweep(core::SystemConfig::baseline(), "r", {4, 16},
                              core::sensitivity_configurations()),
      bench::eval_options());
  std::cout << "\nspan R=4 -> R=16:\n";
  for (std::size_t i = 0; i < span.configuration_count(); ++i) {
    const double ratio = span.at(1, i).events_per_pb_year /
                         span.at(0, i).events_per_pb_year;
    std::cout << "  " << core::name(span.grid().configurations[i]) << ": "
              << fixed(ratio, 1) << "x less reliable\n";
  }
  return bench::finish();
}
