// Ablation (modeling choice): single vs concurrent repair.
//
// The paper's chains repair one failure at a time (mu between consecutive
// states). A system whose survivors can rebuild several lost nodes at
// once repairs every outstanding failure concurrently. At baseline rates
// (mu >> N*lambda) the system almost never holds two failures, so the
// choice barely matters — but at stressed rates it does, and this bench
// quantifies both regimes.
#include "bench_common.hpp"

#include "models/internal_raid.hpp"
#include "models/no_internal_raid.hpp"

int main(int argc, char** argv) {
  using namespace nsrel;
  bench::init(argc, argv, "ablation_repair_policy");
  bench::preamble("Ablation", "single vs concurrent repair policy");

  const auto evaluate_nir = [](double stress, models::RepairPolicy policy,
                               int k) {
    models::NoInternalRaidParams p;
    p.node_set_size = 64;
    p.redundancy_set_size = 8;
    p.fault_tolerance = k;
    p.drives_per_node = 12;
    p.node_failure = PerHour(stress / 400'000.0);
    p.drive_failure = PerHour(stress / 300'000.0);
    p.node_rebuild = PerHour(0.19);
    p.drive_rebuild = PerHour(2.28);
    p.capacity = gigabytes(300.0);
    p.her_per_byte = 8e-14;
    p.repair_policy = policy;
    return models::NoInternalRaidModel(p).mttdl_exact().value();
  };

  report::Table table({"failure-rate stress", "FT", "single (h)",
                       "concurrent (h)", "concurrent/single"});
  for (const double stress : {1.0, 100.0, 1000.0}) {
    for (const int k : {2, 3}) {
      const double single =
          evaluate_nir(stress, models::RepairPolicy::kSingle, k);
      const double concurrent =
          evaluate_nir(stress, models::RepairPolicy::kConcurrent, k);
      table.add_row({"x" + fixed(stress, 0), std::to_string(k), sci(single),
                     sci(concurrent), fixed(concurrent / single, 3)});
    }
  }
  table.print(std::cout);
  std::cout
      << "(MTTDL scales with the PRODUCT of per-level repair rates, so the\n"
      << " paper's single-repair chains are conservative by up to t!\n"
      << " (~7% at FT2, ~4x at FT3 here): LIFO makes one slow node rebuild\n"
      << " block every fast drive rebuild queued behind it. The effect\n"
      << " compresses under extreme stress where failures, not repairs,\n"
      << " dominate the holding times.)\n";
  return bench::finish();
}
