// Microbenchmarks (google-benchmark) for the concurrent repair engine:
// wall-clock scaling of parallel decode across --jobs, the cost of
// serving foreground reads at every barrier (degraded-mode pressure),
// and the overhead of mid-run fault injection with its re-planning.
// Every benchmark exports the engine's deterministic work counters so
// tools/bench_diff.py can hard-fail if a run did different work than
// the committed baseline — the jobs sweep doing identical work at every
// lane count is the determinism invariant, machine-checked in CI.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "perf_json.hpp"

#include "brick/object_store.hpp"
#include "repair/fault_schedule.hpp"
#include "repair/repair.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace {

using namespace nsrel;
using brick::ObjectId;
using brick::ObjectStore;
using brick::StoreParams;

struct Fixture {
  ObjectStore store;        // pristine but for one dead node
  std::vector<ObjectId> objects;
  std::vector<std::size_t> sizes;
};

// A store big enough that repair is decode-bound: one dead node out of
// twelve leaves ~1.5k degraded stripes of 1 KiB chunks to reconstruct.
Fixture degraded_fixture() {
  StoreParams p;
  p.node_count = 12;
  p.drives_per_node = 3;
  p.drive_capacity = kilobytes(1024.0);
  p.redundancy_set_size = 6;
  p.fault_tolerance = 2;
  p.chunk_size = kilobytes(1.0);

  Fixture f{ObjectStore(p), {}, {}};
  Xoshiro256 rng(0xBE9C);
  const std::size_t object_size = 9000;
  for (int i = 0; i < 600; ++i) {
    std::vector<std::uint8_t> bytes(object_size);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
    f.objects.push_back(f.store.write(bytes));
    f.sizes.push_back(object_size);
  }
  f.store.fail_node(0);
  return f;
}

// Wall-clock scaling of the decode lanes. The report (and the final
// store state) is byte-identical across the arg range by the engine's
// determinism invariant, which is exactly what makes the exported
// counters safe to hard-compare against the baseline.
void BM_RepairJobs(benchmark::State& state) {
  const Fixture fixture = degraded_fixture();
  repair::RepairOptions options;
  options.jobs = static_cast<int>(state.range(0));
  repair::RepairReport report;
  for (auto _ : state) {
    state.PauseTiming();
    ObjectStore store = fixture.store;
    state.ResumeTiming();
    report = repair::run_repair(store, {}, options);
  }
  state.counters["shards_repaired"] =
      static_cast<double>(report.shards_repaired);
  state.counters["stripes_attempted"] =
      static_cast<double>(report.stripes_attempted);
  state.counters["stripes_failed"] =
      static_cast<double>(report.stripes_failed);
}
BENCHMARK(BM_RepairJobs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Degraded-mode pressure: the same repair with a foreground read
// workload served at every barrier — the price of staying online while
// rebuilding, to compare against the bare BM_RepairJobs/4 lane.
void BM_RepairUnderWorkload(benchmark::State& state) {
  const Fixture fixture = degraded_fixture();
  // Out-of-range node ids are deliberate no-ops (see fault_schedule.hpp),
  // so these time events only force periodic barriers — the foreground
  // workload gets to run throughout the rebuild, not once at the end.
  const Expected<repair::FaultSchedule> pacing = repair::parse_fault_schedule(
      "time:0.5 node:99; time:1.0 node:99; time:1.5 node:99; "
      "time:2.0 node:99; time:2.5 node:99; time:3.0 node:99; "
      "time:3.5 node:99; time:4.0 node:99; time:4.5 node:99; "
      "time:5.0 node:99");
  repair::RepairOptions options;
  options.jobs = 4;
  std::uint64_t barriers = 0;
  std::uint64_t foreground_reads = 0;
  options.on_barrier = [&](ObjectStore& s, double) {
    ++barriers;
    workload::WorkloadParams wl;
    wl.operations = 32;
    wl.read_bytes = 1024;
    wl.seed = 0xF00D + barriers;
    const workload::WorkloadResult result =
        workload::run_read_workload(s, fixture.objects, fixture.sizes, wl);
    foreground_reads += static_cast<std::uint64_t>(result.operations);
  };
  repair::RepairReport report;
  for (auto _ : state) {
    state.PauseTiming();
    ObjectStore store = fixture.store;
    barriers = 0;
    foreground_reads = 0;
    state.ResumeTiming();
    report = repair::run_repair(store, pacing.value(), options);
  }
  state.counters["shards_repaired"] =
      static_cast<double>(report.shards_repaired);
  state.counters["barriers"] = static_cast<double>(barriers);
  state.counters["foreground_reads"] =
      static_cast<double>(foreground_reads);
}
BENCHMARK(BM_RepairUnderWorkload)->UseRealTime()->Unit(
    benchmark::kMillisecond);

// Mid-run fault injection: a second node dies while its stripes are in
// flight, forcing a full re-plan and deeper decodes. Counters pin the
// amount of extra work the engine does to absorb the fault.
void BM_RepairWithMidRunFault(benchmark::State& state) {
  const Fixture fixture = degraded_fixture();
  const Expected<repair::FaultSchedule> schedule =
      repair::parse_fault_schedule("after:200 node:5");
  repair::RepairOptions options;
  options.jobs = 4;
  repair::RepairReport report;
  for (auto _ : state) {
    state.PauseTiming();
    ObjectStore store = fixture.store;
    state.ResumeTiming();
    report = repair::run_repair(store, schedule.value(), options);
  }
  state.counters["shards_repaired"] =
      static_cast<double>(report.shards_repaired);
  state.counters["replans"] = static_cast<double>(report.replans);
  state.counters["injected_faults"] =
      static_cast<double>(report.injected_faults);
}
BENCHMARK(BM_RepairWithMidRunFault)->UseRealTime()->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return nsrel::bench::perf_main(argc, argv, "perf_repair");
}
