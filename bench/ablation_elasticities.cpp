// Ablation (extension): exact MTTDL elasticities at the baseline point —
// "% change in MTTDL per % change in each rate" — computed analytically
// by ctmc::SensitivitySolver. This is the local, exact version of the
// paper's section-7 sensitivity sweeps: one table shows at a glance which
// knob each configuration actually responds to, and the row sums check
// Euler's identity (homogeneity degree -1 in the rates).
#include "bench_common.hpp"

#include "ctmc/sensitivity.hpp"
#include "models/internal_raid.hpp"
#include "models/no_internal_raid.hpp"

int main(int argc, char** argv) {
  using namespace nsrel;
  bench::init(argc, argv, "ablation_elasticities");
  bench::preamble("Ablation", "exact MTTDL elasticities at baseline");

  const core::Analyzer analyzer(core::SystemConfig::baseline());
  const core::SystemConfig& sys = analyzer.config();

  report::Table table({"configuration", "failures", "node repairs",
                       "drive repairs", "sum (Euler: -1)"});

  for (const auto& configuration : core::sensitivity_configurations()) {
    const auto detail = analyzer.analyze(configuration);
    ctmc::Chain chain;
    ctmc::StateId root = 0;
    double mu_n = detail.rebuild.node_rebuild_rate.value();
    double mu_d = detail.rebuild.drive_rebuild_rate.value();
    if (configuration.internal == core::InternalScheme::kNone) {
      models::NoInternalRaidParams p;
      p.node_set_size = sys.node_set_size;
      p.redundancy_set_size = sys.redundancy_set_size;
      p.fault_tolerance = configuration.node_fault_tolerance;
      p.drives_per_node = sys.drives_per_node;
      p.node_failure = rate_of(sys.node_mttf);
      p.drive_failure = rate_of(sys.drive.mttf);
      p.node_rebuild = detail.rebuild.node_rebuild_rate;
      p.drive_rebuild = detail.rebuild.drive_rebuild_rate;
      p.capacity = sys.drive.capacity;
      p.her_per_byte = sys.drive.her_per_byte;
      chain = models::NoInternalRaidModel(p).chain();
      root = models::NoInternalRaidModel::root_state();
    } else {
      models::InternalRaidParams p;
      p.node_set_size = sys.node_set_size;
      p.redundancy_set_size = sys.redundancy_set_size;
      p.fault_tolerance = configuration.node_fault_tolerance;
      p.node_failure = rate_of(sys.node_mttf);
      p.node_rebuild = detail.rebuild.node_rebuild_rate;
      p.array_failure = detail.array_failure_rate;
      p.sector_error = detail.sector_error_rate;
      chain = models::InternalRaidNodeModel(p).chain();
      mu_d = 0.0;  // no drive-repair transitions in the IR chain
    }

    // Classify transitions by rate: repairs are mu_N or mu_d exactly;
    // everything else is a failure/hard-error flow.
    const auto is_node_repair = [mu_n](const ctmc::Transition& t) {
      return t.rate == mu_n;
    };
    const auto is_drive_repair = [mu_d](const ctmc::Transition& t) {
      return mu_d > 0.0 && t.rate == mu_d;
    };
    const auto is_failure = [&](const ctmc::Transition& t) {
      return !is_node_repair(t) && !is_drive_repair(t);
    };

    const double e_fail =
        ctmc::SensitivitySolver::mtta_elasticity(chain, root, is_failure);
    const double e_node =
        ctmc::SensitivitySolver::mtta_elasticity(chain, root, is_node_repair);
    const double e_drive =
        mu_d > 0.0 ? ctmc::SensitivitySolver::mtta_elasticity(chain, root,
                                                              is_drive_repair)
                   : 0.0;
    table.add_row({core::name(configuration), fixed(e_fail, 3),
                   fixed(e_node, 3), fixed(e_drive, 3),
                   fixed(e_fail + e_node + e_drive, 4)});
  }
  table.print(std::cout);
  std::cout
      << "\n(reading: FT2-IR5's +2 node-repair elasticity is Figure 16's\n"
      << " rebuild-block leverage; failure elasticities near -(t+1) echo\n"
      << " the lambda^(t+1) shape of the closed forms)\n";
  return bench::finish();
}
