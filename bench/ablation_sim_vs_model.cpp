// Ablation (validation): Monte-Carlo storage simulation vs the analytic
// Markov solutions, on accelerated configurations across both families and
// every fault tolerance. The third column triangulates with a trajectory
// simulation of the constructed chain itself.
//
// Trials run through the shared parallel engine: set NSREL_JOBS to choose
// the worker count (default: all hardware threads). The numbers in the
// table are bit-identical at any job count — only the wall clock moves.
#include "bench_common.hpp"

#include <chrono>
#include <cstdint>
#include <cstdlib>

#include "models/internal_raid.hpp"
#include "models/no_internal_raid.hpp"
#include "sim/chain_simulator.hpp"
#include "sim/storage_simulator.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace nsrel;
  bench::init(argc, argv, "ablation_sim_vs_model");
  bench::preamble("Ablation", "Monte-Carlo simulation vs analytic models");
  const int trials = 4000;

  sim::ParallelOptions options;
  options.jobs = 0;  // all hardware threads
  if (const char* jobs_env = std::getenv("NSREL_JOBS")) {
    options.jobs = std::atoi(jobs_env);
  }
  const int resolved_jobs =
      options.jobs == 0 ? ThreadPool::hardware_threads() : options.jobs;

  report::Table table({"model", "analytic (h)", "storage sim (h)",
                       "chain sim (h)", "sim/analytic", "in 95% CI"});

  const auto started = std::chrono::steady_clock::now();
  for (int k = 1; k <= 3; ++k) {
    models::NoInternalRaidParams p;
    p.node_set_size = 8;
    p.redundancy_set_size = 4;
    p.fault_tolerance = k;
    p.drives_per_node = 3;
    p.node_failure = PerHour(0.002);
    p.drive_failure = PerHour(0.003);
    p.node_rebuild = PerHour(1.0);
    p.drive_rebuild = PerHour(3.0);
    p.capacity = gigabytes(300.0);
    p.her_per_byte = 8e-14;

    const models::NoInternalRaidModel model(p);
    const double analytic = model.mttdl_exact().value();
    sim::NirStorageSimulator storage(p, 11 + static_cast<std::uint64_t>(k));
    const auto storage_estimate = storage.estimate(trials, options);
    const auto chain = model.chain();
    sim::ChainSimulator chain_sim(chain, 21 + static_cast<std::uint64_t>(k));
    const auto chain_estimate = chain_sim.estimate(
        trials, models::NoInternalRaidModel::root_state(), options);
    table.add_row({"NIR FT" + std::to_string(k), sci(analytic),
                   sci(storage_estimate.mean_hours),
                   sci(chain_estimate.mean_hours),
                   fixed(storage_estimate.mean_hours / analytic, 3),
                   storage_estimate.covers(analytic) ? "yes" : "no"});
  }

  for (int t = 1; t <= 3; ++t) {
    models::InternalRaidParams p;
    p.node_set_size = 8;
    p.redundancy_set_size = 4;
    p.fault_tolerance = t;
    p.node_failure = PerHour(0.004);
    p.node_rebuild = PerHour(1.0);
    p.array_failure = PerHour(0.001);
    p.sector_error = PerHour(0.0005);

    const models::InternalRaidNodeModel model(p);
    const double analytic = model.mttdl_exact().value();
    sim::IrStorageSimulator storage(p, 31 + static_cast<std::uint64_t>(t));
    const auto storage_estimate = storage.estimate(trials, options);
    const auto chain = model.chain();
    sim::ChainSimulator chain_sim(chain, 41 + static_cast<std::uint64_t>(t));
    const auto chain_estimate = chain_sim.estimate(trials, 0, options);
    table.add_row({"IR FT" + std::to_string(t), sci(analytic),
                   sci(storage_estimate.mean_hours),
                   sci(chain_estimate.mean_hours),
                   fixed(storage_estimate.mean_hours / analytic, 3),
                   storage_estimate.covers(analytic) ? "yes" : "no"});
  }
  const auto elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - started);

  table.print(std::cout);
  std::cout << "(" << trials << " trials per cell; ~5% of cells may fall "
            << "outside their 95% CI by construction)\n"
            << "(jobs " << resolved_jobs << ", " << fixed(elapsed.count(), 3)
            << " s wall; results are jobs-invariant)\n";
  return bench::finish();
}
