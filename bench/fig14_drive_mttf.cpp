// Figure 14: sensitivity to drive MTTF (100k..750k hours), evaluated for
// the three surviving configurations at both node-MTTF endpoints
// (100k and 1M hours).
//
// Paper shape: FT2-NIR misses the target at low node MTTF and is marginal
// at high node MTTF; FT2-IR5 is nearly flat in drive MTTF (node-failure
// bound); FT3-NIR is strongly drive-MTTF sensitive but passes.
#include "bench_common.hpp"

#include <vector>

int main(int argc, char** argv) {
  using namespace nsrel;
  bench::init(argc, argv, "fig14_drive_mttf");
  bench::preamble("Figure 14", "sensitivity to drive MTTF");

  const std::vector<double> drive_mttf_hours{100e3, 200e3, 300e3,
                                             500e3, 750e3};
  for (const double node_mttf : {100e3, 1000e3}) {
    std::cout << "\nnode MTTF = " << fixed(node_mttf / 1e3, 0) << "k hours:\n";
    bench::print_sweep(
        "drive MTTF (h)", drive_mttf_hours,
        [](double x) { return fixed(x / 1e3, 0) + "k"; },
        [node_mttf](double x) {
          core::SystemConfig c = core::SystemConfig::baseline();
          c.node_mttf = Hours(node_mttf);
          c.drive.mttf = Hours(x);
          return c;
        },
        core::sensitivity_configurations());
  }
  return bench::finish();
}
