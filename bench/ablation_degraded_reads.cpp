// Ablation (extension): degraded-read amplification — analytic model vs
// the running brick store under a synthetic workload.
//
// rebuild::DegradedModel prices a one-node-down window at
// 1 + (R-t-1)/N extra chunk fetches per logical read; here the actual
// object store serves a random-read workload with 0, 1 and 2 nodes down
// and we measure the amplification its I/O counters report.
#include "bench_common.hpp"

#include <cstddef>
#include <cstdint>
#include <vector>

#include "brick/object_store.hpp"
#include "rebuild/degraded.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

int main(int argc, char** argv) {
  using namespace nsrel;
  bench::init(argc, argv, "ablation_degraded_reads");
  bench::preamble("Ablation", "degraded-read amplification: model vs system");

  brick::StoreParams sp;
  sp.node_count = 16;
  sp.drives_per_node = 3;
  sp.drive_capacity = megabytes(4.0);
  sp.redundancy_set_size = 8;
  sp.fault_tolerance = 2;
  sp.chunk_size = kilobytes(1.0);
  brick::ObjectStore store(sp);

  Xoshiro256 rng(71);
  std::vector<brick::ObjectId> ids;
  std::vector<std::size_t> sizes;
  for (int i = 0; i < 24; ++i) {
    std::vector<std::uint8_t> bytes(30000 + rng.below(30000));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
    ids.push_back(store.write(bytes));
    sizes.push_back(bytes.size());
  }

  const double n = sp.node_count;
  const double k = sp.redundancy_set_size - sp.fault_tolerance;

  report::Table table({"nodes down", "measured amplification",
                       "model 1+(k-1)*down/N", "degraded reads"});
  workload::WorkloadParams wp;
  wp.operations = 6000;
  wp.read_bytes = 1024;
  for (int down = 0; down <= 2; ++down) {
    if (down > 0) store.fail_node(down - 1);
    const workload::WorkloadResult result =
        workload::run_read_workload(store, ids, sizes, wp);
    const double model = 1.0 + (k - 1.0) * down / n;
    table.add_row({std::to_string(down),
                   fixed(result.read_amplification, 4), fixed(model, 4),
                   std::to_string(result.degraded_reads) + "/" +
                       std::to_string(result.operations)});
  }
  table.print(std::cout);

  rebuild::DegradedParams dp;
  const auto impact = rebuild::DegradedModel(dp).impact();
  std::cout << "\nsection-6 baseline long-run view (rebuild::DegradedModel):\n"
            << "  rebuilding " << fixed(100.0 * impact.rebuilding_fraction, 3)
            << "% of the time, foreground share "
            << fixed(100.0 * impact.foreground_share, 0)
            << "%, net throughput efficiency "
            << fixed(100.0 * impact.throughput_efficiency, 4) << "%\n";
  return bench::finish();
}
