// Microbenchmarks (google-benchmark) for the observability hot paths:
// the disabled-probe cost (the one-relaxed-load contract — the journal
// gate must be statistically indistinguishable from the registry gate
// it mirrors), armed ring appends, the drain/commit path, and the
// MetricsSnapshot delta/merge algebra `nsrel report` is built on.
// Counters are deterministic (events recorded, rows merged), so
// tools/bench_diff.py can hard-fail a run that did different work than
// the committed baseline even when wall-clock shifts.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>

#include "perf_json.hpp"

#include "obs/event_names.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/probe_names.hpp"
#include "obs/snapshot.hpp"

namespace {

using namespace nsrel;

// The registry gate: one relaxed load when off. This is the reference
// cost every other disabled probe is held to.
void BM_RegistryDisabled(benchmark::State& state) {
  obs::Registry::instance().set_enabled(false);
  std::uint64_t observed = 0;
  for (auto _ : state) {
    if (obs::Registry::enabled()) ++observed;
    benchmark::DoNotOptimize(observed);
  }
  state.counters["adds_observed"] = static_cast<double>(observed);
}
BENCHMARK(BM_RegistryDisabled);

// The journal gate while disarmed — the cost every instrumented line in
// src/ pays on a plain run. Must stay indistinguishable from
// BM_RegistryDisabled: both are one relaxed load and a branch.
void BM_JournalDisabled(benchmark::State& state) {
  obs::Journal::instance().disable();
  obs::Journal::instance().clear();
  std::uint64_t recorded = 0;
  for (auto _ : state) {
    if (obs::Journal::enabled()) {
      obs::Journal::instance().record(
          obs::seq_event(obs::event::kCacheHit));
      ++recorded;
    }
    benchmark::DoNotOptimize(recorded);
  }
  state.counters["events_recorded"] = static_cast<double>(recorded);
}
BENCHMARK(BM_JournalDisabled);

// Armed append into the thread-local ring: no locks, no allocation —
// the ring overwrites its oldest slot once full, so the loop cost is
// flat regardless of iteration count.
void BM_JournalArmed(benchmark::State& state) {
  obs::Journal::instance().begin();
  std::uint64_t recorded = 0;
  for (auto _ : state) {
    if (obs::Journal::enabled()) {
      obs::Journal::instance().record(
          obs::seq_event(obs::event::kCacheHit).arg("n", recorded));
      ++recorded;
    }
  }
  obs::Journal::instance().clear();
  // Per-iteration so the value is exact regardless of how many
  // iterations google-benchmark chose: 1 event per loop pass.
  state.counters["events_per_iter"] =
      static_cast<double>(recorded) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_JournalArmed);

// One full ring recorded and drained per iteration: the barrier-time
// cost the repair engine pays per batch.
void BM_JournalDrain(benchmark::State& state) {
  std::uint64_t drained = 0;
  for (auto _ : state) {
    state.PauseTiming();
    obs::Journal::instance().begin();
    for (std::size_t i = 0; i < obs::Journal::kRingCapacity; ++i) {
      obs::Journal::instance().record(
          obs::seq_event(obs::event::kCacheHit).arg("n", drained));
    }
    state.ResumeTiming();
    obs::Journal::instance().drain();
    drained += obs::Journal::kRingCapacity;
  }
  obs::Journal::instance().clear();
  // Exactly one full ring per iteration.
  state.counters["events_per_drain"] =
      static_cast<double>(drained) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_JournalDrain)->Unit(benchmark::kMicrosecond);

// The exact snapshot algebra behind --metrics-out and `nsrel report`:
// delta(before, after) then merge(before, delta) over a registry-sized
// row set. merge(a, delta(a, b)) == b is the correctness invariant the
// tests pin; this pins its cost.
void BM_SnapshotDelta(benchmark::State& state) {
  auto& registry = obs::Registry::instance();
  registry.reset();
  registry.set_enabled(true);
  const obs::Counter counter =
      registry.counter(obs::probe::kSolveCacheHits);
  const obs::Histogram histogram =
      registry.histogram(obs::probe::kSolveCacheInsertNs);
  registry.add(counter, 3);
  for (std::uint64_t v = 1; v < 1u << 10; v <<= 1) {
    registry.record(histogram, v);
  }
  const obs::MetricsSnapshot before = obs::MetricsSnapshot::capture();
  registry.add(counter, 40);
  for (std::uint64_t v = 1; v < 1u << 14; v <<= 1) {
    registry.record(histogram, v);
  }
  const obs::MetricsSnapshot after = obs::MetricsSnapshot::capture();
  registry.set_enabled(false);

  std::uint64_t rows = 0;
  for (auto _ : state) {
    const obs::MetricsSnapshot delta =
        obs::MetricsSnapshot::delta(before, after);
    const obs::MetricsSnapshot merged =
        obs::MetricsSnapshot::merge(before, delta);
    rows += merged.counters.size() + merged.histograms.size();
    benchmark::DoNotOptimize(merged);
  }
  // Rows in one merged snapshot — a fixed property of the registry's
  // probe set, not of the iteration count.
  state.counters["rows_per_merge"] =
      static_cast<double>(rows) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_SnapshotDelta);

}  // namespace

int main(int argc, char** argv) {
  return nsrel::bench::perf_main(argc, argv, "perf_obs");
}
