// Ablation (appendix): the recursive construction at arbitrary fault
// tolerance k. Compares, for k = 1..6:
//   - the exact chain solve (2^(k+1)-1 states),
//   - the appendix's block-recursive absorption-matrix solve,
//   - the general theorem's closed form (L_k recursion),
//   - and for k <= 3, the printed section-4.3 / Figure-12 formulas.
#include <chrono>
#include <cstddef>
#include <string>

#include "bench_common.hpp"

#include "models/closed_forms.hpp"
#include "models/no_internal_raid.hpp"

int main(int argc, char** argv) {
  using namespace nsrel;
  bench::init(argc, argv, "ablation_recursive_k");
  bench::preamble("Ablation", "recursive solution for arbitrary k");

  report::Table table({"k", "states", "exact chain (h)", "recursive matrix",
                       "theorem closed form", "printed formula",
                       "closed/exact", "solve us"});
  for (int k = 1; k <= 6; ++k) {
    models::NoInternalRaidParams p;
    p.node_set_size = 64;
    p.redundancy_set_size = 12;  // wide enough for k up to 6
    p.fault_tolerance = k;
    p.drives_per_node = 12;
    p.node_failure = PerHour(1.0 / 400'000.0);
    p.drive_failure = PerHour(1.0 / 300'000.0);
    p.node_rebuild = PerHour(0.19);
    p.drive_rebuild = PerHour(2.28);
    p.capacity = gigabytes(300.0);
    p.her_per_byte = 8e-14;

    const models::NoInternalRaidModel model(p);
    const auto start = std::chrono::steady_clock::now();
    const double exact = model.mttdl_exact().value();
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    const double recursive = model.mttdl_recursive_matrix().value();
    const double theorem = model.mttdl_closed_form().value();
    std::string printed = "-";
    if (k == 1) printed = sci(models::nir_ft1_printed(p).value());
    if (k == 2) printed = sci(models::nir_ft2_printed(p).value());
    if (k == 3) printed = sci(models::nir_ft3_printed(p).value());

    table.add_row({std::to_string(k),
                   std::to_string((std::size_t{2} << k) - 1), sci(exact),
                   sci(recursive), sci(theorem), printed,
                   fixed(theorem / exact, 4),
                   std::to_string(elapsed)});
  }
  table.print(std::cout);
  std::cout << "(recursive matrix and exact chain agree to solver precision;"
               "\n theorem tracks exact within the mu >> N*lambda regime)\n";
  return bench::finish();
}
