// Shared helpers for the figure-reproduction binaries. Each bench prints
// the series behind one paper figure: rows of (parameter value, events per
// PB-year per configuration) so the shape — orderings, crossovers, where
// the target line is crossed — can be compared with the paper directly.
//
// All sweeps run through engine::evaluate with a per-binary shared solve
// cache: figures that revisit a configuration (e.g. both drive-MTTF
// endpoints of figure 15) skip the repeated chain solves, and the fan-out
// uses every core without changing a byte of output.
// Machine-readable results: every figure binary accepts `--json-out FILE`
// and writes its per-sweep wall-clock timings (plus solve-cache traffic)
// as a stable nsrel-bench-v1 document, so perf trajectories can be
// tracked across commits without scraping tables.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "core/analyzer.hpp"
#include "core/solve_cache.hpp"
#include "engine/engine.hpp"
#include "engine/grid.hpp"
#include "engine/render.hpp"
#include "obs/build_info.hpp"
#include "obs/metrics.hpp"
#include "report/json.hpp"
#include "report/table.hpp"
#include "util/format.hpp"

namespace nsrel::bench {

inline const core::ReliabilityTarget kTarget = core::ReliabilityTarget::paper();

/// One solve cache per bench binary, shared by every print_sweep/evaluate
/// call so repeated (model, method) pairs across a figure's sections are
/// solved once.
inline core::SolveCache& shared_cache() {
  static core::SolveCache cache;
  return cache;
}

/// Engine options every bench uses: all cores, shared cache.
inline engine::EvalOptions eval_options() {
  engine::EvalOptions options;
  options.jobs = 0;  // all hardware threads; output is jobs-invariant
  options.cache = &shared_cache();
  return options;
}

/// Prints the standard preamble: figure id, what is swept, the target.
inline void preamble(const std::string& figure, const std::string& what) {
  std::cout << figure << ": " << what << "\n"
            << "reliability target: < " << sci(kTarget.events_per_pb_year)
            << " data loss events per PB-year\n";
}

/// One measured unit of bench work in the nsrel-bench-v1 document.
struct BenchEntry {
  std::string name;
  std::uint64_t iterations = 1;
  double real_ns = 0.0;
  double cpu_ns = -1.0;  ///< < 0 renders as null (not measured)
  std::vector<std::pair<std::string, double>> counters;
};

/// Writes the nsrel-bench-v1 document: schema, binary, build identity,
/// one record per entry. Stable key order; numbers round-trip through
/// strtod.
inline void write_bench_json(std::ostream& out, const std::string& binary,
                             const std::vector<BenchEntry>& entries) {
  const obs::BuildInfo& build = obs::build_info();
  report::JsonWriter json(out);
  json.begin_object();
  json.key("schema").value("nsrel-bench-v1");
  json.key("binary").value(binary);
  json.key("build").begin_object();
  json.key("semver").value(build.semver);
  json.key("git_sha").value(build.git_sha);
  json.key("compiler").value(build.compiler);
  json.key("build_type").value(build.build_type);
  json.end_object();
  json.key("benchmarks").begin_array();
  for (const BenchEntry& entry : entries) {
    json.begin_object();
    json.key("name").value(entry.name);
    json.key("iterations").value(entry.iterations);
    json.key("real_ns").value(entry.real_ns);
    if (entry.cpu_ns < 0.0) {
      json.key("cpu_ns").null();
    } else {
      json.key("cpu_ns").value(entry.cpu_ns);
    }
    json.key("counters").begin_object();
    for (const auto& [name, value] : entry.counters) {
      json.key(name).value(value);
    }
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

/// Per-binary collection of bench entries plus the --json-out flag. The
/// figure binaries call init() first and `return finish()` last; entries
/// accumulate from print_sweep() in between. Table output on stdout is
/// unchanged whether or not --json-out is given.
class BenchReport {
 public:
  static BenchReport& instance() {
    static BenchReport report;
    return report;
  }

  /// Parses {--json-out FILE}; any other argument is a usage error
  /// reported by finish() (exit 2, distinct from the tool's exit codes).
  void init(int argc, const char* const* argv, std::string binary) {
    binary_ = std::move(binary);
    start_ns_ = obs::now_ns();
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json-out" && i + 1 < argc) {
        json_path_ = argv[++i];
      } else {
        usage_error_ = "unknown argument '" + arg +
                       "' (figure benches accept only --json-out FILE)";
        return;
      }
    }
  }

  void record(BenchEntry entry) { entries_.push_back(std::move(entry)); }

  /// Appends the whole-binary "total" entry, writes the JSON document
  /// when --json-out was given, and returns the process exit code.
  int finish() {
    if (!usage_error_.empty()) {
      std::cerr << binary_ << ": " << usage_error_ << "\n";
      return 2;
    }
    BenchEntry total;
    total.name = "total";
    total.real_ns = static_cast<double>(obs::now_ns() - start_ns_);
    const core::SolveCache::Stats stats = shared_cache().stats();
    total.counters.emplace_back("cache_hits",
                                static_cast<double>(stats.hits));
    total.counters.emplace_back("cache_misses",
                                static_cast<double>(stats.misses));
    entries_.push_back(std::move(total));
    if (json_path_.empty()) return 0;
    std::ofstream out(json_path_);
    if (!out) {
      std::cerr << binary_ << ": cannot write '" << json_path_ << "'\n";
      return 1;
    }
    write_bench_json(out, binary_, entries_);
    return out ? 0 : 1;
  }

 private:
  BenchReport() = default;

  std::string binary_;
  std::string json_path_;
  std::string usage_error_;
  std::uint64_t start_ns_ = 0;
  std::vector<BenchEntry> entries_;
};

/// Figure-binary entry points: call init() first thing in main() and
/// `return finish();` last.
inline void init(int argc, const char* const* argv,
                 const std::string& binary) {
  BenchReport::instance().init(argc, argv, binary);
}

inline int finish() { return BenchReport::instance().finish(); }

/// One sweep table: evaluates every configuration on the SystemConfigs
/// produced by `make_config(x)` and renders events/PB-year (with a '*'
/// marking values that meet the target). Also records one BenchEntry
/// (wall clock + cells + solve-cache hit/miss deltas) for --json-out.
inline void print_sweep(
    const std::string& x_label, const std::vector<double>& xs,
    const std::function<std::string(double)>& format_x,
    const std::function<core::SystemConfig(double)>& make_config,
    const std::vector<core::Configuration>& configurations) {
  const core::SolveCache::Stats before = shared_cache().stats();
  const std::uint64_t start = obs::now_ns();
  const engine::ResultSet results = engine::evaluate(
      engine::custom_sweep(x_label, xs, make_config, configurations,
                           core::Method::kExactChain, format_x),
      eval_options());
  const std::uint64_t elapsed = obs::now_ns() - start;
  const core::SolveCache::Stats after = shared_cache().stats();
  BenchEntry entry;
  entry.name = "sweep:" + x_label;
  entry.real_ns = static_cast<double>(elapsed);
  entry.counters.emplace_back(
      "cells", static_cast<double>(xs.size() * configurations.size()));
  entry.counters.emplace_back(
      "cache_hits", static_cast<double>(after.hits - before.hits));
  entry.counters.emplace_back(
      "cache_misses", static_cast<double>(after.misses - before.misses));
  BenchReport::instance().record(std::move(entry));
  engine::events_table(results, &kTarget).print(std::cout);
  std::cout << "(* = meets target)\n";
}

}  // namespace nsrel::bench
