// Shared helpers for the figure-reproduction binaries. Each bench prints
// the series behind one paper figure: rows of (parameter value, events per
// PB-year per configuration) so the shape — orderings, crossovers, where
// the target line is crossed — can be compared with the paper directly.
#pragma once

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "report/table.hpp"
#include "util/format.hpp"

namespace nsrel::bench {

inline const core::ReliabilityTarget kTarget = core::ReliabilityTarget::paper();

/// Prints the standard preamble: figure id, what is swept, the target.
inline void preamble(const std::string& figure, const std::string& what) {
  std::cout << figure << ": " << what << "\n"
            << "reliability target: < " << sci(kTarget.events_per_pb_year)
            << " data loss events per PB-year\n";
}

/// One sweep row: evaluates every configuration on a SystemConfig produced
/// by `make_config(x)` and renders events/PB-year (with a '*' marking
/// values that meet the target).
inline void print_sweep(
    const std::string& x_label, const std::vector<double>& xs,
    const std::function<std::string(double)>& format_x,
    const std::function<core::SystemConfig(double)>& make_config,
    const std::vector<core::Configuration>& configurations) {
  std::vector<std::string> headers{x_label};
  for (const auto& c : configurations) headers.push_back(core::name(c));
  report::Table table(std::move(headers));
  for (const double x : xs) {
    std::vector<std::string> row{format_x(x)};
    const core::Analyzer analyzer(make_config(x));
    for (const auto& c : configurations) {
      const double events = analyzer.events_per_pb_year(c);
      row.push_back(sci(events) + (kTarget.met_by(events) ? " *" : ""));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "(* = meets target)\n";
}

}  // namespace nsrel::bench
