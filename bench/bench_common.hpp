// Shared helpers for the figure-reproduction binaries. Each bench prints
// the series behind one paper figure: rows of (parameter value, events per
// PB-year per configuration) so the shape — orderings, crossovers, where
// the target line is crossed — can be compared with the paper directly.
//
// All sweeps run through engine::evaluate with a per-binary shared solve
// cache: figures that revisit a configuration (e.g. both drive-MTTF
// endpoints of figure 15) skip the repeated chain solves, and the fan-out
// uses every core without changing a byte of output.
#pragma once

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "core/solve_cache.hpp"
#include "engine/engine.hpp"
#include "engine/grid.hpp"
#include "engine/render.hpp"
#include "report/table.hpp"
#include "util/format.hpp"

namespace nsrel::bench {

inline const core::ReliabilityTarget kTarget = core::ReliabilityTarget::paper();

/// One solve cache per bench binary, shared by every print_sweep/evaluate
/// call so repeated (model, method) pairs across a figure's sections are
/// solved once.
inline core::SolveCache& shared_cache() {
  static core::SolveCache cache;
  return cache;
}

/// Engine options every bench uses: all cores, shared cache.
inline engine::EvalOptions eval_options() {
  engine::EvalOptions options;
  options.jobs = 0;  // all hardware threads; output is jobs-invariant
  options.cache = &shared_cache();
  return options;
}

/// Prints the standard preamble: figure id, what is swept, the target.
inline void preamble(const std::string& figure, const std::string& what) {
  std::cout << figure << ": " << what << "\n"
            << "reliability target: < " << sci(kTarget.events_per_pb_year)
            << " data loss events per PB-year\n";
}

/// One sweep table: evaluates every configuration on the SystemConfigs
/// produced by `make_config(x)` and renders events/PB-year (with a '*'
/// marking values that meet the target).
inline void print_sweep(
    const std::string& x_label, const std::vector<double>& xs,
    const std::function<std::string(double)>& format_x,
    const std::function<core::SystemConfig(double)>& make_config,
    const std::vector<core::Configuration>& configurations) {
  const engine::ResultSet results = engine::evaluate(
      engine::custom_sweep(x_label, xs, make_config, configurations,
                           core::Method::kExactChain, format_x),
      eval_options());
  engine::events_table(results, &kTarget).print(std::cout);
  std::cout << "(* = meets target)\n";
}

}  // namespace nsrel::bench
