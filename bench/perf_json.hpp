// --json-out support for the google-benchmark perf binaries: a reporter
// that mirrors every run into nsrel-bench-v1 entries while delegating the
// normal console output, plus the shared main() body. Console output is
// unchanged whether or not --json-out is given.
//
// --events FILE additionally arms the flight recorder around the runs
// and writes the drained journal as nsrel-events-v1 NDJSON — the CI
// repair-soak artifact (`perf_repair --events ...`) comes from here.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "obs/journal.hpp"
#include "report/events_doc.hpp"

namespace nsrel::bench {

/// ConsoleReporter subclass that captures each Run before printing it
/// normally. Per-iteration real/cpu time is accumulated_time/iterations
/// in seconds, converted to ns for the schema.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      BenchEntry entry;
      entry.name = run.benchmark_name();
      entry.iterations = static_cast<std::uint64_t>(run.iterations);
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      entry.real_ns = run.real_accumulated_time / iters * 1e9;
      entry.cpu_ns = run.cpu_accumulated_time / iters * 1e9;
      for (const auto& [name, counter] : run.counters) {
        entry.counters.emplace_back(name,
                                    static_cast<double>(counter.value));
      }
      entries_.push_back(std::move(entry));
    }
    ConsoleReporter::ReportRuns(reports);
  }

  [[nodiscard]] const std::vector<BenchEntry>& entries() const {
    return entries_;
  }

 private:
  std::vector<BenchEntry> entries_;
};

/// Shared main() of the perf binaries: strips --json-out FILE and
/// --events FILE, hands the rest to google-benchmark, and writes the
/// nsrel-bench-v1 document (and the nsrel-events-v1 journal) after the
/// runs.
inline int perf_main(int argc, char** argv, const std::string& binary) {
  std::string json_path;
  std::string events_path;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json-out" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::string(argv[i]) == "--events" && i + 1 < argc) {
      events_path = argv[++i];
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc,
                                             passthrough.data())) {
    return 1;
  }
  if (!events_path.empty()) obs::Journal::instance().begin();
  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!events_path.empty()) {
    // Benchmarked subsystems drained at their own joins/barriers; this
    // catches the tail, then the journal is frozen for export.
    obs::Journal::instance().drain();
    obs::Journal::instance().disable();
    std::ofstream out(events_path);
    if (out) {
      report::write_events_ndjson(obs::Journal::instance().events(),
                                  obs::Journal::instance().dropped(), out);
    }
    if (!out) {
      std::cerr << binary << ": cannot write '" << events_path << "'\n";
      return 1;
    }
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << binary << ": cannot write '" << json_path << "'\n";
      return 1;
    }
    write_bench_json(out, binary, reporter.entries());
    if (!out) return 1;
  }
  return 0;
}

}  // namespace nsrel::bench
