// Ablation (extension): disk scrubbing — the trade between latent-error
// exposure and rebuild bandwidth.
//
// Short scrub periods shrink the h terms (fewer latent sectors survive to
// ambush a critical rebuild) but steal drive bandwidth from rebuilds,
// inflating the failure-coincidence terms. The sweep exposes the optimal
// period per configuration.
#include "bench_common.hpp"

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "core/scrubbing.hpp"

int main(int argc, char** argv) {
  using namespace nsrel;
  bench::init(argc, argv, "ablation_scrubbing");
  bench::preamble("Ablation", "scrub period vs reliability");

  const core::SystemConfig baseline = core::SystemConfig::baseline();
  const auto configurations = core::sensitivity_configurations();

  std::vector<std::string> headers{"scrub period", "eff. HER",
                                   "rebuild budget"};
  for (const auto& c : configurations) headers.push_back(core::name(c));
  report::Table table(std::move(headers));

  const std::vector<double> periods{30,   60,   120,  240,  480,
                                    720,  1440, 2920, 8766};
  const auto scrubbed_system = [&baseline](double period) {
    core::ScrubbingParams sp;
    sp.period = Hours(period);
    return core::ScrubbingModel(sp).apply(baseline);
  };
  const engine::ResultSet swept = engine::evaluate(
      engine::custom_sweep("scrub period", periods, scrubbed_system,
                           configurations),
      bench::eval_options());
  const engine::ResultSet unscrubbed = engine::evaluate(
      engine::single_point(baseline, configurations), bench::eval_options());

  const auto events_row = [&](const engine::ResultSet& results,
                              std::size_t point,
                              std::vector<std::string> row) {
    for (std::size_t i = 0; i < results.configuration_count(); ++i) {
      const double events = results.at(point, i).events_per_pb_year;
      row.push_back(sci(events) +
                    (bench::kTarget.met_by(events) ? " *" : ""));
    }
    table.add_row(std::move(row));
  };
  for (std::size_t p = 0; p < periods.size(); ++p) {
    core::ScrubbingParams sp;
    sp.period = Hours(periods[p]);
    const auto effect = core::ScrubbingModel(sp).effect(baseline);
    events_row(swept, p,
               {fixed(periods[p], 0) + " h",
                sci(effect.effective_her_per_byte),
                fixed(100.0 * effect.rebuild_bandwidth_fraction, 2) + "%"});
  }
  // No scrubbing at all = the paper's baseline.
  events_row(unscrubbed, 0,
             {"none (paper)", sci(baseline.drive.her_per_byte),
              fixed(100.0 * baseline.rebuild_bandwidth_fraction, 2) + "%"});
  table.print(std::cout);
  std::cout << "(* = meets target; scrub pass ~2.6 h at 1 MiB commands.\n"
            << " The optimum sits where marginal latent-error gains equal\n"
            << " marginal rebuild-slowdown losses — around 1-5 days here.)\n";
  return bench::finish();
}
