// Figure 13: baseline comparison of the 9 redundancy configurations at the
// section-6 parameters, against the 2e-3 events/PB-year target.
//
// Paper observations this should reproduce:
//  1. FT1 configurations miss the target (by orders of magnitude).
//  2. Internal RAID 5 ~ internal RAID 6 for FT >= 2.
//  3. FT3 + internal RAID exceeds the target by ~5 orders of magnitude.
#include "bench_common.hpp"

#include <cstddef>
#include <vector>

int main(int argc, char** argv) {
  using namespace nsrel;
  bench::init(argc, argv, "fig13_baseline");
  bench::preamble("Figure 13", "baseline comparison of 9 configurations");

  const std::vector<core::Configuration> configurations =
      core::all_configurations();
  const engine::ResultSet results = engine::evaluate(
      engine::single_point(core::SystemConfig::baseline(), configurations),
      bench::eval_options());

  report::Table table({"configuration", "MTTDL", "events/PB-yr", "vs target",
                       "meets"});
  for (std::size_t i = 0; i < configurations.size(); ++i) {
    const auto& result = results.at(0, i);
    const double ratio =
        result.events_per_pb_year / bench::kTarget.events_per_pb_year;
    table.add_row({core::name(configurations[i]),
                   human_hours(result.mttdl.value()),
                   sci(result.events_per_pb_year), sci(ratio) + "x",
                   bench::kTarget.met_by(result) ? "yes" : "NO"});
  }
  table.print(std::cout);

  // The three observations, checked mechanically from the same cells.
  const auto events_of = [&](core::InternalScheme scheme, int ft) {
    for (std::size_t i = 0; i < configurations.size(); ++i) {
      if (configurations[i].internal == scheme &&
          configurations[i].node_fault_tolerance == ft) {
        return results.at(0, i).events_per_pb_year;
      }
    }
    throw ContractViolation("configuration missing from all_configurations");
  };
  const double raid5_ft2 = events_of(core::InternalScheme::kRaid5, 2);
  const double raid6_ft2 = events_of(core::InternalScheme::kRaid6, 2);
  const double raid5_ft3 = events_of(core::InternalScheme::kRaid5, 3);
  std::cout << "\nobservation 2 check: RAID6/RAID5 events ratio at FT2 = "
            << fixed(raid6_ft2 / raid5_ft2, 3) << " (paper: ~1)\n"
            << "observation 3 check: FT3+IR5 headroom vs target = "
            << sci(bench::kTarget.events_per_pb_year / raid5_ft3)
            << "x (paper: ~5 orders)\n";
  return bench::finish();
}
