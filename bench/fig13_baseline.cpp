// Figure 13: baseline comparison of the 9 redundancy configurations at the
// section-6 parameters, against the 2e-3 events/PB-year target.
//
// Paper observations this should reproduce:
//  1. FT1 configurations miss the target (by orders of magnitude).
//  2. Internal RAID 5 ~ internal RAID 6 for FT >= 2.
//  3. FT3 + internal RAID exceeds the target by ~5 orders of magnitude.
#include "bench_common.hpp"

int main() {
  using namespace nsrel;
  bench::preamble("Figure 13", "baseline comparison of 9 configurations");

  const core::Analyzer analyzer(core::SystemConfig::baseline());
  report::Table table({"configuration", "MTTDL", "events/PB-yr", "vs target",
                       "meets"});
  for (const auto& configuration : core::all_configurations()) {
    const auto result = analyzer.analyze(configuration);
    const double ratio =
        result.events_per_pb_year / bench::kTarget.events_per_pb_year;
    table.add_row({core::name(configuration),
                   human_hours(result.mttdl.value()),
                   sci(result.events_per_pb_year), sci(ratio) + "x",
                   bench::kTarget.met_by(result) ? "yes" : "NO"});
  }
  table.print(std::cout);

  // The three observations, checked mechanically.
  const double raid5_ft2 =
      analyzer.events_per_pb_year({core::InternalScheme::kRaid5, 2});
  const double raid6_ft2 =
      analyzer.events_per_pb_year({core::InternalScheme::kRaid6, 2});
  const double raid5_ft3 =
      analyzer.events_per_pb_year({core::InternalScheme::kRaid5, 3});
  std::cout << "\nobservation 2 check: RAID6/RAID5 events ratio at FT2 = "
            << fixed(raid6_ft2 / raid5_ft2, 3) << " (paper: ~1)\n"
            << "observation 3 check: FT3+IR5 headroom vs target = "
            << sci(bench::kTarget.events_per_pb_year / raid5_ft3)
            << "x (paper: ~5 orders)\n";
  return 0;
}
