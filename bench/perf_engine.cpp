// Microbenchmarks (google-benchmark) for the grid-evaluation engine:
// wall-clock scaling across worker counts on a solver-heavy sweep, and
// the effect of the solve cache on sweeps whose points share a chain.
#include <benchmark/benchmark.h>

#include "perf_json.hpp"

#include "core/solve_cache.hpp"
#include "engine/engine.hpp"
#include "engine/grid.hpp"

namespace {

using namespace nsrel;

// A solver-heavy grid: ft=8 over r=12 gives a 511-state chain per cell,
// so each of the 64 points costs a real LU solve.
engine::Grid heavy_grid() {
  core::SystemConfig base = core::SystemConfig::baseline();
  base.redundancy_set_size = 12;
  return engine::parameter_sweep(
      base, "drive-mttf", engine::spaced_points(100e3, 750e3, 64, true),
      {{core::InternalScheme::kNone, 8}});
}

// Wall-clock scaling with the worker count (the ResultSet is identical
// across the arg range by construction).
void BM_EvaluateJobs(benchmark::State& state) {
  const engine::Grid grid = heavy_grid();
  engine::EvalOptions options;
  options.jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine::evaluate(grid, options).at(0, 0).mttdl);
  }
}
BENCHMARK(BM_EvaluateJobs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// The memoization path: a sweep over restripe-kb leaves the (no internal
// RAID) Markov model untouched, so every cell after the first is a cache
// hit and the evaluation is pure lookup.
void BM_EvaluateCacheHits(benchmark::State& state) {
  core::SystemConfig base = core::SystemConfig::baseline();
  base.redundancy_set_size = 12;
  const engine::Grid grid = engine::parameter_sweep(
      base, "restripe-kb", engine::spaced_points(64.0, 4096.0, 64, true),
      {{core::InternalScheme::kNone, 8}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine::evaluate(grid).cache_stats().hits);
  }
}
BENCHMARK(BM_EvaluateCacheHits)->Unit(benchmark::kMillisecond);

// The same grid with the cache disabled by sweeping a parameter that
// changes the model every point — the full-solve baseline to compare
// BM_EvaluateCacheHits against.
void BM_EvaluateCacheMisses(benchmark::State& state) {
  const engine::Grid grid = heavy_grid();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine::evaluate(grid).cache_stats().misses);
  }
}
BENCHMARK(BM_EvaluateCacheMisses)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return nsrel::bench::perf_main(argc, argv, "perf_engine");
}
