// Figure 16: sensitivity to rebuild block size (4 KB .. 1 MB).
//
// Paper shape: the most impactful controllable parameter. FT2-IR5 and
// FT3-NIR meet the target once the rebuild block is >= 64 KB; FT2-NIR
// misses for low node MTTF. The mechanism is the drive service-time model:
// small commands are seek-bound, so the effective rebuild rate collapses.
#include "bench_common.hpp"

#include <vector>

#include "rebuild/drive_model.hpp"

int main(int argc, char** argv) {
  using namespace nsrel;
  bench::init(argc, argv, "fig16_rebuild_block");
  bench::preamble("Figure 16", "sensitivity to rebuild block size");

  const std::vector<double> block_kib{4, 8, 16, 32, 64, 128, 256, 512, 1024};

  // The drive-side mechanism first: effective throughput per block size.
  const rebuild::DriveModel drive{rebuild::DriveParams{}};
  report::Table mech({"block", "effective rate", "of sustained"});
  for (const double kib : block_kib) {
    const double rate = drive.effective_rate(kilobytes(kib)).value();
    mech.add_row({fixed(kib, 0) + " KiB", fixed(rate / 1e6, 1) + " MB/s",
                  fixed(100.0 * drive.efficiency(kilobytes(kib)), 1) + "%"});
  }
  mech.print(std::cout);

  std::cout << "\nreliability vs rebuild block size (baseline MTTFs):\n";
  bench::print_sweep(
      "rebuild block", block_kib,
      [](double x) { return fixed(x, 0) + " KiB"; },
      [](double x) {
        core::SystemConfig c = core::SystemConfig::baseline();
        c.rebuild_command = kilobytes(x);
        return c;
      },
      core::sensitivity_configurations());

  std::cout << "\nsame sweep with re-stripe command scaled alongside\n"
            << "(affects the internal-RAID lambda_D/lambda_S path too):\n";
  bench::print_sweep(
      "rebuild block", block_kib,
      [](double x) { return fixed(x, 0) + " KiB"; },
      [](double x) {
        core::SystemConfig c = core::SystemConfig::baseline();
        c.rebuild_command = kilobytes(x);
        c.restripe_command = kilobytes(8.0 * x);  // keep the baseline 1:8
        return c;
      },
      core::sensitivity_configurations());
  return bench::finish();
}
