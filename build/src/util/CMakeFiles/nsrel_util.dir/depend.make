# Empty dependencies file for nsrel_util.
# This may be replaced when dependencies are built.
