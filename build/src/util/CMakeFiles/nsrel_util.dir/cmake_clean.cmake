file(REMOVE_RECURSE
  "CMakeFiles/nsrel_util.dir/distributions.cpp.o"
  "CMakeFiles/nsrel_util.dir/distributions.cpp.o.d"
  "CMakeFiles/nsrel_util.dir/format.cpp.o"
  "CMakeFiles/nsrel_util.dir/format.cpp.o.d"
  "CMakeFiles/nsrel_util.dir/math.cpp.o"
  "CMakeFiles/nsrel_util.dir/math.cpp.o.d"
  "CMakeFiles/nsrel_util.dir/rng.cpp.o"
  "CMakeFiles/nsrel_util.dir/rng.cpp.o.d"
  "libnsrel_util.a"
  "libnsrel_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsrel_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
