file(REMOVE_RECURSE
  "libnsrel_util.a"
)
