file(REMOVE_RECURSE
  "libnsrel_placement.a"
)
