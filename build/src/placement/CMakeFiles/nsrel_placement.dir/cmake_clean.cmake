file(REMOVE_RECURSE
  "CMakeFiles/nsrel_placement.dir/layout.cpp.o"
  "CMakeFiles/nsrel_placement.dir/layout.cpp.o.d"
  "libnsrel_placement.a"
  "libnsrel_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsrel_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
