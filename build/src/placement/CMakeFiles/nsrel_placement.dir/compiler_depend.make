# Empty compiler generated dependencies file for nsrel_placement.
# This may be replaced when dependencies are built.
