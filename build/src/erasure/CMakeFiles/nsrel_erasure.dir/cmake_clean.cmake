file(REMOVE_RECURSE
  "CMakeFiles/nsrel_erasure.dir/evenodd.cpp.o"
  "CMakeFiles/nsrel_erasure.dir/evenodd.cpp.o.d"
  "CMakeFiles/nsrel_erasure.dir/gf256.cpp.o"
  "CMakeFiles/nsrel_erasure.dir/gf256.cpp.o.d"
  "CMakeFiles/nsrel_erasure.dir/rdp.cpp.o"
  "CMakeFiles/nsrel_erasure.dir/rdp.cpp.o.d"
  "CMakeFiles/nsrel_erasure.dir/reed_solomon.cpp.o"
  "CMakeFiles/nsrel_erasure.dir/reed_solomon.cpp.o.d"
  "libnsrel_erasure.a"
  "libnsrel_erasure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsrel_erasure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
