file(REMOVE_RECURSE
  "libnsrel_erasure.a"
)
