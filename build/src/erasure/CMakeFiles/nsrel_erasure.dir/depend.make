# Empty dependencies file for nsrel_erasure.
# This may be replaced when dependencies are built.
