file(REMOVE_RECURSE
  "libnsrel_rebuild.a"
)
