file(REMOVE_RECURSE
  "CMakeFiles/nsrel_rebuild.dir/degraded.cpp.o"
  "CMakeFiles/nsrel_rebuild.dir/degraded.cpp.o.d"
  "CMakeFiles/nsrel_rebuild.dir/drive_model.cpp.o"
  "CMakeFiles/nsrel_rebuild.dir/drive_model.cpp.o.d"
  "CMakeFiles/nsrel_rebuild.dir/link_model.cpp.o"
  "CMakeFiles/nsrel_rebuild.dir/link_model.cpp.o.d"
  "CMakeFiles/nsrel_rebuild.dir/planner.cpp.o"
  "CMakeFiles/nsrel_rebuild.dir/planner.cpp.o.d"
  "libnsrel_rebuild.a"
  "libnsrel_rebuild.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsrel_rebuild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
