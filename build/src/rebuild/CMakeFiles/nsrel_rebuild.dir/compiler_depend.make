# Empty compiler generated dependencies file for nsrel_rebuild.
# This may be replaced when dependencies are built.
