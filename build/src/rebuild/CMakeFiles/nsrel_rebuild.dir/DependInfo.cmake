
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rebuild/degraded.cpp" "src/rebuild/CMakeFiles/nsrel_rebuild.dir/degraded.cpp.o" "gcc" "src/rebuild/CMakeFiles/nsrel_rebuild.dir/degraded.cpp.o.d"
  "/root/repo/src/rebuild/drive_model.cpp" "src/rebuild/CMakeFiles/nsrel_rebuild.dir/drive_model.cpp.o" "gcc" "src/rebuild/CMakeFiles/nsrel_rebuild.dir/drive_model.cpp.o.d"
  "/root/repo/src/rebuild/link_model.cpp" "src/rebuild/CMakeFiles/nsrel_rebuild.dir/link_model.cpp.o" "gcc" "src/rebuild/CMakeFiles/nsrel_rebuild.dir/link_model.cpp.o.d"
  "/root/repo/src/rebuild/planner.cpp" "src/rebuild/CMakeFiles/nsrel_rebuild.dir/planner.cpp.o" "gcc" "src/rebuild/CMakeFiles/nsrel_rebuild.dir/planner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nsrel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
