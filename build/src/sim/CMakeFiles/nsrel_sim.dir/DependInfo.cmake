
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/chain_simulator.cpp" "src/sim/CMakeFiles/nsrel_sim.dir/chain_simulator.cpp.o" "gcc" "src/sim/CMakeFiles/nsrel_sim.dir/chain_simulator.cpp.o.d"
  "/root/repo/src/sim/estimate.cpp" "src/sim/CMakeFiles/nsrel_sim.dir/estimate.cpp.o" "gcc" "src/sim/CMakeFiles/nsrel_sim.dir/estimate.cpp.o.d"
  "/root/repo/src/sim/storage_simulator.cpp" "src/sim/CMakeFiles/nsrel_sim.dir/storage_simulator.cpp.o" "gcc" "src/sim/CMakeFiles/nsrel_sim.dir/storage_simulator.cpp.o.d"
  "/root/repo/src/sim/weibull_simulator.cpp" "src/sim/CMakeFiles/nsrel_sim.dir/weibull_simulator.cpp.o" "gcc" "src/sim/CMakeFiles/nsrel_sim.dir/weibull_simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/models/CMakeFiles/nsrel_models.dir/DependInfo.cmake"
  "/root/repo/build/src/ctmc/CMakeFiles/nsrel_ctmc.dir/DependInfo.cmake"
  "/root/repo/build/src/combinat/CMakeFiles/nsrel_combinat.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nsrel_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/nsrel_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
