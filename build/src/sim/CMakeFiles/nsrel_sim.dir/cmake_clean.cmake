file(REMOVE_RECURSE
  "CMakeFiles/nsrel_sim.dir/chain_simulator.cpp.o"
  "CMakeFiles/nsrel_sim.dir/chain_simulator.cpp.o.d"
  "CMakeFiles/nsrel_sim.dir/estimate.cpp.o"
  "CMakeFiles/nsrel_sim.dir/estimate.cpp.o.d"
  "CMakeFiles/nsrel_sim.dir/storage_simulator.cpp.o"
  "CMakeFiles/nsrel_sim.dir/storage_simulator.cpp.o.d"
  "CMakeFiles/nsrel_sim.dir/weibull_simulator.cpp.o"
  "CMakeFiles/nsrel_sim.dir/weibull_simulator.cpp.o.d"
  "libnsrel_sim.a"
  "libnsrel_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsrel_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
