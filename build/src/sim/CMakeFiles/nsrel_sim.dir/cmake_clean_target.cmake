file(REMOVE_RECURSE
  "libnsrel_sim.a"
)
