# Empty dependencies file for nsrel_sim.
# This may be replaced when dependencies are built.
