file(REMOVE_RECURSE
  "libnsrel_brick.a"
)
