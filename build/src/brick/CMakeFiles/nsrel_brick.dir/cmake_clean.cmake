file(REMOVE_RECURSE
  "CMakeFiles/nsrel_brick.dir/node.cpp.o"
  "CMakeFiles/nsrel_brick.dir/node.cpp.o.d"
  "CMakeFiles/nsrel_brick.dir/object_store.cpp.o"
  "CMakeFiles/nsrel_brick.dir/object_store.cpp.o.d"
  "libnsrel_brick.a"
  "libnsrel_brick.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsrel_brick.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
