# Empty compiler generated dependencies file for nsrel_brick.
# This may be replaced when dependencies are built.
