# Empty compiler generated dependencies file for nsrel_ctmc.
# This may be replaced when dependencies are built.
