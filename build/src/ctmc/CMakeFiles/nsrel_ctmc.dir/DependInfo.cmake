
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctmc/absorbing.cpp" "src/ctmc/CMakeFiles/nsrel_ctmc.dir/absorbing.cpp.o" "gcc" "src/ctmc/CMakeFiles/nsrel_ctmc.dir/absorbing.cpp.o.d"
  "/root/repo/src/ctmc/chain.cpp" "src/ctmc/CMakeFiles/nsrel_ctmc.dir/chain.cpp.o" "gcc" "src/ctmc/CMakeFiles/nsrel_ctmc.dir/chain.cpp.o.d"
  "/root/repo/src/ctmc/dot.cpp" "src/ctmc/CMakeFiles/nsrel_ctmc.dir/dot.cpp.o" "gcc" "src/ctmc/CMakeFiles/nsrel_ctmc.dir/dot.cpp.o.d"
  "/root/repo/src/ctmc/elimination.cpp" "src/ctmc/CMakeFiles/nsrel_ctmc.dir/elimination.cpp.o" "gcc" "src/ctmc/CMakeFiles/nsrel_ctmc.dir/elimination.cpp.o.d"
  "/root/repo/src/ctmc/sensitivity.cpp" "src/ctmc/CMakeFiles/nsrel_ctmc.dir/sensitivity.cpp.o" "gcc" "src/ctmc/CMakeFiles/nsrel_ctmc.dir/sensitivity.cpp.o.d"
  "/root/repo/src/ctmc/stationary.cpp" "src/ctmc/CMakeFiles/nsrel_ctmc.dir/stationary.cpp.o" "gcc" "src/ctmc/CMakeFiles/nsrel_ctmc.dir/stationary.cpp.o.d"
  "/root/repo/src/ctmc/transient.cpp" "src/ctmc/CMakeFiles/nsrel_ctmc.dir/transient.cpp.o" "gcc" "src/ctmc/CMakeFiles/nsrel_ctmc.dir/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/nsrel_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nsrel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
