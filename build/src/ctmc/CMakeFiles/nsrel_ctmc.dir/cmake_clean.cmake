file(REMOVE_RECURSE
  "CMakeFiles/nsrel_ctmc.dir/absorbing.cpp.o"
  "CMakeFiles/nsrel_ctmc.dir/absorbing.cpp.o.d"
  "CMakeFiles/nsrel_ctmc.dir/chain.cpp.o"
  "CMakeFiles/nsrel_ctmc.dir/chain.cpp.o.d"
  "CMakeFiles/nsrel_ctmc.dir/dot.cpp.o"
  "CMakeFiles/nsrel_ctmc.dir/dot.cpp.o.d"
  "CMakeFiles/nsrel_ctmc.dir/elimination.cpp.o"
  "CMakeFiles/nsrel_ctmc.dir/elimination.cpp.o.d"
  "CMakeFiles/nsrel_ctmc.dir/sensitivity.cpp.o"
  "CMakeFiles/nsrel_ctmc.dir/sensitivity.cpp.o.d"
  "CMakeFiles/nsrel_ctmc.dir/stationary.cpp.o"
  "CMakeFiles/nsrel_ctmc.dir/stationary.cpp.o.d"
  "CMakeFiles/nsrel_ctmc.dir/transient.cpp.o"
  "CMakeFiles/nsrel_ctmc.dir/transient.cpp.o.d"
  "libnsrel_ctmc.a"
  "libnsrel_ctmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsrel_ctmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
