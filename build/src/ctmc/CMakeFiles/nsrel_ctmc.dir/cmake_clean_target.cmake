file(REMOVE_RECURSE
  "libnsrel_ctmc.a"
)
