file(REMOVE_RECURSE
  "libnsrel_report.a"
)
