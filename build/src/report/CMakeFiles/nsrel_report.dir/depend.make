# Empty dependencies file for nsrel_report.
# This may be replaced when dependencies are built.
