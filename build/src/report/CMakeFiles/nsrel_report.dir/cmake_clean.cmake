file(REMOVE_RECURSE
  "CMakeFiles/nsrel_report.dir/table.cpp.o"
  "CMakeFiles/nsrel_report.dir/table.cpp.o.d"
  "libnsrel_report.a"
  "libnsrel_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsrel_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
