file(REMOVE_RECURSE
  "CMakeFiles/nsrel_combinat.dir/critical_sets.cpp.o"
  "CMakeFiles/nsrel_combinat.dir/critical_sets.cpp.o.d"
  "libnsrel_combinat.a"
  "libnsrel_combinat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsrel_combinat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
