
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/combinat/critical_sets.cpp" "src/combinat/CMakeFiles/nsrel_combinat.dir/critical_sets.cpp.o" "gcc" "src/combinat/CMakeFiles/nsrel_combinat.dir/critical_sets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nsrel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
