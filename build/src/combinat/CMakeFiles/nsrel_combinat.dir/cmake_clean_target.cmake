file(REMOVE_RECURSE
  "libnsrel_combinat.a"
)
