# Empty dependencies file for nsrel_combinat.
# This may be replaced when dependencies are built.
