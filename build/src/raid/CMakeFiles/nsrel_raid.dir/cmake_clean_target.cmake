file(REMOVE_RECURSE
  "libnsrel_raid.a"
)
