# Empty dependencies file for nsrel_raid.
# This may be replaced when dependencies are built.
