file(REMOVE_RECURSE
  "CMakeFiles/nsrel_raid.dir/array_model.cpp.o"
  "CMakeFiles/nsrel_raid.dir/array_model.cpp.o.d"
  "libnsrel_raid.a"
  "libnsrel_raid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsrel_raid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
