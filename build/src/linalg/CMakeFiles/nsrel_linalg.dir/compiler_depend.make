# Empty compiler generated dependencies file for nsrel_linalg.
# This may be replaced when dependencies are built.
