file(REMOVE_RECURSE
  "libnsrel_linalg.a"
)
