file(REMOVE_RECURSE
  "CMakeFiles/nsrel_linalg.dir/lu.cpp.o"
  "CMakeFiles/nsrel_linalg.dir/lu.cpp.o.d"
  "CMakeFiles/nsrel_linalg.dir/matrix.cpp.o"
  "CMakeFiles/nsrel_linalg.dir/matrix.cpp.o.d"
  "libnsrel_linalg.a"
  "libnsrel_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsrel_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
