file(REMOVE_RECURSE
  "libnsrel_models.a"
)
