
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/availability.cpp" "src/models/CMakeFiles/nsrel_models.dir/availability.cpp.o" "gcc" "src/models/CMakeFiles/nsrel_models.dir/availability.cpp.o.d"
  "/root/repo/src/models/closed_forms.cpp" "src/models/CMakeFiles/nsrel_models.dir/closed_forms.cpp.o" "gcc" "src/models/CMakeFiles/nsrel_models.dir/closed_forms.cpp.o.d"
  "/root/repo/src/models/internal_raid.cpp" "src/models/CMakeFiles/nsrel_models.dir/internal_raid.cpp.o" "gcc" "src/models/CMakeFiles/nsrel_models.dir/internal_raid.cpp.o.d"
  "/root/repo/src/models/no_internal_raid.cpp" "src/models/CMakeFiles/nsrel_models.dir/no_internal_raid.cpp.o" "gcc" "src/models/CMakeFiles/nsrel_models.dir/no_internal_raid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ctmc/CMakeFiles/nsrel_ctmc.dir/DependInfo.cmake"
  "/root/repo/build/src/combinat/CMakeFiles/nsrel_combinat.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/nsrel_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nsrel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
