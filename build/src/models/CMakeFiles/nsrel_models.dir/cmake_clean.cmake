file(REMOVE_RECURSE
  "CMakeFiles/nsrel_models.dir/availability.cpp.o"
  "CMakeFiles/nsrel_models.dir/availability.cpp.o.d"
  "CMakeFiles/nsrel_models.dir/closed_forms.cpp.o"
  "CMakeFiles/nsrel_models.dir/closed_forms.cpp.o.d"
  "CMakeFiles/nsrel_models.dir/internal_raid.cpp.o"
  "CMakeFiles/nsrel_models.dir/internal_raid.cpp.o.d"
  "CMakeFiles/nsrel_models.dir/no_internal_raid.cpp.o"
  "CMakeFiles/nsrel_models.dir/no_internal_raid.cpp.o.d"
  "libnsrel_models.a"
  "libnsrel_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsrel_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
