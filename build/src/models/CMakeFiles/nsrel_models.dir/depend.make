# Empty dependencies file for nsrel_models.
# This may be replaced when dependencies are built.
