# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("linalg")
subdirs("combinat")
subdirs("ctmc")
subdirs("rebuild")
subdirs("raid")
subdirs("models")
subdirs("core")
subdirs("erasure")
subdirs("brick")
subdirs("workload")
subdirs("placement")
subdirs("sim")
subdirs("report")
subdirs("scenario")
subdirs("cli")
