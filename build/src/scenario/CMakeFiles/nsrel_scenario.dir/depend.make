# Empty dependencies file for nsrel_scenario.
# This may be replaced when dependencies are built.
