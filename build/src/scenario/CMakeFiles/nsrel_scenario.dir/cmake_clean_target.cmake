file(REMOVE_RECURSE
  "libnsrel_scenario.a"
)
