file(REMOVE_RECURSE
  "CMakeFiles/nsrel_scenario.dir/ini.cpp.o"
  "CMakeFiles/nsrel_scenario.dir/ini.cpp.o.d"
  "CMakeFiles/nsrel_scenario.dir/scenario.cpp.o"
  "CMakeFiles/nsrel_scenario.dir/scenario.cpp.o.d"
  "libnsrel_scenario.a"
  "libnsrel_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsrel_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
