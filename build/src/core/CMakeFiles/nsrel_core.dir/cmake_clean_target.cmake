file(REMOVE_RECURSE
  "libnsrel_core.a"
)
