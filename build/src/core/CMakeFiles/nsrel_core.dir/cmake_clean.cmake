file(REMOVE_RECURSE
  "CMakeFiles/nsrel_core.dir/analyzer.cpp.o"
  "CMakeFiles/nsrel_core.dir/analyzer.cpp.o.d"
  "CMakeFiles/nsrel_core.dir/configuration.cpp.o"
  "CMakeFiles/nsrel_core.dir/configuration.cpp.o.d"
  "CMakeFiles/nsrel_core.dir/scrubbing.cpp.o"
  "CMakeFiles/nsrel_core.dir/scrubbing.cpp.o.d"
  "CMakeFiles/nsrel_core.dir/system_config.cpp.o"
  "CMakeFiles/nsrel_core.dir/system_config.cpp.o.d"
  "libnsrel_core.a"
  "libnsrel_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsrel_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
