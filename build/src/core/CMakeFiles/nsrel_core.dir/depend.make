# Empty dependencies file for nsrel_core.
# This may be replaced when dependencies are built.
