# Empty dependencies file for nsrel_workload.
# This may be replaced when dependencies are built.
