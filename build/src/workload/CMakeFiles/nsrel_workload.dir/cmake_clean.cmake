file(REMOVE_RECURSE
  "CMakeFiles/nsrel_workload.dir/workload.cpp.o"
  "CMakeFiles/nsrel_workload.dir/workload.cpp.o.d"
  "libnsrel_workload.a"
  "libnsrel_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsrel_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
