file(REMOVE_RECURSE
  "libnsrel_workload.a"
)
