file(REMOVE_RECURSE
  "libnsrel_cli.a"
)
