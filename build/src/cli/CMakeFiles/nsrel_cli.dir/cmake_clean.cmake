file(REMOVE_RECURSE
  "CMakeFiles/nsrel_cli.dir/args.cpp.o"
  "CMakeFiles/nsrel_cli.dir/args.cpp.o.d"
  "CMakeFiles/nsrel_cli.dir/commands.cpp.o"
  "CMakeFiles/nsrel_cli.dir/commands.cpp.o.d"
  "libnsrel_cli.a"
  "libnsrel_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsrel_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
