# Empty dependencies file for nsrel_cli.
# This may be replaced when dependencies are built.
