# Empty dependencies file for erasure_demo.
# This may be replaced when dependencies are built.
