file(REMOVE_RECURSE
  "CMakeFiles/erasure_demo.dir/erasure_demo.cpp.o"
  "CMakeFiles/erasure_demo.dir/erasure_demo.cpp.o.d"
  "erasure_demo"
  "erasure_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erasure_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
