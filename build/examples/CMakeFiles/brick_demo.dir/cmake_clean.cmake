file(REMOVE_RECURSE
  "CMakeFiles/brick_demo.dir/brick_demo.cpp.o"
  "CMakeFiles/brick_demo.dir/brick_demo.cpp.o.d"
  "brick_demo"
  "brick_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brick_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
