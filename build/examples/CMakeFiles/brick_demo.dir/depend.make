# Empty dependencies file for brick_demo.
# This may be replaced when dependencies are built.
