# Empty dependencies file for sim_vs_model.
# This may be replaced when dependencies are built.
