file(REMOVE_RECURSE
  "CMakeFiles/sim_vs_model.dir/sim_vs_model.cpp.o"
  "CMakeFiles/sim_vs_model.dir/sim_vs_model.cpp.o.d"
  "sim_vs_model"
  "sim_vs_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_vs_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
