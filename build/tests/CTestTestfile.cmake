# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_combinat[1]_include.cmake")
include("/root/repo/build/tests/test_ctmc[1]_include.cmake")
include("/root/repo/build/tests/test_ctmc_properties[1]_include.cmake")
include("/root/repo/build/tests/test_rebuild[1]_include.cmake")
include("/root/repo/build/tests/test_raid[1]_include.cmake")
include("/root/repo/build/tests/test_models_internal_raid[1]_include.cmake")
include("/root/repo/build/tests/test_models_no_internal_raid[1]_include.cmake")
include("/root/repo/build/tests/test_closed_forms[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_erasure[1]_include.cmake")
include("/root/repo/build/tests/test_evenodd[1]_include.cmake")
include("/root/repo/build/tests/test_rdp[1]_include.cmake")
include("/root/repo/build/tests/test_brick[1]_include.cmake")
include("/root/repo/build/tests/test_brick_soak[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_placement[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_weibull[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_scenario[1]_include.cmake")
include("/root/repo/build/tests/test_sensitivity[1]_include.cmake")
include("/root/repo/build/tests/test_availability[1]_include.cmake")
include("/root/repo/build/tests/test_scrubbing[1]_include.cmake")
include("/root/repo/build/tests/test_paper_claims[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
