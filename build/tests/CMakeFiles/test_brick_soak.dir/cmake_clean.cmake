file(REMOVE_RECURSE
  "CMakeFiles/test_brick_soak.dir/test_brick_soak.cpp.o"
  "CMakeFiles/test_brick_soak.dir/test_brick_soak.cpp.o.d"
  "test_brick_soak"
  "test_brick_soak.pdb"
  "test_brick_soak[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_brick_soak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
