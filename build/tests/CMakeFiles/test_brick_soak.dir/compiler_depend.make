# Empty compiler generated dependencies file for test_brick_soak.
# This may be replaced when dependencies are built.
