file(REMOVE_RECURSE
  "CMakeFiles/test_rebuild.dir/test_rebuild.cpp.o"
  "CMakeFiles/test_rebuild.dir/test_rebuild.cpp.o.d"
  "test_rebuild"
  "test_rebuild.pdb"
  "test_rebuild[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rebuild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
