# Empty compiler generated dependencies file for test_rebuild.
# This may be replaced when dependencies are built.
