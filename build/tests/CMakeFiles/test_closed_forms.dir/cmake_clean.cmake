file(REMOVE_RECURSE
  "CMakeFiles/test_closed_forms.dir/test_closed_forms.cpp.o"
  "CMakeFiles/test_closed_forms.dir/test_closed_forms.cpp.o.d"
  "test_closed_forms"
  "test_closed_forms.pdb"
  "test_closed_forms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_closed_forms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
