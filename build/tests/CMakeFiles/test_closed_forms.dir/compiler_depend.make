# Empty compiler generated dependencies file for test_closed_forms.
# This may be replaced when dependencies are built.
