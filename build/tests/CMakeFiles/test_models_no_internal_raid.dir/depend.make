# Empty dependencies file for test_models_no_internal_raid.
# This may be replaced when dependencies are built.
