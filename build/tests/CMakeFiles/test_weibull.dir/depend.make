# Empty dependencies file for test_weibull.
# This may be replaced when dependencies are built.
