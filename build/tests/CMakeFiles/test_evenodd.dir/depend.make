# Empty dependencies file for test_evenodd.
# This may be replaced when dependencies are built.
