file(REMOVE_RECURSE
  "CMakeFiles/test_evenodd.dir/test_evenodd.cpp.o"
  "CMakeFiles/test_evenodd.dir/test_evenodd.cpp.o.d"
  "test_evenodd"
  "test_evenodd.pdb"
  "test_evenodd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_evenodd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
