# Empty compiler generated dependencies file for test_scrubbing.
# This may be replaced when dependencies are built.
