file(REMOVE_RECURSE
  "CMakeFiles/test_scrubbing.dir/test_scrubbing.cpp.o"
  "CMakeFiles/test_scrubbing.dir/test_scrubbing.cpp.o.d"
  "test_scrubbing"
  "test_scrubbing.pdb"
  "test_scrubbing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scrubbing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
