file(REMOVE_RECURSE
  "CMakeFiles/test_ctmc_properties.dir/test_ctmc_properties.cpp.o"
  "CMakeFiles/test_ctmc_properties.dir/test_ctmc_properties.cpp.o.d"
  "test_ctmc_properties"
  "test_ctmc_properties.pdb"
  "test_ctmc_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ctmc_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
