file(REMOVE_RECURSE
  "CMakeFiles/test_models_internal_raid.dir/test_models_internal_raid.cpp.o"
  "CMakeFiles/test_models_internal_raid.dir/test_models_internal_raid.cpp.o.d"
  "test_models_internal_raid"
  "test_models_internal_raid.pdb"
  "test_models_internal_raid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_models_internal_raid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
