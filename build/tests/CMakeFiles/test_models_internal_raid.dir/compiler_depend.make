# Empty compiler generated dependencies file for test_models_internal_raid.
# This may be replaced when dependencies are built.
