# Empty dependencies file for test_combinat.
# This may be replaced when dependencies are built.
