file(REMOVE_RECURSE
  "CMakeFiles/test_combinat.dir/test_combinat.cpp.o"
  "CMakeFiles/test_combinat.dir/test_combinat.cpp.o.d"
  "test_combinat"
  "test_combinat.pdb"
  "test_combinat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_combinat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
