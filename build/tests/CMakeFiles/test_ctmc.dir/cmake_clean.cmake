file(REMOVE_RECURSE
  "CMakeFiles/test_ctmc.dir/test_ctmc.cpp.o"
  "CMakeFiles/test_ctmc.dir/test_ctmc.cpp.o.d"
  "test_ctmc"
  "test_ctmc.pdb"
  "test_ctmc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ctmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
