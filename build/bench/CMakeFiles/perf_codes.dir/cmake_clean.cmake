file(REMOVE_RECURSE
  "CMakeFiles/perf_codes.dir/perf_codes.cpp.o"
  "CMakeFiles/perf_codes.dir/perf_codes.cpp.o.d"
  "perf_codes"
  "perf_codes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_codes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
