# Empty compiler generated dependencies file for perf_codes.
# This may be replaced when dependencies are built.
