file(REMOVE_RECURSE
  "CMakeFiles/ablation_rebuild_model.dir/ablation_rebuild_model.cpp.o"
  "CMakeFiles/ablation_rebuild_model.dir/ablation_rebuild_model.cpp.o.d"
  "ablation_rebuild_model"
  "ablation_rebuild_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rebuild_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
