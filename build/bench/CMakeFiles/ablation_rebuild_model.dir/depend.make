# Empty dependencies file for ablation_rebuild_model.
# This may be replaced when dependencies are built.
