file(REMOVE_RECURSE
  "CMakeFiles/perf_solvers.dir/perf_solvers.cpp.o"
  "CMakeFiles/perf_solvers.dir/perf_solvers.cpp.o.d"
  "perf_solvers"
  "perf_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
