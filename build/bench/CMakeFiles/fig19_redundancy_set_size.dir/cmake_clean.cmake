file(REMOVE_RECURSE
  "CMakeFiles/fig19_redundancy_set_size.dir/fig19_redundancy_set_size.cpp.o"
  "CMakeFiles/fig19_redundancy_set_size.dir/fig19_redundancy_set_size.cpp.o.d"
  "fig19_redundancy_set_size"
  "fig19_redundancy_set_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_redundancy_set_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
