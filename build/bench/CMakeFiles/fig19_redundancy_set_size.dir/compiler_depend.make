# Empty compiler generated dependencies file for fig19_redundancy_set_size.
# This may be replaced when dependencies are built.
