# Empty compiler generated dependencies file for ablation_elasticities.
# This may be replaced when dependencies are built.
