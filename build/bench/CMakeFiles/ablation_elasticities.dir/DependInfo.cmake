
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_elasticities.cpp" "bench/CMakeFiles/ablation_elasticities.dir/ablation_elasticities.cpp.o" "gcc" "bench/CMakeFiles/ablation_elasticities.dir/ablation_elasticities.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/nsrel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cli/CMakeFiles/nsrel_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/scenario/CMakeFiles/nsrel_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nsrel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rebuild/CMakeFiles/nsrel_rebuild.dir/DependInfo.cmake"
  "/root/repo/build/src/raid/CMakeFiles/nsrel_raid.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/nsrel_models.dir/DependInfo.cmake"
  "/root/repo/build/src/combinat/CMakeFiles/nsrel_combinat.dir/DependInfo.cmake"
  "/root/repo/build/src/ctmc/CMakeFiles/nsrel_ctmc.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/nsrel_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/nsrel_report.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/nsrel_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/brick/CMakeFiles/nsrel_brick.dir/DependInfo.cmake"
  "/root/repo/build/src/erasure/CMakeFiles/nsrel_erasure.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/nsrel_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nsrel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
