file(REMOVE_RECURSE
  "CMakeFiles/ablation_elasticities.dir/ablation_elasticities.cpp.o"
  "CMakeFiles/ablation_elasticities.dir/ablation_elasticities.cpp.o.d"
  "ablation_elasticities"
  "ablation_elasticities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_elasticities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
