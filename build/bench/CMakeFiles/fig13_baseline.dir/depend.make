# Empty dependencies file for fig13_baseline.
# This may be replaced when dependencies are built.
