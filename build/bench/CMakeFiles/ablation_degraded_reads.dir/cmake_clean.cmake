file(REMOVE_RECURSE
  "CMakeFiles/ablation_degraded_reads.dir/ablation_degraded_reads.cpp.o"
  "CMakeFiles/ablation_degraded_reads.dir/ablation_degraded_reads.cpp.o.d"
  "ablation_degraded_reads"
  "ablation_degraded_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_degraded_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
