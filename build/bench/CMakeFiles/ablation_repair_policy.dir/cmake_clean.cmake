file(REMOVE_RECURSE
  "CMakeFiles/ablation_repair_policy.dir/ablation_repair_policy.cpp.o"
  "CMakeFiles/ablation_repair_policy.dir/ablation_repair_policy.cpp.o.d"
  "ablation_repair_policy"
  "ablation_repair_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_repair_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
