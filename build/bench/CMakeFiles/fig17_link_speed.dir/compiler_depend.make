# Empty compiler generated dependencies file for fig17_link_speed.
# This may be replaced when dependencies are built.
