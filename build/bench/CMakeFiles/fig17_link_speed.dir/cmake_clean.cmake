file(REMOVE_RECURSE
  "CMakeFiles/fig17_link_speed.dir/fig17_link_speed.cpp.o"
  "CMakeFiles/fig17_link_speed.dir/fig17_link_speed.cpp.o.d"
  "fig17_link_speed"
  "fig17_link_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_link_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
