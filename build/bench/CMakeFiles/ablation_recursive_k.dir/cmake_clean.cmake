file(REMOVE_RECURSE
  "CMakeFiles/ablation_recursive_k.dir/ablation_recursive_k.cpp.o"
  "CMakeFiles/ablation_recursive_k.dir/ablation_recursive_k.cpp.o.d"
  "ablation_recursive_k"
  "ablation_recursive_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_recursive_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
