# Empty dependencies file for ablation_recursive_k.
# This may be replaced when dependencies are built.
