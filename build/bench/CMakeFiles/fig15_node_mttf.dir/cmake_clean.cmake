file(REMOVE_RECURSE
  "CMakeFiles/fig15_node_mttf.dir/fig15_node_mttf.cpp.o"
  "CMakeFiles/fig15_node_mttf.dir/fig15_node_mttf.cpp.o.d"
  "fig15_node_mttf"
  "fig15_node_mttf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_node_mttf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
