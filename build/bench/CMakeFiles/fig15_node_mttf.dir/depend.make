# Empty dependencies file for fig15_node_mttf.
# This may be replaced when dependencies are built.
