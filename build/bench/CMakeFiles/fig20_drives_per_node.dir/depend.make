# Empty dependencies file for fig20_drives_per_node.
# This may be replaced when dependencies are built.
