file(REMOVE_RECURSE
  "CMakeFiles/fig20_drives_per_node.dir/fig20_drives_per_node.cpp.o"
  "CMakeFiles/fig20_drives_per_node.dir/fig20_drives_per_node.cpp.o.d"
  "fig20_drives_per_node"
  "fig20_drives_per_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_drives_per_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
