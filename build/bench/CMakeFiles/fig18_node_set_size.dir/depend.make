# Empty dependencies file for fig18_node_set_size.
# This may be replaced when dependencies are built.
