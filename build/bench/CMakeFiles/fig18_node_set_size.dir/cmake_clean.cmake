file(REMOVE_RECURSE
  "CMakeFiles/fig18_node_set_size.dir/fig18_node_set_size.cpp.o"
  "CMakeFiles/fig18_node_set_size.dir/fig18_node_set_size.cpp.o.d"
  "fig18_node_set_size"
  "fig18_node_set_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_node_set_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
