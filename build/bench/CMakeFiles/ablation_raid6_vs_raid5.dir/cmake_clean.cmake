file(REMOVE_RECURSE
  "CMakeFiles/ablation_raid6_vs_raid5.dir/ablation_raid6_vs_raid5.cpp.o"
  "CMakeFiles/ablation_raid6_vs_raid5.dir/ablation_raid6_vs_raid5.cpp.o.d"
  "ablation_raid6_vs_raid5"
  "ablation_raid6_vs_raid5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_raid6_vs_raid5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
