# Empty dependencies file for ablation_raid6_vs_raid5.
# This may be replaced when dependencies are built.
