file(REMOVE_RECURSE
  "CMakeFiles/ablation_weibull.dir/ablation_weibull.cpp.o"
  "CMakeFiles/ablation_weibull.dir/ablation_weibull.cpp.o.d"
  "ablation_weibull"
  "ablation_weibull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_weibull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
