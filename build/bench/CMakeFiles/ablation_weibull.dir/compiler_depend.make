# Empty compiler generated dependencies file for ablation_weibull.
# This may be replaced when dependencies are built.
