file(REMOVE_RECURSE
  "CMakeFiles/fig16_rebuild_block.dir/fig16_rebuild_block.cpp.o"
  "CMakeFiles/fig16_rebuild_block.dir/fig16_rebuild_block.cpp.o.d"
  "fig16_rebuild_block"
  "fig16_rebuild_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_rebuild_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
