# Empty dependencies file for fig16_rebuild_block.
# This may be replaced when dependencies are built.
