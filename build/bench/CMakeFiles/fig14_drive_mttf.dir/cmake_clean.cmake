file(REMOVE_RECURSE
  "CMakeFiles/fig14_drive_mttf.dir/fig14_drive_mttf.cpp.o"
  "CMakeFiles/fig14_drive_mttf.dir/fig14_drive_mttf.cpp.o.d"
  "fig14_drive_mttf"
  "fig14_drive_mttf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_drive_mttf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
