# Empty dependencies file for fig14_drive_mttf.
# This may be replaced when dependencies are built.
