# Empty compiler generated dependencies file for nsrel_tool.
# This may be replaced when dependencies are built.
