file(REMOVE_RECURSE
  "CMakeFiles/nsrel_tool.dir/nsrel.cpp.o"
  "CMakeFiles/nsrel_tool.dir/nsrel.cpp.o.d"
  "nsrel"
  "nsrel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsrel_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
