#!/usr/bin/env bash
# Sanitizer gate: builds the tree and runs ctest under ThreadSanitizer and
# UndefinedBehaviorSanitizer (the thread pool and parallel Monte-Carlo
# engine must stay clean under both).
#
# usage: tools/check.sh [-j N] [-R ctest-regex] [thread|undefined|address ...]
#
#   -j N           parallel build/test jobs        (default: nproc)
#   -R regex       forward a test filter to ctest  (default: all tests)
#   sanitizers...  which builds to run             (default: thread undefined)
#
# Each sanitizer gets its own build tree (build-tsan/, build-ubsan/,
# build-asan/) so the default build/ stays untouched.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc)"
filter=()
sanitizers=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    -j) jobs="$2"; shift 2 ;;
    -R) filter=(-R "$2"); shift 2 ;;
    thread|undefined|address) sanitizers+=("$1"); shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done
if [[ ${#sanitizers[@]} -eq 0 ]]; then
  sanitizers=(thread undefined)
fi

for sanitizer in "${sanitizers[@]}"; do
  case "$sanitizer" in
    thread)    dir=build-tsan ;;
    undefined) dir=build-ubsan ;;
    address)   dir=build-asan ;;
  esac
  echo "== ${sanitizer} sanitizer (${dir}) =="
  cmake -B "$dir" -S . -DNSREL_SANITIZE="$sanitizer" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs" "${filter[@]}"
done
echo "== all sanitizer runs passed =="
