#!/usr/bin/env bash
# Correctness gate: sanitizer builds + static analysis, one command each.
#
# usage: tools/check.sh [-j N] [-R ctest-regex]
#                       [thread|undefined|address|lint|threadsafety ...]
#
#   -j N           parallel build/test jobs        (default: nproc)
#   -R regex       forward a test filter to ctest  (default: all tests)
#   targets...     which gates to run              (default: thread undefined)
#
# Targets: thread/undefined/address build the tree and run ctest under
# the named sanitizer (address enables LeakSanitizer too); `lint` runs
# the static-analysis gate instead — tools/tidy.sh (clang-tidy wall,
# skipped with a notice when clang-tidy isn't installed) followed by
# tools/nsrel-lint (domain invariants; see DESIGN.md §10);
# `threadsafety` runs tools/thread_safety.sh (Clang -Wthread-safety
# -Werror over the whole tree plus the negative-compile proof; skipped
# with a notice when clang++ isn't installed — see DESIGN.md §15).
#
# Each sanitizer gets its own build tree (build-tsan/, build-ubsan/,
# build-asan/) so the default build/ stays untouched.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc)"
filter=()
targets=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    -j) jobs="$2"; shift 2 ;;
    -R) filter=(-R "$2"); shift 2 ;;
    thread|undefined|address|lint|threadsafety) targets+=("$1"); shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done
if [[ ${#targets[@]} -eq 0 ]]; then
  targets=(thread undefined)
fi

for target in "${targets[@]}"; do
  if [[ "$target" == lint ]]; then
    echo "== static analysis (tidy.sh + nsrel-lint) =="
    tools/tidy.sh -j "$jobs"
    tools/nsrel-lint -j "$jobs"
    continue
  fi
  if [[ "$target" == threadsafety ]]; then
    echo "== thread-safety analysis (thread_safety.sh) =="
    tools/thread_safety.sh -j "$jobs"
    continue
  fi
  case "$target" in
    thread)    dir=build-tsan ;;
    undefined) dir=build-ubsan ;;
    address)   dir=build-asan ;;
  esac
  echo "== ${target} sanitizer (${dir}) =="
  cmake -B "$dir" -S . -DNSREL_SANITIZE="$target" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "$dir" -j "$jobs"
  if [[ "$target" == address ]]; then
    # Leak detection on explicitly: the thread pool, obs registry, and
    # trace recorder all own long-lived allocations that must balance.
    ASAN_OPTIONS="detect_leaks=1:${ASAN_OPTIONS:-}" \
      ctest --test-dir "$dir" --output-on-failure -j "$jobs" "${filter[@]}"
  else
    ctest --test-dir "$dir" --output-on-failure -j "$jobs" "${filter[@]}"
  fi
done
echo "== all requested gates passed =="
