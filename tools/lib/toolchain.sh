# Shared toolchain discovery for the gate scripts (tidy.sh, check.sh,
# thread_safety.sh). Source this file; never execute it.
#
# Contract: the find_* functions echo a command name (empty when the
# tool is absent) and never fail the caller — each gate decides whether
# absence is a visible skip (dev boxes: the container bakes in only the
# gcc toolchain) or a hard error (CI sets *_REQUIRE=1). Environment
# overrides always win: CLANG_TIDY for the tidy wall, CC/CXX for
# compilers — so a non-default install never needs PATH surgery.

# Echoes the clang-tidy to use ($CLANG_TIDY, else newest on PATH).
nsrel_find_clang_tidy() {
  if [[ -n "${CLANG_TIDY:-}" ]]; then
    echo "$CLANG_TIDY"
    return 0
  fi
  local candidate
  for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                   clang-tidy-16 clang-tidy-15; do
    if command -v "$candidate" > /dev/null 2>&1; then
      echo "$candidate"
      return 0
    fi
  done
}

# Echoes a Clang C++ compiler: $CXX when it is a clang, else the newest
# clang++ on PATH. (A gcc $CXX is ignored rather than an error — the
# thread-safety gate specifically needs Clang's analysis.)
nsrel_find_clangxx() {
  if [[ -n "${CXX:-}" ]] && "$CXX" --version 2> /dev/null | grep -qi clang; then
    echo "$CXX"
    return 0
  fi
  local candidate
  for candidate in clang++ clang++-19 clang++-18 clang++-17 clang++-16 \
                   clang++-15; do
    if command -v "$candidate" > /dev/null 2>&1; then
      echo "$candidate"
      return 0
    fi
  done
}

# nsrel_require_or_skip <found> <tool> <require-var-name>
# Empty <found> → exit 0 with a visible skip notice, or exit 1 when the
# named REQUIRE variable is set to 1 (CI). Non-empty → no-op.
nsrel_require_or_skip() {
  local found="$1" tool="$2" require_var="$3"
  if [[ -n "$found" ]]; then
    return 0
  fi
  if [[ "${!require_var:-0}" == "1" ]]; then
    echo "${0##*/}: $tool not found and $require_var=1" >&2
    exit 1
  fi
  echo "${0##*/}: $tool not installed; skipping (set $require_var=1 to fail)"
  exit 0
}
