#!/usr/bin/env bash
# Clang Thread Safety Analysis gate: the compile-time locking contract.
#
# usage: tools/thread_safety.sh [-j N] [-B build-dir]
#
#   -j N    parallel build jobs            (default: nproc)
#   -B dir  clang build tree               (default: build-tsafety/)
#
# Two halves, both required:
#
#  1. Negative-compile proof: tests/thread_safety_fixtures/ must behave
#     asymmetrically — ok_locked.cpp compiles, bad_unlocked.cpp (an
#     unlocked access to a NSREL_GUARDED_BY field) is rejected. This
#     runs first because it is the gate's own self-test: a toolchain
#     that passes everything proves nothing.
#  2. Whole-tree build with Clang and -Wthread-safety
#     -Wthread-safety-beta -Werror (the flags come from CMakeLists.txt,
#     which adds them for any Clang). Every mutex-guarded field in
#     src/ is annotated (DESIGN.md §15), so any access outside its lock
#     fails this build.
#
# The analysis is Clang-only; on a box without clang++ this prints a
# notice and exits 0 (CI sets THREAD_SAFETY_REQUIRE=1 to make absence
# an error), mirroring the tidy.sh contract.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc)"
build_dir=build-tsafety
while [[ $# -gt 0 ]]; do
  case "$1" in
    -j) jobs="$2"; shift 2 ;;
    -B) build_dir="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

# shellcheck source=tools/lib/toolchain.sh
source tools/lib/toolchain.sh
clangxx="$(nsrel_find_clangxx)"
nsrel_require_or_skip "$clangxx" clang++ THREAD_SAFETY_REQUIRE

flags=(-std=c++20 -Isrc -Wthread-safety -Wthread-safety-beta -Werror)

echo "thread_safety.sh: negative-compile proof ($clangxx)"
if ! "$clangxx" "${flags[@]}" -fsyntax-only \
     tests/thread_safety_fixtures/ok_locked.cpp; then
  echo "thread_safety.sh: ok_locked.cpp must compile but was rejected" >&2
  exit 1
fi
if "$clangxx" "${flags[@]}" -fsyntax-only \
     tests/thread_safety_fixtures/bad_unlocked.cpp 2> /dev/null; then
  echo "thread_safety.sh: bad_unlocked.cpp compiled — the unlocked" \
       "GUARDED_BY access was not rejected; the gate is broken" >&2
  exit 1
fi
echo "thread_safety.sh: gate fires (bad_unlocked rejected, ok_locked clean)"

echo "thread_safety.sh: full-tree clang build ($build_dir)"
cmake -B "$build_dir" -S . \
  -DCMAKE_CXX_COMPILER="$clangxx" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
cmake --build "$build_dir" -j "$jobs"
echo "thread_safety.sh: tree is clean under -Wthread-safety -Werror"
