#!/usr/bin/env python3
"""Compare two nsrel-bench-v1 documents: baseline vs current run.

Counters are deterministic facts about the work performed (solve-cache
hits/misses, sweep cell counts, problem sizes), so any counter change is
a HARD FAILURE — the benchmark did different work than the baseline
recorded, which is either an intentional change (re-generate the
baseline) or a regression in the caching/fan-out machinery.

Timings are machine-dependent, so they only WARN: a benchmark slower
than baseline by more than --warn-factor prints a warning but does not
affect the exit code. CI uploads both documents as artifacts so a human
can look at the trajectory.

Exit codes: 0 clean (warnings allowed), 1 counter mismatch or
missing/extra benchmark, 2 usage or unreadable/invalid input.

Usage: bench_diff.py BASELINE.json CURRENT.json [--warn-factor 1.5]
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: cannot read '{path}': {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "nsrel-bench-v1":
        print(f"bench_diff: '{path}' is not an nsrel-bench-v1 document",
              file=sys.stderr)
        sys.exit(2)
    return doc


def by_name(doc):
    out = {}
    for entry in doc.get("benchmarks", []):
        out[entry["name"]] = entry
    return out


# The whole-binary "total" entry accumulates cache traffic across every
# bench in the binary, including benches whose iteration counts are
# chosen dynamically by google-benchmark — so its counters are NOT
# run-to-run deterministic and its wall clock is the binary's, not a
# benchmark's. Skip it for counter comparison.
NONDETERMINISTIC = {"total"}

# Counters that scale with google-benchmark's dynamically chosen
# iteration count (or with hardware concurrency) rather than with the
# benchmark's definition. Everything else must match exactly.
ITERATION_SCALED = {"cache_hits", "cache_misses"}

# Rate counters are derived from wall clock (bytes / elapsed time), so
# they are machine-dependent like timings: excluded from the exact
# comparison (the timing WARN path covers the same regression).
TIMING_DERIVED = {"bytes_per_second", "items_per_second"}


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--warn-factor", type=float, default=1.5,
                        help="warn when current real time exceeds "
                             "baseline by this factor (default 1.5)")
    args = parser.parse_args()

    base_doc = load(args.baseline)
    cur_doc = load(args.current)
    if base_doc.get("binary") != cur_doc.get("binary"):
        print(f"bench_diff: binary mismatch: baseline is "
              f"'{base_doc.get('binary')}', current is "
              f"'{cur_doc.get('binary')}'", file=sys.stderr)
        sys.exit(1)

    base = by_name(base_doc)
    cur = by_name(cur_doc)
    failures = 0
    warnings = 0

    missing = sorted(set(base) - set(cur))
    extra = sorted(set(cur) - set(base))
    for name in missing:
        print(f"FAIL: benchmark '{name}' in baseline but not in current run")
        failures += 1
    for name in extra:
        print(f"FAIL: benchmark '{name}' in current run but not in baseline "
              f"(re-generate the baseline)")
        failures += 1

    for name in sorted(set(base) & set(cur)):
        if name in NONDETERMINISTIC:
            continue
        b, c = base[name], cur[name]
        b_counters = dict(b.get("counters", {}))
        c_counters = dict(c.get("counters", {}))
        keys = set(b_counters) | set(c_counters)
        for key in sorted(keys - ITERATION_SCALED - TIMING_DERIVED):
            bv = b_counters.get(key)
            cv = c_counters.get(key)
            if bv != cv:
                print(f"FAIL: {name}: counter '{key}' changed: "
                      f"baseline {bv}, current {cv}")
                failures += 1
        # Iteration-scaled counters must still agree per iteration.
        b_iters = b.get("iterations", 1) or 1
        c_iters = c.get("iterations", 1) or 1
        for key in sorted(keys & ITERATION_SCALED):
            bv = b_counters.get(key, 0.0) / b_iters
            cv = c_counters.get(key, 0.0) / c_iters
            if abs(bv - cv) > 1e-9 * max(abs(bv), abs(cv), 1.0):
                print(f"FAIL: {name}: per-iteration counter '{key}' "
                      f"changed: baseline {bv:.6g}, current {cv:.6g}")
                failures += 1

        b_ns = b.get("real_ns", 0.0)
        c_ns = c.get("real_ns", 0.0)
        if b_ns > 0 and c_ns > args.warn_factor * b_ns:
            print(f"WARN: {name}: real time {c_ns / b_ns:.2f}x baseline "
                  f"({b_ns:.0f} ns -> {c_ns:.0f} ns)")
            warnings += 1

    total = len(set(base) & set(cur))
    print(f"bench_diff: {total} benchmarks compared, "
          f"{failures} failures, {warnings} timing warnings")
    sys.exit(1 if failures else 0)


if __name__ == "__main__":
    main()
