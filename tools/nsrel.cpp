// `nsrel`: command-line front end to the reliability models. See
// `nsrel help` or src/cli/commands.hpp for the command set.
#include <iostream>

#include "cli/commands.hpp"

int main(int argc, char** argv) {
  return nsrel::cli::dispatch(argc, argv, std::cout, std::cerr);
}
