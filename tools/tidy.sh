#!/usr/bin/env bash
# clang-tidy wall for the whole tree (config: .clang-tidy at the repo
# root; rule rationale and the NOLINT policy: DESIGN.md §10).
#
# usage: tools/tidy.sh [-j N] [-B build-dir] [--update-baseline] [paths...]
#
#   -j N               parallel tidy jobs            (default: nproc)
#   -B dir             build tree with compile_commands.json
#                      (default: build/, configured on demand)
#   --update-baseline  rewrite tools/lint/tidy-baseline.txt from the
#                      current findings instead of failing on them
#   paths...           restrict to these sources     (default: src bench
#                      tests tools examples)
#
# Gate semantics: every finding is normalized to "<file>:<check>" and
# compared against the committed baseline (tools/lint/tidy-baseline.txt,
# empty today — the tree is clean). Any finding not in the baseline fails
# the run, so new findings can't land; shrinking the baseline is always
# welcome, growing it needs review of the regenerated file.
#
# The container used for day-to-day development may not ship clang-tidy
# (only the gcc toolchain is baked in). In that case this script prints a
# notice and exits 0 so `tools/check.sh lint` stays runnable everywhere;
# pass TIDY_REQUIRE=1 (CI does) to make a missing clang-tidy an error.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc)"
build_dir=build
update_baseline=0
paths=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    -j) jobs="$2"; shift 2 ;;
    -B) build_dir="$2"; shift 2 ;;
    --update-baseline) update_baseline=1; shift ;;
    -*) echo "unknown argument: $1" >&2; exit 2 ;;
    *) paths+=("$1"); shift ;;
  esac
done
if [[ ${#paths[@]} -eq 0 ]]; then
  paths=(src bench tests tools examples)
fi

# shellcheck source=tools/lib/toolchain.sh
source tools/lib/toolchain.sh
tidy="$(nsrel_find_clang_tidy)"
nsrel_require_or_skip "$tidy" clang-tidy TIDY_REQUIRE

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  cmake -B "$build_dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi

# Sources = every compiled TU under the requested paths, straight from
# the compile database, so generated/unbuilt files never skew the gate.
mapfile -t sources < <(python3 - "$build_dir" "${paths[@]}" <<'EOF'
import json, os, sys
build_dir, roots = sys.argv[1], sys.argv[2:]
top = os.getcwd()
seen = []
for entry in json.load(open(os.path.join(build_dir, "compile_commands.json"))):
    path = os.path.relpath(os.path.join(entry["directory"], entry["file"]), top)
    if any(path == r or path.startswith(r.rstrip("/") + "/") for r in roots):
        if path not in seen:
            seen.append(path)
print("\n".join(sorted(seen)))
EOF
)
if [[ ${#sources[@]} -eq 0 ]]; then
  echo "tidy.sh: no sources matched ${paths[*]}" >&2
  exit 2
fi

echo "tidy.sh: $tidy over ${#sources[@]} TUs (-j $jobs, db: $build_dir)"
log="$(mktemp)"
trap 'rm -f "$log"' EXIT
printf '%s\n' "${sources[@]}" \
  | xargs -P "$jobs" -n 4 "$tidy" -p "$build_dir" --quiet >> "$log" 2>&1 \
  || true

# Normalize findings to "<relative file>:<check>" lines.
findings="$(sed -n 's/^\([^ :]*\):[0-9]*:[0-9]*: \(warning\|error\): .*\[\(.*\)\]$/\1:\3/p' \
              "$log" | sed "s|^$(pwd)/||" | sort -u)"

baseline_file=tools/lint/tidy-baseline.txt
if [[ $update_baseline -eq 1 ]]; then
  { echo "# clang-tidy findings grandfathered by tools/tidy.sh --update-baseline."
    echo "# One '<file>:<check>' per line; shrink freely, grow only with review."
    [[ -n "$findings" ]] && printf '%s\n' "$findings"
  } > "$baseline_file"
  echo "tidy.sh: baseline updated ($(printf '%s' "$findings" | grep -c . || true) entries)"
  exit 0
fi

new="$(comm -23 <(printf '%s\n' "$findings" | grep -v '^$' || true) \
               <(grep -v '^#' "$baseline_file" | sort -u))"
if [[ -n "$new" ]]; then
  echo "tidy.sh: new clang-tidy findings (not in $baseline_file):" >&2
  printf '%s\n' "$new" >&2
  echo "--- full log ---" >&2
  grep -E "warning:|error:" "$log" >&2 || true
  exit 1
fi
echo "tidy.sh: clean (no findings outside baseline)"
