// Brick system demo: the storage system the paper models, actually
// running. Writes objects across a node set with Reed-Solomon redundancy,
// kills nodes and drives fail-in-place, reads through the failures,
// rebuilds into distributed spare capacity, and compares the measured
// rebuild traffic against section 5.1's flow model.
#include <cstdint>
#include <iostream>
#include <numeric>
#include <utility>
#include <vector>

#include "brick/object_store.hpp"
#include "rebuild/planner.hpp"
#include "report/table.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

int main() {
  using namespace nsrel;

  brick::StoreParams params;
  params.node_count = 16;
  params.drives_per_node = 4;
  params.drive_capacity = megabytes(4.0);
  params.redundancy_set_size = 8;
  params.fault_tolerance = 2;
  params.chunk_size = kilobytes(4.0);
  brick::ObjectStore store(params);

  std::cout << "Brick store: " << params.node_count << " nodes x "
            << params.drives_per_node << " drives, R="
            << params.redundancy_set_size << ", t=" << params.fault_tolerance
            << " (Reed-Solomon " << params.redundancy_set_size -
                                        params.fault_tolerance
            << "+" << params.fault_tolerance << ")\n";

  // 1. Write a few MB of objects.
  Xoshiro256 rng(2006);
  std::vector<std::pair<brick::ObjectId, std::vector<std::uint8_t>>> objects;
  for (int i = 0; i < 40; ++i) {
    std::vector<std::uint8_t> bytes(4000 + rng.below(60000));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
    const brick::ObjectId id = store.write(bytes);
    objects.emplace_back(id, std::move(bytes));
  }
  std::cout << "wrote " << objects.size() << " objects ("
            << human_bytes(store.user_bytes()) << " of user data)\n";

  // 2. Fail a node and a drive; reads must still succeed.
  store.fail_node(5);
  store.fail_drive(11, 2);
  std::cout << "\nfailed node 5 and drive 11.2 (fail-in-place)\n";
  bool all_ok = true;
  for (const auto& [id, bytes] : objects) all_ok &= (store.read(id) == bytes);
  std::cout << "degraded reads: " << (all_ok ? "all OK" : "CORRUPTION!")
            << "\n";

  // 3. Rebuild into distributed spare capacity.
  const brick::RebuildReport report = store.rebuild();
  std::cout << "\nrebuild: " << report.shards_rebuilt << " shards ("
            << human_bytes(report.bytes_reconstructed) << ") reconstructed\n"
            << "redundancy restored: "
            << (store.fully_redundant() ? "yes" : "NO") << "\n";

  // 4. Compare measured traffic with the section-5.1 flow model.
  const double total_sourced = std::accumulate(
      report.sourced_bytes.begin(), report.sourced_bytes.end(), 0.0,
      [](double acc, const auto& kv) { return acc + kv.second; });
  std::cout << "\nsection 5.1 check: total survivor reads / data rebuilt = "
            << fixed(total_sourced / report.bytes_reconstructed, 2)
            << " (model: R-t = "
            << params.redundancy_set_size - params.fault_tolerance << ")\n";

  report::Table table({"node", "sourced", "received"});
  for (int n = 0; n < params.node_count; ++n) {
    const auto sourced = report.sourced_bytes.find(n);
    const auto received = report.received_bytes.find(n);
    table.add_row(
        {std::to_string(n) + (n == 5 ? " (dead)" : ""),
         human_bytes(sourced == report.sourced_bytes.end() ? 0.0
                                                           : sourced->second),
         human_bytes(received == report.received_bytes.end()
                         ? 0.0
                         : received->second)});
  }
  table.print(std::cout);

  // 5. The rebuilt system tolerates fresh failures again.
  store.fail_node(0);
  store.fail_node(1);
  all_ok = true;
  for (const auto& [id, bytes] : objects) all_ok &= (store.read(id) == bytes);
  std::cout << "\nafter 2 more failures post-rebuild, reads: "
            << (all_ok ? "all OK" : "CORRUPTION!") << "\n";
  return all_ok ? 0 : 1;
}
