// Fleet planner: the manufacturer's view behind the paper's target.
// "A field population of 100 systems each with a petabyte of logical
// capacity will experience less than one data loss event in 5 years."
//
// Given a fleet size, per-system capacity, and service life, this example
// reports the expected number of data-loss events across the fleet for
// each surviving configuration, plus the probability of a loss-free life
// (Poisson model) and a survival curve from the transient solver.
//
// Usage: fleet_planner [systems] [pb_per_system] [years]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/analyzer.hpp"
#include "ctmc/transient.hpp"
#include "models/no_internal_raid.hpp"
#include "report/table.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace nsrel;

  const double systems = argc > 1 ? std::atof(argv[1]) : 100.0;
  const double pb_each = argc > 2 ? std::atof(argv[2]) : 1.0;
  const double years = argc > 3 ? std::atof(argv[3]) : 5.0;

  const core::Analyzer analyzer(core::SystemConfig::baseline());

  std::cout << "Fleet: " << fixed(systems, 0) << " systems x "
            << fixed(pb_each, 1) << " PB x " << fixed(years, 0)
            << " years\n";

  report::Table table({"configuration", "events/PB-yr", "fleet events",
                       "P(zero events)"});
  for (const auto& configuration : core::sensitivity_configurations()) {
    const auto result = analyzer.analyze(configuration);
    const double fleet_events =
        result.events_per_pb_year * systems * pb_each * years;
    // Data-loss events across many independent node sets are Poisson.
    const double p_zero = std::exp(-fleet_events);
    table.add_row({core::name(configuration), sci(result.events_per_pb_year),
                   sci(fleet_events), fixed(p_zero, 4)});
  }
  table.print(std::cout);

  // Survival curve for one node set under the strongest configuration,
  // from the transient (uniformization) solver — reliability over the
  // service life rather than a single MTTDL number.
  const core::Configuration strongest{core::InternalScheme::kNone, 3};
  const auto detail = analyzer.analyze(strongest);
  const core::SystemConfig sys = analyzer.config();
  models::NoInternalRaidParams p;
  p.node_set_size = sys.node_set_size;
  p.redundancy_set_size = sys.redundancy_set_size;
  p.fault_tolerance = 3;
  p.drives_per_node = sys.drives_per_node;
  p.node_failure = rate_of(sys.node_mttf);
  p.drive_failure = rate_of(sys.drive.mttf);
  p.node_rebuild = detail.rebuild.node_rebuild_rate;
  p.drive_rebuild = detail.rebuild.drive_rebuild_rate;
  p.capacity = sys.drive.capacity;
  p.her_per_byte = sys.drive.her_per_byte;
  const models::NoInternalRaidModel model(p);
  const auto chain = model.chain();
  const ctmc::TransientSolver transient(chain);

  std::cout << "\nSurvival of one node set, " << core::name(strongest)
            << ":\n";
  report::Table curve({"year", "P(no data loss)"});
  for (const double year : {1.0, 2.0, 5.0, 10.0, 20.0}) {
    const double survival = transient.survival(
        year * kHoursPerYear, models::NoInternalRaidModel::root_state());
    curve.add_row({fixed(year, 0), fixed(survival, 9)});
  }
  curve.print(std::cout);
  return 0;
}
