// Capacity planner: for a desired usable capacity and reliability target,
// search the configuration space (internal scheme x node fault tolerance x
// redundancy set size) for the cheapest configuration — measured in raw
// drive count — that meets the target. This is the "user-configurable
// goals" use the paper's conclusion anticipates for its closed forms.
//
// Usage: capacity_planner [usable_petabytes] [target_events_per_pb_year]
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <optional>

#include "core/analyzer.hpp"
#include "report/table.hpp"
#include "util/format.hpp"

namespace {

struct Candidate {
  nsrel::core::Configuration configuration;
  int redundancy_set_size = 0;
  double events_per_pb_year = 0.0;
  double raw_drives_per_usable_pb = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace nsrel;

  const double usable_pb = argc > 1 ? std::atof(argv[1]) : 1.0;
  const double target_events = argc > 2 ? std::atof(argv[2]) : 2e-3;
  const core::ReliabilityTarget target{target_events};

  std::cout << "Planning for " << fixed(usable_pb, 2)
            << " PB usable, target < " << sci(target.events_per_pb_year)
            << " events/PB-yr\n";

  std::vector<Candidate> passing;
  for (const int r : {6, 8, 10, 12, 16}) {
    core::SystemConfig config = core::SystemConfig::baseline();
    config.redundancy_set_size = r;
    const core::Analyzer analyzer(config);
    for (const auto& configuration : core::all_configurations()) {
      if (configuration.node_fault_tolerance >= r) continue;
      const auto result = analyzer.analyze(configuration);
      if (!target.met_by(result)) continue;
      // Raw drives needed to present the usable capacity.
      const double usable_per_drive = config.drive.capacity.value() *
                                      config.capacity_utilization *
                                      analyzer.code_rate(configuration);
      Candidate c;
      c.configuration = configuration;
      c.redundancy_set_size = r;
      c.events_per_pb_year = result.events_per_pb_year;
      c.raw_drives_per_usable_pb = 1e15 / usable_per_drive;
      passing.push_back(c);
    }
  }

  if (passing.empty()) {
    std::cout << "No configuration meets the target; consider higher fault "
                 "tolerance or better hardware.\n";
    return 1;
  }

  std::sort(passing.begin(), passing.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.raw_drives_per_usable_pb < b.raw_drives_per_usable_pb;
            });

  report::Table table(
      {"configuration", "R", "events/PB-yr", "drives for target capacity"});
  for (const auto& c : passing) {
    table.add_row({core::name(c.configuration),
                   std::to_string(c.redundancy_set_size),
                   sci(c.events_per_pb_year),
                   fixed(std::ceil(c.raw_drives_per_usable_pb * usable_pb), 0)});
  }
  table.print(std::cout);

  const auto& best = passing.front();
  std::cout << "\nCheapest passing configuration: "
            << core::name(best.configuration) << " with R="
            << best.redundancy_set_size << " ("
            << fixed(std::ceil(best.raw_drives_per_usable_pb * usable_pb), 0)
            << " drives)\n";
  return 0;
}
