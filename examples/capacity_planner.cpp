// Capacity planner: for a desired usable capacity and reliability target,
// search the configuration space (internal scheme x node fault tolerance x
// redundancy set size) for the cheapest configuration — measured in raw
// drive count — that meets the target. This is the "user-configurable
// goals" use the paper's conclusion anticipates for its closed forms.
//
// Usage: capacity_planner [usable_petabytes] [target_events_per_pb_year]
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <vector>

#include "core/analyzer.hpp"
#include "engine/engine.hpp"
#include "engine/grid.hpp"
#include "report/table.hpp"
#include "util/format.hpp"

namespace {

struct Candidate {
  nsrel::core::Configuration configuration;
  int redundancy_set_size = 0;
  double events_per_pb_year = 0.0;
  double raw_drives_per_usable_pb = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace nsrel;

  const double usable_pb = argc > 1 ? std::atof(argv[1]) : 1.0;
  const double target_events = argc > 2 ? std::atof(argv[2]) : 2e-3;
  const core::ReliabilityTarget target{target_events};

  std::cout << "Planning for " << fixed(usable_pb, 2)
            << " PB usable, target < " << sci(target.events_per_pb_year)
            << " events/PB-yr\n";

  // The whole search space is one grid: R values x all 9 configurations,
  // evaluated in parallel through the shared engine path.
  const engine::ResultSet results = engine::evaluate(
      engine::parameter_sweep(core::SystemConfig::baseline(), "r",
                              {6, 8, 10, 12, 16}, core::all_configurations()),
      engine::EvalOptions{.jobs = 0});

  std::vector<Candidate> passing;
  for (std::size_t p = 0; p < results.point_count(); ++p) {
    const auto& point = results.grid().points[p];
    const int r = point.system.redundancy_set_size;
    const double raw_drives =
        static_cast<double>(point.system.node_set_size) *
        static_cast<double>(point.system.drives_per_node);
    for (std::size_t i = 0; i < results.configuration_count(); ++i) {
      const auto& configuration = results.grid().configurations[i];
      if (configuration.node_fault_tolerance >= r) continue;
      const auto& result = results.at(p, i);
      if (!target.met_by(result)) continue;
      // Raw drives needed to present the usable capacity: the engine's
      // logical capacity already folds in utilization and code rate.
      const double usable_per_drive =
          result.logical_capacity.value() / raw_drives;
      Candidate c;
      c.configuration = configuration;
      c.redundancy_set_size = r;
      c.events_per_pb_year = result.events_per_pb_year;
      c.raw_drives_per_usable_pb = 1e15 / usable_per_drive;
      passing.push_back(c);
    }
  }

  if (passing.empty()) {
    std::cout << "No configuration meets the target; consider higher fault "
                 "tolerance or better hardware.\n";
    return 1;
  }

  std::sort(passing.begin(), passing.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.raw_drives_per_usable_pb < b.raw_drives_per_usable_pb;
            });

  report::Table table(
      {"configuration", "R", "events/PB-yr", "drives for target capacity"});
  for (const auto& c : passing) {
    table.add_row({core::name(c.configuration),
                   std::to_string(c.redundancy_set_size),
                   sci(c.events_per_pb_year),
                   fixed(std::ceil(c.raw_drives_per_usable_pb * usable_pb), 0)});
  }
  table.print(std::cout);

  const auto& best = passing.front();
  std::cout << "\nCheapest passing configuration: "
            << core::name(best.configuration) << " with R="
            << best.redundancy_set_size << " ("
            << fixed(std::ceil(best.raw_drives_per_usable_pb * usable_pb), 0)
            << " drives)\n";
  return 0;
}
