// Simulation vs model: runs the Monte-Carlo storage simulator against the
// analytic Markov solutions on an accelerated configuration and prints the
// agreement — the validation experiment behind ablation_sim_vs_model.
//
// Usage: sim_vs_model [trials]
#include <cstdint>
#include <cstdlib>
#include <iostream>

#include "models/internal_raid.hpp"
#include "models/no_internal_raid.hpp"
#include "report/table.hpp"
#include "sim/chain_simulator.hpp"
#include "sim/storage_simulator.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace nsrel;

  const int trials = argc > 1 ? std::atoi(argv[1]) : 5000;

  std::cout << "Monte-Carlo validation on an accelerated 8-node system\n"
            << "(failure rates x1000 so each trajectory is tractable; the\n"
            << " chains are exact at any rate ratio)\n";

  report::Table table({"model", "analytic MTTDL (h)", "simulated (h)",
                       "95% CI", "within CI"});

  for (int k = 1; k <= 3; ++k) {
    models::NoInternalRaidParams p;
    p.node_set_size = 8;
    p.redundancy_set_size = 4;
    p.fault_tolerance = k;
    p.drives_per_node = 3;
    p.node_failure = PerHour(0.002);
    p.drive_failure = PerHour(0.003);
    p.node_rebuild = PerHour(1.0);
    p.drive_rebuild = PerHour(3.0);
    p.capacity = gigabytes(300.0);
    p.her_per_byte = 8e-14;

    const models::NoInternalRaidModel model(p);
    const double analytic = model.mttdl_exact().value();
    sim::NirStorageSimulator simulator(p, 42 + static_cast<std::uint64_t>(k));
    const sim::MttdlEstimate estimate = simulator.estimate(trials);
    table.add_row({"no internal RAID, FT" + std::to_string(k), sci(analytic),
                   sci(estimate.mean_hours),
                   "[" + sci(estimate.ci95_low_hours) + ", " +
                       sci(estimate.ci95_high_hours) + "]",
                   estimate.covers(analytic) ? "yes" : "no"});
  }

  for (int t = 1; t <= 3; ++t) {
    models::InternalRaidParams p;
    p.node_set_size = 8;
    p.redundancy_set_size = 4;
    p.fault_tolerance = t;
    p.node_failure = PerHour(0.004);
    p.node_rebuild = PerHour(1.0);
    p.array_failure = PerHour(0.001);
    p.sector_error = PerHour(0.0005);

    const models::InternalRaidNodeModel model(p);
    const double analytic = model.mttdl_exact().value();
    sim::IrStorageSimulator simulator(p, 142 + static_cast<std::uint64_t>(t));
    const sim::MttdlEstimate estimate = simulator.estimate(trials);
    table.add_row({"internal RAID, FT" + std::to_string(t), sci(analytic),
                   sci(estimate.mean_hours),
                   "[" + sci(estimate.ci95_low_hours) + ", " +
                       sci(estimate.ci95_high_hours) + "]",
                   estimate.covers(analytic) ? "yes" : "no"});
  }

  table.print(std::cout);
  std::cout << "\n(a ~5% miss rate on 'within CI' is expected at 95%\n"
            << " confidence across 6 independent comparisons)\n";
  return 0;
}
