// Quickstart: evaluate the paper's 9 redundancy configurations on the
// baseline system and report MTTDL and data-loss events per PB-year
// against the 2e-3 events/PB-year target.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "core/analyzer.hpp"
#include "report/table.hpp"
#include "util/format.hpp"

int main() {
  using namespace nsrel;

  // 1. Describe the system (defaults are the paper's section-6 baseline).
  const core::SystemConfig config = core::SystemConfig::baseline();
  const core::Analyzer analyzer(config);
  const core::ReliabilityTarget target = core::ReliabilityTarget::paper();

  std::cout << "Networked storage node reliability (nsrel quickstart)\n"
            << "N=" << config.node_set_size
            << " nodes, R=" << config.redundancy_set_size
            << ", d=" << config.drives_per_node << " drives/node, "
            << human_bytes(config.drive.capacity.value()) << " drives\n"
            << "target: < " << sci(target.events_per_pb_year)
            << " data loss events per PB-year\n";

  // 2. Evaluate every configuration.
  report::Table table({"configuration", "MTTDL", "events/PB-yr", "meets"});
  for (const auto& configuration : core::all_configurations()) {
    const core::AnalysisResult result = analyzer.analyze(configuration);
    table.add_row({core::name(configuration),
                   human_hours(result.mttdl.value()),
                   sci(result.events_per_pb_year),
                   target.met_by(result) ? "yes" : "NO"});
  }
  table.print(std::cout);

  // 3. Inspect one configuration in depth.
  const core::Configuration chosen{core::InternalScheme::kRaid5, 2};
  const auto detail = analyzer.analyze(chosen);
  std::cout << "\nDetail for " << core::name(chosen) << ":\n"
            << "  node rebuild time: "
            << fixed(to_hours(detail.rebuild.node_rebuild_time).value(), 2)
            << " h ("
            << (detail.rebuild.node_bottleneck == rebuild::Bottleneck::kDisk
                    ? "disk-bound"
                    : "network-bound")
            << ")\n"
            << "  array failure rate (lambda_D): "
            << sci(detail.array_failure_rate.value()) << " /h\n"
            << "  sector error rate (lambda_S):  "
            << sci(detail.sector_error_rate.value()) << " /h\n"
            << "  logical capacity per node set: "
            << human_bytes(detail.logical_capacity.value()) << "\n";
  return 0;
}
