// Erasure coding demo: the concrete redundancy machinery the reliability
// models assume. Builds the paper's R=8 redundancy set with fault
// tolerance t, stores a message across 8 "nodes" with the rotating
// placement, fails t nodes, reconstructs, and accounts the rebuild data
// flows of section 5.1.
//
// Usage: erasure_demo [fault_tolerance 1..3]
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "erasure/reed_solomon.hpp"
#include "placement/layout.hpp"
#include "rebuild/planner.hpp"
#include "report/table.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace nsrel;

  const int t = argc > 1 ? std::atoi(argv[1]) : 2;
  if (t < 1 || t > 3) {
    std::cerr << "fault tolerance must be 1..3\n";
    return 1;
  }
  const int r = 8;
  const int k = r - t;

  std::cout << "Reed-Solomon over GF(256): R=" << r << " shards, k=" << k
            << " data + t=" << t << " parity\n";

  // 1. Encode a message into k data shards.
  const std::string message =
      "Redundancy must be distributed across the collection of nodes to "
      "tolerate node and drive failures. -- Rao, Hafner, Golding (2006)";
  const std::size_t shard_size = (message.size() + k - 1) / k;
  std::vector<erasure::Shard> data(static_cast<std::size_t>(k),
                                   erasure::Shard(shard_size, 0));
  for (std::size_t i = 0; i < message.size(); ++i) {
    data[i / shard_size][i % shard_size] =
        static_cast<std::uint8_t>(message[i]);
  }
  const erasure::ReedSolomonCode code(k, t);
  auto shards = data;
  auto parity = code.encode(data);
  shards.insert(shards.end(), parity.begin(), parity.end());

  // 2. Place the stripe on a 64-node set and fail t of its nodes.
  const placement::RotatingPlacement layout({64, r});
  const auto nodes = layout.nodes_for_stripe(/*stripe=*/17);
  Xoshiro256 rng(2006);
  std::vector<bool> present(static_cast<std::size_t>(r), true);
  auto damaged = shards;
  std::cout << "\nStripe 17 lives on nodes:";
  for (const int n : nodes) std::cout << " " << n;
  std::cout << "\nFailing " << t << " of them:";
  int failed = 0;
  while (failed < t) {
    const auto victim = static_cast<std::size_t>(rng.below(r));
    if (!present[victim]) continue;
    present[victim] = false;
    damaged[victim].assign(shard_size, 0);
    std::cout << " node " << nodes[victim];
    ++failed;
  }
  std::cout << "\n";

  // 3. Reconstruct and verify.
  const auto rebuilt = code.reconstruct(damaged, present);
  std::string recovered;
  for (int i = 0; i < k; ++i) {
    for (const auto byte : rebuilt[static_cast<std::size_t>(i)]) {
      if (byte != 0) recovered += static_cast<char>(byte);
    }
  }
  std::cout << "Recovered: \"" << recovered.substr(0, 60) << "...\"\n"
            << (rebuilt == shards ? "All shards reconstructed exactly.\n"
                                  : "RECONSTRUCTION MISMATCH!\n");

  // 4. Section 5.1 accounting: what a full node rebuild moves.
  rebuild::RebuildParams params;
  params.fault_tolerance = t;
  const rebuild::RebuildPlanner planner(params);
  const auto flows = planner.flows();
  const auto rates = planner.rates();
  report::Table table({"quantity", "node's-worth", "bytes"});
  const double node_data = planner.node_data().value();
  table.add_row({"rebuilt per surviving node", fixed(flows.rebuilt_per_node, 4),
                 human_bytes(flows.rebuilt_per_node * node_data)});
  table.add_row({"received per node", fixed(flows.received_per_node, 4),
                 human_bytes(flows.received_per_node * node_data)});
  table.add_row({"in+out per node (network)",
                 fixed(flows.node_network_inout, 4),
                 human_bytes(flows.node_network_inout * node_data)});
  table.add_row({"to/from disks per node", fixed(flows.node_disk_traffic, 4),
                 human_bytes(flows.node_disk_traffic * node_data)});
  table.add_row({"total on interconnect", fixed(flows.interconnect_total, 2),
                 human_bytes(flows.interconnect_total * node_data)});
  std::cout << "\nNode rebuild data flows (N=64, R=8, t=" << t << "):\n";
  table.print(std::cout);
  std::cout << "Node rebuild completes in "
            << fixed(to_hours(rates.node_rebuild_time).value(), 2) << " h ("
            << (rates.node_bottleneck == rebuild::Bottleneck::kDisk
                    ? "disk"
                    : "network")
            << "-bound)\n";
  return rebuilt == shards ? 0 : 1;
}
