// Unit tests for the util substrate: contracts, units, math, RNG, format.
#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "util/assert.hpp"
#include "util/format.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace nsrel {
namespace {

TEST(Contracts, ExpectsThrowsOnViolation) {
  EXPECT_THROW(NSREL_EXPECTS(false), ContractViolation);
  EXPECT_NO_THROW(NSREL_EXPECTS(true));
}

TEST(Contracts, MessageNamesTheExpression) {
  try {
    NSREL_EXPECTS(1 == 2);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Units, HoursSecondsRoundTrip) {
  const Hours h(2.5);
  EXPECT_DOUBLE_EQ(to_seconds(h).value(), 9000.0);
  EXPECT_DOUBLE_EQ(to_hours(to_seconds(h)).value(), 2.5);
}

TEST(Units, RateInversion) {
  const Hours mttf(400'000.0);
  const PerHour rate = rate_of(mttf);
  EXPECT_DOUBLE_EQ(rate.value(), 1.0 / 400'000.0);
  EXPECT_DOUBLE_EQ(mean_time_of(rate).value(), 400'000.0);
}

TEST(Units, RateOfRejectsNonPositive) {
  EXPECT_THROW((void)rate_of(Hours(0.0)), ContractViolation);
  EXPECT_THROW((void)rate_of(Hours(-1.0)), ContractViolation);
}

TEST(Units, ByteFactories) {
  EXPECT_DOUBLE_EQ(kilobytes(128.0).value(), 131072.0);
  EXPECT_DOUBLE_EQ(megabytes(1.0).value(), 1048576.0);
  EXPECT_DOUBLE_EQ(gigabytes(300.0).value(), 3e11);
  EXPECT_DOUBLE_EQ(petabytes(1.0).value(), 1e15);
}

TEST(Units, LinkConversionMatchesPaper) {
  // 10 Gb/s at 64% efficiency is the paper's 800 MB/s sustained.
  const BitsPerSecond raw = gigabits_per_second(10.0);
  EXPECT_DOUBLE_EQ(to_bytes_per_second(raw).value() * 0.64, 800e6);
}

TEST(Units, TransferTime) {
  EXPECT_DOUBLE_EQ(
      transfer_time(Bytes(100.0), BytesPerSecond(25.0)).value(), 4.0);
  EXPECT_THROW((void)transfer_time(Bytes(1.0), BytesPerSecond(0.0)),
               ContractViolation);
}

TEST(Units, QuantityArithmetic) {
  const Hours a(2.0), b(3.0);
  EXPECT_DOUBLE_EQ((a + b).value(), 5.0);
  EXPECT_DOUBLE_EQ((b - a).value(), 1.0);
  EXPECT_DOUBLE_EQ((2.0 * a).value(), 4.0);
  EXPECT_DOUBLE_EQ((a / 2.0).value(), 1.0);
  EXPECT_DOUBLE_EQ(b / a, 1.5);
  EXPECT_LT(a, b);
}

TEST(Math, BinomialSmallValues) {
  EXPECT_DOUBLE_EQ(binomial(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(binomial(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(binomial(64, 8), 4426165368.0);
}

TEST(Math, BinomialOutOfRangeIsZero) {
  EXPECT_DOUBLE_EQ(binomial(5, 6), 0.0);
  EXPECT_DOUBLE_EQ(binomial(5, -1), 0.0);
  EXPECT_DOUBLE_EQ(binomial(-1, 0), 0.0);
}

TEST(Math, BinomialPascalIdentity) {
  for (int n = 2; n <= 40; ++n) {
    for (int k = 1; k < n; ++k) {
      EXPECT_NEAR(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k),
                  1e-6 * binomial(n, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(Math, LogBinomialMatchesBinomial) {
  EXPECT_NEAR(std::exp(log_binomial(64, 8)), binomial(64, 8),
              1e-6 * binomial(64, 8));
}

TEST(Math, FallingFactorial) {
  EXPECT_DOUBLE_EQ(falling_factorial(10, 0), 1.0);
  EXPECT_DOUBLE_EQ(falling_factorial(10, 1), 10.0);
  EXPECT_DOUBLE_EQ(falling_factorial(10, 3), 720.0);
  EXPECT_DOUBLE_EQ(falling_factorial(64, 2), 64.0 * 63.0);
}

TEST(Math, ApproxEqual) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12, 1e-9));
  EXPECT_FALSE(approx_equal(1.0, 1.1, 1e-3));
  EXPECT_TRUE(approx_equal(0.0, 0.0, 1e-12));
}

TEST(Math, KahanSumBeatsNaiveAccumulation) {
  KahanSum kahan;
  double naive = 0.0;
  const double tiny = 1e-16;
  kahan.add(1.0);
  naive += 1.0;
  for (int i = 0; i < 100000; ++i) {
    kahan.add(tiny);
    naive += tiny;
  }
  const double expected = 1.0 + 100000 * tiny;
  EXPECT_LE(std::abs(kahan.value() - expected),
            std::abs(naive - expected) + 1e-30);
  EXPECT_NEAR(kahan.value(), expected, 1e-18);
}

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Xoshiro256 rng(13);
  const double rate = 4.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01 / rate);
}

TEST(Rng, ExponentialRejectsBadRate) {
  Xoshiro256 rng(1);
  EXPECT_THROW((void)rng.exponential(0.0), ContractViolation);
}

TEST(Rng, BelowIsUnbiasedAcrossRange) {
  Xoshiro256 rng(17);
  std::vector<int> counts(5, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(5)];
  for (const int c : counts) EXPECT_NEAR(c, n / 5, n / 50);
}

TEST(Rng, SplitmixMatchesReferenceVector) {
  // Published splitmix64 test vector: the first outputs from state 0.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(splitmix64(state), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(splitmix64(state), 0x06C45D188009454FULL);
}

TEST(Rng, StreamSeedsAreInjectiveOverChunkIndices) {
  // The derivation is a bijection of the stream index for a fixed base
  // seed, so any two distinct chunks get distinct streams. Check a
  // realistic chunk-index range exhaustively.
  std::set<std::uint64_t> seen;
  const int streams = 4096;
  for (int i = 0; i < streams; ++i) {
    seen.insert(stream_seed(0x5EEDULL, static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(streams));
}

TEST(Rng, StreamSeedsDifferAcrossBaseSeeds) {
  std::set<std::uint64_t> seen;
  const int seeds = 512;
  for (int s = 0; s < seeds; ++s) {
    seen.insert(stream_seed(static_cast<std::uint64_t>(s), 3));
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(seeds));
}

TEST(Rng, DistinctChunksProduceDistinctStreams) {
  // Generators seeded from adjacent chunk indices must not share a
  // prefix: compare the first 32 outputs pairwise across 64 streams.
  const int streams = 64;
  std::set<std::uint64_t> firsts;
  for (int i = 0; i < streams; ++i) {
    Xoshiro256 a(stream_seed(7, static_cast<std::uint64_t>(i)));
    Xoshiro256 b(stream_seed(7, static_cast<std::uint64_t>(i + 1)));
    firsts.insert(a());
    int matches = 0;
    for (int j = 0; j < 32; ++j) {
      if (a() == b()) ++matches;
    }
    EXPECT_LE(matches, 1) << "streams " << i << " and " << i + 1;
  }
  EXPECT_EQ(firsts.size(), static_cast<std::size_t>(streams));
}

TEST(Rng, StreamsAreStatisticallyUniformAcrossChunks) {
  // Treat the first uniform() of each derived stream as a sample: the
  // across-stream mean must match U(0,1) (catches a derivation that maps
  // many chunks into a low-entropy region).
  double sum = 0.0;
  const int streams = 20000;
  for (int i = 0; i < streams; ++i) {
    Xoshiro256 rng(stream_seed(99, static_cast<std::uint64_t>(i)));
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / streams, 0.5, 0.01);
}

TEST(Rng, ExponentialVarianceMatchesRate) {
  // Var[Exp(rate)] = 1/rate^2; with n = 200000 the sample variance of
  // the sample variance allows a ~2% band at 5 sigma.
  Xoshiro256 rng(23);
  const double rate = 2.0;
  const int n = 200000;
  double sum = 0.0, sum_squares = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(rate);
    sum += x;
    sum_squares += x * x;
  }
  const double mean = sum / n;
  const double variance = (sum_squares - n * mean * mean) / (n - 1);
  EXPECT_NEAR(mean, 1.0 / rate, 0.01 / rate);
  EXPECT_NEAR(variance, 1.0 / (rate * rate), 0.025 / (rate * rate));
}

TEST(Rng, BernoulliFrequency) {
  Xoshiro256 rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Format, Scientific) {
  EXPECT_EQ(sci(0.002, 3), "2.00e-03");
  EXPECT_EQ(sci(123456.0, 2), "1.2e+05");
}

TEST(Format, Fixed) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

TEST(Format, HumanBytes) {
  EXPECT_EQ(human_bytes(512.0), "512 B");
  EXPECT_EQ(human_bytes(131072.0), "128 KiB");
  EXPECT_EQ(human_bytes(3e11), "300 GB");
  EXPECT_EQ(human_bytes(1e15), "1.00 PB");
}

TEST(Format, HumanHours) {
  EXPECT_EQ(human_hours(39.5), "39.5 h");
  EXPECT_NE(human_hours(1e7).find("yr"), std::string::npos);
}

}  // namespace
}  // namespace nsrel
