// Seeded random-chain generators for the differential-testing harness
// (tests/test_diffharness.cpp): every family the CTMC solvers accept,
// plus deterministic degenerate systems whose solves MUST fail with the
// same typed error on the dense and sparse backends.
//
// Everything here is a pure function of its Xoshiro256 stream (or fully
// deterministic), so a failing seed reproduces exactly.
#pragma once

#include <cstddef>
#include <vector>

#include "ctmc/chain.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse/sparse_matrix.hpp"
#include "models/no_internal_raid.hpp"
#include "util/rng.hpp"

namespace nsrel::diffharness {

/// Log-uniform rate in [1e-3, 1e3) per hour: wide enough to stress the
/// solvers across six decades, narrow enough that random chains stay
/// well-conditioned (the agreement bound in DESIGN.md §11 assumes this).
[[nodiscard]] double random_rate(Xoshiro256& rng);

/// Absorbing birth-death chain (the internal-RAID shape): `transient`
/// degraded states 0..transient-1, one absorbing loss state. Every state
/// fails forward (so absorption is always reachable); repairs backward
/// appear with probability 0.8 per state.
[[nodiscard]] ctmc::Chain birth_death(Xoshiro256& rng, std::size_t transient);

/// Arbitrary absorbing chain with guaranteed absorption reachability: a
/// forward backbone 0 -> 1 -> ... -> first absorbing state, plus random
/// extra transient-to-transient and transient-to-absorbing edges, each
/// present with probability `extra_density`.
[[nodiscard]] ctmc::Chain random_absorbing(Xoshiro256& rng,
                                           std::size_t transient,
                                           std::size_t absorbing,
                                           double extra_density);

/// Irreducible chain (no absorbing states) for the stationary solver: a
/// directed cycle over all n states plus random extra edges with
/// probability `extra_density` per ordered pair.
[[nodiscard]] ctmc::Chain random_irreducible(Xoshiro256& rng, std::size_t n,
                                             double extra_density);

/// Random parameters for the appendix's recursive construction at the
/// given fault tolerance (the binary-tree chain shape): random set sizes
/// satisfying k < R <= N and log-uniform failure/rebuild rates.
[[nodiscard]] models::NoInternalRaidParams random_recursive_params(
    Xoshiro256& rng, int fault_tolerance);

/// A degenerate absorbing system in matching dense and CSR form: the
/// last `trapped` states (>= 2) form a directed cycle with positive exit
/// rates but NO path to absorption, so GTH elimination reaches an
/// exactly-zero pivot on BOTH backends. With healthy == 0 the trap
/// includes the initial state and the failure surfaces as a vanished
/// initial absorption probability instead. All rates are small integers,
/// so every elimination step is exact and the zero is bit-exact.
struct DegenerateSystem {
  linalg::Matrix dense;
  linalg::sparse::CsrMatrix sparse;
  std::vector<double> absorption_rates;
};
[[nodiscard]] DegenerateSystem trapped_system(std::size_t healthy,
                                              std::size_t trapped);

/// Reducible "irreducible-looking" chain for the stationary solver: two
/// disconnected 2-cycles with rate-1 transitions. The normalized
/// transpose is exactly rank-deficient (integer arithmetic), so both LU
/// backends must report a singular generator.
[[nodiscard]] ctmc::Chain disconnected_cycles();

}  // namespace nsrel::diffharness
