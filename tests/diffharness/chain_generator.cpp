#include "diffharness/chain_generator.hpp"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/assert.hpp"
#include "util/units.hpp"

namespace nsrel::diffharness {

double random_rate(Xoshiro256& rng) {
  // 10^u for u uniform in [-3, 3).
  return std::pow(10.0, -3.0 + 6.0 * rng.uniform());
}

ctmc::Chain birth_death(Xoshiro256& rng, std::size_t transient) {
  NSREL_EXPECTS(transient >= 1);
  ctmc::Chain chain;
  for (std::size_t i = 0; i < transient; ++i) {
    chain.add_state("d" + std::to_string(i), ctmc::StateKind::kTransient);
  }
  const ctmc::StateId loss =
      chain.add_state("loss", ctmc::StateKind::kAbsorbing);
  for (std::size_t i = 0; i < transient; ++i) {
    const ctmc::StateId next = i + 1 < transient ? i + 1 : loss;
    chain.add_transition(i, next, random_rate(rng));
    if (i > 0 && rng.bernoulli(0.8)) {
      chain.add_transition(i, i - 1, random_rate(rng));
    }
  }
  return chain;
}

ctmc::Chain random_absorbing(Xoshiro256& rng, std::size_t transient,
                             std::size_t absorbing, double extra_density) {
  NSREL_EXPECTS(transient >= 1);
  NSREL_EXPECTS(absorbing >= 1);
  ctmc::Chain chain;
  for (std::size_t i = 0; i < transient; ++i) {
    chain.add_state("t" + std::to_string(i), ctmc::StateKind::kTransient);
  }
  std::vector<ctmc::StateId> sinks;
  for (std::size_t a = 0; a < absorbing; ++a) {
    sinks.push_back(
        chain.add_state("a" + std::to_string(a), ctmc::StateKind::kAbsorbing));
  }
  // Backbone: every transient state walks forward into the first sink,
  // so validate()'s reachability check passes by construction.
  for (std::size_t i = 0; i < transient; ++i) {
    const ctmc::StateId next = i + 1 < transient ? i + 1 : sinks.front();
    chain.add_transition(i, next, random_rate(rng));
  }
  // Random extra edges (duplicates accumulate rates, which is fine).
  for (std::size_t i = 0; i < transient; ++i) {
    for (std::size_t j = 0; j < transient; ++j) {
      if (i != j && rng.bernoulli(extra_density)) {
        chain.add_transition(i, j, random_rate(rng));
      }
    }
    for (const ctmc::StateId sink : sinks) {
      if (rng.bernoulli(extra_density / 2.0)) {
        chain.add_transition(i, sink, random_rate(rng));
      }
    }
  }
  return chain;
}

ctmc::Chain random_irreducible(Xoshiro256& rng, std::size_t n,
                               double extra_density) {
  NSREL_EXPECTS(n >= 2);
  ctmc::Chain chain;
  for (std::size_t i = 0; i < n; ++i) {
    chain.add_state("s" + std::to_string(i), ctmc::StateKind::kTransient);
  }
  for (std::size_t i = 0; i < n; ++i) {
    chain.add_transition(i, (i + 1) % n, random_rate(rng));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && rng.bernoulli(extra_density)) {
        chain.add_transition(i, j, random_rate(rng));
      }
    }
  }
  return chain;
}

models::NoInternalRaidParams random_recursive_params(Xoshiro256& rng,
                                                     int fault_tolerance) {
  NSREL_EXPECTS(fault_tolerance >= 1);
  models::NoInternalRaidParams p;
  p.fault_tolerance = fault_tolerance;
  p.node_set_size =
      fault_tolerance + 2 + static_cast<int>(rng.below(32));
  p.redundancy_set_size =
      fault_tolerance + 1 +
      static_cast<int>(rng.below(
          static_cast<std::uint64_t>(p.node_set_size - fault_tolerance)));
  p.drives_per_node = 1 + static_cast<int>(rng.below(16));
  // Failures around 1e-6..1e-4 per hour, rebuilds around 1e-2..1: the
  // repair-dominant regime the models target.
  p.node_failure = PerHour{1e-6 * std::pow(100.0, rng.uniform())};
  p.drive_failure = PerHour{1e-6 * std::pow(100.0, rng.uniform())};
  p.node_rebuild = PerHour{1e-2 * std::pow(100.0, rng.uniform())};
  p.drive_rebuild = PerHour{1e-2 * std::pow(100.0, rng.uniform())};
  return p;
}

DegenerateSystem trapped_system(std::size_t healthy, std::size_t trapped) {
  NSREL_EXPECTS(trapped >= 2);
  const std::size_t n = healthy + trapped;
  DegenerateSystem system;
  system.dense = linalg::Matrix(n, n);
  system.absorption_rates.assign(n, 0.0);
  std::vector<linalg::sparse::Triplet> triplets;

  const auto entry = [&](std::size_t r, std::size_t c, double value) {
    system.dense(r, c) += value;
    triplets.push_back({static_cast<std::uint32_t>(r),
                        static_cast<std::uint32_t>(c), value});
  };

  // Healthy states: exit 3, jump 1 forward, absorb 2 — plus one edge
  // from the last healthy state into the trap so the trap is reachable.
  for (std::size_t i = 0; i < healthy; ++i) {
    entry(i, i, 3.0);
    entry(i, i + 1, -1.0);
    system.absorption_rates[i] = 2.0;
  }
  // Trap states: a pure directed cycle, exit 1, zero absorption.
  for (std::size_t t = 0; t < trapped; ++t) {
    const std::size_t from = healthy + t;
    const std::size_t to = healthy + (t + 1) % trapped;
    entry(from, from, 1.0);
    entry(from, to, -1.0);
  }
  system.sparse = linalg::sparse::CsrMatrix::from_triplets(n, n, triplets);
  return system;
}

ctmc::Chain disconnected_cycles() {
  ctmc::Chain chain;
  for (int i = 0; i < 4; ++i) {
    chain.add_state("c" + std::to_string(i), ctmc::StateKind::kTransient);
  }
  chain.add_transition(0, 1, 1.0);
  chain.add_transition(1, 0, 1.0);
  chain.add_transition(2, 3, 1.0);
  chain.add_transition(3, 2, 1.0);
  return chain;
}

}  // namespace nsrel::diffharness
