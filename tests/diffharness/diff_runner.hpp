// Comparison machinery for the differential-testing harness: bitwise
// equality for the GTH elimination backends (which are bit-identical by
// construction) and ULP/relative distance for the LU backends (which
// pivot differently and agree only to the bound stated in DESIGN.md §11).
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

namespace nsrel::diffharness {

/// The raw bit pattern of a double.
[[nodiscard]] inline std::uint64_t bits(double x) {
  std::uint64_t u = 0;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

/// True when the two doubles have the same bit pattern (so +0.0 and
/// -0.0 differ, and NaN payloads matter — exactly what "bit-identical
/// backends" promises).
[[nodiscard]] inline bool bit_equal(double a, double b) {
  return bits(a) == bits(b);
}

/// ULP distance via the standard order-preserving map from IEEE-754 bit
/// patterns to a signed number line (two's-complement flip of negative
/// values). NaN against anything is the maximum distance.
[[nodiscard]] inline std::uint64_t ulp_distance(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  const auto ordered = [](double x) -> std::int64_t {
    const std::uint64_t u = bits(x);
    const auto s = static_cast<std::int64_t>(u);
    return s < 0 ? static_cast<std::int64_t>(0x8000000000000000ULL - u) : s;
  };
  const std::int64_t oa = ordered(a);
  const std::int64_t ob = ordered(b);
  return oa > ob ? static_cast<std::uint64_t>(oa) - static_cast<std::uint64_t>(ob)
                 : static_cast<std::uint64_t>(ob) - static_cast<std::uint64_t>(oa);
}

/// |a - b| / max(|a|, |b|), zero when both are zero.
[[nodiscard]] inline double rel_diff(double a, double b) {
  const double scale = std::fmax(std::fabs(a), std::fabs(b));
  if (scale == 0.0) return 0.0;
  return std::fabs(a - b) / scale;
}

/// Accumulates worst-case distances across a sweep so a failing run
/// reports how close (or far) the backends actually were.
struct DiffStats {
  std::size_t chains = 0;
  double max_rel = 0.0;
  std::uint64_t max_ulp = 0;

  void record(double a, double b) {
    max_rel = std::fmax(max_rel, rel_diff(a, b));
    const std::uint64_t u = ulp_distance(a, b);
    if (u > max_ulp) max_ulp = u;
  }
  void record(const std::vector<double>& a, const std::vector<double>& b) {
    const std::size_t n = a.size() < b.size() ? a.size() : b.size();
    for (std::size_t i = 0; i < n; ++i) record(a[i], b[i]);
  }
  void note_chain() { ++chains; }
};

}  // namespace nsrel::diffharness
