// Tests for the parallel Monte-Carlo engine: bit-identical deterministic
// replay across thread counts, Welford/Chan chunk-merge algebra, adaptive
// stopping, and the underlying thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "models/internal_raid.hpp"
#include "models/no_internal_raid.hpp"
#include "sim/chain_simulator.hpp"
#include "sim/parallel.hpp"
#include "sim/storage_simulator.hpp"
#include "sim/weibull_simulator.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace nsrel::sim {
namespace {

// Accelerated parameters (as in test_sim.cpp) keep trajectories short.
models::NoInternalRaidParams accelerated_nir(int fault_tolerance) {
  models::NoInternalRaidParams p;
  p.node_set_size = 8;
  p.redundancy_set_size = 4;
  p.fault_tolerance = fault_tolerance;
  p.drives_per_node = 3;
  p.node_failure = PerHour(0.002);
  p.drive_failure = PerHour(0.003);
  p.node_rebuild = PerHour(1.0);
  p.drive_rebuild = PerHour(3.0);
  p.capacity = gigabytes(300.0);
  p.her_per_byte = 8e-14;
  return p;
}

models::InternalRaidParams accelerated_ir(int fault_tolerance) {
  models::InternalRaidParams p;
  p.node_set_size = 8;
  p.redundancy_set_size = 4;
  p.fault_tolerance = fault_tolerance;
  p.node_failure = PerHour(0.004);
  p.node_rebuild = PerHour(1.0);
  p.array_failure = PerHour(0.001);
  p.sector_error = PerHour(0.0005);
  return p;
}

ParallelOptions with_jobs(int jobs) {
  ParallelOptions options;
  options.jobs = jobs;
  options.chunk_trials = 64;
  return options;
}

void expect_bit_identical(const MttdlEstimate& a, const MttdlEstimate& b) {
  EXPECT_EQ(a.trials, b.trials);
  // EXPECT_DOUBLE_EQ would allow 4 ulps; the engine promises exact
  // equality, so compare with ==.
  EXPECT_EQ(a.mean_hours, b.mean_hours);
  EXPECT_EQ(a.stddev_hours, b.stddev_hours);
  EXPECT_EQ(a.stderr_hours, b.stderr_hours);
  EXPECT_EQ(a.ci95_low_hours, b.ci95_low_hours);
  EXPECT_EQ(a.ci95_high_hours, b.ci95_high_hours);
}

// --- Deterministic replay: same seed => identical estimate at 1/2/8 jobs.

TEST(DeterministicReplay, NirStorageSimulatorAcrossJobs) {
  const NirStorageSimulator simulator(accelerated_nir(2), 42);
  const MttdlEstimate serial = simulator.estimate(500, with_jobs(1));
  expect_bit_identical(serial, simulator.estimate(500, with_jobs(2)));
  expect_bit_identical(serial, simulator.estimate(500, with_jobs(8)));
  EXPECT_EQ(serial.trials, 500);
}

TEST(DeterministicReplay, IrStorageSimulatorAcrossJobs) {
  const IrStorageSimulator simulator(accelerated_ir(2), 42);
  const MttdlEstimate serial = simulator.estimate(500, with_jobs(1));
  expect_bit_identical(serial, simulator.estimate(500, with_jobs(2)));
  expect_bit_identical(serial, simulator.estimate(500, with_jobs(8)));
}

TEST(DeterministicReplay, ChainSimulatorAcrossJobs) {
  const models::NoInternalRaidModel model(accelerated_nir(2));
  const auto chain = model.chain();
  const ChainSimulator simulator(chain, 42);
  const auto root = models::NoInternalRaidModel::root_state();
  const MttdlEstimate serial = simulator.estimate(500, root, with_jobs(1));
  expect_bit_identical(serial, simulator.estimate(500, root, with_jobs(2)));
  expect_bit_identical(serial, simulator.estimate(500, root, with_jobs(8)));
}

TEST(DeterministicReplay, WeibullSimulatorAcrossJobs) {
  const WeibullStorageSimulator simulator(accelerated_nir(2), {1.4, 0.7}, 42);
  const MttdlEstimate serial = simulator.estimate(200, with_jobs(1));
  expect_bit_identical(serial, simulator.estimate(200, with_jobs(2)));
  expect_bit_identical(serial, simulator.estimate(200, with_jobs(8)));
}

TEST(DeterministicReplay, RaggedTailTrialsAcrossJobs) {
  // 500 trials over chunks of 64: seven full chunks plus a ragged 52.
  const NirStorageSimulator simulator(accelerated_nir(1), 7);
  ParallelOptions options = with_jobs(3);
  options.chunk_trials = 64;
  const MttdlEstimate a = simulator.estimate(500, options);
  options.jobs = 1;
  const MttdlEstimate b = simulator.estimate(500, options);
  expect_bit_identical(a, b);
  EXPECT_EQ(a.trials, 500);
}

TEST(DeterministicReplay, DifferentSeedsDiffer) {
  const NirStorageSimulator a(accelerated_nir(2), 1);
  const NirStorageSimulator b(accelerated_nir(2), 2);
  EXPECT_NE(a.estimate(200, with_jobs(2)).mean_hours,
            b.estimate(200, with_jobs(2)).mean_hours);
}

TEST(DeterministicReplay, ChunkSizeIsPartOfTheResultIdentity) {
  // A different chunk layout is a different (equally valid) estimate —
  // document that determinism is per (seed, trials, chunk_trials).
  const NirStorageSimulator simulator(accelerated_nir(2), 42);
  ParallelOptions coarse = with_jobs(1);
  coarse.chunk_trials = 256;
  EXPECT_NE(simulator.estimate(512, with_jobs(1)).mean_hours,
            simulator.estimate(512, coarse).mean_hours);
}

// --- Chunk-merge algebra.

TEST(MomentAccumulator, MatchesDirectMoments) {
  Xoshiro256 rng(5);
  MomentAccumulator acc;
  double sum = 0.0, sum_squares = 0.0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(0.5);
    acc.add(x);
    sum += x;
    sum_squares += x * x;
  }
  const MttdlEstimate welford = make_estimate(acc);
  const MttdlEstimate raw = make_estimate(sum, sum_squares, n);
  EXPECT_EQ(welford.trials, raw.trials);
  EXPECT_NEAR(welford.mean_hours, raw.mean_hours,
              1e-12 * raw.mean_hours);
  EXPECT_NEAR(welford.stddev_hours, raw.stddev_hours,
              1e-10 * raw.stddev_hours);
}

TEST(MomentAccumulator, MergeIsAssociativeToRoundoff) {
  Xoshiro256 rng(6);
  MomentAccumulator a, b, c, all;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.exponential(1.0);
    (i < 100 ? a : i < 200 ? b : c).add(x);
    all.add(x);
  }
  const MomentAccumulator left =
      MomentAccumulator::merge(MomentAccumulator::merge(a, b), c);
  const MomentAccumulator right =
      MomentAccumulator::merge(a, MomentAccumulator::merge(b, c));
  EXPECT_EQ(left.count, right.count);
  EXPECT_NEAR(left.mean, right.mean, 1e-12 * std::abs(all.mean));
  EXPECT_NEAR(left.m2, right.m2, 1e-10 * all.m2);
  // And both agree with the single-stream accumulation.
  EXPECT_EQ(left.count, all.count);
  EXPECT_NEAR(left.mean, all.mean, 1e-12 * std::abs(all.mean));
  EXPECT_NEAR(left.m2, all.m2, 1e-10 * all.m2);
}

TEST(MomentAccumulator, EmptyIsTheMergeIdentity) {
  MomentAccumulator a;
  a.add(3.0);
  a.add(5.0);
  const MomentAccumulator left = MomentAccumulator::merge({}, a);
  const MomentAccumulator right = MomentAccumulator::merge(a, {});
  EXPECT_EQ(left.count, a.count);
  EXPECT_EQ(left.mean, a.mean);
  EXPECT_EQ(left.m2, a.m2);
  EXPECT_EQ(right.count, a.count);
  EXPECT_EQ(right.mean, a.mean);
  EXPECT_EQ(right.m2, a.m2);
}

TEST(MomentAccumulator, PairwiseMergeMatchesFoldToRoundoff) {
  Xoshiro256 rng(7);
  std::vector<MomentAccumulator> parts(9);
  MomentAccumulator fold;
  for (auto& part : parts) {
    for (int i = 0; i < 50; ++i) {
      const double x = rng.uniform() * 10.0;
      part.add(x);
      fold.add(x);
    }
  }
  const MomentAccumulator merged = merge_pairwise(parts);
  EXPECT_EQ(merged.count, fold.count);
  EXPECT_NEAR(merged.mean, fold.mean, 1e-12 * fold.mean);
  EXPECT_NEAR(merged.m2, fold.m2, 1e-10 * fold.m2);
}

TEST(MomentAccumulator, EstimateRequiresTwoObservations) {
  MomentAccumulator one;
  one.add(1.0);
  EXPECT_THROW((void)make_estimate(one), ContractViolation);
}

// --- Adaptive stopping.

TEST(AdaptiveStopping, ReachesTheRequestedPrecision) {
  const NirStorageSimulator simulator(accelerated_nir(1), 11);
  ParallelOptions options = with_jobs(2);
  options.ci_target = 0.05;
  options.max_trials = 200000;
  const MttdlEstimate e = simulator.estimate(256, options);
  EXPECT_LE(e.relative_half_width(), 0.05);
  EXPECT_GE(e.trials, 256);
  EXPECT_LE(e.trials, options.max_trials + options.chunk_trials);
}

TEST(AdaptiveStopping, RunsMoreTrialsForTighterTargets) {
  const NirStorageSimulator simulator(accelerated_nir(1), 11);
  ParallelOptions loose = with_jobs(1);
  loose.ci_target = 0.20;
  loose.max_trials = 400000;
  ParallelOptions tight = loose;
  tight.ci_target = 0.04;
  const MttdlEstimate coarse = simulator.estimate(128, loose);
  const MttdlEstimate fine = simulator.estimate(128, tight);
  EXPECT_LT(coarse.trials, fine.trials);
  EXPECT_LE(fine.relative_half_width(), 0.04);
}

TEST(AdaptiveStopping, IsDeterministicAcrossJobs) {
  const IrStorageSimulator simulator(accelerated_ir(2), 13);
  ParallelOptions options = with_jobs(1);
  options.ci_target = 0.08;
  options.max_trials = 200000;
  const MttdlEstimate serial = simulator.estimate(256, options);
  options.jobs = 4;
  const MttdlEstimate parallel = simulator.estimate(256, options);
  expect_bit_identical(serial, parallel);
}

TEST(AdaptiveStopping, RespectsMaxTrials) {
  const NirStorageSimulator simulator(accelerated_nir(2), 17);
  ParallelOptions options = with_jobs(2);
  options.ci_target = 1e-6;  // unreachable
  options.max_trials = 1024;
  const MttdlEstimate e = simulator.estimate(256, options);
  EXPECT_EQ(e.trials, 1024);
  EXPECT_GT(e.relative_half_width(), 1e-6);
}

TEST(AdaptiveStopping, DisabledRunsExactlyTheRequestedTrials) {
  const NirStorageSimulator simulator(accelerated_nir(2), 19);
  const MttdlEstimate e = simulator.estimate(300, with_jobs(2));
  EXPECT_EQ(e.trials, 300);
}

// --- Engine contracts.

TEST(ParallelEngine, RejectsInvalidOptions) {
  const auto one = [](Xoshiro256& rng) { return rng.uniform(); };
  EXPECT_THROW((void)run_trials(one, 1, 0), ContractViolation);
  ParallelOptions bad_chunk;
  bad_chunk.chunk_trials = 0;
  EXPECT_THROW((void)run_trials(one, 10, 0, bad_chunk), ContractViolation);
  ParallelOptions bad_jobs;
  bad_jobs.jobs = -1;
  EXPECT_THROW((void)run_trials(one, 10, 0, bad_jobs), ContractViolation);
  ParallelOptions low_cap;
  low_cap.ci_target = 0.05;
  low_cap.max_trials = 5;
  EXPECT_THROW((void)run_trials(one, 10, 0, low_cap), ContractViolation);
}

TEST(ParallelEngine, JobsZeroUsesAllCoresAndStaysDeterministic) {
  const NirStorageSimulator simulator(accelerated_nir(2), 23);
  ParallelOptions all_cores = with_jobs(0);
  expect_bit_identical(simulator.estimate(256, with_jobs(1)),
                       simulator.estimate(256, all_cores));
}

TEST(ParallelEngine, UniformSamplerMatchesExpectation) {
  // Sanity: the engine's plumbing does not bias the estimator.
  ParallelOptions options = with_jobs(4);
  const MttdlEstimate e = run_trials(
      [](Xoshiro256& rng) { return rng.uniform(); }, 20000, 99, options);
  EXPECT_NEAR(e.mean_hours, 0.5, 5.0 * e.stderr_hours);
  EXPECT_NEAR(e.stddev_hours, std::sqrt(1.0 / 12.0), 0.01);
}

// --- Thread pool.

TEST(ThreadPool, RunsEverySubmittedJob) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  std::atomic<int> hits{0};
  std::vector<std::future<void>> done;
  done.reserve(100);
  for (int i = 0; i < 100; ++i) {
    done.push_back(pool.submit([&hits] { ++hits; }));
  }
  for (auto& f : done) f.get();
  EXPECT_EQ(hits.load(), 100);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> hits{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      (void)pool.submit([&hits] { ++hits; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(hits.load(), 32);
}

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool pool(0), ContractViolation);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
}

}  // namespace
}  // namespace nsrel::sim
