// Tests for the GF(256) field and the Reed-Solomon erasure code: field
// axioms (property-swept), MDS recoverability for every erasure pattern on
// small codes, and random-pattern recovery on paper-sized codes.
#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "erasure/gf256.hpp"
#include "erasure/reed_solomon.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace nsrel::erasure {
namespace {

using E = GF256::Element;

TEST(Gf256, AdditionIsXorAndSelfInverse) {
  EXPECT_EQ(GF256::add(0x57, 0x83), 0x57 ^ 0x83);
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(GF256::add(static_cast<E>(a), static_cast<E>(a)), 0);
    EXPECT_EQ(GF256::sub(static_cast<E>(a), 0), a);
  }
}

TEST(Gf256, KnownAesMultiplication) {
  // Classic AES test vector: 0x57 * 0x83 = 0xC1 under 0x11B.
  EXPECT_EQ(GF256::mul(0x57, 0x83), 0xC1);
  EXPECT_EQ(GF256::mul(0x57, 0x13), 0xFE);
}

TEST(Gf256, MultiplicationByZeroAndOne) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(GF256::mul(static_cast<E>(a), 0), 0);
    EXPECT_EQ(GF256::mul(static_cast<E>(a), 1), a);
  }
}

TEST(Gf256, MultiplicationCommutes) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 2000; ++i) {
    const E a = static_cast<E>(rng.below(256));
    const E b = static_cast<E>(rng.below(256));
    EXPECT_EQ(GF256::mul(a, b), GF256::mul(b, a));
  }
}

TEST(Gf256, MultiplicationAssociates) {
  Xoshiro256 rng(6);
  for (int i = 0; i < 2000; ++i) {
    const E a = static_cast<E>(rng.below(256));
    const E b = static_cast<E>(rng.below(256));
    const E c = static_cast<E>(rng.below(256));
    EXPECT_EQ(GF256::mul(GF256::mul(a, b), c), GF256::mul(a, GF256::mul(b, c)));
  }
}

TEST(Gf256, DistributesOverAddition) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 2000; ++i) {
    const E a = static_cast<E>(rng.below(256));
    const E b = static_cast<E>(rng.below(256));
    const E c = static_cast<E>(rng.below(256));
    EXPECT_EQ(GF256::mul(a, GF256::add(b, c)),
              GF256::add(GF256::mul(a, b), GF256::mul(a, c)));
  }
}

TEST(Gf256, EveryNonzeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const E inv = GF256::inv(static_cast<E>(a));
    EXPECT_EQ(GF256::mul(static_cast<E>(a), inv), 1) << a;
  }
}

TEST(Gf256, DivisionInvertsMultiplication) {
  Xoshiro256 rng(8);
  for (int i = 0; i < 2000; ++i) {
    const E a = static_cast<E>(rng.below(256));
    const E b = static_cast<E>(1 + rng.below(255));
    EXPECT_EQ(GF256::div(GF256::mul(a, b), b), a);
  }
}

TEST(Gf256, InverseOfZeroThrows) {
  EXPECT_THROW((void)GF256::inv(0), ContractViolation);
  EXPECT_THROW((void)GF256::div(1, 0), ContractViolation);
  EXPECT_THROW((void)GF256::log(0), ContractViolation);
}

TEST(Gf256, GeneratorHasFullOrder) {
  // exp must visit all 255 nonzero elements before repeating.
  std::vector<bool> seen(256, false);
  for (unsigned i = 0; i < 255; ++i) {
    const E value = GF256::exp(i);
    EXPECT_FALSE(seen[value]) << "cycle shorter than 255 at " << i;
    seen[value] = true;
  }
  EXPECT_EQ(GF256::exp(255), GF256::exp(0));
}

TEST(Gf256, PowMatchesRepeatedMultiplication) {
  for (const E base : {E{2}, E{3}, E{0x53}}) {
    E accumulated = 1;
    for (unsigned p = 0; p < 20; ++p) {
      EXPECT_EQ(GF256::pow(base, p), accumulated) << "p=" << p;
      accumulated = GF256::mul(accumulated, base);
    }
  }
}

TEST(GfInvert, IdentityAndSingular) {
  const std::vector<std::vector<E>> identity{{1, 0}, {0, 1}};
  const auto inv = gf_invert(identity);
  EXPECT_EQ(inv, identity);
  const std::vector<std::vector<E>> singular{{1, 1}, {1, 1}};
  EXPECT_TRUE(gf_invert(singular).empty());
}

std::vector<Shard> random_data(int shards, std::size_t size, Xoshiro256& rng) {
  std::vector<Shard> data(static_cast<std::size_t>(shards), Shard(size));
  for (auto& shard : data) {
    for (auto& byte : shard) byte = static_cast<std::uint8_t>(rng.below(256));
  }
  return data;
}

TEST(ReedSolomon, EncodeIsDeterministicAndSized) {
  Xoshiro256 rng(9);
  const ReedSolomonCode code(6, 2);
  const auto data = random_data(6, 64, rng);
  const auto parity1 = code.encode(data);
  const auto parity2 = code.encode(data);
  ASSERT_EQ(parity1.size(), 2u);
  EXPECT_EQ(parity1, parity2);
  EXPECT_EQ(parity1[0].size(), 64u);
}

TEST(ReedSolomon, RoundTripWithNoErasures) {
  Xoshiro256 rng(10);
  const ReedSolomonCode code(5, 3);
  const auto data = random_data(5, 32, rng);
  auto shards = data;
  const auto parity = code.encode(data);
  shards.insert(shards.end(), parity.begin(), parity.end());
  const std::vector<bool> present(8, true);
  const auto rebuilt = code.reconstruct(shards, present);
  EXPECT_EQ(rebuilt, shards);
}

TEST(ReedSolomon, EveryErasurePatternUpToTolerance) {
  // MDS property, exhaustively: for an (k=4, t=3) code, ALL patterns of
  // up to 3 erasures out of 7 shards must reconstruct exactly.
  Xoshiro256 rng(11);
  const int k = 4;
  const int t = 3;
  const int total = k + t;
  const ReedSolomonCode code(k, t);
  const auto data = random_data(k, 16, rng);
  auto shards = data;
  const auto parity = code.encode(data);
  shards.insert(shards.end(), parity.begin(), parity.end());

  for (unsigned mask = 0; mask < (1u << total); ++mask) {
    const int erased = __builtin_popcount(mask);
    if (erased > t) continue;
    std::vector<bool> present(static_cast<std::size_t>(total), true);
    auto damaged = shards;
    for (int i = 0; i < total; ++i) {
      if (mask & (1u << i)) {
        present[static_cast<std::size_t>(i)] = false;
        damaged[static_cast<std::size_t>(i)].assign(16, 0xEE);  // corrupt
      }
    }
    const auto rebuilt = code.reconstruct(damaged, present);
    EXPECT_EQ(rebuilt, shards) << "mask=" << mask;
  }
}

TEST(ReedSolomon, PaperSizedCodesRecoverRandomErasures) {
  // The paper's R=8 redundancy sets with t = 1, 2, 3.
  Xoshiro256 rng(12);
  for (int t = 1; t <= 3; ++t) {
    const int k = 8 - t;
    const ReedSolomonCode code(k, t);
    const auto data = random_data(k, 128, rng);
    auto shards = data;
    const auto parity = code.encode(data);
    shards.insert(shards.end(), parity.begin(), parity.end());

    for (int trial = 0; trial < 50; ++trial) {
      std::vector<bool> present(8, true);
      auto damaged = shards;
      int erased = 0;
      while (erased < t) {
        const auto victim = static_cast<std::size_t>(rng.below(8));
        if (!present[victim]) continue;
        present[victim] = false;
        damaged[victim].clear();
        damaged[victim].resize(128, 0);
        ++erased;
      }
      EXPECT_EQ(code.reconstruct(damaged, present), shards)
          << "t=" << t << " trial=" << trial;
    }
  }
}

TEST(ReedSolomon, TooManyErasuresIsRejected) {
  const ReedSolomonCode code(4, 2);
  std::vector<bool> present(6, true);
  present[0] = present[1] = present[2] = false;
  EXPECT_FALSE(code.recoverable(present));
  const std::vector<Shard> shards(6, Shard(8, 0));
  EXPECT_THROW((void)code.reconstruct(shards, present), ContractViolation);
}

TEST(ReedSolomon, SingleParityIsXor) {
  // t=1 over GF(2^8) with a Cauchy row of constant factor? Not XOR in
  // general — but decoding a single erased DATA shard must still work,
  // which is the RAID-5-across-nodes analogy.
  Xoshiro256 rng(13);
  const ReedSolomonCode code(7, 1);
  const auto data = random_data(7, 64, rng);
  auto shards = data;
  const auto parity = code.encode(data);
  shards.insert(shards.end(), parity.begin(), parity.end());
  std::vector<bool> present(8, true);
  present[3] = false;
  auto damaged = shards;
  damaged[3].assign(64, 0);
  EXPECT_EQ(code.reconstruct(damaged, present), shards);
}

TEST(ReedSolomon, GeneratorSubmatricesAreInvertible) {
  // Direct check of the MDS property on the generator: every k-row subset
  // of a (k=3, t=3) generator must be invertible.
  const ReedSolomonCode code(3, 3);
  const auto g = code.generator();
  std::vector<int> rows(6);
  std::iota(rows.begin(), rows.end(), 0);
  for (int a = 0; a < 6; ++a) {
    for (int b = a + 1; b < 6; ++b) {
      for (int c = b + 1; c < 6; ++c) {
        const std::vector<std::vector<E>> sub{
            g[static_cast<std::size_t>(a)], g[static_cast<std::size_t>(b)],
            g[static_cast<std::size_t>(c)]};
        EXPECT_FALSE(gf_invert(sub).empty())
            << a << "," << b << "," << c;
      }
    }
  }
}

TEST(ReedSolomon, RejectsInvalidShape) {
  EXPECT_THROW(ReedSolomonCode(0, 1), ContractViolation);
  EXPECT_THROW(ReedSolomonCode(1, 0), ContractViolation);
  EXPECT_THROW(ReedSolomonCode(200, 100), ContractViolation);
  const ReedSolomonCode code(4, 2);
  EXPECT_THROW((void)code.encode(std::vector<Shard>(3, Shard(8, 0))),
               ContractViolation);
}

}  // namespace
}  // namespace nsrel::erasure
