// Tests for the table/CSV/JSON report emitters.
#include <cstdint>
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <sstream>
#include <string>

#include "report/json.hpp"
#include "report/table.hpp"
#include "util/assert.hpp"

namespace nsrel::report {
namespace {

TEST(Table, AlignsColumnsToWidestCell) {
  Table t({"name", "v"});
  t.add_row({"a", "1.5"});
  t.add_row({"long-name", "2"});
  const std::string rendered = t.to_string();
  // Each data line starts at the same column for field 2.
  std::istringstream in(rendered);
  std::string header, underline, row1, row2;
  std::getline(in, header);
  std::getline(in, underline);
  std::getline(in, row1);
  std::getline(in, row2);
  EXPECT_EQ(header.find('v'), row1.find("1.5"));
  EXPECT_EQ(row1.find("1.5"), row2.find('2'));
  EXPECT_EQ(underline.find_first_not_of('-'), std::string::npos);
}

TEST(Table, RowArityIsChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
  EXPECT_THROW(Table({}), ContractViolation);
}

TEST(Table, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"x"});
  t.add_row({"y"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"name", "note"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"quote\"inside", "ok"});
  std::ostringstream out;
  t.print_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_NE(csv.find("name,note\n"), std::string::npos);
}

TEST(Table, CsvRowStructure) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream out;
  t.print_csv(out);
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(Table, CsvQuotesEmbeddedNewlines) {
  Table t({"name", "note"});
  t.add_row({"multi\nline", "also \"quoted\", with comma"});
  std::ostringstream out;
  t.print_csv(out);
  EXPECT_EQ(out.str(),
            "name,note\n\"multi\nline\",\"also \"\"quoted\"\", with "
            "comma\"\n");
}

TEST(OutputFormat, ParseAndName) {
  EXPECT_EQ(parse_output_format("table"), OutputFormat::kTable);
  EXPECT_EQ(parse_output_format("csv"), OutputFormat::kCsv);
  EXPECT_EQ(parse_output_format("json"), OutputFormat::kJson);
  EXPECT_THROW((void)parse_output_format("xml"), ContractViolation);
  EXPECT_EQ(format_name(OutputFormat::kJson), "json");
  EXPECT_EQ(parse_output_format(format_name(OutputFormat::kCsv)),
            OutputFormat::kCsv);
}

TEST(Json, EscapesSpecialCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("tab\there\n"), "tab\\there\\n");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, NumbersRoundTripThroughStrtod) {
  for (const double v : {1.0, -0.5, 1e-300, 1.7976931348623157e308,
                         0.1 + 0.2, 3.0e5, 2e-3, 123456789.123456789}) {
    const std::string text = json_number(v);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
  }
  // Non-finite values have no JSON spelling; the writer emits null.
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
}

TEST(Json, WriterGoldenBytes) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.key("name").value("raid5-ft2");
  w.key("count").value(std::uint64_t{3});
  w.key("ratio").value(0.5);
  w.key("ok").value(true);
  w.key("axis").null();
  w.key("cells").begin_array();
  w.value(1);
  w.begin_object();
  w.key("x").value("a,\"b\"");
  w.end_object();
  w.end_array();
  w.end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(out.str(),
            "{\n"
            "  \"name\": \"raid5-ft2\",\n"
            "  \"count\": 3,\n"
            "  \"ratio\": 0.5,\n"
            "  \"ok\": true,\n"
            "  \"axis\": null,\n"
            "  \"cells\": [\n"
            "    1,\n"
            "    {\n"
            "      \"x\": \"a,\\\"b\\\"\"\n"
            "    }\n"
            "  ]\n"
            "}\n");
}

TEST(Json, WriterRejectsMisuse) {
  {
    std::ostringstream out;
    JsonWriter w(out);
    w.begin_object();
    EXPECT_THROW(w.value(1.0), ContractViolation);  // member without a key
  }
  {
    std::ostringstream out;
    JsonWriter w(out);
    w.begin_array();
    EXPECT_THROW(w.end_object(), ContractViolation);  // mismatched closer
  }
}

TEST(Section, HeaderShape) {
  std::ostringstream out;
  print_section(out, "Figure 13");
  EXPECT_EQ(out.str(), "\n== Figure 13 ==\n");
}

}  // namespace
}  // namespace nsrel::report
