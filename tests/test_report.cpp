// Tests for the table/CSV report emitters.
#include <gtest/gtest.h>

#include <sstream>

#include "report/table.hpp"
#include "util/assert.hpp"

namespace nsrel::report {
namespace {

TEST(Table, AlignsColumnsToWidestCell) {
  Table t({"name", "v"});
  t.add_row({"a", "1.5"});
  t.add_row({"long-name", "2"});
  const std::string rendered = t.to_string();
  // Each data line starts at the same column for field 2.
  std::istringstream in(rendered);
  std::string header, underline, row1, row2;
  std::getline(in, header);
  std::getline(in, underline);
  std::getline(in, row1);
  std::getline(in, row2);
  EXPECT_EQ(header.find('v'), row1.find("1.5"));
  EXPECT_EQ(row1.find("1.5"), row2.find('2'));
  EXPECT_EQ(underline.find_first_not_of('-'), std::string::npos);
}

TEST(Table, RowArityIsChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
  EXPECT_THROW(Table({}), ContractViolation);
}

TEST(Table, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"x"});
  t.add_row({"y"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"name", "note"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"quote\"inside", "ok"});
  std::ostringstream out;
  t.print_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_NE(csv.find("name,note\n"), std::string::npos);
}

TEST(Table, CsvRowStructure) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream out;
  t.print_csv(out);
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(Section, HeaderShape) {
  std::ostringstream out;
  print_section(out, "Figure 13");
  EXPECT_EQ(out.str(), "\n== Figure 13 ==\n");
}

}  // namespace
}  // namespace nsrel::report
